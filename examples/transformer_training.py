"""Distributed training of a transformer with low-rank compression.

The paper's BERT workloads at miniature, runnable scale: a tiny BERT-style
encoder classifies synthetic token sequences across four data-parallel
workers, comparing S-SGD, Power-SGD and ACP-SGD on the exact matrix
families (attention H x H, FFN H x 4H, embeddings V x H) the paper
compresses at rank 32.

Run:
    python examples/transformer_training.py
"""

import numpy as np

from repro.comm import ProcessGroup
from repro.models import make_tiny_bert
from repro.optim import SGD, make_aggregator
from repro.train import DataParallelTrainer, make_token_classification
from repro.utils import format_bytes, render_table

WORLD_SIZE = 4
RANK = 4
STEPS = 50


def run(method: str, **kwargs):
    train_data, test_data = make_token_classification(
        num_train=1024, num_test=256, vocab_size=48, seq_len=16,
        num_classes=4, seed=2,
    )
    model = make_tiny_bert(
        vocab_size=48, hidden=24, num_layers=2, num_heads=4, max_seq=16,
        num_classes=4, rng=np.random.default_rng(8),
    )
    group = ProcessGroup(WORLD_SIZE)
    aggregator = make_aggregator(method, group, **kwargs)
    trainer = DataParallelTrainer(
        model, SGD(model, lr=0.1, momentum=0.9), aggregator,
        train_data, test_data, batch_size_per_worker=32, seed=6,
    )
    for _ in range(STEPS):
        trainer.train_step()
    return trainer.evaluate(), group.total_bytes()


def main() -> None:
    rows = []
    for method, kwargs in (
        ("ssgd", {}),
        ("powersgd", {"rank": RANK}),
        ("acpsgd", {"rank": RANK}),
    ):
        accuracy, traffic = run(method, **kwargs)
        rows.append([method, f"{accuracy:.1%}", format_bytes(traffic)])
        print(f"finished {method}")
    print()
    print(render_table(["method", "accuracy", "total wire traffic"], rows))


if __name__ == "__main__":
    main()
