"""Capacity planning as a service: many queries, one simulator.

``examples/cluster_planning.py`` answers one deployment question with one
simulator sweep. This example shows the production face of the same
machinery (`repro.serve`): a PlannerService absorbs a *stream* of
planning queries over a sharded memoized cache — duplicates are answered
from cache or coalesced onto one in-flight computation, cached answers
are byte-identical to fresh ones, and re-anchoring the link calibration
from measured bucket timings invalidates every stale entry.

Run:
    python examples/capacity_planning.py [--queries 40]
"""

import argparse
import time

from repro.serve import PlannerService, PlanQuery, ResultCache
from repro.serve.service import compute_plan_payload
from repro.sim.calibration import SIM_LINKS

MB = 1024 * 1024


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--queries", type=int, default=40,
                        help="total queries in the simulated stream")
    args = parser.parse_args()

    # A small population of distinct deployments, queried repeatedly —
    # the service workload: many cheap lookups over few expensive sims.
    population = [
        PlanQuery("ResNet-18", gpus=g, link=SIM_LINKS[link],
                  tune_buffer=False)
        for g in (4, 8, 16)
        for link in ("10GbE", "1GbE")
    ]
    stream = [population[i % len(population)]
              for i in range(args.queries)]

    with PlannerService(cache=ResultCache(shards=4,
                                          capacity_per_shard=256),
                        max_workers=4) as service:
        start = time.perf_counter()
        results = service.submit_batch(stream)
        elapsed = time.perf_counter() - start

        stats = service.stats()
        print(f"answered {len(results)} queries in {elapsed * 1e3:.0f}ms "
              f"({len(results) / elapsed:.0f} q/s) with "
              f"{stats['computes']} simulator runs")
        print(f"cache: hit rate {stats['cache']['hit_rate']:.0%}, "
              f"{stats['cache']['entries']} entries across "
              f"{stats['cache']['shards']} shards")

        # Byte-identity: a cached answer equals a fresh cache-less run.
        probe = population[0]
        cached = service.submit(probe).payload
        fresh = compute_plan_payload(probe)
        identical = cached == fresh
        print(f"cached vs uncached payload: "
              f"{'MATCH bit-exactly' if identical else 'MISMATCH'}")

        # One answer, rendered.
        plan = results[0].plan
        print(f"\n{probe.model} on {probe.gpus}x{probe.link.name}: "
              f"recommend {plan.recommended_method} at "
              f"~{plan.expected_iteration_ms:.0f}ms/iter "
              f"({plan.speedup_over_ssgd:.1f}x over S-SGD)")

        # Re-anchor the calibration from (synthetic) measured per-bucket
        # timings: every cached plan is now stale and must be recomputed.
        samples = [(1 * MB, 0.0021), (4 * MB, 0.0079),
                   (16 * MB, 0.0305), (64 * MB, 0.1205)]
        generation_before = service.generation()
        service.recalibrate(samples, world_size=4, name="measured")
        refreshed = service.submit(probe)
        print(f"\nrecalibration: generation {generation_before} -> "
              f"{service.generation()}; re-query was "
              f"{'recomputed (stale entry dropped)' if refreshed.source == 'computed' else 'served stale: BUG'}")

        assert identical, "cached payload diverged from uncached run"
        assert refreshed.source == "computed", "stale cache entry served"
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
