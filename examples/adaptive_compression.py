"""Adaptive rank selection on real training gradients.

Demonstrates the adaptive-compression extension: after a few warm-up
steps, inspect each layer's gradient spectrum and pick (a) the smallest
uniform rank meeting a target compression budget (inverting Table I) and
(b) data-dependent per-tensor ranks capturing 90% of each gradient
matrix's spectral energy. Shows why the paper's uniform choice (r=4 for
convnets) is reasonable — most conv gradients are spectrally concentrated
— while a few layers would benefit from more.

Run:
    python examples/adaptive_compression.py
"""

import numpy as np

from repro.compression.adaptive import (
    per_tensor_ranks,
    rank_for_energy,
    rank_for_target_ratio,
)
from repro.compression.reshaping import grad_to_matrix, should_compress
from repro.models import get_model_spec, make_small_vgg
from repro.nn.loss import CrossEntropyLoss
from repro.train import make_cifar_like
from repro.utils import render_table


def gradient_snapshot():
    """A few SGD steps on the small VGG; returns the final gradient dict."""
    train, _ = make_cifar_like(num_train=400, num_test=50, seed=4)
    model = make_small_vgg(base_width=8, rng=np.random.default_rng(1))
    loss_fn = CrossEntropyLoss()
    rng = np.random.default_rng(2)
    for _ in range(5):
        images, labels = train.batch(rng, 32)
        model.zero_grad()
        loss_fn(model(images), labels)
        model.backward(loss_fn.backward())
        for param in model.parameters():
            param.data -= 0.05 * param.grad
    return {name: param.grad.copy() for name, param in model.named_parameters()}


def main() -> None:
    grads = gradient_snapshot()

    print("Per-tensor spectral analysis (90% energy criterion):\n")
    ranks = per_tensor_ranks(grads, energy=0.9, max_rank=16)
    rows = []
    for name, grad in grads.items():
        if not should_compress(grad.shape):
            continue
        matrix = grad_to_matrix(grad)
        full = min(matrix.shape)
        rows.append([
            name, f"{matrix.shape[0]}x{matrix.shape[1]}",
            str(full), str(ranks[name]),
            f"{ranks[name] / full:.0%}",
        ])
    print(render_table(
        ["tensor", "matrix", "full rank", "rank @90% energy", "fraction"],
        rows,
    ))

    print("\nUniform rank for target budgets (paper-model shapes):")
    for model_name in ("ResNet-50", "BERT-Base"):
        spec = get_model_spec(model_name)
        shapes = spec.parameter_shapes()
        picks = {target: rank_for_target_ratio(shapes, target)
                 for target in (16.0, 32.0, 64.0)}
        print(f"  {model_name}: " + ", ".join(
            f"{t:.0f}x budget -> rank {r}" for t, r in picks.items()
        ))
    print("\n(BERT-Base at a 32x budget selects rank 32 — the paper's "
          "manual choice, recovered automatically.)")


if __name__ == "__main__":
    main()
