"""Topology-aware hierarchical all-reduce: identical math, cheaper wire.

Three demonstrations on one 2-node x 2-GPU cluster:

1. **Training bit-identity** — the same ACP-SGD job trained with the flat
   ring and with ``topology=`` (two-level hierarchical all-reduce) must
   produce byte-identical weights: the hierarchical collective replays
   the canonical flat-ring fold and only *accounts* the two-level
   schedule, so the wire layout can never fork a trajectory.
2. **Analytic crossover** — where the alpha-beta cost model says each
   schedule wins, via ``crossover_bytes``.
3. **Task-DAG replay** — the same two schedules rebuilt as task graphs
   over the ``repro.sched`` scheduler core, reproducing the analytic
   times exactly, plus an ASCII Gantt of the hierarchical trace with one
   row per intra-node link and NIC.

Run:
    python examples/hierarchical_allreduce.py
"""

import numpy as np

from repro.comm import ProcessGroup
from repro.comm.cost_model import INFINIBAND_100G
from repro.comm.topology import (
    PCIE3_X16,
    ClusterTopology,
    crossover_bytes,
    flat_allreduce_time,
    hierarchical_allreduce_time,
)
from repro.models import make_small_vgg
from repro.optim import SGD, make_aggregator
from repro.sched import EventLoop, build_allreduce_graph, simulate_allreduce_makespan
from repro.sim.gantt import render_gantt
from repro.train import DataParallelTrainer, make_cifar_like
from repro.utils import format_bytes

TOPOLOGY = ClusterTopology(
    num_nodes=2, gpus_per_node=2,
    intra_link=PCIE3_X16, inter_link=INFINIBAND_100G,
)
# A bigger modeled cluster for the analytic sections: at 4x4 the two
# schedules genuinely cross (at 2x2 hierarchical wins the whole range).
MODEL_TOPOLOGY = ClusterTopology(
    num_nodes=4, gpus_per_node=4,
    intra_link=PCIE3_X16, inter_link=INFINIBAND_100G,
)
STEPS = 6


def train(topology):
    """Train a few steps; returns (final weights, wire bytes, steps)."""
    train_data, test_data = make_cifar_like(num_train=64, num_test=8, seed=3)
    model = make_small_vgg(base_width=2, rng=np.random.default_rng(7))
    group = ProcessGroup(TOPOLOGY.world_size)
    trainer = DataParallelTrainer(
        model, SGD(model, lr=0.05, momentum=0.9),
        make_aggregator("acpsgd", group, rank=4),
        train_data, test_data,
        batch_size_per_worker=4, seed=11, topology=topology,
    )
    losses = [trainer.train_step() for _ in range(STEPS)]
    weights = np.concatenate(
        [param.data.ravel() for _, param in model.named_parameters()]
    )
    comm_steps = sum(stats.steps for stats in group.history)
    return weights, group.total_bytes(), comm_steps, losses


def main() -> None:
    print(f"cluster: {TOPOLOGY.num_nodes} nodes x "
          f"{TOPOLOGY.gpus_per_node} GPUs "
          f"({TOPOLOGY.intra_link.name} intra, "
          f"{TOPOLOGY.inter_link.name} inter)\n")

    # 1. Flat vs hierarchical training: identical weights, fewer rounds.
    flat_w, flat_bytes, flat_steps, flat_losses = train(None)
    hier_w, hier_bytes, hier_steps, hier_losses = train(TOPOLOGY)
    identical = (flat_w.tobytes() == hier_w.tobytes()
                 and flat_losses == hier_losses)
    print(f"[1] ACP-SGD x{STEPS} steps, flat ring:     "
          f"{format_bytes(flat_bytes)} on the wire, {flat_steps} rounds")
    print(f"    ACP-SGD x{STEPS} steps, hierarchical: "
          f"{format_bytes(hier_bytes)} on the wire, {hier_steps} rounds")
    print("    weights and losses "
          + ("MATCH bit-exactly" if identical else "DIVERGED (bug!)"))
    if not identical:
        raise SystemExit(1)

    # 2. Where each schedule wins, per the alpha-beta model.
    crossover = crossover_bytes(MODEL_TOPOLOGY)
    print(f"\n[2] analytic crossover on "
          f"{MODEL_TOPOLOGY.num_nodes}x{MODEL_TOPOLOGY.gpus_per_node}: "
          f"{format_bytes(int(crossover))} "
          "(hierarchical wins below - start-up bound - flat above)")
    for nbytes in (int(crossover / 8), int(crossover * 8)):
        flat_t = flat_allreduce_time(nbytes, MODEL_TOPOLOGY)
        hier_t = hierarchical_allreduce_time(nbytes, MODEL_TOPOLOGY)
        winner = "hierarchical" if hier_t < flat_t else "flat"
        print(f"    {format_bytes(nbytes):>10}: flat {flat_t * 1e3:7.3f}ms  "
              f"hier {hier_t * 1e3:7.3f}ms  -> {winner}")

    # 3. The same schedules as task DAGs over the scheduler core.
    nbytes = 8 * 1024 * 1024
    print(f"\n[3] task-DAG replay at {format_bytes(nbytes)}:")
    for scheme, analytic in (
        ("flat", flat_allreduce_time(nbytes, MODEL_TOPOLOGY)),
        ("hierarchical", hierarchical_allreduce_time(nbytes, MODEL_TOPOLOGY)),
    ):
        makespan = simulate_allreduce_makespan(nbytes, MODEL_TOPOLOGY, scheme)
        rel = abs(makespan - analytic) / analytic
        print(f"    {scheme:>12}: DAG {makespan * 1e3:7.3f}ms vs analytic "
              f"{analytic * 1e3:7.3f}ms (rel err {rel:.2e})")

    records = EventLoop().run(build_allreduce_graph(nbytes, TOPOLOGY))  # 2x2: 4 link rows
    print("\n    hierarchical trace (one row per link):")
    print(render_gantt(records, width=64))


if __name__ == "__main__":
    main()
