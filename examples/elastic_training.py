"""Elastic membership: training through eject -> rejoin -> scale-up churn.

Part 1 trains a small convnet on three simulated workers with ACP-SGD
while the cluster churns: one rank dies permanently mid-run, is later
readmitted, and then a brand-new fourth rank joins. The
:class:`MembershipController` commits each change at a step boundary,
re-chunks the ring for the new world size, broadcasts model + optimizer
state from a surviving donor, warm-starts the joiner's compressor state,
and re-shards the dataset — so training just keeps going. Replaying the
identical schedule produces bit-identical weights, which Part 1 asserts.

Part 2 asks the performance question on the simulator: what does the same
churn trajectory cost in wall-clock, and how much of it is admission
state-sync overhead?

Run:
    python examples/elastic_training.py [--epochs 2] [--steps 12]
"""

import argparse

import numpy as np

from repro.elastic import MembershipController
from repro.faults import (
    FaultInjector,
    FaultPlan,
    Join,
    PermanentFailure,
    Recovery,
    ResilientProcessGroup,
)
from repro.models import get_model_spec, make_small_vgg
from repro.optim import SGD, make_aggregator
from repro.sim.faults import ChurnEvent, simulate_elastic_trace
from repro.sim.strategies import ClusterSpec
from repro.train import DataParallelTrainer, ResilienceConfig, make_cifar_like

WORLD_SIZE = 3


def train(epochs: int, steps: int):
    """One elastic run; returns (history, group, membership, model)."""
    plan = FaultPlan(
        seed=2,
        permanent=(PermanentFailure(rank=2, call_index=4),),
        recoveries=(Recovery(rank=2, call_index=10),),
        joins=(Join(call_index=16),),
    )
    train_data, test_data = make_cifar_like(num_train=512, num_test=200, seed=3)
    model = make_small_vgg(base_width=8, rng=np.random.default_rng(7))
    group = ResilientProcessGroup(WORLD_SIZE, injector=FaultInjector(plan))
    membership = MembershipController(group)
    aggregator = make_aggregator("acpsgd", group, rank=4)
    trainer = DataParallelTrainer(
        model, SGD(model, lr=0.06, momentum=0.9), aggregator,
        train_data, test_data, batch_size_per_worker=16, seed=11,
        resilience=ResilienceConfig(), membership=membership,
    )
    history = trainer.run(epochs, steps, method_label="acpsgd")
    return history, group, membership, model


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument("--steps", type=int, default=12)
    args = parser.parse_args()

    print("=== Part 1: training through membership churn ===")
    history, group, membership, model = train(args.epochs, args.steps)
    print(history.render())
    print("\n--- membership log ---")
    print(membership.log.render())
    print("\n--- resilience report ---")
    print(group.resilience_report())

    _, _, _, replay = train(args.epochs, args.steps)
    max_diff = float(np.abs(
        model.state_vector() - replay.state_vector()
    ).max())
    print(f"\nmax |run - replay| weight difference: {max_diff:g}")
    print("identical churn schedule replayed -> weights "
          + ("MATCH bit-exactly" if max_diff == 0.0 else "DIVERGED"))

    print("\n=== Part 2: wall-clock cost of the same churn trajectory ===")
    spec = get_model_spec("ResNet-50")
    cluster = ClusterSpec(world_size=4)
    trace = simulate_elastic_trace(
        "acpsgd", spec,
        schedule=[ChurnEvent(iteration=30, world_size=3),
                  ChurnEvent(iteration=60, world_size=4),
                  ChurnEvent(iteration=80, world_size=5)],
        iterations=100, cluster=cluster, batch_size=16,
    )
    print(trace.render())
    print("\nShrinking is free (the survivors already hold the state); every "
          "admitted rank pays one model+optimizer broadcast before its first "
          "step.")


if __name__ == "__main__":
    main()
