"""Real buffer-size sensitivity sweep (the paper's Fig. 8, on real execution).

The paper shows end-to-end iteration time is sensitive to the tensor-fusion
buffer size: tiny buffers pay per-bucket latency (alpha) many times over,
one giant buffer forfeits WFBP overlap. This example runs the *actual*
training hot path — `DataParallelTrainer` with the bucketed WFBP reducer
(`buffer_bytes=...`) — across several buffer sizes on the same model, data
and seeds, and reports:

- mean step time and bucket count per buffer size (Fig. 8's axes);
- per-bucket reduction timings for one representative size;
- an alpha-beta link fit from those timings
  (`repro.sim.fit_link_from_bucket_timings`), closing the loop between
  measurement and the simulator's cost model;
- a bit-exactness check: every buffer size must land on identical weights
  (fusion is a scheduling choice, not a numerical one).

Run:
    python examples/buffer_size_sweep.py [--steps 8]
"""

import argparse
import time

import numpy as np

from repro.comm import ProcessGroup
from repro.models import make_small_vgg
from repro.optim import SGD, make_aggregator
from repro.sim import fit_link_from_bucket_timings
from repro.train import DataParallelTrainer, make_cifar_like
from repro.utils import format_bytes

WORLD_SIZE = 4

# None = the monolithic fallback path (one fused all-reduce, no WFBP).
BUFFER_SIZES = [None, 2 * 1024, 8 * 1024, 16 * 1024, 64 * 1024]


def run_sweep_point(buffer_bytes, steps):
    """Train `steps` steps at one buffer size; return timing + weights."""
    train_data, test_data = make_cifar_like(num_train=256, num_test=64, seed=3)
    model = make_small_vgg(base_width=4, rng=np.random.default_rng(5))
    aggregator = make_aggregator("ssgd", ProcessGroup(WORLD_SIZE))
    trainer = DataParallelTrainer(
        model, SGD(model, lr=0.05, momentum=0.9), aggregator,
        train_data, test_data, batch_size_per_worker=8, seed=13,
        buffer_bytes=buffer_bytes,
    )
    trainer.train_step()  # warmup: learns per-parameter ready counts
    times = []
    bucket_samples = []
    for _ in range(steps):
        start = time.perf_counter()
        trainer.train_step()
        times.append(time.perf_counter() - start)
        if trainer._reducer is not None:
            bucket_samples.extend(
                (elements * 8, seconds)
                for _, elements, seconds in trainer._reducer.last_timings
            )
    num_buckets = (
        trainer._reducer.num_buckets if trainer._reducer is not None else 1
    )
    return {
        "mean_s": float(np.mean(times)),
        "num_buckets": num_buckets,
        "bucket_samples": bucket_samples,
        "weights": model.state_vector(),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=8)
    args = parser.parse_args()

    print(f"Buffer-size sweep: S-SGD, {WORLD_SIZE} workers, "
          f"{args.steps} timed steps per point\n")
    print(f"{'buffer':>10s} {'buckets':>8s} {'step ms':>9s}")
    results = {}
    for buffer_bytes in BUFFER_SIZES:
        point = run_sweep_point(buffer_bytes, args.steps)
        results[buffer_bytes] = point
        label = ("monolithic" if buffer_bytes is None
                 else format_bytes(buffer_bytes))
        print(f"{label:>10s} {point['num_buckets']:>8d} "
              f"{point['mean_s'] * 1e3:>9.2f}")

    # Fusion is a scheduling choice: every point must land on the same
    # weights, bit for bit.
    baseline = results[None]["weights"]
    exact = all(
        np.array_equal(baseline, point["weights"])
        for point in results.values()
    )
    print(f"\nweights across all buffer sizes: "
          f"{'MATCH bit-exactly' if exact else 'DIVERGED (bug!)'}")
    if not exact:
        raise SystemExit(1)

    # Calibrate the simulator's link model from the measured per-bucket
    # timings of the finest-grained point (most distinct sizes).
    samples = results[2 * 1024]["bucket_samples"]
    print(f"\nper-bucket samples collected: {len(samples)}")
    try:
        spec = fit_link_from_bucket_timings(samples, WORLD_SIZE)
        print(f"fitted link: alpha = {spec.alpha * 1e6:.2f} us, "
              f"beta = {spec.beta / 1e9:.2f} GB/s")
        print("(feed this LinkSpec to repro.sim to re-anchor the cost "
              "model to this machine)")
    except ValueError as exc:
        # In-process "communication" is a memory-bandwidth proxy; on fast
        # machines the fit can be noise-dominated. That's expected.
        print(f"link fit skipped: {exc}")


if __name__ == "__main__":
    main()
