"""Visualize simulated iteration timelines as Chrome traces.

Exports one trace per method (S-SGD, Power-SGD*, ACP-SGD) for a chosen
model; open them at ``chrome://tracing`` (or ui.perfetto.dev) to *see* the
paper's Fig. 1 / Fig. 4 schedules: WFBP overlapping bucketed all-reduces
with back-propagation, and Power-SGD*'s side-stream compression contending
with compute.

Run:
    python examples/timeline_trace.py [model] [out_dir]
"""

import os
import sys

from repro.models import get_model_spec
from repro.models.registry import PAPER_RANKS
from repro.sim import simulate_iteration_records, write_chrome_trace
from repro.sim.results import breakdown_from_records

METHODS = ("ssgd", "powersgd_star", "acpsgd")


def main() -> None:
    model_name = sys.argv[1] if len(sys.argv) > 1 else "BERT-Base"
    out_dir = sys.argv[2] if len(sys.argv) > 2 else "traces"
    spec = get_model_spec(model_name)
    rank = PAPER_RANKS[model_name]
    os.makedirs(out_dir, exist_ok=True)
    for method in METHODS:
        records = simulate_iteration_records(method, spec, rank=rank)
        breakdown = breakdown_from_records(records)
        path = os.path.join(out_dir, f"{model_name}_{method}.json")
        write_chrome_trace(records, path)
        print(breakdown.render(f"{method:14s} -> {path}"))
    print("\nOpen the JSON files in chrome://tracing or ui.perfetto.dev.")


if __name__ == "__main__":
    main()
