"""Capacity planning with the cluster performance simulator.

A deployment question the paper's evaluation answers implicitly: *given my
model, cluster size, and network, which aggregation method should I run,
and with what buffer size?* This example sweeps the simulator over methods,
networks, and buffer sizes for a chosen model and prints a recommendation
card — the same machinery that regenerates the paper's Figures 9-13.

Run:
    python examples/cluster_planning.py [model]
    # model in {ResNet-50, ResNet-152, BERT-Base, BERT-Large}, default BERT-Base
"""

import sys

from repro.experiments.common import METHOD_LABELS
from repro.models import get_model_spec
from repro.models.registry import PAPER_RANKS
from repro.sim import ClusterSpec, SystemConfig, simulate_iteration
from repro.sim.calibration import SIM_LINKS
from repro.utils import render_table

MB = 1024 * 1024
METHODS = ("ssgd", "signsgd", "topk", "powersgd", "powersgd_star", "acpsgd")


def sweep_methods(spec, rank, cluster):
    rows = []
    best = None
    for method in METHODS:
        breakdown = simulate_iteration(method, spec, cluster=cluster, rank=rank)
        total, ffbp, comp, comm = breakdown.milliseconds
        rows.append([
            METHOD_LABELS[method], f"{total:.0f}ms", f"{ffbp:.0f}ms",
            f"{comp:.0f}ms", f"{comm:.0f}ms",
        ])
        if best is None or total < best[1]:
            best = (method, total)
    return rows, best


def sweep_buffers(spec, rank, cluster, method):
    results = {}
    for buf_mb in (1, 5, 25, 100, 500):
        config = SystemConfig(wfbp=True, tensor_fusion=True,
                              buffer_bytes=buf_mb * MB)
        results[buf_mb] = simulate_iteration(
            method, spec, cluster=cluster, system=config, rank=rank
        ).milliseconds[0]
    return results


def main() -> None:
    model_name = sys.argv[1] if len(sys.argv) > 1 else "BERT-Base"
    spec = get_model_spec(model_name)
    rank = PAPER_RANKS[model_name]
    print(f"Planning for {model_name} "
          f"({spec.num_parameters / 1e6:.1f}M params, rank {rank})\n")

    for link_name in ("1GbE", "10GbE", "100GbIB"):
        cluster = ClusterSpec(world_size=32, link=SIM_LINKS[link_name])
        rows, best = sweep_methods(spec, rank, cluster)
        print(f"--- 32 GPUs on {link_name} ---")
        print(render_table(
            ["method", "iter", "ff&bp", "compress", "comm(exposed)"], rows,
        ))
        buffers = sweep_buffers(spec, rank, cluster, best[0])
        best_buf = min(buffers, key=buffers.get)
        print(f"recommendation: {METHOD_LABELS[best[0]]} at ~{best[1]:.0f}ms/iter; "
              f"buffer sweep {dict((k, round(v)) for k, v in buffers.items())} "
              f"-> use ~{best_buf}MB\n")

    # The one-call API that wraps all of the above (plus the memory check):
    from repro.planner import plan

    print("=== repro.planner.plan(...) recommendation card ===")
    print(plan(model_name, gpus=32, link="10GbE", rank=rank).render())


if __name__ == "__main__":
    main()
