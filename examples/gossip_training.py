"""Open-membership gossip training under a 40%-adversarial roster.

Five peers train a small MLP through the windowed store exchange while
two of them attack: one publishes Byzantine sign-flipped updates from the
first window, the other starts bit-flipping its payloads a few windows
in. A third honest peer departs mid-run and returns by replaying the
store, and a brand-new sixth peer joins the same way — no donor, no
broadcast.

The run demonstrates the three headline guarantees:

1. every attacker is quarantined within the scorer's bounded window
   count, and the honest peers converge regardless;
2. honest peers' replicas stay bit-identical with no synchronization
   primitive — including the joiner, after a complete store replay;
3. replaying the same seeds reproduces the run bit-for-bit.

Run:
    python examples/gossip_training.py [--windows 16] [--peers 5]
"""

import argparse

import numpy as np

from repro.faults import FaultPlan, Join, PeerFault, PermanentFailure, Recovery
from repro.gossip import GossipCluster, GossipConfig
from repro.models import make_mlp
from repro.train import ArrayDataset, make_cifar_like


def make_cluster(args) -> GossipCluster:
    train_images, test_images = make_cifar_like(
        num_train=640, num_test=160, image_size=8, seed=args.seed,
    )
    # The gossip demo trains an MLP, so flatten the image tensors.
    train_data = ArrayDataset(
        train_images.inputs.reshape(len(train_images), -1),
        train_images.labels,
    )
    test_data = ArrayDataset(
        test_images.inputs.reshape(len(test_images), -1),
        test_images.labels,
    )
    in_features = train_data.inputs.shape[1]

    def factory():
        return make_mlp(in_features, 24, train_data.num_classes,
                        rng=np.random.default_rng(args.seed + 1))

    plan = FaultPlan(
        seed=args.seed,
        peer_faults=(
            PeerFault("sign-flip", rank=args.peers - 1, start_window=0),
            PeerFault("corrupt-payload", rank=args.peers - 2,
                      start_window=3),
        ),
        permanent=(PermanentFailure(rank=1, call_index=4),),
        recoveries=(Recovery(rank=1, call_index=8),),
        joins=(Join(call_index=6),),
    )
    config = GossipConfig(local_steps=3, batch_size=16, lr=0.3,
                          compression_ratio=0.3)
    return GossipCluster(factory, train_data, test_data, config, plan=plan,
                         peers=args.peers, seed=args.seed + 2)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--windows", type=int, default=16)
    parser.add_argument("--peers", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    if args.peers < 4:
        raise SystemExit("--peers must be >= 4 (two of them attack)")

    cluster = make_cluster(args)
    report = cluster.run(args.windows)
    print(report.render())
    print()
    print("--- peer trust (reference peer's view) ---")
    print(cluster.reference_peer().scorer.render())

    print()
    print("--- guarantees ---")
    adversaries = {f"peer-{r:03d}" for r in cluster.plan.adversarial_ranks()}
    quarantined = set(report.quarantined)
    print(f"attackers quarantined: {sorted(quarantined)} "
          f"(expected {sorted(adversaries)})")
    assert quarantined == adversaries, "an attacker escaped quarantine"

    honest = cluster.honest_peers()
    reference = honest[0].state_vector()
    identical = all(
        np.array_equal(reference, peer.state_vector()) for peer in honest[1:]
    )
    print(f"honest replicas bit-identical (incl. joiner): {identical}")
    assert identical, "honest replicas diverged"

    replay = make_cluster(args).run(args.windows)
    print(f"seeded replay bit-identical: "
          f"{replay.window_losses == report.window_losses}")
    assert replay.window_losses == report.window_losses
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
