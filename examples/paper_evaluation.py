"""Regenerate the paper's full evaluation section in one run.

Prints every table and figure (paper-style text rendering) with our
measured/simulated values next to the paper's anchors. The convergence
figures (6-7) train real models and take a few minutes; pass ``--fast`` to
skip them. Equivalent to ``python -m repro evaluate``.

Run:
    python examples/paper_evaluation.py [--fast]
"""

import sys

from repro.experiments.report import render_full_report


def main() -> None:
    render_full_report(fast="--fast" in sys.argv)


if __name__ == "__main__":
    main()
