"""Fault-injected resilient training + iteration time under faults.

Part 1 trains a small convnet on two simulated workers with ACP-SGD while
the wire misbehaves — random payload corruption plus one transient rank
outage — through the self-healing :class:`ResilientProcessGroup`, and
compares the trajectory against an identically seeded fault-free control.
Because every injected fault is recovered within the retry budget, the two
runs end with *bit-identical* weights.

Part 2 asks the performance question on the simulator: what do 3-sigma
stragglers and a 1% transfer drop rate do to ACP-SGD vs S-SGD iteration
time on a 32-GPU cluster?

Run:
    python examples/fault_tolerance.py [--epochs 2] [--steps 10]
"""

import argparse

import numpy as np

from repro.faults import (
    FaultInjector,
    FaultPlan,
    ResilientProcessGroup,
    TransientFailure,
)
from repro.models import get_model_spec, make_small_vgg
from repro.optim import SGD, make_aggregator
from repro.sim.faults import FaultModel, compare_methods_under_faults
from repro.train import DataParallelTrainer, ResilienceConfig, make_cifar_like

WORLD_SIZE = 2


def train(injector, epochs: int, steps: int):
    """One resilient training run; returns (history, group, trainer)."""
    train_data, test_data = make_cifar_like(num_train=512, num_test=200, seed=3)
    model = make_small_vgg(base_width=8, rng=np.random.default_rng(7))
    group = ResilientProcessGroup(WORLD_SIZE, injector=injector)
    aggregator = make_aggregator("acpsgd", group, rank=4)
    trainer = DataParallelTrainer(
        model, SGD(model, lr=0.06, momentum=0.9), aggregator,
        train_data, test_data, batch_size_per_worker=16, seed=11,
        resilience=ResilienceConfig(),
    )
    history = trainer.run(epochs, steps, method_label="acpsgd")
    return history, group, model


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument("--steps", type=int, default=10)
    args = parser.parse_args()

    print("=== Part 1: resilient training under injected faults ===")
    plan = FaultPlan(
        seed=1,
        corrupt_rate=0.04,
        corrupt_mode="nan",
        transient=(TransientFailure(rank=1, call_index=5, attempts=2),),
    )
    faulty_history, faulty_group, faulty_model = train(
        FaultInjector(plan), args.epochs, args.steps
    )
    clean_history, _, clean_model = train(None, args.epochs, args.steps)

    print(faulty_history.render())
    print("\n--- resilience report (faulty run) ---")
    print(faulty_group.resilience_report())
    max_diff = float(np.abs(
        faulty_model.state_vector() - clean_model.state_vector()
    ).max())
    print(f"\nmax |faulty - clean| weight difference: {max_diff:g}")
    print("every fault recovered within the retry budget -> trajectories "
          + ("MATCH bit-exactly" if max_diff == 0.0 else "DIVERGED"))

    print("\n=== Part 2: iteration time under cluster faults ===")
    spec = get_model_spec("ResNet-50")
    fault_model = FaultModel(
        straggler_prob=0.05, straggler_sigma=3.0, drop_rate=0.01,
    )
    traces = compare_methods_under_faults(
        ("acpsgd", "ssgd"), spec, fault_model, iterations=40, seed=0,
    )
    print(f"ResNet-50, 32x10GbE, straggler_prob=0.05 sigma=3.0 "
          f"drop_rate=0.01 (40 iterations):")
    for trace in traces.values():
        print(trace.render())
    print("\nCompression shrinks drop exposure (fewer bytes to retransmit) "
          "but not straggler exposure (the slowest rank gates everyone).")


if __name__ == "__main__":
    main()
