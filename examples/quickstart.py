"""Quickstart: data-parallel training with ACP-SGD gradient compression.

Trains a small VGG-style convnet on a synthetic CIFAR-like dataset across
four simulated workers, comparing uncompressed S-SGD with ACP-SGD — same
initial weights, same data streams — and reports final accuracy and the
*measured* bytes each method put on the (simulated) wire.

Run:
    python examples/quickstart.py
"""

import numpy as np

from repro.comm import ProcessGroup
from repro.models import make_small_vgg
from repro.optim import SGD, WarmupMultiStepSchedule, make_aggregator
from repro.train import DataParallelTrainer, make_cifar_like
from repro.utils import format_bytes

WORLD_SIZE = 4
EPOCHS = 5
STEPS_PER_EPOCH = 12


def train(method: str, **aggregator_kwargs):
    """Train one method; returns (history, bytes on the wire)."""
    train_data, test_data = make_cifar_like(num_train=1600, num_test=400, seed=3)
    model = make_small_vgg(base_width=8, rng=np.random.default_rng(7))
    group = ProcessGroup(WORLD_SIZE)
    aggregator = make_aggregator(method, group, **aggregator_kwargs)
    optimizer = SGD(model, lr=0.08, momentum=0.9)
    schedule = WarmupMultiStepSchedule(
        optimizer, base_lr=0.08, total_epochs=EPOCHS, warmup_epochs=0.5,
        milestones=(EPOCHS * 0.6, EPOCHS * 0.85),
    )
    trainer = DataParallelTrainer(
        model, optimizer, aggregator, train_data, test_data,
        batch_size_per_worker=32, schedule=schedule, seed=11,
    )
    history = trainer.run(EPOCHS, STEPS_PER_EPOCH, method_label=method)
    return history, group.total_bytes()


def main() -> None:
    print(f"Training on {WORLD_SIZE} simulated workers, "
          f"{EPOCHS} epochs x {STEPS_PER_EPOCH} steps\n")
    results = {}
    for method, kwargs in (("ssgd", {}), ("acpsgd", {"rank": 4})):
        history, traffic = train(method, **kwargs)
        results[method] = (history, traffic)
        print(f"{method:8s} final accuracy {history.final_accuracy:.1%}  "
              f"wire traffic {format_bytes(traffic)}")
    ssgd_traffic = results["ssgd"][1]
    acp_traffic = results["acpsgd"][1]
    print(f"\nACP-SGD used {ssgd_traffic / acp_traffic:.1f}x less communication "
          f"for {results['acpsgd'][0].final_accuracy:.1%} vs "
          f"{results['ssgd'][0].final_accuracy:.1%} accuracy.")


if __name__ == "__main__":
    main()
