"""Compare every gradient compression method on one training task.

The §III characterization, miniaturized: S-SGD, Sign-SGD (majority vote),
Top-k, Random-k, QSGD, Power-SGD, and ACP-SGD all train the same model on
the same data. For each method we report final accuracy, measured per-step
communication volume (through the real in-process collectives), and the
collective primitive it used — reproducing the paper's Table II story that
all-gather methods pay per-worker-linear traffic while all-reduce methods
don't.

Run:
    python examples/compare_compression_methods.py
"""

import numpy as np

from repro.comm import ProcessGroup
from repro.models import make_small_vgg
from repro.optim import SGD, make_aggregator
from repro.train import DataParallelTrainer, make_cifar_like
from repro.utils import format_bytes, render_table

WORLD_SIZE = 4
METHODS = (
    ("ssgd", {}),
    ("signsgd", {}),
    ("topk", {"ratio": 0.01}),
    ("randomk", {"ratio": 0.01}),
    ("qsgd", {}),
    ("powersgd", {"rank": 4}),
    ("acpsgd", {"rank": 4}),
)


def run_method(method: str, kwargs: dict):
    train_data, test_data = make_cifar_like(num_train=1200, num_test=300, seed=5)
    model = make_small_vgg(base_width=8, rng=np.random.default_rng(9))
    group = ProcessGroup(WORLD_SIZE)
    aggregator = make_aggregator(method, group, **kwargs)
    optimizer = SGD(model, lr=0.08, momentum=0.9)
    trainer = DataParallelTrainer(
        model, optimizer, aggregator, train_data, test_data,
        batch_size_per_worker=32, seed=17,
    )
    steps = 50
    for _ in range(steps):
        trainer.train_step()
    accuracy = trainer.evaluate()
    per_step = group.total_bytes() / steps
    collectives = sorted({s.algorithm for s in group.history})
    return accuracy, per_step, collectives


def main() -> None:
    rows = []
    for method, kwargs in METHODS:
        accuracy, per_step, collectives = run_method(method, kwargs)
        rows.append([
            method, f"{accuracy:.1%}", format_bytes(per_step),
            ", ".join(collectives),
        ])
        print(f"finished {method}")
    print()
    print(render_table(
        ["method", "accuracy", "bytes/step (all ranks)", "collectives used"],
        rows,
    ))
    print(
        "\nNote how Sign-SGD/Top-k/QSGD ride all_gather (per-worker-linear"
        "\ntraffic, Table II) while Random-k's shared coordinates and the"
        "\nlow-rank methods' dense factors stay on ring all-reduce."
    )


if __name__ == "__main__":
    main()
