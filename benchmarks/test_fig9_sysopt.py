"""Bench F9 — Fig. 9: Naive / +WFBP / +WFBP+TF for each method."""

from benchmarks.conftest import run_once
from repro.experiments import run_fig9
from repro.experiments import fig9


def test_fig9(benchmark):
    rows = run_once(benchmark, run_fig9)
    print("\n=== Fig. 9: benefits of system optimizations ===")
    print(fig9.render(rows))
    acp_best = max(
        r.full_speedup_over_naive for r in rows if r.method == "acpsgd"
    )
    assert acp_best > 1.5  # paper: up to 2.14x
