"""Bench T1 — Table I: model statistics and compression ratios."""

from benchmarks.conftest import run_once
from repro.experiments import run_table1
from repro.experiments import table1


def test_table1(benchmark):
    rows = run_once(benchmark, run_table1)
    print("\n=== Table I: model statistics and compression ratios ===")
    print(table1.render(rows))
    assert len(rows) == 4
