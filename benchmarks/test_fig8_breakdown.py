"""Bench F8 — Fig. 8: breakdowns of the four evaluation methods."""

from benchmarks.conftest import run_once
from repro.experiments import run_fig8
from repro.experiments import fig8


def test_fig8(benchmark):
    rows = run_once(benchmark, run_fig8)
    print("\n=== Fig. 8: time breakdowns (ResNet-50, BERT-Base) ===")
    print(fig8.render(rows))
    assert len(rows) == 8
