"""Bench F11 — Fig. 11: batch-size (ResNet-152) and rank (BERT-Large) sweeps."""

from benchmarks.conftest import run_once
from repro.experiments import run_fig11a, run_fig11b
from repro.experiments import fig11


def test_fig11a_batch_size(benchmark):
    rows = run_once(benchmark, run_fig11a)
    print("\n=== Fig. 11(a): batch-size effect on ResNet-152 ===")
    print(fig11.render_a(rows))
    assert all(r.speedup("ssgd") > 1.0 for r in rows)


def test_fig11b_rank(benchmark):
    rows = run_once(benchmark, run_fig11b)
    print("\n=== Fig. 11(b): rank effect on BERT-Large ===")
    print(fig11.render_b(rows))
    assert rows[-1].acp_speedup > rows[0].acp_speedup
