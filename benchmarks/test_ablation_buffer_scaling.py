"""Ablation — ACP-SGD's compressed-buffer scaling (§IV-B design choice).

Compares ACP-SGD with the paper's scaled buffer (25MB x compression rate)
against applying the raw 25MB buffer to the compressed tensors directly.
The raw buffer swallows all factors into one bucket (no WFBP overlap);
the scaled buffer keeps the bucket *count* of the uncompressed case.
"""

from benchmarks.conftest import run_once
from repro.experiments.common import paper_rank
from repro.models import get_model_spec
from repro.sim.strategies import SystemConfig, simulate_iteration
from repro.utils import render_table


def _sweep():
    rows = []
    for model_name in ("ResNet-152", "BERT-Large"):
        spec = get_model_spec(model_name)
        rank = paper_rank(model_name)
        scaled = simulate_iteration(
            "acpsgd", spec,
            system=SystemConfig(scale_compressed_buffer=True), rank=rank,
        ).milliseconds[0]
        raw = simulate_iteration(
            "acpsgd", spec,
            system=SystemConfig(scale_compressed_buffer=False), rank=rank,
        ).milliseconds[0]
        rows.append((model_name, rank, scaled, raw))
    return rows


def test_buffer_scaling_ablation(benchmark):
    rows = run_once(benchmark, _sweep)
    print("\n=== Ablation: compressed-buffer scaling for ACP-SGD ===")
    print(render_table(
        ["Model", "rank", "scaled buffer (paper)", "raw 25MB buffer", "benefit"],
        [
            [name, str(rank), f"{scaled:.0f}ms", f"{raw:.0f}ms",
             f"{raw / scaled:.2f}x"]
            for name, rank, scaled, raw in rows
        ],
    ))
    # Scaling never loses and wins where compression is aggressive.
    for _, _, scaled, raw in rows:
        assert scaled <= raw * 1.02
