"""Ablation — all-reduce algorithm selection by message size.

Ring vs binomial tree vs Rabenseifner on the 32-rank 10GbE testbed: the
latency/bandwidth trade Thakur et al. (the paper's ref [10]) formalize.
ACP-SGD's fused compressed buckets (~0.2-1MB) sit exactly in the regime
where log-step algorithms beat the ring — one more reason its start-up
costs stay low.
"""

from benchmarks.conftest import run_once
from repro.comm.algorithms import (
    best_allreduce_algorithm,
    rabenseifner_allreduce_time,
    tree_allreduce_time,
)
from repro.comm.cost_model import allreduce_time
from repro.sim.calibration import LINK_10GBE
from repro.utils import format_bytes, render_table

SIZES = (4 * 1024, 64 * 1024, 1024**2, 16 * 1024**2, 256 * 1024**2)


def _sweep():
    rows = []
    for size in SIZES:
        ring = allreduce_time(size, 32, LINK_10GBE)
        tree = tree_allreduce_time(size, 32, LINK_10GBE)
        rab = rabenseifner_allreduce_time(size, 32, LINK_10GBE)
        best, _ = best_allreduce_algorithm(size, 32, LINK_10GBE)
        rows.append((size, ring, tree, rab, best))
    return rows


def test_allreduce_algorithm_selection(benchmark):
    rows = run_once(benchmark, _sweep)
    print("\n=== Ablation: all-reduce algorithm selection (32 x 10GbE) ===")
    print(render_table(
        ["message", "ring", "tree", "rabenseifner", "best"],
        [
            [format_bytes(size), f"{ring * 1e3:.2f}ms", f"{tree * 1e3:.2f}ms",
             f"{rab * 1e3:.2f}ms", best]
            for size, ring, tree, rab, best in rows
        ],
    ))
    # Small messages: log-step algorithms win; huge: ring is competitive
    # (ties Rabenseifner's bandwidth term).
    assert rows[0][4] in ("tree", "rabenseifner")
    small_size, small_ring, small_tree, small_rab, _ = rows[0]
    assert min(small_tree, small_rab) < 0.5 * small_ring
