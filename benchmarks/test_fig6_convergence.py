"""Bench F6 — Fig. 6: convergence of S-SGD / Power-SGD / ACP-SGD.

Scaled-down substitute for the paper's CIFAR-10 study (see DESIGN.md §1):
identical data streams and initial weights per method, so the curves
isolate the aggregation algorithm.
"""

from benchmarks.conftest import run_once
from repro.experiments import run_fig6
from repro.experiments import fig6
from repro.experiments.fig6 import ConvergenceSetup

BENCH_SETUP = ConvergenceSetup(
    model_family="vgg",
    world_size=4,
    epochs=6,
    steps_per_epoch=12,
    batch_size=24,
    base_lr=0.08,
    rank=4,
    num_train=1200,
    num_test=320,
    seed=13,
)


def test_fig6_vgg(benchmark):
    """Fig. 6 left panel: the VGG-family model."""
    histories = run_once(benchmark, run_fig6, BENCH_SETUP)
    print("\n=== Fig. 6 (VGG family): convergence comparison ===")
    print(fig6.render(histories))
    for method, hist in histories.items():
        print(f"\n{hist.render()}")
    ssgd = histories["ssgd"].final_accuracy
    assert histories["acpsgd"].final_accuracy > ssgd - 0.15


def test_fig6_resnet(benchmark):
    """Fig. 6 right panel: the ResNet-family model (residual blocks)."""
    from dataclasses import replace

    setup = replace(BENCH_SETUP, model_family="resnet", epochs=7,
                    base_lr=0.1, steps_per_epoch=14)
    histories = run_once(benchmark, run_fig6, setup)
    print("\n=== Fig. 6 (ResNet family): convergence comparison ===")
    print(fig6.render(histories))
    ssgd = histories["ssgd"].final_accuracy
    assert histories["acpsgd"].final_accuracy > ssgd - 0.2
    for hist in histories.values():
        assert hist.final_accuracy > 0.3
