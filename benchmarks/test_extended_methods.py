"""Ablation — the extension methods join the Fig. 2 comparison.

Simulated iteration time of all ten methods (the paper's six plus
TernGrad, QSGD, Random-k and DGC) on BERT-Base, 32 x 10GbE. Two lessons:

- all-gather quantizers (Sign/TernGrad/QSGD) pay per-worker-linear traffic
  and lose badly at 32 workers regardless of their compression ratio —
  Table II's complexity column, rendered in milliseconds;
- shared-seed Random-k is *additive* and non-blocking (ACP-SGD's two
  §III-C properties), so it inherits ring all-reduce + WFBP + TF and posts
  excellent wall-clock time — its weakness is convergence quality (it
  selects coordinates blindly; the paper's §II-B notes Top-k converges
  better), not systems behaviour.
"""

from benchmarks.conftest import run_once
from repro.experiments.common import METHOD_LABELS
from repro.models import get_model_spec
from repro.sim.strategies import ALL_METHODS, simulate_iteration
from repro.utils import render_table

RATIOS = {"topk": 0.001, "dgc": 0.001, "randomk": 0.01}


def _sweep():
    spec = get_model_spec("BERT-Base")
    rows = []
    for method in ALL_METHODS:
        bd = simulate_iteration(
            method, spec, rank=32, topk_ratio=RATIOS.get(method, 0.001)
        )
        rows.append((method, bd))
    return rows


def test_extended_method_comparison(benchmark):
    rows = run_once(benchmark, _sweep)
    print("\n=== Extended method comparison (BERT-Base, 32 x 10GbE) ===")
    print(render_table(
        ["Method", "total", "ff&bp", "compress", "comm (non-ovl)"],
        [
            [METHOD_LABELS.get(m, m), f"{bd.milliseconds[0]:.0f}ms",
             f"{bd.milliseconds[1]:.0f}ms", f"{bd.milliseconds[2]:.0f}ms",
             f"{bd.milliseconds[3]:.0f}ms"]
            for m, bd in rows
        ],
    ))
    by_method = {m: bd.total for m, bd in rows}
    # All-gather quantizers lose to S-SGD at this scale.
    for quantizer in ("signsgd", "terngrad", "qsgd"):
        assert by_method[quantizer] > by_method["ssgd"]
    # Additive methods (all-reduce + WFBP + TF) are the fast tier.
    for additive in ("acpsgd", "randomk"):
        assert by_method[additive] < 0.35 * by_method["ssgd"]
