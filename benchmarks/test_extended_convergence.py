"""Ablation — convergence quality vs traffic for every aggregator.

GRACE-style comparison (paper ref [29]): same model, same data streams,
measured wire bytes. The systems story (Table II / Fig. 2) says who is
*fast*; this table says who still *learns* — and shows ACP-SGD landing on
the paper's sweet spot: near-S-SGD accuracy at ~100x less traffic.
"""

from benchmarks.conftest import run_once
from repro.experiments.extended_convergence import (
    render,
    run_extended_convergence,
)


def test_extended_convergence(benchmark):
    rows = run_once(benchmark, run_extended_convergence)
    print("\n=== Convergence vs traffic, all aggregators (80 steps) ===")
    print(render(rows))
    by_method = {r.method: r for r in rows}
    ssgd = by_method["ssgd"]
    # Every method learns beyond chance (10%); Sign-SGD's majority vote is
    # known to struggle on BatchNorm convnets at tiny budgets — assert it
    # is above chance but exempt it from the stronger bound.
    for row in rows:
        floor = 0.12 if row.method == "signsgd" else 0.3
        assert row.final_accuracy > floor, row.method
    # The low-rank methods approach S-SGD's accuracy with far less traffic.
    # (On this miniature convnet the matrices are small, so rank 4 only
    # buys ~4-7x; on the paper's models it buys 33-117x — see Table I.)
    for lowrank in ("powersgd", "acpsgd"):
        row = by_method[lowrank]
        assert row.final_accuracy > ssgd.final_accuracy - 0.3
        assert row.bytes_per_step < 0.3 * ssgd.bytes_per_step
