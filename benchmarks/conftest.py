"""Benchmark-suite helpers.

Every benchmark prints the reproduced table/figure (paper-style rendering)
so a ``pytest benchmarks/ --benchmark-only -s`` run regenerates the paper's
evaluation section end to end. Heavy drivers use ``benchmark.pedantic`` with
one round — we are timing simulations of a cluster, not micro-optimizing
them.
"""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with a single round and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
