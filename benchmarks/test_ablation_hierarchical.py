"""Ablation — flat vs hierarchical ring all-reduce on the paper's testbed.

8 nodes x 4 GPUs (PCIe intra, 10GbE inter). The two-level all-reduce pays
2(nodes-1) slow-link start-ups instead of 2(p-1) — exactly the property
that matters for ACP-SGD's small compressed buckets.
"""

from benchmarks.conftest import run_once
from repro.comm.topology import (
    ClusterTopology,
    crossover_bytes,
    flat_allreduce_time,
    hierarchical_allreduce_time,
)
from repro.utils import format_bytes, render_table

TESTBED = ClusterTopology(num_nodes=8, gpus_per_node=4)
SIZES = (8 * 1024, 64 * 1024, 1024 * 1024, 16 * 1024 * 1024, 256 * 1024 * 1024)


def _sweep():
    return [
        (size,
         flat_allreduce_time(size, TESTBED),
         hierarchical_allreduce_time(size, TESTBED))
        for size in SIZES
    ]


def test_flat_vs_hierarchical(benchmark):
    rows = run_once(benchmark, _sweep)
    print("\n=== Ablation: flat vs hierarchical all-reduce (8 nodes x 4 GPUs) ===")
    print(render_table(
        ["message", "flat ring", "hierarchical", "speedup"],
        [
            [format_bytes(size), f"{flat * 1e3:.2f}ms", f"{hier * 1e3:.2f}ms",
             f"{flat / hier:.2f}x"]
            for size, flat, hier in rows
        ],
    ))
    print(f"crossover (slow-intra variant exists; fast PCIe: hierarchical "
          f"dominates up to {format_bytes(crossover_bytes(TESTBED))})")
    # Startup-bound regime: hierarchy wins big on small messages.
    small = rows[0]
    assert small[1] / small[2] > 2.0
