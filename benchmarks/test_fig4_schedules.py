"""Bench F4 — Fig. 4: the WFBP schedules, regenerated as ASCII Gantt charts."""

from benchmarks.conftest import run_once
from repro.experiments import run_fig4
from repro.experiments import fig4


def test_fig4(benchmark):
    charts = run_once(benchmark, run_fig4)
    print("\n=== Fig. 4: simulated schedules (BERT-Base) ===")
    print(fig4.render(charts))
    assert len(charts) == 3
    # Power-SGD* must show side-stream compression; ACP-SGD must not.
    by_method = dict(charts)
    assert "side" in by_method["powersgd_star"]
    assert "side" not in by_method["acpsgd"]
