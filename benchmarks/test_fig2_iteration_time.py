"""Bench F2 — Fig. 2: iteration time of the four characterization methods."""

from benchmarks.conftest import run_once
from repro.experiments import run_fig2
from repro.experiments import fig2


def test_fig2(benchmark):
    rows = run_once(benchmark, run_fig2)
    print("\n=== Fig. 2: iteration time, 32 GPUs / 10GbE ===")
    print(fig2.render(rows))
    rn50 = next(r for r in rows if r.model == "ResNet-50")
    assert rn50.ratio_to_ssgd("signsgd") > 1.2  # paper: 1.70x
