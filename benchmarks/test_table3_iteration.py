"""Bench T3 — Table III: iteration time of S-SGD / Power-SGD / Power-SGD* /
ACP-SGD, with the paper's headline speedups."""

from benchmarks.conftest import run_once
from repro.experiments import run_table3
from repro.experiments import table3
from repro.experiments.table3 import (
    average_speedups,
    render_with_std,
    run_table3_with_std,
)


def test_table3(benchmark):
    rows = run_once(benchmark, run_table3)
    print("\n=== Table III: average iteration time (ms) ===")
    print(table3.render(rows))
    speedups = average_speedups(rows)
    assert 3.0 < speedups["ssgd"] < 5.0  # paper: 4.06x


def test_table3_with_std(benchmark):
    """The paper's own mean +/- std presentation (jittered replays)."""
    rows = run_once(benchmark, run_table3_with_std)
    print("\n=== Table III (mean +/- std over jittered iterations) ===")
    print(render_with_std(rows))
    assert len(rows) == 4
