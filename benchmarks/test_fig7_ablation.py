"""Bench F7 — Fig. 7: ACP-SGD ablation (no error feedback / no reuse)."""

from benchmarks.conftest import run_once
from repro.experiments import run_fig7
from repro.experiments import fig7
from repro.experiments.fig6 import ConvergenceSetup

BENCH_SETUP = ConvergenceSetup(
    model_family="vgg",
    world_size=4,
    epochs=6,
    steps_per_epoch=12,
    batch_size=24,
    base_lr=0.08,
    rank=4,
    num_train=1200,
    num_test=320,
    seed=13,
)


def test_fig7(benchmark):
    histories = run_once(benchmark, run_fig7, BENCH_SETUP)
    print("\n=== Fig. 7: ACP-SGD ablation ===")
    print(fig7.render(histories))
    full = histories["acpsgd"].final_accuracy
    assert full >= histories["acpsgd_no_ef"].final_accuracy - 0.02
