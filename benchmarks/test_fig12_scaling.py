"""Bench F12 — Fig. 12: scaling from 8 to 64 GPUs."""

from benchmarks.conftest import run_once
from repro.experiments import run_fig12
from repro.experiments import fig12
from repro.experiments.fig12 import scaling_increase


def test_fig12(benchmark):
    rows = run_once(benchmark, run_fig12)
    print("\n=== Fig. 12: effect of the number of GPUs (BERT-Base) ===")
    print(fig12.render(rows))
    increases = scaling_increase(rows)
    assert all(v < 0.30 for v in increases.values())
