"""Ablation — cross-iteration pipelining and priority comm scheduling.

Extends the paper's single-iteration metric: DDP's next forward pass can
only consume a layer's update after that layer's bucket arrives, and the
*shallowest* layers' bucket — needed first — is communicated last. A
priority scheduler (the paper's reference [3], SOSP'19) reorders the NIC
queue by next-iteration need. The measurement shows the scheduler buys
little here compared to compression: ACP-SGD's communication is already so
small that there is nothing left to schedule — the paper's central thesis
from a different angle.
"""

from benchmarks.conftest import run_once
from repro.experiments.common import METHOD_LABELS, paper_rank
from repro.models import get_model_spec
from repro.sim.pipeline import simulate_steady_state
from repro.utils import render_table


def _sweep():
    rows = []
    for model_name in ("BERT-Base", "BERT-Large"):
        spec = get_model_spec(model_name)
        rank = paper_rank(model_name)
        for method in ("ssgd", "acpsgd"):
            fifo = simulate_steady_state(method, spec, rank=rank, iterations=4)
            prio = simulate_steady_state(method, spec, rank=rank,
                                         iterations=4, priority_comm=True)
            rows.append((
                model_name, method,
                fifo.single_iteration * 1e3,
                fifo.steady_iteration * 1e3,
                prio.steady_iteration * 1e3,
            ))
    return rows


def test_pipeline_and_priority_scheduling(benchmark):
    rows = run_once(benchmark, _sweep)
    print("\n=== Ablation: steady-state pipelining + priority scheduling ===")
    print(render_table(
        ["Model", "Method", "single iter", "steady (FIFO)", "steady (priority)"],
        [
            [model, METHOD_LABELS[method], f"{single:.0f}ms",
             f"{fifo:.0f}ms", f"{prio:.0f}ms"]
            for model, method, single, fifo, prio in rows
        ],
    ))
    for model, method, single, fifo, prio in rows:
        assert prio <= fifo * 1.005  # scheduling never hurts
        assert fifo <= single * 1.01  # pipelining never hurts
    # The headline: compression dwarfs scheduling. ACP-SGD with plain FIFO
    # beats S-SGD with a priority scheduler by a wide margin.
    by_key = {(m, meth): prio for m, meth, _, _, prio in rows}
    assert by_key[("BERT-Large", "acpsgd")] < 0.2 * by_key[("BERT-Large", "ssgd")]
