"""Bench — calibration sensitivity of the Table III conclusions.

Asserts the reproduction's scientific robustness: the paper's ordering
claims must hold at every +/-25% perturbation of the calibration constants
(network alpha/beta, GPU efficiency, contention rate, QR launch cost).
Larger perturbations (2x) may legitimately flip the near-tie cells on
ResNet-50 — the table shows where.
"""

from benchmarks.conftest import run_once
from repro.experiments.sensitivity import render, run_sensitivity


def test_sensitivity(benchmark):
    points = run_once(benchmark, run_sensitivity)
    print("\n=== Calibration sensitivity of the Table III claims ===")
    print(render(points))
    # Within +/-25% of calibration every claim holds.
    for point in points:
        if 0.75 <= point.factor <= 1.25:
            assert point.all_held, (point.parameter, point.factor)
    # "S-SGD slowest on the BERTs" is robust across the whole sweep.
    assert all(p.claims_held["ssgd_slowest_on_berts"] for p in points)
    # The majority of the sweep keeps all claims.
    held = sum(1 for p in points if p.all_held)
    assert held >= len(points) * 0.6
