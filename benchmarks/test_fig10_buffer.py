"""Bench F10 — Fig. 10: buffer-size sweep on BERT-Large (ranks 32 / 256)."""

from benchmarks.conftest import run_once
from repro.experiments import run_fig10
from repro.experiments import fig10


def test_fig10(benchmark):
    rows = run_once(benchmark, run_fig10)
    print("\n=== Fig. 10: effect of buffer size (BERT-Large) ===")
    print(fig10.render(rows))
    acp = [r for r in rows if r.method == "acpsgd"]
    power = [r for r in rows if r.method == "powersgd_star"]
    # ACP-SGD's sweep is flatter (more robust) than Power-SGD*'s at rank 256.
    acp256 = next(r for r in acp if r.rank == 256)
    assert acp256.times_ms[25] <= min(acp256.times_ms.values()) * 1.1
