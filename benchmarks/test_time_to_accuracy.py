"""Ablation — estimated time-to-accuracy (convergence x wall-clock).

The end-user synthesis of the paper's two claims: equal iterations to
target accuracy (Fig. 6) x faster iterations (Table III) => wall-clock
speedup to the same model quality.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig6 import ConvergenceSetup
from repro.experiments.time_to_accuracy import render, run_time_to_accuracy

SETUP = ConvergenceSetup(
    model_family="vgg", world_size=4, epochs=6, steps_per_epoch=12,
    batch_size=24, base_lr=0.08, rank=4, num_train=1200, num_test=320,
    seed=13,
)


def test_time_to_accuracy(benchmark):
    rows = run_once(benchmark, run_time_to_accuracy, SETUP, threshold=0.55)
    print("\n=== Time-to-accuracy estimate (BERT-Large timing) ===")
    print(render(rows))
    by_method = {r.method: r for r in rows}
    ssgd = by_method["ssgd"].estimated_time_s()
    acp = by_method["acpsgd"].estimated_time_s()
    assert ssgd is not None and acp is not None
    # ACP-SGD reaches the target in comparable iterations at ~10x faster
    # iterations -> large wall-clock speedup to accuracy.
    assert ssgd / acp > 3.0
