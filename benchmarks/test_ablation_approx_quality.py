"""Ablation — approximation quality: SVD vs Power-SGD vs ACP-SGD.

Per-step relative reconstruction error on a drifting gradient stream, all
at the same rank: the exact SVD (ATOMO-style) is the Eckart-Young floor;
Power-SGD's full power iteration tracks it closely; ACP-SGD's *half*
iteration per step stays close despite halving compute and communication —
the paper's §IV-A quality argument quantified.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.compression.acpsgd import ACPSGDState
from repro.compression.atomo import SVDLowRankState
from repro.compression.powersgd import PowerSGDState
from repro.utils import render_table

RANK = 4
STEPS = 30


def _drifting_gradients(steps, shape=(32, 48), seed=0):
    rng = np.random.default_rng(seed)
    base = rng.normal(size=shape)
    drift = rng.normal(size=shape) * 0.05
    return [base + t * drift + 0.05 * rng.normal(size=shape)
            for t in range(steps)]


def _sweep():
    grads = _drifting_gradients(STEPS)
    svd = SVDLowRankState(RANK, use_error_feedback=False)
    power = PowerSGDState(RANK, seed=1, use_error_feedback=False)
    acp = ACPSGDState(RANK, seed=1, use_error_feedback=False)
    rows = []
    for t, grad in enumerate(grads, start=1):
        norm = np.linalg.norm(grad)
        p, q = svd.compress("w", grad)
        svd_err = np.linalg.norm(grad - p @ q.T) / norm
        pp = power.compute_p("w", grad)
        qq = power.compute_q("w", pp)
        power_err = np.linalg.norm(grad - power.reconstruct("w", qq)) / norm
        factor = acp.compress("w", grad, t)
        acp_err = np.linalg.norm(grad - acp.finalize("w", factor, t)) / norm
        rows.append((t, svd_err, power_err, acp_err))
    return rows


def test_approximation_quality(benchmark):
    rows = run_once(benchmark, _sweep)
    sampled = [r for r in rows if r[0] in (1, 2, 5, 10, 20, 30)]
    print("\n=== Ablation: per-step approximation error at rank 4 ===")
    print(render_table(
        ["step", "SVD (optimal)", "Power-SGD", "ACP-SGD"],
        [[str(t), f"{s:.4f}", f"{p:.4f}", f"{a:.4f}"]
         for t, s, p, a in sampled],
    ))
    # After warm-up, both iterative methods sit near the SVD floor.
    late = rows[-5:]
    for _, svd_err, power_err, acp_err in late:
        assert power_err < svd_err * 1.05
        assert acp_err < svd_err * 1.10  # half-iteration tracks slightly looser
    # And at step 1 the random-query iterates are far from optimal.
    assert rows[0][2] > rows[0][1] * 1.05
