"""Ablation — auto-tuned fusion buffer vs the 25MB default.

Implements the paper's §IV-B future-work suggestion (automatic buffer
tuning) and quantifies how much it buys over the default the paper uses.
The paper's observation — the default is already near-optimal for ACP-SGD
thanks to compressed-buffer scaling — should show up as small gains for
ACP-SGD and larger ones for Power-SGD*.
"""

from benchmarks.conftest import run_once
from repro.experiments.common import METHOD_LABELS, paper_rank
from repro.models import get_model_spec
from repro.sim.autotune import autotune_buffer_size
from repro.sim.strategies import simulate_iteration
from repro.utils import render_table


def _sweep():
    rows = []
    for model_name in ("ResNet-152", "BERT-Large"):
        spec = get_model_spec(model_name)
        rank = paper_rank(model_name)
        for method in ("powersgd_star", "acpsgd"):
            default_time = simulate_iteration(method, spec, rank=rank).total
            tuned = autotune_buffer_size(method, spec, rank=rank,
                                         refine_rounds=2)
            rows.append((
                model_name, method, default_time * 1e3,
                tuned.best_buffer_mb, tuned.best_time * 1e3,
            ))
    return rows


def test_autotune_vs_default(benchmark):
    rows = run_once(benchmark, _sweep)
    print("\n=== Ablation: auto-tuned buffer vs 25MB default ===")
    print(render_table(
        ["Model", "Method", "default (25MB)", "tuned buffer", "tuned time", "gain"],
        [
            [model, METHOD_LABELS[method], f"{default:.0f}ms",
             f"{buffer:.1f}MB", f"{tuned:.0f}ms", f"{default / tuned:.2f}x"]
            for model, method, default, buffer, tuned in rows
        ],
    ))
    acp_gains = [default / tuned for model, method, default, _, tuned in rows
                 if method == "acpsgd"]
    # The paper's point: the default is already near-optimal for ACP-SGD.
    assert all(gain < 1.15 for gain in acp_gains)
