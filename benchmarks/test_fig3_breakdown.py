"""Bench F3 — Fig. 3: time breakdowns of the characterization methods."""

from benchmarks.conftest import run_once
from repro.experiments import run_fig3
from repro.experiments import fig3


def test_fig3(benchmark):
    rows = run_once(benchmark, run_fig3)
    print("\n=== Fig. 3: time breakdowns (ResNet-50, BERT-Base) ===")
    print(fig3.render(rows))
    assert len(rows) == 8
