"""Bench T2 — Table II: compress/communicate complexity (analytic vs measured)."""

from benchmarks.conftest import run_once
from repro.experiments import run_table2
from repro.experiments import table2


def test_table2(benchmark):
    rows = run_once(benchmark, run_table2)
    print("\n=== Table II: per-worker communication, analytic vs measured ===")
    print(table2.render(rows))
    assert all(row.relative_error < 0.05 for row in rows)
