"""Bench F5 — Fig. 5: CDF of uncompressed vs compressed tensor sizes."""

from benchmarks.conftest import run_once
from repro.experiments import run_fig5
from repro.experiments import fig5


def test_fig5(benchmark):
    data = run_once(benchmark, run_fig5)
    print("\n=== Fig. 5: CDF of tensor sizes (M vs P,Q) ===")
    print(fig5.render(data))
    # Print a coarse CDF curve for each model, paper-style.
    import numpy as np

    for item in data:
        print(f"\n{item.model} (rank {item.rank}):")
        for exponent in range(1, 9):
            threshold = 10.0**exponent
            print(
                f"  <=1e{exponent}: M {item.cdf_at(threshold, False):5.0%}"
                f"   P,Q {item.cdf_at(threshold, True):5.0%}"
            )
    assert len(data) == 2
