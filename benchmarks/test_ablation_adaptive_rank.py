"""Ablation — adaptive rank selection (extension of the paper's §V-E).

For each model, the smallest uniform rank meeting target compression
budgets, and the iteration time it buys — automating the paper's manual
"r=4 for ResNets, r=32 for BERTs" choice.
"""

from benchmarks.conftest import run_once
from repro.compression.adaptive import rank_for_target_ratio
from repro.compression.ratios import compression_ratio
from repro.models import get_model_spec
from repro.sim.strategies import simulate_iteration
from repro.utils import render_table

TARGETS = (16.0, 32.0, 64.0)


def _sweep():
    rows = []
    for model_name in ("ResNet-50", "BERT-Base"):
        spec = get_model_spec(model_name)
        shapes = spec.parameter_shapes()
        for target in TARGETS:
            rank = rank_for_target_ratio(shapes, target)
            achieved = compression_ratio(shapes, "acpsgd", rank=rank)
            time_ms = simulate_iteration("acpsgd", spec, rank=rank).milliseconds[0]
            rows.append((model_name, target, rank, achieved, time_ms))
    return rows


def test_adaptive_rank(benchmark):
    rows = run_once(benchmark, _sweep)
    print("\n=== Ablation: adaptive rank for target compression budgets ===")
    print(render_table(
        ["Model", "target", "chosen rank", "achieved", "ACP-SGD iter"],
        [
            [model, f"{target:.0f}x", str(rank), f"{achieved:.1f}x",
             f"{time_ms:.0f}ms"]
            for model, target, rank, achieved, time_ms in rows
        ],
    ))
    for model, target, rank, achieved, _ in rows:
        assert achieved >= target
    # Tighter budgets force smaller ranks.
    bert = [(t, r) for m, t, r, _, _ in rows if m == "BERT-Base"]
    ranks = [r for _, r in sorted(bert)]
    assert ranks == sorted(ranks, reverse=True)
