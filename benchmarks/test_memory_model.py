"""Bench — per-GPU memory estimates (the §III-B Sign-SGD OOM).

Not a paper table, but the quantitative backing for Fig. 2's "Sign-SGD
runs out of memory" annotation on BERT-Large.
"""

from benchmarks.conftest import run_once
from repro.experiments.common import METHOD_LABELS, TIMING_MODELS, paper_rank
from repro.models import get_model_spec
from repro.sim.memory import GiB, memory_report
from repro.utils import render_table


def _sweep():
    out = []
    for model_name in TIMING_MODELS:
        spec = get_model_spec(model_name)
        report = memory_report(
            spec, spec.default_batch_size, 32, rank=paper_rank(model_name)
        )
        out.append((model_name, report))
    return out


def test_memory_estimates(benchmark):
    results = run_once(benchmark, _sweep)
    print("\n=== Per-GPU memory estimates (32 workers, 11GB cards) ===")
    rows = []
    for model_name, report in results:
        for method, est in report.items():
            rows.append([
                model_name, METHOD_LABELS[method],
                f"{est.total / GiB:.2f}GiB",
                f"{est.activations / GiB:.2f}GiB",
                f"{est.communication_buffers / GiB:.2f}GiB",
                "OOM" if not est.fits() else "ok",
            ])
    print(render_table(
        ["Model", "Method", "total", "activations", "comm buffers", "11GB"],
        rows,
    ))
    by_key = {(m, meth): est for m, rep in results for meth, est in rep.items()}
    assert not by_key[("BERT-Large", "signsgd")].fits()
    assert by_key[("BERT-Large", "acpsgd")].fits()
