"""Bench F13 — Fig. 13: 1GbE / 10GbE / 100Gb IB on 32 GPUs."""

from benchmarks.conftest import run_once
from repro.experiments import run_fig13
from repro.experiments import fig13


def test_fig13(benchmark):
    rows = run_once(benchmark, run_fig13)
    print("\n=== Fig. 13: effect of network bandwidth (32 GPUs) ===")
    print(fig13.render(rows))
    bert_1g = next(
        r for r in rows if r.link == "1GbE" and r.model == "BERT-Base"
    )
    assert bert_1g.speedup("acpsgd") > 15  # paper: 23.9x
