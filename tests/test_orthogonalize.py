"""Orthogonalization: orthonormality, span preservation, degenerate inputs."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compression.orthogonalize import orthogonalize


class TestOrthogonalize:
    def test_columns_orthonormal(self, rng):
        q = orthogonalize(rng.normal(size=(20, 4)))
        np.testing.assert_allclose(q.T @ q, np.eye(4), atol=1e-10)

    def test_preserves_column_span(self, rng):
        m = rng.normal(size=(10, 3))
        q = orthogonalize(m)
        # Projection of M onto span(Q) recovers M.
        projected = q @ (q.T @ m)
        np.testing.assert_allclose(projected, m, atol=1e-8)

    def test_rank_deficient_input(self, rng):
        col = rng.normal(size=(10, 1))
        m = np.hstack([col, col, col])  # rank 1, 3 columns
        q = orthogonalize(m)
        # First column spans the input; remaining are unit and orthogonal.
        gram = q.T @ q
        np.testing.assert_allclose(np.diag(gram), 1.0, atol=1e-8)
        np.testing.assert_allclose(gram, np.eye(3), atol=1e-8)

    def test_zero_matrix(self):
        q = orthogonalize(np.zeros((8, 2)))
        # Degenerate columns are re-randomized to unit vectors.
        np.testing.assert_allclose(q.T @ q, np.eye(2), atol=1e-8)

    def test_wide_matrix_rows_less_than_cols(self, rng):
        q = orthogonalize(rng.normal(size=(2, 5)))
        assert q.shape == (2, 5)
        # Only 2 directions exist; first two columns orthonormal.
        np.testing.assert_allclose(q[:, :2].T @ q[:, :2], np.eye(2), atol=1e-8)

    def test_rejects_non_matrix(self, rng):
        with pytest.raises(ValueError, match="2-D"):
            orthogonalize(rng.normal(size=5))

    def test_rejects_nan(self):
        m = np.ones((4, 2))
        m[0, 0] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            orthogonalize(m)

    @settings(max_examples=30, deadline=None)
    @given(
        rows=st.integers(2, 30),
        cols=st.integers(1, 6),
        seed=st.integers(0, 10_000),
    )
    def test_property_orthonormal_for_tall_random(self, rows, cols, seed):
        if rows < cols:
            rows, cols = cols, rows
        rng = np.random.default_rng(seed)
        q = orthogonalize(rng.normal(size=(rows, cols)))
        np.testing.assert_allclose(q.T @ q, np.eye(cols), atol=1e-8)
