"""Distributed gradient aggregators: numerics and traffic."""

import numpy as np
import pytest

from repro.comm.process_group import ProcessGroup
from repro.optim.aggregators import make_aggregator

WORLD = 4


def _worker_grads(rng, world=WORLD):
    return [
        {
            "conv.weight": rng.normal(size=(8, 4, 3, 3)),
            "fc.weight": rng.normal(size=(16, 24)),
            "fc.bias": rng.normal(size=16),
        }
        for _ in range(world)
    ]


def _mean_grads(per_worker):
    return {
        name: np.mean([g[name] for g in per_worker], axis=0)
        for name in per_worker[0]
    }


class TestAllReduce:
    def test_exact_mean(self, rng):
        per_worker = _worker_grads(rng)
        agg = make_aggregator("ssgd", ProcessGroup(WORLD))
        out = agg.aggregate(per_worker)
        mean = _mean_grads(per_worker)
        for name in mean:
            np.testing.assert_allclose(out[name], mean[name], rtol=1e-10)

    def test_shapes_preserved(self, rng):
        per_worker = _worker_grads(rng)
        out = make_aggregator("ssgd", ProcessGroup(WORLD)).aggregate(per_worker)
        for name, grad in per_worker[0].items():
            assert out[name].shape == grad.shape

    def test_worker_count_validation(self, rng):
        agg = make_aggregator("ssgd", ProcessGroup(WORLD))
        with pytest.raises(ValueError, match="expected"):
            agg.aggregate(_worker_grads(rng, world=2))

    def test_name_mismatch_rejected(self, rng):
        agg = make_aggregator("ssgd", ProcessGroup(2))
        bad = [{"a": rng.normal(size=2)}, {"b": rng.normal(size=2)}]
        with pytest.raises(ValueError, match="names differ"):
            agg.aggregate(bad)


class TestCompressionAggregators:
    @pytest.mark.parametrize(
        "method,kwargs",
        [
            ("signsgd", {}),
            ("topk", {"ratio": 0.05}),
            ("randomk", {"ratio": 0.05}),
            ("qsgd", {}),
            ("powersgd", {"rank": 2}),
            ("acpsgd", {"rank": 2}),
        ],
    )
    def test_output_well_formed(self, method, kwargs, rng):
        per_worker = _worker_grads(rng)
        agg = make_aggregator(method, ProcessGroup(WORLD), **kwargs)
        out = agg.aggregate(per_worker)
        assert set(out) == set(per_worker[0])
        for name, grad in per_worker[0].items():
            assert out[name].shape == grad.shape
            assert np.isfinite(out[name]).all()

    @pytest.mark.parametrize(
        "method,kwargs,rounds,tol",
        [
            ("topk", {"ratio": 0.25}, 60, 0.25),
            ("powersgd", {"rank": 4}, 120, 0.25),
            ("acpsgd", {"rank": 4}, 180, 0.25),
        ],
    )
    def test_ef_methods_track_cumulative_mean_gradient(
        self, method, kwargs, rounds, tol, rng
    ):
        """Over time, EF-based compressed aggregation transmits the same
        cumulative gradient mass as exact averaging would."""
        agg = make_aggregator(method, ProcessGroup(WORLD), **kwargs)
        base = {
            "fc.weight": rng.normal(size=(10, 12)),
            "fc.bias": rng.normal(size=10),
        }
        total_mean = {name: np.zeros_like(v) for name, v in base.items()}
        total_out = {name: np.zeros_like(v) for name, v in base.items()}
        for _ in range(rounds):
            per_worker = [
                {name: v + 0.1 * rng.normal(size=v.shape) for name, v in base.items()}
                for _ in range(WORLD)
            ]
            out = agg.aggregate(per_worker)
            for name in base:
                total_mean[name] += np.mean(
                    [g[name] for g in per_worker], axis=0
                )
                total_out[name] += out[name]
        for name in base:
            gap = np.linalg.norm(total_out[name] - total_mean[name]) / np.linalg.norm(
                total_mean[name]
            )
            assert gap < tol, f"{method} {name} cumulative gap {gap:.3f}"

    def test_low_rank_vector_params_exact(self, rng):
        """Bias gradients bypass compression: aggregated exactly."""
        per_worker = _worker_grads(rng)
        for method in ("powersgd", "acpsgd"):
            agg = make_aggregator(method, ProcessGroup(WORLD), rank=2)
            out = agg.aggregate([{k: v.copy() for k, v in g.items()} for g in per_worker])
            mean = _mean_grads(per_worker)
            np.testing.assert_allclose(out["fc.bias"], mean["fc.bias"], rtol=1e-10)

    def test_tiny_matrices_not_compressed(self, rng):
        """A matrix where (n+m) r >= n m travels uncompressed (exact)."""
        per_worker = [{"w": rng.normal(size=(4, 4))} for _ in range(WORLD)]
        agg = make_aggregator("powersgd", ProcessGroup(WORLD), rank=4)
        out = agg.aggregate([{k: v.copy() for k, v in g.items()} for g in per_worker])
        mean = _mean_grads(per_worker)
        np.testing.assert_allclose(out["w"], mean["w"], rtol=1e-10)

    def test_acpsgd_single_allreduce_per_step(self, rng):
        """ACP-SGD's defining property: one collective for the compressed
        factors (+ one for the vector params) per step; Power-SGD needs two."""
        per_worker = _worker_grads(rng)
        group_acp = ProcessGroup(WORLD)
        make_aggregator("acpsgd", group_acp, rank=2).aggregate(per_worker)
        group_power = ProcessGroup(WORLD)
        make_aggregator("powersgd", group_power, rank=2).aggregate(per_worker)
        # ACP: plain allreduce + factor allreduce = 2 collectives.
        assert len(group_acp.history) == 2
        # Power-SGD: plain + P + Q = 3 collectives.
        assert len(group_power.history) == 3

    def test_acpsgd_traffic_half_of_powersgd(self, rng):
        per_worker = [{"w": rng.normal(size=(32, 48))} for _ in range(WORLD)]
        group_acp = ProcessGroup(WORLD)
        acp = make_aggregator("acpsgd", group_acp, rank=4)
        group_power = ProcessGroup(WORLD)
        power = make_aggregator("powersgd", group_power, rank=4)
        for _ in range(2):  # average the P/Q parities
            acp.aggregate([{k: v.copy() for k, v in g.items()} for g in per_worker])
            power.aggregate([{k: v.copy() for k, v in g.items()} for g in per_worker])
        assert group_acp.total_bytes() == pytest.approx(
            group_power.total_bytes() / 2, rel=0.01
        )

    def test_signsgd_output_is_scaled_signs(self, rng):
        per_worker = _worker_grads(rng)
        agg = make_aggregator("signsgd", ProcessGroup(WORLD), use_error_feedback=False)
        out = agg.aggregate(per_worker)
        flat = np.concatenate([v.reshape(-1) for v in out.values()])
        magnitudes = np.unique(np.round(np.abs(flat), 12))
        assert magnitudes.size == 1  # all elements share one scale

    def test_randomk_uses_allreduce_not_allgather(self, rng):
        group = ProcessGroup(WORLD)
        make_aggregator("randomk", group, ratio=0.1).aggregate(_worker_grads(rng))
        assert all(s.algorithm == "allreduce_ring" for s in group.history)

    def test_topk_uses_allgather(self, rng):
        group = ProcessGroup(WORLD)
        make_aggregator("topk", group, ratio=0.01).aggregate(_worker_grads(rng))
        assert any(s.algorithm == "all_gather" for s in group.history)


class TestFactory:
    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown method"):
            make_aggregator("sparse-magic", ProcessGroup(2))

    def test_all_methods_constructible(self):
        group = ProcessGroup(2)
        for method in ("ssgd", "signsgd", "topk", "randomk", "qsgd",
                       "powersgd", "acpsgd"):
            agg = make_aggregator(method, group)
            assert agg.method == method
