"""Simulator-side fault model: start_after gating, FaultModel, CLI."""

import numpy as np
import pytest

from repro.cli import main
from repro.models import get_model_spec
from repro.sim.engine import Engine, Task
from repro.sim.faults import (
    ChurnEvent,
    FaultModel,
    admission_sync_cost,
    compare_methods_under_faults,
    simulate_elastic_trace,
    simulate_fault_trace,
)
from repro.sim.strategies import ClusterSpec, build_iteration_tasks

pytestmark = pytest.mark.faults


class TestStartAfterGate:
    def test_gated_task_starts_exactly_at_gate(self):
        engine = Engine()
        records = engine.run([
            Task("a", "gpu_main", 1.0),
            Task("b", "nic", 2.0, start_after=5.0),
        ])
        assert records["a"].start == 0.0
        assert records["b"].start == pytest.approx(5.0)
        assert records["b"].end == pytest.approx(7.0)

    def test_clock_jumps_when_everything_is_gated(self):
        # No task is runnable at t=0: the engine must jump the clock to the
        # earliest gate instead of declaring a deadlock.
        engine = Engine()
        records = engine.run([
            Task("only", "nic", 1.0, start_after=2.0),
            Task("after", "nic", 1.0, deps=("only",)),
        ])
        assert records["only"].start == pytest.approx(2.0)
        assert records["after"].end == pytest.approx(4.0)

    def test_running_task_does_not_overshoot_a_gate(self):
        # A long task on one stream must not advance time past the moment a
        # gated task on an idle stream becomes eligible.
        engine = Engine()
        records = engine.run([
            Task("long", "gpu_main", 10.0, contends=False),
            Task("gated", "nic", 1.0, start_after=3.0),
        ])
        assert records["gated"].start == pytest.approx(3.0)

    def test_negative_start_after_rejected(self):
        with pytest.raises(ValueError, match="negative start_after"):
            Task("x", "nic", 1.0, start_after=-0.5)

    def test_true_deadlock_still_detected(self):
        engine = Engine()
        with pytest.raises(ValueError, match="deadlock"):
            engine.run([
                Task("a", "nic", 1.0, deps=("b",)),
                Task("b", "nic", 1.0, deps=("a",)),
            ])


class TestFaultModel:
    def test_parameters_validated(self):
        with pytest.raises(ValueError, match="straggler_prob"):
            FaultModel(straggler_prob=1.2)
        with pytest.raises(ValueError, match="drop_rate"):
            FaultModel(drop_rate=1.0)  # geometric needs < 1
        with pytest.raises(ValueError, match="rank_down_s"):
            FaultModel(rank_down_s=-1.0)

    def test_no_faults_is_identity(self):
        tasks = [Task("c", "gpu_main", 1.0, tag="forward"),
                 Task("n", "nic", 2.0, tag="comm")]
        out = FaultModel().perturb(tasks, 8, np.random.default_rng(0))
        assert [t.work for t in out] == [1.0, 2.0]
        assert all(t.start_after == 0.0 for t in out)

    def test_straggler_scales_compute_not_comm(self):
        tasks = [Task("fwd", "gpu_main", 1.0, tag="forward"),
                 Task("bwd", "gpu_main", 2.0, tag="backward"),
                 Task("cmp", "gpu_main", 0.5, tag="compression"),
                 Task("net", "nic", 3.0, tag="comm")]
        model = FaultModel(straggler_prob=1.0, straggler_sigma=3.0)
        out = {t.task_id: t for t in
               model.perturb(tasks, 4, np.random.default_rng(1))}
        slowdown = out["fwd"].work / 1.0
        assert slowdown > 1.0
        # One slowdown for the whole iteration: the slowest rank gates all.
        assert out["bwd"].work == pytest.approx(2.0 * slowdown)
        assert out["cmp"].work == pytest.approx(0.5 * slowdown)
        assert out["net"].work == pytest.approx(3.0)

    def test_drops_inflate_comm_work(self):
        tasks = [Task("net", "nic", 1.0, tag="comm")]
        model = FaultModel(drop_rate=0.9, retry_timeout_s=0.25)
        out = model.perturb(tasks, 4, np.random.default_rng(0))[0]
        # Each retransmission costs a full resend plus the timeout.
        retries = round((out.work - 1.0) / (1.0 + 0.25))
        assert 1 <= retries <= 10
        assert out.work == pytest.approx(1.0 + retries * 1.25)

    def test_rank_down_gates_comm_start(self):
        tasks = [Task("net", "nic", 1.0, tag="comm"),
                 Task("fwd", "gpu_main", 1.0, tag="forward")]
        model = FaultModel(rank_down_s=0.5)
        out = {t.task_id: t for t in
               model.perturb(tasks, 4, np.random.default_rng(0))}
        assert out["net"].start_after == pytest.approx(0.5)
        assert out["fwd"].start_after == 0.0  # compute proceeds locally

    def test_perturb_is_deterministic(self):
        tasks = [Task(f"t{i}", "nic", 1.0, tag="comm") for i in range(20)]
        model = FaultModel(straggler_prob=0.3, drop_rate=0.3)
        a = model.perturb(tasks, 8, np.random.default_rng(7))
        b = model.perturb(tasks, 8, np.random.default_rng(7))
        assert [t.work for t in a] == [t.work for t in b]


class TestFaultTraces:
    @pytest.fixture(scope="class")
    def spec(self):
        return get_model_spec("ResNet-50")

    def test_trace_is_reproducible(self, spec):
        model = FaultModel(straggler_prob=0.2, drop_rate=0.05)
        kwargs = dict(cluster=ClusterSpec(world_size=4), iterations=6, seed=3)
        first = simulate_fault_trace("acpsgd", spec, model, **kwargs)
        second = simulate_fault_trace("acpsgd", spec, model, **kwargs)
        assert first.samples == second.samples
        assert first.clean_time == second.clean_time

    def test_faults_never_speed_things_up(self, spec):
        model = FaultModel(straggler_prob=0.3, straggler_sigma=2.0,
                           drop_rate=0.05)
        trace = simulate_fault_trace(
            "ssgd", spec, model, cluster=ClusterSpec(world_size=4),
            iterations=8, seed=0,
        )
        assert trace.mean >= trace.clean_time
        assert trace.worst >= trace.p95 >= 0
        assert trace.slowdown >= 1.0
        assert "slowdown" in trace.render()

    def test_compression_pays_fewer_retransmits(self, spec):
        # Drops only: S-SGD's full-gradient volume suffers more than
        # ACP-SGD's two small factors.
        model = FaultModel(drop_rate=0.2, retry_timeout_s=0.01)
        traces = compare_methods_under_faults(
            ("acpsgd", "ssgd"), spec, model,
            cluster=ClusterSpec(world_size=4), iterations=10, seed=1,
        )
        assert set(traces) == {"acpsgd", "ssgd"}
        assert traces["acpsgd"].mean < traces["ssgd"].mean

    def test_fault_free_model_reproduces_clean_time(self, spec):
        trace = simulate_fault_trace(
            "ssgd", spec, FaultModel(), cluster=ClusterSpec(world_size=4),
            iterations=4, seed=0,
        )
        assert trace.slowdown == pytest.approx(1.0)

    def test_strategies_accept_fault_model(self, spec):
        from repro.sim.strategies import simulate_iteration

        clean = simulate_iteration(
            "acpsgd", spec, cluster=ClusterSpec(world_size=4), rank=4
        )
        faulty = simulate_iteration(
            "acpsgd", spec, cluster=ClusterSpec(world_size=4), rank=4,
            fault_model=FaultModel(drop_rate=0.5, retry_timeout_s=0.05),
            fault_seed=9,
        )
        assert faulty.total >= clean.total


class TestElasticTimeline:
    def _spec(self):
        return get_model_spec("ResNet-50")

    def test_phases_follow_the_schedule(self):
        cluster = ClusterSpec(world_size=4)
        trace = simulate_elastic_trace(
            "ssgd", self._spec(),
            schedule=[ChurnEvent(iteration=5, world_size=3),
                      ChurnEvent(iteration=9, world_size=5)],
            iterations=12, cluster=cluster, batch_size=16,
        )
        assert [p.world_size for p in trace.phases] == [4, 3, 5]
        assert [p.start_iteration for p in trace.phases] == [1, 5, 9]
        assert [p.iterations for p in trace.phases] == [4, 4, 4]
        assert trace.total_time_s > 0

    def test_scale_up_pays_admission_cost_shrink_does_not(self):
        cluster = ClusterSpec(world_size=4)
        spec = self._spec()
        trace = simulate_elastic_trace(
            "acpsgd", spec,
            schedule=[ChurnEvent(iteration=4, world_size=3),
                      ChurnEvent(iteration=8, world_size=5)],
            iterations=10, cluster=cluster, batch_size=16,
        )
        shrink, grow = trace.phases[1], trace.phases[2]
        assert shrink.admission_cost_s == 0.0
        # 3 -> 5 admits two ranks: two state syncs.
        import dataclasses
        sized = dataclasses.replace(cluster, world_size=5)
        assert grow.admission_cost_s == pytest.approx(
            2 * admission_sync_cost(spec, sized)
        )
        assert trace.admission_overhead_s == grow.admission_cost_s
        assert "admission" in trace.render()

    def test_churn_beyond_run_rejected(self):
        with pytest.raises(ValueError, match="beyond"):
            simulate_elastic_trace(
                "ssgd", self._spec(),
                schedule=[ChurnEvent(iteration=99, world_size=2)],
                iterations=10, cluster=ClusterSpec(world_size=4),
                batch_size=16,
            )

    def test_event_validation(self):
        with pytest.raises(ValueError, match="1-based"):
            ChurnEvent(iteration=0, world_size=2)
        with pytest.raises(ValueError, match="world_size"):
            ChurnEvent(iteration=1, world_size=0)

    def test_same_size_event_changes_nothing_but_splits_phase(self):
        cluster = ClusterSpec(world_size=4)
        trace = simulate_elastic_trace(
            "ssgd", self._spec(),
            schedule=[ChurnEvent(iteration=6, world_size=4)],
            iterations=10, cluster=cluster, batch_size=16,
        )
        assert [p.world_size for p in trace.phases] == [4, 4]
        assert trace.phases[0].iteration_time_s == pytest.approx(
            trace.phases[1].iteration_time_s
        )
        assert trace.phases[1].admission_cost_s == 0.0


class TestFaultsCli:
    def test_elastic_cli_demo(self, capsys):
        code = main([
            "elastic", "--method", "ssgd", "--workers", "3",
            "--epochs", "1", "--steps-per-epoch", "8",
            "--samples", "120", "--batch-size", "8",
            "--fail-call", "2", "--rejoin-call", "5", "--join-call", "7",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "membership" in out
        assert "rejoin" in out and "join" in out
        assert "world-size timeline" in out

    def test_faults_command_renders_comparison(self, capsys):
        code = main([
            "faults", "--model", "ResNet-50", "--methods", "acpsgd,ssgd",
            "--gpus", "4", "--rank", "4", "--batch-size", "16",
            "--straggler-prob", "0.1", "--drop-rate", "0.02",
            "--iterations", "4", "--seed", "0",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "acpsgd" in out and "ssgd" in out
        assert "slowdown" in out and "clean" in out

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit, match="unknown method"):
            main(["faults", "--methods", "magic", "--iterations", "2"])

    def test_resilient_training_cli(self, capsys):
        code = main([
            "train", "--method", "ssgd", "--workers", "2",
            "--epochs", "1", "--steps-per-epoch", "2",
            "--samples", "120", "--batch-size", "8",
            "--resilient", "--drop-rate", "0.05", "--fault-seed", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "communication resilience" in out
        assert "collective calls" in out
        assert "trainer resilience" in out
