"""Alpha-beta cost model: formulas, monotonicity, paper anchors."""

import pytest

from repro.comm.cost_model import (
    LinkSpec,
    allgather_time,
    allreduce_time,
    point_to_point_time,
)
from repro.sim.calibration import LINK_10GBE, LINK_1GBE, LINK_100GBIB


class TestFormulas:
    def test_point_to_point(self):
        link = LinkSpec("test", alpha=1e-3, beta=1e6, nominal_gbps=0.008)
        assert point_to_point_time(0, link) == 0.0
        assert point_to_point_time(1e6, link) == pytest.approx(1e-3 + 1.0)

    def test_allreduce_zero_cases(self):
        assert allreduce_time(1024, 1, LINK_10GBE) == 0.0
        assert allreduce_time(0, 8, LINK_10GBE) == 0.0

    def test_allreduce_formula(self):
        link = LinkSpec("test", alpha=1e-4, beta=1e9, nominal_gbps=8)
        p, n = 4, 1e6
        expected = 2 * 3 * 1e-4 + 2 * n * 3 / (4 * 1e9)
        assert allreduce_time(n, p, link) == pytest.approx(expected)

    def test_allgather_linear_in_world(self):
        t8 = allgather_time(1e6, 8, LINK_10GBE)
        t16 = allgather_time(1e6, 16, LINK_10GBE)
        assert t16 > 1.8 * t8

    def test_allreduce_bandwidth_term_saturates_with_world(self):
        """Ring all-reduce bandwidth term ~ constant in p (the key scaling
        property, Table II)."""
        big = 1e9  # 1GB: bandwidth dominated
        t8 = allreduce_time(big, 8, LINK_10GBE)
        t64 = allreduce_time(big, 64, LINK_10GBE)
        assert t64 / t8 < 1.2

    def test_monotone_in_bytes(self):
        assert allreduce_time(2e6, 8, LINK_10GBE) > allreduce_time(1e6, 8, LINK_10GBE)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            allreduce_time(-1, 8, LINK_10GBE)
        with pytest.raises(ValueError):
            allreduce_time(10, 0, LINK_10GBE)
        with pytest.raises(ValueError):
            allgather_time(-5, 4, LINK_10GBE)
        with pytest.raises(ValueError):
            point_to_point_time(-1, LINK_10GBE)

    def test_link_validation(self):
        with pytest.raises(ValueError):
            LinkSpec("bad", alpha=-1e-6, beta=1e9, nominal_gbps=10)
        with pytest.raises(ValueError):
            LinkSpec("bad", alpha=1e-6, beta=0, nominal_gbps=10)


class TestPaperAnchors:
    """The micro-measurements the paper reports for its own 10GbE testbed.

    alpha is over-determined by these anchors (see the calibration module's
    docstring), so the tolerances are generous; the *relationships* (fusion
    helps, small messages are startup-bound) are tight.
    """

    def test_64kb_allreduce_near_1_2ms(self):
        t = allreduce_time(64 * 1024, 32, LINK_10GBE)
        assert 0.5e-3 < t < 2.0e-3  # paper: ~1.2ms

    def test_two_32kb_slower_than_one_64kb(self):
        two = 2 * allreduce_time(32 * 1024, 32, LINK_10GBE)
        one = allreduce_time(64 * 1024, 32, LINK_10GBE)
        assert two > 1.4 * one  # paper: 2.0ms vs 1.2ms

    def test_resnet50_fused_allreduce_near_169ms(self):
        t = allreduce_time(97.5e6, 32, LINK_10GBE)
        assert t == pytest.approx(169e-3, rel=0.15)

    def test_bandwidth_ordering_of_presets(self):
        nbytes = 100e6
        t1 = allreduce_time(nbytes, 32, LINK_1GBE)
        t10 = allreduce_time(nbytes, 32, LINK_10GBE)
        t100 = allreduce_time(nbytes, 32, LINK_100GBIB)
        assert t1 > 5 * t10 > 5 * t100
