"""Hot-path regression checks: the arena path must stay allocation-free.

Marked ``perf`` (and run in the default suite): these assertions are what
keeps the zero-copy property from silently regressing — a stray
``concatenate`` or per-step scratch allocation in the fused path fails
here before it shows up in the tracked benchmark.
"""

import tracemalloc

import numpy as np
import pytest

from repro.comm.process_group import ProcessGroup
from repro.models.convnets import make_mlp, make_small_vgg
from repro.optim.aggregators import AllReduceAggregator
from repro.optim.sgd import SGD
from repro.perf.arena import GradientArena
from repro.perf.counters import ALLOC_STATS
from repro.train.datasets import make_cifar_like
from repro.train.trainer import DataParallelTrainer

pytestmark = pytest.mark.perf


def mlp_arena(world_size=4, seed=0):
    model = make_mlp(64, 96, 10, rng=np.random.default_rng(seed))
    arena = GradientArena(model, world_size)
    rng = np.random.default_rng(seed + 1)
    reference = [
        rng.standard_normal(arena.layout.total_elements)
        for _ in range(world_size)
    ]

    def refill():
        for slot, ref in enumerate(reference):
            np.copyto(arena.slab(slot), ref)
        return [arena.grads(slot) for slot in range(world_size)]

    return arena, refill


class TestZeroFusedAllocations:
    def test_arena_ssgd_aggregate_makes_no_fused_copies(self):
        world_size = 4
        arena, refill = mlp_arena(world_size)
        aggregator = AllReduceAggregator(ProcessGroup(world_size))
        aggregator.aggregate(refill())  # warmup: ring scratch allocates here
        ALLOC_STATS.reset()
        for _ in range(5):
            aggregator.aggregate(refill())
        assert ALLOC_STATS.pack_copies == 0
        assert ALLOC_STATS.unpack_copies == 0
        assert ALLOC_STATS.fused_allocs == 0

    def test_train_step_makes_no_fused_copies(self):
        train_data, test_data = make_cifar_like(num_train=32, num_test=8, seed=0)
        model = make_small_vgg(base_width=2, rng=np.random.default_rng(0))
        trainer = DataParallelTrainer(
            model,
            SGD(model, lr=0.05),
            AllReduceAggregator(ProcessGroup(4)),
            train_data,
            test_data,
            batch_size_per_worker=4,
            seed=0,
        )
        trainer.train_step()  # warmup
        ALLOC_STATS.reset()
        for _ in range(3):
            trainer.train_step()
        assert ALLOC_STATS.pack_copies == 0
        assert ALLOC_STATS.unpack_copies == 0
        assert ALLOC_STATS.fused_allocs == 0

    def test_legacy_path_still_counts_copies(self):
        """The counters themselves must not rot: legacy packing registers."""
        world_size = 2
        arena, refill = mlp_arena(world_size)
        grads = refill()
        plain = [{name: np.asarray(g[name]) for name in g} for g in grads]
        aggregator = AllReduceAggregator(ProcessGroup(world_size))
        ALLOC_STATS.reset()
        aggregator.aggregate(plain)
        assert ALLOC_STATS.pack_copies == world_size


class TestSteadyStateMemory:
    def test_aggregate_peak_allocation_below_slab_size(self):
        """After warmup, one aggregation step allocates far less than one
        fused buffer — i.e. no hidden per-step slab-sized temporaries."""
        world_size = 4
        arena, refill = mlp_arena(world_size)
        aggregator = AllReduceAggregator(ProcessGroup(world_size))
        aggregator.aggregate(refill())  # warmup: scratch + history settle
        per_worker = refill()
        slab_bytes = arena.slab(0).nbytes
        tracemalloc.start()
        try:
            baseline = tracemalloc.get_traced_memory()[0]
            tracemalloc.reset_peak()
            aggregator.aggregate(per_worker)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert peak - baseline < slab_bytes // 2, (
            f"aggregation allocated {peak - baseline} bytes at peak; "
            f"slab is {slab_bytes} — the zero-copy path has regressed"
        )
