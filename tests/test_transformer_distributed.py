"""Integration: distributed training of the transformer workload.

Exercises the low-rank aggregators on exactly the matrix families the
paper compresses for BERT (attention H x H, FFN H x 4H, embeddings V x H),
at miniature scale.
"""

import numpy as np
import pytest

from repro.comm.process_group import ProcessGroup
from repro.models.transformer import make_tiny_bert
from repro.optim.aggregators import make_aggregator
from repro.optim.sgd import SGD
from repro.train.datasets import make_token_classification
from repro.train.trainer import DataParallelTrainer


def _make_trainer(method, **agg_kwargs):
    train_data, test_data = make_token_classification(
        num_train=640, num_test=160, vocab_size=32, seq_len=12,
        num_classes=4, seed=9,
    )
    model = make_tiny_bert(
        vocab_size=32, hidden=16, num_layers=1, num_heads=2, max_seq=12,
        num_classes=4, rng=np.random.default_rng(3),
    )
    group = ProcessGroup(2)
    aggregator = make_aggregator(method, group, **agg_kwargs)
    optimizer = SGD(model, lr=0.1, momentum=0.9)
    trainer = DataParallelTrainer(
        model, optimizer, aggregator, train_data, test_data,
        batch_size_per_worker=32, seed=4,
    )
    return trainer, group


class TestTransformerDistributed:
    def test_ssgd_learns_sequences(self):
        trainer, _ = _make_trainer("ssgd")
        for _ in range(30):
            trainer.train_step()
        assert trainer.evaluate() > 0.5  # chance = 0.25

    def test_acpsgd_learns_sequences(self):
        trainer, group = _make_trainer("acpsgd", rank=4)
        for _ in range(30):
            trainer.train_step()
        assert trainer.evaluate() > 0.5
        assert group.total_bytes() > 0

    def test_acpsgd_compresses_transformer_traffic(self):
        """ACP-SGD must move far fewer bytes than S-SGD on the same model."""
        ssgd_trainer, ssgd_group = _make_trainer("ssgd")
        acp_trainer, acp_group = _make_trainer("acpsgd", rank=2)
        for _ in range(4):
            ssgd_trainer.train_step()
            acp_trainer.train_step()
        assert acp_group.total_bytes() < 0.5 * ssgd_group.total_bytes()

    def test_attention_matrices_are_compressed(self):
        """The aggregator must treat H x H attention weights as compressible."""
        trainer, _ = _make_trainer("acpsgd", rank=2)
        agg = trainer.aggregator
        _, grads = trainer._worker_gradients(0)
        compressible, plain = agg._split_names(grads)
        assert any("attention" in name for name in compressible)
        assert any("bias" in name for name in plain)
