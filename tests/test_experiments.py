"""Experiment drivers: structure and rendering of every table/figure."""

import pytest

import repro.experiments as E
from repro.experiments import fig2, fig3, fig5, fig8, fig10, fig11, table1, table2
from repro.experiments.fig10 import run_fig10
from repro.experiments.fig11 import run_fig11a, run_fig11b
from repro.sim.strategies import ClusterSpec


class TestTable1:
    def test_rows_and_render(self):
        rows = E.run_table1()
        assert [r.model for r in rows] == [
            "ResNet-50", "ResNet-152", "BERT-Base", "BERT-Large",
        ]
        for row in rows:
            assert row.signsgd_ratio == 32.0
            assert 900 < row.topk_ratio < 1100
            assert row.acpsgd_ratio > row.powersgd_ratio
        text = table1.render(rows)
        assert "ResNet-50" in text and "67" in text


class TestTable2:
    def test_measured_matches_analytic(self):
        rows = E.run_table2()
        for row in rows:
            assert row.relative_error < 0.05, (row.method, row.relative_error)
        text = table2.render(rows)
        assert "ACP-SGD" in text


class TestFig2:
    @pytest.fixture(scope="class")
    def rows(self):
        return E.run_fig2()

    def test_sign_and_topk_lose_on_resnet50(self, rows):
        """Paper: 1.70x / 1.66x slower than S-SGD on ResNet-50."""
        rn50 = next(r for r in rows if r.model == "ResNet-50")
        assert rn50.ratio_to_ssgd("signsgd") == pytest.approx(1.70, rel=0.25)
        assert rn50.ratio_to_ssgd("topk") == pytest.approx(1.66, rel=0.35)

    def test_topk_beats_ssgd_on_bert_large(self, rows):
        """Paper: Top-k runs faster than S-SGD on the largest model."""
        large = next(r for r in rows if r.model == "BERT-Large")
        assert large.times_ms["topk"] < large.times_ms["ssgd"]

    def test_signsgd_oom_flag_only_on_bert_large(self, rows):
        """Paper: Sign-SGD runs out of memory (only) on BERT-Large."""
        for row in rows:
            assert row.oom["signsgd"] == (row.model == "BERT-Large")
            for method in ("ssgd", "topk", "powersgd"):
                assert not row.oom[method], (row.model, method)

    def test_powersgd_best_compression_method(self, rows):
        """Paper: Power-SGD achieved the best performance over all models."""
        for row in rows:
            assert row.times_ms["powersgd"] <= row.times_ms["signsgd"]
            assert row.times_ms["powersgd"] <= row.times_ms["topk"]

    def test_render(self, rows):
        assert "Sign-SGD" in fig2.render(rows)


class TestFig3:
    def test_breakdowns_well_formed(self):
        rows = E.run_fig3()
        assert len(rows) == 8
        for row in rows:
            bd = row.breakdown
            assert bd.ffbp > 0
            assert bd.ffbp + bd.compression + bd.comm_nonoverlap <= bd.total + 1e-9
        # S-SGD has no compression cost.
        for row in rows:
            if row.method == "ssgd":
                assert row.breakdown.compression == 0.0
        assert "Top-k SGD" in fig3.render(rows)

    def test_signsgd_comm_exceeds_ssgd_on_bert(self):
        """Paper: Sign-SGD's all-gather comm is 24% HIGHER than S-SGD's
        despite 32x compression."""
        rows = E.run_fig3()
        bert = {r.method: r.breakdown for r in rows if r.model == "BERT-Base"}
        ratio = bert["signsgd"].comm_nonoverlap / bert["ssgd"].comm_nonoverlap
        assert 0.9 < ratio < 1.7

    def test_topk_compression_about_4x_signsgd(self):
        rows = E.run_fig3()
        bert = {r.method: r.breakdown for r in rows if r.model == "BERT-Base"}
        ratio = bert["topk"].compression / bert["signsgd"].compression
        assert 2.5 < ratio < 6.5  # paper: ~4x


class TestFig5:
    def test_compressed_cdf_shift(self):
        data = E.run_fig5()
        for item in data:
            threshold = 1e4 if "ResNet" in item.model else 1e5
            shift = item.cdf_at(threshold, True) - item.cdf_at(threshold, False)
            assert shift >= 0.25  # paper: ~30% increase
        assert "CDF" in fig5.render(data)

    def test_sizes_sorted_and_counted(self):
        data = E.run_fig5(models=("ResNet-50",))[0]
        assert list(data.uncompressed_sizes) == sorted(data.uncompressed_sizes)
        assert sum(data.uncompressed_sizes) == pytest.approx(25.6e6, rel=0.01)


class TestFig8:
    def test_acpsgd_lowest_comm(self):
        rows = E.run_fig8()
        for model in ("ResNet-50", "BERT-Base"):
            by_method = {
                r.method: r.breakdown for r in rows if r.model == model
            }
            assert (
                by_method["acpsgd"].comm_nonoverlap
                <= by_method["powersgd"].comm_nonoverlap + 1e-9
            )
        assert "Power-SGD*" in fig8.render(rows)


class TestFig10:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_fig10(buffers_mb=(0, 1, 25, 500, 1500))

    def test_acpsgd_more_robust_than_powersgd(self, rows):
        """Compressed-buffer scaling flattens ACP-SGD's curve."""
        by_key = {(r.method, r.rank): r for r in rows}
        for rank in (32, 256):
            acp = by_key[("acpsgd", rank)]
            # 25MB default within 10% of ACP's best.
            best = min(acp.times_ms.values())
            assert acp.times_ms[25] < 1.1 * best

    def test_acpsgd_beats_powersgd_everywhere(self, rows):
        by_key = {(r.method, r.rank): r for r in rows}
        for rank in (32, 256):
            acp = by_key[("acpsgd", rank)]
            power = by_key[("powersgd_star", rank)]
            for buf in acp.times_ms:
                assert acp.times_ms[buf] < power.times_ms[buf]

    def test_rank256_default_beats_extremes(self, rows):
        """Paper: ~50% improvement of 25MB over 0MB and 1500MB at rank 256."""
        acp = next(r for r in rows if r.method == "acpsgd" and r.rank == 256)
        assert acp.times_ms[25] < 0.9 * acp.times_ms[0]
        assert acp.times_ms[25] < 0.8 * acp.times_ms[1500]

    def test_render(self, rows):
        assert "ACP-SGD" in fig10.render(rows)


class TestFig11:
    def test_batch_size_effect(self):
        rows = run_fig11a()
        by_batch = {r.batch_size: r for r in rows}
        # ACP wins at both batch sizes; speedup over S-SGD shrinks with batch.
        for row in rows:
            assert row.speedup("ssgd") > 1.0
            assert row.speedup("powersgd") > 1.0
        assert by_batch[16].speedup("ssgd") > by_batch[32].speedup("ssgd")
        assert "ACP" in fig11.render_a(rows)

    def test_rank_effect(self):
        rows = run_fig11b(ranks=(32, 256))
        by_rank = {r.rank: r for r in rows}
        # Larger rank -> more time for both; ACP's advantage grows.
        assert by_rank[256].times_ms["acpsgd"] > by_rank[32].times_ms["acpsgd"]
        assert by_rank[256].acp_speedup > by_rank[32].acp_speedup
        # Paper: Power-SGD 3.4x and ACP-SGD 2.4x higher time at 256 vs 32.
        power_scale = by_rank[256].times_ms["powersgd"] / by_rank[32].times_ms["powersgd"]
        acp_scale = by_rank[256].times_ms["acpsgd"] / by_rank[32].times_ms["acpsgd"]
        assert power_scale > acp_scale
        assert acp_scale == pytest.approx(2.4, rel=0.25)
        assert "rank" in fig11.render_b(rows)
