"""Shared pytest fixtures."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)
