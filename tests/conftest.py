"""Shared pytest fixtures and suite-wide resource guards."""

import os
import signal
import threading

import numpy as np
import pytest

from repro.perf import shm


@pytest.fixture
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture(autouse=True)
def fail_on_leaked_shared_memory():
    """Fail any test that leaks a ``SharedMemory`` segment.

    Shared segments outlive the interpreter unless explicitly unlinked, so
    "the GC will get it" is a real bug, not untidiness: a leaking test run
    pins ``/dev/shm`` pages until reboot. Every segment this process
    creates is registered in :mod:`repro.perf.shm`'s ownership registry;
    a test that ends owning more segments than it started with forgot a
    ``close()`` (``GradientArena.close``, ``ProcessWorkerPool.close``, or
    ``DataParallelTrainer.close`` / ``with trainer:``). The leak is
    force-released *and* the test fails, so one offender cannot poison
    the leak check of every test after it.
    """
    before = shm.live_segment_names()
    yield
    leaked = shm.live_segment_names() - before
    if leaked:
        shm.force_release_all()
        pytest.fail(
            f"test leaked {len(leaked)} SharedMemory segment(s): "
            f"{sorted(leaked)} — close the owning arena/pool/trainer "
            "(e.g. `with trainer:` or trainer.close())"
        )


@pytest.fixture(autouse=True)
def per_test_timeout():
    """Optional per-test wall-clock guard (``REPRO_TEST_TIMEOUT`` seconds).

    Process-worker tests can deadlock rather than fail when a pipe
    protocol bug leaves the parent waiting on a child (or vice versa);
    on CI that hangs the whole job until the runner is killed. Setting
    ``REPRO_TEST_TIMEOUT=120`` arms a SIGALRM that turns such a hang into
    an ordinary test failure. Off by default — local debugging sessions
    should not be interrupted — and inert on platforms without SIGALRM
    or off the main thread, where the alarm cannot be delivered safely.
    """
    budget = os.environ.get("REPRO_TEST_TIMEOUT", "")
    usable = (
        budget.isdigit()
        and int(budget) > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def on_alarm(signum, frame):
        raise TimeoutError(
            f"test exceeded REPRO_TEST_TIMEOUT={budget}s (deadlocked "
            "worker pool or pipe protocol?)"
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(int(budget))
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
