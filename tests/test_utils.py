"""Utilities: seeding and formatting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.utils import (
    format_bytes,
    format_count,
    format_seconds,
    render_table,
    seeded_rng,
    spawn_rngs,
)


class TestSeeding:
    def test_same_seed_same_stream(self):
        a = seeded_rng(42).normal(size=10)
        b = seeded_rng(42).normal(size=10)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = seeded_rng(1).normal(size=10)
        b = seeded_rng(2).normal(size=10)
        assert not np.allclose(a, b)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            seeded_rng(-1)

    def test_spawn_decorrelated_and_deterministic(self):
        rngs1 = spawn_rngs(7, 4)
        rngs2 = spawn_rngs(7, 4)
        for r1, r2 in zip(rngs1, rngs2):
            np.testing.assert_array_equal(r1.normal(size=5), r2.normal(size=5))
        draws = [r.normal(size=100) for r in spawn_rngs(7, 4)]
        for i in range(4):
            for j in range(i + 1, 4):
                corr = np.corrcoef(draws[i], draws[j])[0, 1]
                assert abs(corr) < 0.35

    def test_spawn_validation(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, 0)


class TestFormatting:
    def test_format_bytes(self):
        assert format_bytes(512) == "512B"
        assert format_bytes(25 * 1024 * 1024) == "25.00MB"
        assert format_bytes(3 * 1024**3) == "3.00GB"

    def test_format_count(self):
        assert format_count(999) == "999"
        assert format_count(25.6e6) == "25.6M"
        assert format_count(1.3e9) == "1.3B"

    def test_format_seconds(self):
        assert format_seconds(5e-5) == "50.0us"
        assert format_seconds(0.266) == "266.0ms"
        assert format_seconds(2.5) == "2.50s"

    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line.rstrip()) for line in lines[2:])) <= 2

    def test_render_table_validates_row_width(self):
        with pytest.raises(ValueError, match="cells"):
            render_table(["a", "b"], [["1"]])

    @settings(max_examples=25, deadline=None)
    @given(
        rows=st.lists(
            st.lists(st.text(alphabet="abc123", max_size=8), min_size=2, max_size=2),
            min_size=1, max_size=6,
        )
    )
    def test_property_render_table_line_count(self, rows):
        text = render_table(["x", "y"], rows)
        assert len(text.splitlines()) == 2 + len(rows)
