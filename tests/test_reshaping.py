"""Gradient-to-matrix reshaping rules (§IV-C)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compression.reshaping import (
    grad_to_matrix,
    matrix_to_grad,
    matrix_view_shape,
    should_compress,
)


class TestShouldCompress:
    def test_vectors_never_compressed(self):
        assert not should_compress(())
        assert not should_compress((64,))

    def test_matrices_compressed(self):
        assert should_compress((64, 64))
        assert should_compress((64, 3, 7, 7))

    def test_min_elements_floor(self):
        assert not should_compress((4, 4), min_elements=100)
        assert should_compress((100, 100), min_elements=100)


class TestMatrixView:
    def test_conv_flattening(self):
        assert matrix_view_shape((64, 3, 7, 7)) == (64, 147)

    def test_linear_identity(self):
        assert matrix_view_shape((128, 256)) == (128, 256)

    def test_vector_rejected(self):
        with pytest.raises(ValueError, match="matrix"):
            matrix_view_shape((5,))

    def test_roundtrip(self, rng):
        grad = rng.normal(size=(8, 3, 3, 3))
        matrix = grad_to_matrix(grad)
        assert matrix.shape == (8, 27)
        back = matrix_to_grad(matrix, (8, 3, 3, 3))
        np.testing.assert_array_equal(back, grad)

    def test_matrix_to_grad_shape_validation(self, rng):
        with pytest.raises(ValueError, match="does not match"):
            matrix_to_grad(rng.normal(size=(4, 4)), (4, 5))

    @settings(max_examples=30, deadline=None)
    @given(
        dims=st.lists(st.integers(1, 6), min_size=2, max_size=4),
        seed=st.integers(0, 1000),
    )
    def test_property_roundtrip_preserves_values(self, dims, seed):
        rng = np.random.default_rng(seed)
        grad = rng.normal(size=tuple(dims))
        back = matrix_to_grad(grad_to_matrix(grad), tuple(dims))
        np.testing.assert_array_equal(back, grad)
