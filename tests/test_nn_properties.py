"""Property-based tests for the nn framework."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import nn


class TestLinearProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        batch=st.integers(1, 6),
        in_features=st.integers(1, 10),
        out_features=st.integers(1, 10),
        seed=st.integers(0, 5000),
    )
    def test_property_linearity(self, batch, in_features, out_features, seed):
        """f(a x + b y) == a f(x) + b f(y) for the bias-free layer."""
        rng = np.random.default_rng(seed)
        layer = nn.Linear(in_features, out_features, bias=False, rng=rng)
        x = rng.normal(size=(batch, in_features))
        y = rng.normal(size=(batch, in_features))
        a, b = 2.0, -0.5
        np.testing.assert_allclose(
            layer(a * x + b * y), a * layer(x) + b * layer(y), atol=1e-10
        )

    @settings(max_examples=25, deadline=None)
    @given(
        batch=st.integers(1, 5),
        features=st.integers(1, 8),
        seed=st.integers(0, 5000),
    )
    def test_property_backward_is_adjoint(self, batch, features, seed):
        """<W x, u> == <x, W^T u>: backward implements the exact adjoint."""
        rng = np.random.default_rng(seed)
        layer = nn.Linear(features, features + 1, bias=False, rng=rng)
        x = rng.normal(size=(batch, features))
        u = rng.normal(size=(batch, features + 1))
        out = layer(x)
        grad_x = layer.backward(u)
        np.testing.assert_allclose(
            (out * u).sum(), (x * grad_x).sum(), rtol=1e-10
        )


class TestConvProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        channels=st.integers(1, 3),
        size=st.integers(3, 7),
        seed=st.integers(0, 5000),
    )
    def test_property_conv_adjoint(self, channels, size, seed):
        rng = np.random.default_rng(seed)
        layer = nn.Conv2d(channels, 2, 3, padding=1, bias=False, rng=rng)
        x = rng.normal(size=(2, channels, size, size))
        out = layer(x)
        u = rng.normal(size=out.shape)
        layer(x)
        grad_x = layer.backward(u)
        np.testing.assert_allclose(
            (out * u).sum(), (x * grad_x).sum(), rtol=1e-9
        )

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_property_translation_equivariance(self, seed):
        """Circular-shifting the input shifts a padding-1 conv's output
        (away from borders)."""
        rng = np.random.default_rng(seed)
        layer = nn.Conv2d(1, 1, 3, padding=1, bias=False, rng=rng)
        x = rng.normal(size=(1, 1, 8, 8))
        out = layer(x)
        shifted = np.roll(x, 2, axis=3)
        out_shifted = layer(shifted)
        np.testing.assert_allclose(
            out_shifted[0, 0, 2:-2, 4:-2], np.roll(out, 2, axis=3)[0, 0, 2:-2, 4:-2],
            atol=1e-10,
        )


class TestNormalizationProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        scale=st.floats(0.5, 50.0),
        shift=st.floats(-20.0, 20.0),
        seed=st.integers(0, 5000),
    )
    def test_property_batchnorm_affine_invariance(self, scale, shift, seed):
        """BN(a x + b) ~ BN(x) for a > 0 in training mode (up to the eps
        term in 1/sqrt(a^2 var + eps), hence the loose tolerance)."""
        rng = np.random.default_rng(seed)
        layer = nn.BatchNorm2d(3)
        x = rng.normal(size=(8, 3, 4, 4))
        base = layer(x)
        transformed = layer(scale * x + shift)
        np.testing.assert_allclose(base, transformed, atol=1e-3)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 5000), dim=st.integers(2, 12))
    def test_property_layernorm_output_statistics(self, seed, dim):
        rng = np.random.default_rng(seed)
        layer = nn.LayerNorm(dim)
        x = rng.normal(loc=3, scale=5, size=(4, dim))
        out = layer(x)
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-8)
        # Exact identity (gamma=1, beta=0): out.var = var / (var + eps).
        var = x.var(axis=-1)
        np.testing.assert_allclose(
            out.var(axis=-1), var / (var + layer.eps), rtol=1e-10
        )


class TestSoftmaxProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        rows=st.integers(1, 6), cols=st.integers(2, 10),
        shift=st.floats(-100, 100), seed=st.integers(0, 5000),
    )
    def test_property_shift_invariance_and_normalization(
        self, rows, cols, shift, seed
    ):
        from repro.nn.functional import softmax

        rng = np.random.default_rng(seed)
        logits = rng.normal(size=(rows, cols))
        probs = softmax(logits)
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, atol=1e-12)
        np.testing.assert_allclose(softmax(logits + shift), probs, atol=1e-9)
