"""Hierarchical topology cost model."""

import pytest

from repro.comm.topology import (
    ClusterTopology,
    NVLINK2,
    PCIE3_X16,
    best_allreduce_time,
    crossover_bytes,
    flat_allreduce_time,
    hierarchical_allreduce_time,
)

PAPER_TESTBED = ClusterTopology(num_nodes=8, gpus_per_node=4)


class TestTopology:
    def test_world_size(self):
        assert PAPER_TESTBED.world_size == 32

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterTopology(num_nodes=0, gpus_per_node=4)
        with pytest.raises(ValueError):
            ClusterTopology(num_nodes=2, gpus_per_node=0)
        with pytest.raises(ValueError):
            flat_allreduce_time(-1, PAPER_TESTBED)
        with pytest.raises(ValueError):
            hierarchical_allreduce_time(-1, PAPER_TESTBED)

    def test_zero_and_single(self):
        assert hierarchical_allreduce_time(0, PAPER_TESTBED) == 0.0
        single = ClusterTopology(1, 1)
        assert hierarchical_allreduce_time(1e6, single) == 0.0


class TestFlatVsHierarchical:
    def test_hierarchical_wins_for_small_messages(self):
        """Start-up bound: 2*(8-1) slow steps beat 2*(32-1)."""
        small = 64 * 1024
        assert hierarchical_allreduce_time(small, PAPER_TESTBED) < \
            flat_allreduce_time(small, PAPER_TESTBED)

    def test_fast_intra_link_hierarchical_dominates(self):
        """With PCIe >> 10GbE, the intra detour is nearly free and the
        hierarchy also shaves the bandwidth factor ((nodes-1)/nodes vs
        (p-1)/p) — hierarchical wins at every size, but its *relative*
        advantage shrinks as messages grow (startup amortizes away)."""
        small, huge = 64 * 1024, 1e9
        adv_small = flat_allreduce_time(small, PAPER_TESTBED) / \
            hierarchical_allreduce_time(small, PAPER_TESTBED)
        adv_huge = flat_allreduce_time(huge, PAPER_TESTBED) / \
            hierarchical_allreduce_time(huge, PAPER_TESTBED)
        assert adv_small > 2.0
        assert 1.0 < adv_huge < 1.3
        assert crossover_bytes(PAPER_TESTBED) == pytest.approx(1e9)

    def test_slow_intra_link_crossover(self):
        """When the intra link is no faster than the inter link, the
        detour costs real bandwidth and flat wins for large messages."""
        slow = ClusterTopology(
            8, 4,
            intra_link=PAPER_TESTBED.inter_link,
            inter_link=PAPER_TESTBED.inter_link,
        )
        crossover = crossover_bytes(slow)
        assert 1e3 < crossover < 1e9
        below, above = crossover / 4, crossover * 4
        assert hierarchical_allreduce_time(below, slow) < \
            flat_allreduce_time(below, slow)
        assert hierarchical_allreduce_time(above, slow) > \
            flat_allreduce_time(above, slow)

    def test_best_picks_minimum(self):
        for nbytes in (1e4, 1e6, 1e8):
            best = best_allreduce_time(nbytes, PAPER_TESTBED)
            assert best == min(
                flat_allreduce_time(nbytes, PAPER_TESTBED),
                hierarchical_allreduce_time(nbytes, PAPER_TESTBED),
            )

    def test_nvlink_speeds_up_hierarchical(self):
        pcie = ClusterTopology(8, 4, intra_link=PCIE3_X16)
        nvlink = ClusterTopology(8, 4, intra_link=NVLINK2)
        nbytes = 100e6
        assert hierarchical_allreduce_time(nbytes, nvlink) < \
            hierarchical_allreduce_time(nbytes, pcie)

    def test_monotone_in_bytes(self):
        times = [
            hierarchical_allreduce_time(n, PAPER_TESTBED)
            for n in (1e4, 1e5, 1e6, 1e7)
        ]
        assert times == sorted(times)


class TestCrossoverEdgeCases:
    """Boundary behavior of the bisection in ``crossover_bytes``."""

    def test_returns_low_when_hierarchical_never_wins(self):
        # A degenerate "hierarchy" whose intra link is catastrophically
        # slow: the intra detour costs more than flat at every probed
        # size, so the bisection reports the low bound.
        from repro.comm.cost_model import LinkSpec

        molasses = LinkSpec(name="molasses", alpha=10.0, beta=1e3,
                            nominal_gbps=1e-5)
        topology = ClusterTopology(num_nodes=2, gpus_per_node=4,
                                   intra_link=molasses)
        assert crossover_bytes(topology, low=64.0) == 64.0

    def test_returns_high_when_hierarchical_always_wins(self):
        # NVLink intra + slow inter: the two-level schedule dominates on
        # the whole probed range, so the bisection reports the high bound.
        from repro.comm.cost_model import ETHERNET_1G

        topology = ClusterTopology(num_nodes=4, gpus_per_node=4,
                                   intra_link=NVLINK2,
                                   inter_link=ETHERNET_1G)
        assert crossover_bytes(topology, high=1e8) == 1e8

    def test_single_node_topology_has_no_interior_crossover(self):
        # With one node the inter-node phase is free, so hierarchical ==
        # flat up to latency bookkeeping; the result must pin to a bound,
        # never an interior point.
        topology = ClusterTopology(num_nodes=1, gpus_per_node=8)
        crossover = crossover_bytes(topology, low=32.0, high=1e8)
        assert crossover in (32.0, 1e8)

    def test_custom_probe_range_clamps_interior_crossover(self):
        # The real crossover of this testbed sits in the MBs; shrinking
        # the probed range below it must clamp to the high bound.
        from repro.comm.cost_model import INFINIBAND_100G

        topology = ClusterTopology(num_nodes=4, gpus_per_node=4,
                                   intra_link=PCIE3_X16,
                                   inter_link=INFINIBAND_100G)
        interior = crossover_bytes(topology)
        assert 1e3 < interior < 1e9
        clamped = crossover_bytes(topology, low=1.0, high=interior / 100)
        assert clamped == interior / 100
