"""GPU memory model: the Sign-SGD OOM pattern and general sanity."""

import pytest

from repro.models import get_model_spec
from repro.models.registry import PAPER_RANKS, paper_batch_size
from repro.sim.memory import (
    GiB,
    RTX2080TI_MEMORY_BYTES,
    estimate_memory,
    memory_report,
)


def _estimate(method, model_name, world=32):
    spec = get_model_spec(model_name)
    return estimate_memory(
        method, spec, paper_batch_size(model_name), world,
        rank=PAPER_RANKS[model_name],
    )


class TestPaperOOMPattern:
    """§III-B: Sign-SGD OOMs on BERT-Large; everything else runs."""

    def test_signsgd_ooms_only_on_bert_large(self):
        assert not _estimate("signsgd", "BERT-Large").fits()
        assert _estimate("signsgd", "BERT-Base").fits()
        assert _estimate("signsgd", "ResNet-50").fits()

    @pytest.mark.parametrize(
        "model", ["ResNet-50", "ResNet-152", "BERT-Base", "BERT-Large"]
    )
    @pytest.mark.parametrize("method", ["ssgd", "topk", "powersgd", "acpsgd"])
    def test_all_other_configurations_fit(self, model, method):
        assert _estimate(method, model).fits(), (model, method)

    def test_signsgd_gather_scales_with_world_size(self):
        small = _estimate("signsgd", "BERT-Large", world=4)
        large = _estimate("signsgd", "BERT-Large", world=32)
        assert large.communication_buffers > 3 * small.communication_buffers


class TestEstimates:
    def test_components_positive_and_total_consistent(self):
        est = _estimate("acpsgd", "ResNet-50")
        assert est.weights > 0 and est.activations > 0
        assert est.total == pytest.approx(
            est.weights + est.gradients + est.optimizer_state
            + est.activations + est.compression_buffers
            + est.communication_buffers
        )

    def test_activations_scale_with_batch(self):
        spec = get_model_spec("ResNet-50")
        small = estimate_memory("ssgd", spec, 16, 32)
        large = estimate_memory("ssgd", spec, 64, 32)
        assert large.activations == pytest.approx(4 * small.activations)

    def test_resnet50_total_plausible(self):
        """bs=64 ResNet-50 training peaks ~7-10GB on an 11GB card — the
        config the paper actually ran."""
        est = _estimate("ssgd", "ResNet-50")
        assert 5 * GiB < est.total < RTX2080TI_MEMORY_BYTES

    def test_acpsgd_comm_buffers_smaller_than_powersgd(self):
        acp = _estimate("acpsgd", "BERT-Large")
        power = _estimate("powersgd", "BERT-Large")
        assert acp.communication_buffers < power.communication_buffers

    def test_memory_report_covers_methods(self):
        spec = get_model_spec("ResNet-18")
        report = memory_report(spec, 32, 8, rank=4)
        assert set(report) == {"ssgd", "signsgd", "topk", "powersgd", "acpsgd"}

    def test_validation(self):
        spec = get_model_spec("ResNet-18")
        with pytest.raises(ValueError):
            estimate_memory("ssgd", spec, 0, 8)
        with pytest.raises(ValueError, match="unknown method"):
            estimate_memory("zip", spec, 8, 8)
