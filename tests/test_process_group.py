"""ProcessGroup wrapper: API, averaging, traffic bookkeeping."""

import numpy as np
import pytest

from repro.comm import ProcessGroup


class TestProcessGroup:
    def test_all_reduce_sum_and_average(self, rng):
        group = ProcessGroup(3)
        bufs = [rng.normal(size=8) for _ in range(3)]
        summed = group.all_reduce(bufs)
        np.testing.assert_allclose(summed[0], sum(bufs), rtol=1e-10)
        averaged = group.all_reduce(bufs, average=True)
        np.testing.assert_allclose(averaged[0], sum(bufs) / 3, rtol=1e-10)

    def test_world_size_validation(self):
        with pytest.raises(ValueError, match="world_size"):
            ProcessGroup(0)

    def test_wrong_buffer_count_rejected(self, rng):
        group = ProcessGroup(4)
        with pytest.raises(ValueError, match="expected 4"):
            group.all_reduce([rng.normal(size=2)] * 3)

    def test_history_accumulates(self, rng):
        group = ProcessGroup(2)
        bufs = [rng.normal(size=16) for _ in range(2)]
        group.all_reduce(bufs)
        group.all_gather(bufs)
        group.broadcast(bufs)
        assert len(group.history) == 3
        assert group.total_bytes() > 0
        per_rank = group.bytes_per_rank()
        assert len(per_rank) == 2
        assert sum(per_rank) == group.total_bytes()

    def test_reset_stats(self, rng):
        group = ProcessGroup(2)
        group.all_reduce([rng.normal(size=4)] * 2)
        group.reset_stats()
        assert group.total_bytes() == 0
        assert group.history == []

    def test_reduce_scatter_partition(self, rng):
        group = ProcessGroup(4)
        bufs = [rng.normal(size=12) for _ in range(4)]
        chunks = group.reduce_scatter(bufs)
        np.testing.assert_allclose(
            np.concatenate(chunks), np.sum(bufs, axis=0), rtol=1e-10
        )

    def test_single_rank_group(self, rng):
        group = ProcessGroup(1)
        buf = rng.normal(size=5)
        out = group.all_reduce([buf], average=True)
        np.testing.assert_allclose(out[0], buf)
