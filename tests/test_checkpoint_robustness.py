"""Checkpoint robustness: every broken file yields a clear CheckpointError,
and the manager ring falls back past a corrupt newest checkpoint."""

import json

import numpy as np
import pytest

from repro.models.convnets import make_mlp
from repro.optim.sgd import SGD
from repro.train.checkpoint import (
    CheckpointError,
    CheckpointManager,
    NoRestorableCheckpointError,
    load_checkpoint,
    save_checkpoint,
)

pytestmark = pytest.mark.faults


@pytest.fixture
def model_and_opt():
    model = make_mlp(6, 12, 3, rng=np.random.default_rng(0))
    return model, SGD(model, lr=0.05, momentum=0.9)


def fresh_target():
    model = make_mlp(6, 12, 3, rng=np.random.default_rng(99))
    return model, SGD(model, lr=0.3, momentum=0.9)


class TestBrokenFiles:
    def test_checkpoint_error_is_a_value_error(self):
        assert issubclass(CheckpointError, ValueError)

    def test_truncated_file_gives_clear_error(self, tmp_path, model_and_opt):
        model, opt = model_and_opt
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(path, model, opt)
        raw = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(raw[: len(raw) // 3])
        target, topt = fresh_target()
        with pytest.raises(CheckpointError, match="truncated|unreadable|corrupt"):
            load_checkpoint(path, target, topt)

    def test_flipped_byte_gives_clear_error(self, tmp_path, model_and_opt):
        model, opt = model_and_opt
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(path, model, opt)
        raw = bytearray(open(path, "rb").read())
        raw[len(raw) // 2] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(bytes(raw))
        target, topt = fresh_target()
        # Whichever layer notices first (zip CRC, header parse, payload CRC),
        # the caller sees one exception type with the path in the message.
        with pytest.raises(CheckpointError, match="ckpt.npz"):
            load_checkpoint(path, target, topt)

    def test_not_a_checkpoint_at_all(self, tmp_path):
        path = str(tmp_path / "notes.npz")
        with open(path, "w") as handle:
            handle.write("these are not the arrays you are looking for")
        target, topt = fresh_target()
        with pytest.raises(CheckpointError, match="unreadable"):
            load_checkpoint(path, target, topt)

    def test_tampered_payload_fails_checksum(self, tmp_path, model_and_opt):
        model, opt = model_and_opt
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(path, model, opt)
        with np.load(path) as archive:
            data = {key: archive[key].copy() for key in archive.files}
        data["__params__"] = data["__params__"] + 1.0  # header CRC now stale
        np.savez(path, **data)
        target, topt = fresh_target()
        with pytest.raises(CheckpointError, match="checksum mismatch"):
            load_checkpoint(path, target, topt)

    def test_wrong_format_version_rejected(self, tmp_path, model_and_opt):
        model, opt = model_and_opt
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(path, model, opt)
        with np.load(path) as archive:
            data = {key: archive[key].copy() for key in archive.files}
        header = json.loads(bytes(data["__header__"].tobytes()).decode())
        header["version"] = 99
        data["__header__"] = np.frombuffer(
            json.dumps(header).encode(), dtype=np.uint8
        )
        np.savez(path, **data)
        target, topt = fresh_target()
        with pytest.raises(CheckpointError, match="version 99"):
            load_checkpoint(path, target, topt)


class TestManagerFallback:
    def test_restore_skips_corrupt_newest(self, tmp_path, model_and_opt):
        model, opt = model_and_opt
        manager = CheckpointManager(str(tmp_path), keep=2)
        manager.save(model, opt, metadata={"step": 1})
        good_weights = model.state_vector().copy()

        # Train-ish drift, then a second checkpoint that we corrupt.
        model.load_state_vector(good_weights + 0.5)
        newest = manager.save(model, opt, metadata={"step": 2})
        raw = open(newest, "rb").read()
        with open(newest, "wb") as handle:
            handle.write(raw[: len(raw) // 2])

        metadata = manager.restore(model, opt)
        assert metadata == {"step": 1}
        assert np.array_equal(model.state_vector(), good_weights)

    def test_restore_falls_back_past_crc_mismatch(self, tmp_path, model_and_opt):
        """A newest checkpoint that reads fine but fails its payload CRC
        (silent bit rot, not truncation) must fall back, not error."""
        model, opt = model_and_opt
        manager = CheckpointManager(str(tmp_path), keep=2)
        manager.save(model, opt, metadata={"step": 1})
        good_weights = model.state_vector().copy()

        model.load_state_vector(good_weights + 0.5)
        newest = manager.save(model, opt, metadata={"step": 2})
        with np.load(newest) as archive:
            data = {key: archive[key].copy() for key in archive.files}
        data["__params__"] = data["__params__"] + 1.0  # valid npz, stale CRC
        np.savez(newest, **data)

        metadata = manager.restore(model, opt)
        assert metadata == {"step": 1}
        assert np.array_equal(model.state_vector(), good_weights)

    def test_corrupt_entries_are_evicted_from_ring(self, tmp_path, model_and_opt):
        model, opt = model_and_opt
        manager = CheckpointManager(str(tmp_path), keep=3)
        oldest = manager.save(model, opt, metadata={"step": 1})
        newest = manager.save(model, opt, metadata={"step": 2})
        with open(newest, "wb") as handle:
            handle.write(b"ruined")

        assert manager.restore(model, opt) == {"step": 1}
        # The broken file no longer occupies a ring slot.
        assert manager.paths == [oldest]
        # A second rollback restores directly without re-trying the corpse.
        assert manager.restore(model, opt) == {"step": 1}

    def test_restore_with_nothing_saved(self, tmp_path, model_and_opt):
        model, opt = model_and_opt
        manager = CheckpointManager(str(tmp_path))
        with pytest.raises(NoRestorableCheckpointError,
                           match="no checkpoint saved yet") as excinfo:
            manager.restore(model, opt)
        assert excinfo.value.failures == []

    def test_restore_with_every_file_broken(self, tmp_path, model_and_opt):
        model, opt = model_and_opt
        manager = CheckpointManager(str(tmp_path), keep=2)
        paths = []
        for step in (1, 2):
            path = manager.save(model, opt, metadata={"step": step})
            paths.append(path)
            with open(path, "wb") as handle:
                handle.write(b"ruined")
        with pytest.raises(NoRestorableCheckpointError,
                           match="no restorable checkpoint") as excinfo:
            manager.restore(model, opt)
        # One diagnostic per file tried, newest first, path included.
        assert len(excinfo.value.failures) == 2
        assert paths[1] in excinfo.value.failures[0]
        assert paths[0] in excinfo.value.failures[1]

    def test_exhausted_ring_error_is_a_checkpoint_error(self):
        """Callers catching the broad CheckpointError keep working."""
        assert issubclass(NoRestorableCheckpointError, CheckpointError)

    def test_single_bad_file_does_not_raise_the_exhausted_type(
        self, tmp_path, model_and_opt
    ):
        """load_checkpoint on one corrupt file raises the plain error —
        the exhausted type is reserved for an empty-handed ring walk."""
        model, opt = model_and_opt
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(path, model, opt)
        with open(path, "wb") as handle:
            handle.write(b"ruined")
        target, topt = fresh_target()
        with pytest.raises(CheckpointError) as excinfo:
            load_checkpoint(path, target, topt)
        assert not isinstance(excinfo.value, NoRestorableCheckpointError)

    def test_ring_prunes_old_files(self, tmp_path, model_and_opt):
        model, opt = model_and_opt
        manager = CheckpointManager(str(tmp_path), keep=2)
        paths = [manager.save(model, opt, metadata={"step": s})
                 for s in range(4)]
        assert manager.paths == paths[-2:]
        assert len(list(tmp_path.glob("*.npz"))) == 2
