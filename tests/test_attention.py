"""Attention / transformer layers: shapes and gradient checks."""

import numpy as np
import pytest

from repro.nn.attention import MultiHeadSelfAttention, TransformerEncoderLayer
from repro.models.transformer import TinyBERT, make_sequence_dataset, make_tiny_bert
from repro.nn.loss import CrossEntropyLoss
from tests.gradcheck import check_layer_gradients


class TestMultiHeadSelfAttention:
    def test_forward_shape(self, rng):
        attn = MultiHeadSelfAttention(8, 2, rng=rng)
        out = attn(rng.normal(size=(2, 5, 8)))
        assert out.shape == (2, 5, 8)

    def test_gradients(self, rng):
        attn = MultiHeadSelfAttention(4, 2, rng=rng)
        check_layer_gradients(attn, rng.normal(size=(2, 3, 4)), rtol=1e-4, atol=1e-6)

    def test_attention_rows_normalized(self, rng):
        """Internal attention weights sum to 1 over keys."""
        attn = MultiHeadSelfAttention(8, 2, rng=rng)
        attn(rng.normal(size=(1, 4, 8)))
        _, _, _, weights, _ = attn._cache
        np.testing.assert_allclose(weights.sum(axis=-1), 1.0, atol=1e-10)

    def test_head_divisibility_validation(self):
        with pytest.raises(ValueError, match="divisible"):
            MultiHeadSelfAttention(10, 3)

    def test_input_validation(self, rng):
        attn = MultiHeadSelfAttention(8, 2, rng=rng)
        with pytest.raises(ValueError, match="expected"):
            attn(rng.normal(size=(2, 8)))


class TestTransformerEncoderLayer:
    def test_forward_shape(self, rng):
        layer = TransformerEncoderLayer(8, 2, rng=rng)
        out = layer(rng.normal(size=(2, 4, 8)))
        assert out.shape == (2, 4, 8)

    def test_gradients(self, rng):
        layer = TransformerEncoderLayer(4, 2, ffn_multiple=2, rng=rng)
        check_layer_gradients(layer, rng.normal(size=(1, 3, 4)), rtol=1e-4, atol=1e-6)

    def test_has_bert_matrix_shapes(self, rng):
        """The compressible families the paper's rank-32 setting targets."""
        layer = TransformerEncoderLayer(8, 2, rng=rng)
        shapes = {tuple(p.shape) for p in layer.parameters() if len(p.shape) == 2}
        assert (8, 8) in shapes  # attention projections
        assert (32, 8) in shapes  # FFN in
        assert (8, 32) in shapes  # FFN out


class TestTinyBERT:
    def test_forward_shape(self, rng):
        model = make_tiny_bert(vocab_size=32, hidden=16, num_layers=1,
                               num_heads=2, max_seq=8, num_classes=3, rng=rng)
        tokens = rng.integers(0, 32, size=(4, 8))
        out = model(tokens)
        assert out.shape == (4, 3)

    def test_all_parameters_receive_gradients(self, rng):
        model = make_tiny_bert(vocab_size=32, hidden=16, num_layers=2,
                               num_heads=2, max_seq=8, rng=rng)
        tokens = rng.integers(0, 32, size=(3, 8))
        loss_fn = CrossEntropyLoss()
        loss_fn(model(tokens), rng.integers(0, 4, size=3))
        model.backward(loss_fn.backward())
        for name, param in model.named_parameters():
            assert param.grad is not None, name
            assert np.isfinite(param.grad).all(), name

    def test_sequence_length_validation(self, rng):
        model = make_tiny_bert(max_seq=8, rng=rng)
        with pytest.raises(ValueError, match="max_seq"):
            model(rng.integers(0, 64, size=(2, 9)))

    def test_trains_on_synthetic_sequences(self, rng):
        """A few SGD steps reduce loss on the signature-token task."""
        model = make_tiny_bert(vocab_size=32, hidden=16, num_layers=1,
                               num_heads=2, max_seq=16, num_classes=4,
                               rng=np.random.default_rng(0))
        tokens, labels = make_sequence_dataset(
            128, vocab_size=32, seq_len=16, num_classes=4, seed=1
        )
        loss_fn = CrossEntropyLoss()
        first = None
        for _ in range(15):
            loss = loss_fn(model(tokens), labels)
            if first is None:
                first = loss
            model.backward(loss_fn.backward())
            for param in model.parameters():
                param.data -= 0.1 * param.grad
            model.zero_grad()
        assert loss < 0.8 * first


class TestSequenceDataset:
    def test_shapes_and_range(self):
        tokens, labels = make_sequence_dataset(50, vocab_size=32, seq_len=10)
        assert tokens.shape == (50, 10)
        assert tokens.min() >= 0 and tokens.max() < 32
        assert labels.shape == (50,)

    def test_signature_tokens_present(self):
        tokens, labels = make_sequence_dataset(
            200, vocab_size=40, seq_len=12, num_classes=4, noise_tokens=2, seed=3
        )
        slice_size = 10
        hits = 0
        for i in range(200):
            lo = labels[i] * slice_size
            in_slice = ((tokens[i] >= lo) & (tokens[i] < lo + slice_size)).sum()
            hits += in_slice >= 4
        assert hits > 150  # most samples carry a strong class signature

    def test_vocab_validation(self):
        with pytest.raises(ValueError, match="vocab"):
            make_sequence_dataset(10, vocab_size=4, num_classes=4)
