"""Layer-by-layer finite-difference gradient checks and behaviours."""

import numpy as np
import pytest

from repro import nn
from tests.gradcheck import check_layer_gradients, numeric_grad


class TestLinear:
    def test_forward_shape(self, rng):
        layer = nn.Linear(5, 3, rng=rng)
        out = layer(rng.normal(size=(4, 5)))
        assert out.shape == (4, 3)

    def test_gradients(self, rng):
        layer = nn.Linear(4, 3, rng=rng)
        check_layer_gradients(layer, rng.normal(size=(2, 4)))

    def test_gradients_no_bias(self, rng):
        layer = nn.Linear(4, 3, bias=False, rng=rng)
        check_layer_gradients(layer, rng.normal(size=(2, 4)))

    def test_3d_input(self, rng):
        """Sequence inputs (batch, seq, features) must work (BERT-style)."""
        layer = nn.Linear(4, 6, rng=rng)
        out = layer(rng.normal(size=(2, 3, 4)))
        assert out.shape == (2, 3, 6)
        check_layer_gradients(layer, rng.normal(size=(2, 3, 4)))

    def test_input_dim_validation(self, rng):
        layer = nn.Linear(4, 3, rng=rng)
        with pytest.raises(ValueError, match="in_features"):
            layer(rng.normal(size=(2, 5)))

    def test_backward_before_forward_raises(self, rng):
        layer = nn.Linear(4, 3, rng=rng)
        with pytest.raises(RuntimeError, match="before forward"):
            layer.backward(rng.normal(size=(2, 3)))


class TestConv2d:
    def test_forward_shape(self, rng):
        layer = nn.Conv2d(3, 8, 3, padding=1, rng=rng)
        out = layer(rng.normal(size=(2, 3, 8, 8)))
        assert out.shape == (2, 8, 8, 8)

    def test_forward_stride(self, rng):
        layer = nn.Conv2d(3, 4, 3, stride=2, padding=1, rng=rng)
        out = layer(rng.normal(size=(1, 3, 8, 8)))
        assert out.shape == (1, 4, 4, 4)

    def test_gradients(self, rng):
        layer = nn.Conv2d(2, 3, 3, padding=1, rng=rng)
        check_layer_gradients(layer, rng.normal(size=(2, 2, 5, 5)))

    def test_gradients_strided_no_bias(self, rng):
        layer = nn.Conv2d(2, 3, 3, stride=2, padding=1, bias=False, rng=rng)
        check_layer_gradients(layer, rng.normal(size=(1, 2, 6, 6)))

    def test_gradients_1x1(self, rng):
        layer = nn.Conv2d(3, 2, 1, rng=rng)
        check_layer_gradients(layer, rng.normal(size=(2, 3, 4, 4)))

    def test_matches_manual_convolution(self, rng):
        """Cross-check the im2col path against a direct loop convolution."""
        layer = nn.Conv2d(1, 1, 3, bias=False, rng=rng)
        x = rng.normal(size=(1, 1, 5, 5))
        out = layer(x)
        kernel = layer.weight.data[0, 0]
        manual = np.zeros((3, 3))
        for i in range(3):
            for j in range(3):
                manual[i, j] = (x[0, 0, i : i + 3, j : j + 3] * kernel).sum()
        np.testing.assert_allclose(out[0, 0], manual, rtol=1e-10)

    def test_channel_validation(self, rng):
        layer = nn.Conv2d(3, 4, 3, rng=rng)
        with pytest.raises(ValueError, match="channels"):
            layer(rng.normal(size=(1, 2, 8, 8)))

    def test_geometry_validation(self):
        with pytest.raises(ValueError, match="geometry"):
            nn.Conv2d(3, 4, 0)


class TestBatchNorm2d:
    def test_normalizes_in_training(self, rng):
        layer = nn.BatchNorm2d(4)
        x = rng.normal(loc=3.0, scale=2.0, size=(8, 4, 6, 6))
        out = layer(x)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-2)

    def test_gradients(self, rng):
        layer = nn.BatchNorm2d(3)
        check_layer_gradients(layer, rng.normal(size=(4, 3, 3, 3)), rtol=1e-4, atol=1e-6)

    def test_eval_uses_running_stats(self, rng):
        layer = nn.BatchNorm2d(2)
        for _ in range(30):
            layer(rng.normal(loc=1.0, size=(16, 2, 4, 4)))
        layer.eval()
        x = rng.normal(loc=1.0, size=(4, 2, 4, 4))
        out = layer(x)
        # With running mean ~1, output mean should be ~0.
        assert abs(out.mean()) < 0.3

    def test_running_stats_not_parameters(self):
        layer = nn.BatchNorm2d(4)
        names = [name for name, _ in layer.named_parameters()]
        assert names == ["weight", "bias"]


class TestLayerNorm:
    def test_normalizes_last_dim(self, rng):
        layer = nn.LayerNorm(8)
        out = layer(rng.normal(loc=5.0, size=(3, 4, 8)))
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-7)

    def test_gradients(self, rng):
        layer = nn.LayerNorm(5)
        check_layer_gradients(layer, rng.normal(size=(2, 3, 5)), rtol=1e-4, atol=1e-6)

    def test_dim_validation(self, rng):
        layer = nn.LayerNorm(8)
        with pytest.raises(ValueError, match="last dim"):
            layer(rng.normal(size=(2, 7)))


class TestActivations:
    @pytest.mark.parametrize("cls", [nn.ReLU, nn.Tanh, nn.GELU])
    def test_gradients(self, cls, rng):
        layer = cls()
        # Keep x away from ReLU's kink for a clean finite-difference check.
        x = rng.normal(size=(3, 4))
        x = np.where(np.abs(x) < 0.05, 0.2, x)
        check_layer_gradients(layer, x, rtol=1e-4, atol=1e-7)

    def test_relu_clamps(self, rng):
        out = nn.ReLU()(np.array([-1.0, 0.0, 2.0]))
        np.testing.assert_array_equal(out, [0.0, 0.0, 2.0])

    def test_gelu_known_values(self):
        layer = nn.GELU()
        # GELU(0) = 0; GELU(large) ~ identity; GELU(-large) ~ 0.
        out = layer(np.array([0.0, 10.0, -10.0]))
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(10.0, rel=1e-4)
        assert out[2] == pytest.approx(0.0, abs=1e-3)


class TestPooling:
    def test_maxpool_values(self):
        layer = nn.MaxPool2d(2)
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = layer(x)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_gradients(self, rng):
        layer = nn.MaxPool2d(2)
        # Distinct values so argmax is stable under perturbation.
        x = rng.permutation(64).astype(float).reshape(1, 1, 8, 8) * 0.1
        check_layer_gradients(layer, x, rtol=1e-4, atol=1e-7)

    def test_avgpool_values(self):
        layer = nn.AvgPool2d(2)
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = layer(x)
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avgpool_gradients(self, rng):
        layer = nn.AvgPool2d(2)
        check_layer_gradients(layer, rng.normal(size=(2, 2, 4, 4)), rtol=1e-4, atol=1e-7)

    def test_global_avgpool(self, rng):
        layer = nn.GlobalAvgPool2d()
        x = rng.normal(size=(2, 3, 4, 4))
        out = layer(x)
        assert out.shape == (2, 3)
        np.testing.assert_allclose(out, x.mean(axis=(2, 3)))
        check_layer_gradients(layer, x, rtol=1e-4, atol=1e-7)


class TestDropout:
    def test_identity_in_eval(self, rng):
        layer = nn.Dropout(0.5, rng=rng)
        layer.eval()
        x = rng.normal(size=(4, 4))
        np.testing.assert_array_equal(layer(x), x)

    def test_preserves_expectation(self, rng):
        layer = nn.Dropout(0.3, rng=rng)
        x = np.ones((200, 200))
        out = layer(x)
        assert out.mean() == pytest.approx(1.0, abs=0.02)

    def test_backward_applies_same_mask(self, rng):
        layer = nn.Dropout(0.5, rng=rng)
        x = np.ones((10, 10))
        out = layer(x)
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_array_equal((out > 0), (grad > 0))

    def test_invalid_probability(self):
        with pytest.raises(ValueError, match="probability"):
            nn.Dropout(1.0)


class TestEmbedding:
    def test_lookup(self, rng):
        layer = nn.Embedding(10, 4, rng=rng)
        ids = np.array([[1, 2], [3, 1]])
        out = layer(ids)
        assert out.shape == (2, 2, 4)
        np.testing.assert_array_equal(out[0, 0], layer.weight.data[1])

    def test_gradient_accumulates_repeated_ids(self, rng):
        layer = nn.Embedding(5, 3, rng=rng)
        ids = np.array([1, 1, 1])
        layer(ids)
        layer.backward(np.ones((3, 3)))
        np.testing.assert_allclose(layer.weight.grad[1], [3.0, 3.0, 3.0])
        np.testing.assert_allclose(layer.weight.grad[0], 0.0)

    def test_rejects_float_ids(self, rng):
        layer = nn.Embedding(5, 3, rng=rng)
        with pytest.raises(ValueError, match="integer"):
            layer(np.array([1.5]))

    def test_rejects_out_of_range(self, rng):
        layer = nn.Embedding(5, 3, rng=rng)
        with pytest.raises(ValueError, match="range"):
            layer(np.array([5]))


class TestFlattenAndSequential:
    def test_flatten_roundtrip(self, rng):
        layer = nn.Flatten()
        x = rng.normal(size=(2, 3, 4))
        out = layer(x)
        assert out.shape == (2, 12)
        grad = layer.backward(out)
        assert grad.shape == x.shape

    def test_sequential_chains(self, rng):
        model = nn.Sequential(nn.Linear(4, 8, rng=rng), nn.ReLU(),
                              nn.Linear(8, 2, rng=rng))
        out = model(rng.normal(size=(3, 4)))
        assert out.shape == (3, 2)
        grad = model.backward(np.ones((3, 2)))
        assert grad.shape == (3, 4)

    def test_sequential_gradcheck(self, rng):
        model = nn.Sequential(nn.Linear(3, 5, rng=rng), nn.Tanh(),
                              nn.Linear(5, 2, rng=rng))
        check_layer_gradients(model, rng.normal(size=(2, 3)), rtol=1e-4, atol=1e-7)

    def test_sequential_container_protocol(self, rng):
        model = nn.Sequential(nn.ReLU(), nn.Tanh())
        assert len(model) == 2
        assert isinstance(model[0], nn.ReLU)
        model.append(nn.ReLU())
        assert len(model) == 3
