"""Random-k (shared-seed additive sparsification) and QSGD quantization."""

import numpy as np
import pytest

from repro.compression.qsgd import QSGDCompressor
from repro.compression.randomk import RandomKCompressor


class TestRandomK:
    def test_shared_seed_gives_identical_indices(self, rng):
        """The additivity property: all workers select the same coordinates."""
        comp_a = RandomKCompressor(ratio=0.1, seed=42)
        comp_b = RandomKCompressor(ratio=0.1, seed=42)
        idx_a = comp_a.indices_for_step("w", 1000, step=3)
        idx_b = comp_b.indices_for_step("w", 1000, step=3)
        np.testing.assert_array_equal(idx_a, idx_b)

    def test_different_steps_give_different_indices(self):
        comp = RandomKCompressor(ratio=0.1, seed=42)
        idx1 = comp.indices_for_step("w", 1000, step=1)
        idx2 = comp.indices_for_step("w", 1000, step=2)
        assert set(idx1) != set(idx2)

    def test_different_tensors_decorrelated(self):
        comp = RandomKCompressor(ratio=0.1, seed=42)
        idx1 = comp.indices_for_step("a", 1000, step=1)
        idx2 = comp.indices_for_step("b", 1000, step=1)
        assert set(idx1) != set(idx2)

    def test_compress_decompress_roundtrip(self, rng):
        comp = RandomKCompressor(ratio=0.5, seed=0, use_error_feedback=False)
        grad = rng.normal(size=(4, 5))
        payload = comp.compress("w", grad, step=1)
        dense = RandomKCompressor.decompress(payload, (4, 5))
        flat = grad.reshape(-1)
        np.testing.assert_allclose(dense.reshape(-1)[payload.indices],
                                   flat[payload.indices])

    def test_error_feedback_conservation(self, rng):
        comp = RandomKCompressor(ratio=0.25, seed=0, use_error_feedback=True)
        grad = rng.normal(size=40)
        total_sent = np.zeros(40)
        for step in range(1, 9):
            payload = comp.compress("w", grad, step)
            total_sent[payload.indices] += payload.values
        residual = comp._error["w"]
        np.testing.assert_allclose(total_sent + residual, 8 * grad, atol=1e-9)

    def test_invalid_ratio(self):
        with pytest.raises(ValueError, match="ratio"):
            RandomKCompressor(ratio=1.5)


class TestQSGD:
    def test_unbiasedness(self, rng):
        """E[q(x)] = x: the defining QSGD property."""
        comp = QSGDCompressor(num_levels=4, rng=rng)
        x = rng.normal(size=64)
        total = np.zeros(64)
        trials = 3000
        for _ in range(trials):
            payload = comp.compress(x)
            total += QSGDCompressor.decompress(payload, (64,))
        mean = total / trials
        np.testing.assert_allclose(mean, x, atol=0.05)

    def test_zero_tensor(self):
        comp = QSGDCompressor(num_levels=8)
        payload = comp.compress(np.zeros(16))
        np.testing.assert_array_equal(
            QSGDCompressor.decompress(payload, (16,)), np.zeros(16)
        )

    def test_levels_bounded(self, rng):
        comp = QSGDCompressor(num_levels=4, rng=rng)
        payload = comp.compress(rng.normal(size=100))
        assert payload.levels.max() <= 4

    def test_high_levels_low_error(self, rng):
        comp = QSGDCompressor(num_levels=2**16, rng=rng)
        x = rng.normal(size=128)
        payload = comp.compress(x)
        out = QSGDCompressor.decompress(payload, (128,))
        assert np.linalg.norm(out - x) / np.linalg.norm(x) < 1e-3

    def test_payload_bytes_shrink_with_levels(self, rng):
        x = rng.normal(size=1024)
        small = QSGDCompressor(num_levels=3, rng=rng).compress(x)
        large = QSGDCompressor(num_levels=255, rng=rng).compress(x)
        assert small.nbytes < large.nbytes < x.nbytes

    def test_invalid_levels(self):
        with pytest.raises(ValueError, match="num_levels"):
            QSGDCompressor(num_levels=0)
