"""Power-SGD compressor state: power iteration, reuse, error feedback."""

import numpy as np
import pytest

from repro.compression.powersgd import PowerSGDState, init_low_rank


def _run_steps(state: PowerSGDState, matrix: np.ndarray, steps: int) -> np.ndarray:
    """Single-worker Power-SGD steps on a fixed matrix."""
    m_hat = None
    for _ in range(steps):
        p = state.compute_p("w", matrix)
        q = state.compute_q("w", p)
        m_hat = state.reconstruct("w", q)
    return m_hat


class TestPowerIteration:
    def test_converges_to_best_rank_r(self, rng):
        """Repeated power iteration (no EF) reaches the SVD truncation."""
        matrix = rng.normal(size=(20, 30))
        u, s, vt = np.linalg.svd(matrix)
        best = (u[:, :3] * s[:3]) @ vt[:3]
        state = PowerSGDState(rank=3, seed=1, use_error_feedback=False)
        m_hat = _run_steps(state, matrix, 25)
        np.testing.assert_allclose(
            np.linalg.norm(matrix - m_hat),
            np.linalg.norm(matrix - best),
            rtol=1e-3,
        )

    def test_exact_for_low_rank_matrix(self, rng):
        """A rank-2 matrix is recovered exactly by rank-2 compression."""
        a = rng.normal(size=(15, 2))
        b = rng.normal(size=(12, 2))
        matrix = a @ b.T
        state = PowerSGDState(rank=2, seed=0, use_error_feedback=False)
        m_hat = _run_steps(state, matrix, 15)
        np.testing.assert_allclose(m_hat, matrix, atol=1e-6)

    def test_reuse_improves_over_fresh_queries(self, rng):
        """Query reuse converges; fresh random queries keep the error high."""
        matrix = rng.normal(size=(24, 24))
        reuse = PowerSGDState(rank=2, seed=5, use_error_feedback=False, reuse_query=True)
        fresh = PowerSGDState(rank=2, seed=5, use_error_feedback=False, reuse_query=False)
        err_reuse = np.linalg.norm(matrix - _run_steps(reuse, matrix, 10))
        # Fresh queries: average error over several steps (it fluctuates).
        errs = []
        for _ in range(10):
            p = fresh.compute_p("w", matrix)
            q = fresh.compute_q("w", p)
            errs.append(np.linalg.norm(matrix - fresh.reconstruct("w", q)))
        assert err_reuse < 0.95 * np.mean(errs)

    def test_rank_capped_by_dimensions(self):
        state = PowerSGDState(rank=64)
        assert state.effective_rank((8, 100)) == 8
        assert state.effective_rank((100, 3)) == 3


class TestErrorFeedback:
    def test_cumulative_transmission_tracks_gradients(self, rng):
        state = PowerSGDState(rank=2, seed=3, use_error_feedback=True)
        base = rng.normal(size=(12, 16))
        total_in = np.zeros_like(base)
        total_out = np.zeros_like(base)
        for _ in range(150):
            grad = base + 0.1 * rng.normal(size=base.shape)
            p = state.compute_p("w", grad)
            q = state.compute_q("w", p)
            m_hat = state.reconstruct("w", q)
            total_in += grad
            total_out += m_hat
        gap = np.linalg.norm(total_out - total_in) / np.linalg.norm(total_in)
        assert gap < 0.15

    def test_no_ef_loses_mass(self, rng):
        """Without EF the orthogonal complement is never transmitted."""
        state = PowerSGDState(rank=1, seed=3, use_error_feedback=False)
        base = rng.normal(size=(12, 16))
        total_in = np.zeros_like(base)
        total_out = np.zeros_like(base)
        for _ in range(100):
            p = state.compute_p("w", base)
            q = state.compute_q("w", p)
            total_out += state.reconstruct("w", q)
            total_in += base
        gap = np.linalg.norm(total_out - total_in) / np.linalg.norm(total_in)
        assert gap > 0.3


class TestProtocol:
    def test_stage_order_enforced(self, rng):
        state = PowerSGDState(rank=2)
        with pytest.raises(RuntimeError, match="compute_p"):
            state.compute_q("w", rng.normal(size=(4, 2)))
        with pytest.raises(RuntimeError, match="compute_q"):
            state.reconstruct("w", rng.normal(size=(4, 2)))

    def test_shared_seed_init_identical_across_workers(self):
        p1, q1 = init_low_rank((10, 8), 2, seed=7)
        p2, q2 = init_low_rank((10, 8), 2, seed=7)
        np.testing.assert_array_equal(q1, q2)
        np.testing.assert_array_equal(p1, p2)

    def test_init_rank_capped(self):
        p, q = init_low_rank((4, 100), 32, seed=0)
        assert p.shape == (4, 4)
        assert q.shape == (100, 4)

    def test_matrix_shape_validation(self, rng):
        state = PowerSGDState(rank=2)
        with pytest.raises(ValueError, match="matrix"):
            state.compute_p("w", rng.normal(size=5))

    def test_invalid_rank(self):
        with pytest.raises(ValueError, match="rank"):
            PowerSGDState(rank=0)

    def test_reset(self, rng):
        state = PowerSGDState(rank=2)
        p = state.compute_p("w", rng.normal(size=(6, 6)))
        state.reset()
        assert state._pending == {}
        assert state._query == {}
