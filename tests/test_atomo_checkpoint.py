"""SVD compressor (ATOMO-style) and checkpointing."""

import numpy as np
import pytest

from repro.compression.atomo import SVDLowRankState, best_rank_r_error
from repro.models.convnets import make_mlp
from repro.optim.sgd import SGD
from repro.train.checkpoint import load_checkpoint, save_checkpoint


class TestSVDCompressor:
    def test_optimal_in_one_step(self, rng):
        """SVD reaches the Eckart-Young floor immediately (no EF)."""
        matrix = rng.normal(size=(20, 30))
        state = SVDLowRankState(rank=3, use_error_feedback=False)
        p, q = state.compress("w", matrix)
        m_hat = SVDLowRankState.reconstruct(p, q)
        err = np.linalg.norm(matrix - m_hat) / np.linalg.norm(matrix)
        assert err == pytest.approx(best_rank_r_error(matrix, 3), rel=1e-10)

    def test_beats_one_step_powersgd(self, rng):
        """The quality gap that made ATOMO expensive but optimal."""
        from repro.compression.powersgd import PowerSGDState

        matrix = rng.normal(size=(24, 24))
        svd = SVDLowRankState(rank=2, use_error_feedback=False)
        p, q = svd.compress("w", matrix)
        svd_err = np.linalg.norm(matrix - p @ q.T)

        power = PowerSGDState(rank=2, seed=0, use_error_feedback=False)
        p1 = power.compute_p("w", matrix)
        q1 = power.compute_q("w", p1)
        power_err = np.linalg.norm(matrix - power.reconstruct("w", q1))
        assert svd_err <= power_err + 1e-12

    def test_error_feedback_invariant(self, rng):
        state = SVDLowRankState(rank=2, use_error_feedback=True)
        base = rng.normal(size=(10, 12))
        total_in = np.zeros_like(base)
        total_out = np.zeros_like(base)
        for _ in range(100):
            grad = base + 0.1 * rng.normal(size=base.shape)
            p, q = state.compress("w", grad)
            total_out += p @ q.T
            total_in += grad
        gap = np.linalg.norm(total_out - total_in) / np.linalg.norm(total_in)
        assert gap < 0.15

    def test_factor_shapes(self, rng):
        state = SVDLowRankState(rank=4)
        p, q = state.compress("w", rng.normal(size=(6, 50)))
        assert p.shape == (6, 4)
        assert q.shape == (50, 4)

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="rank"):
            SVDLowRankState(rank=0)
        with pytest.raises(ValueError, match="matrix"):
            SVDLowRankState(rank=2).compress("w", rng.normal(size=5))
        with pytest.raises(ValueError, match="matrix"):
            best_rank_r_error(rng.normal(size=5), 2)

    def test_best_rank_r_error_zero_matrix(self):
        assert best_rank_r_error(np.zeros((4, 4)), 2) == 0.0


class TestCheckpoint:
    def _train_a_bit(self, model, opt, rng, steps=3):
        from repro.nn.loss import CrossEntropyLoss

        loss_fn = CrossEntropyLoss()
        for _ in range(steps):
            x = rng.normal(size=(8, 6))
            y = rng.integers(0, 3, size=8)
            model.zero_grad()
            loss_fn(model(x), y)
            model.backward(loss_fn.backward())
            opt.step()

    def test_roundtrip_restores_parameters_and_momentum(self, rng, tmp_path):
        model = make_mlp(6, 12, 3, rng=np.random.default_rng(0))
        opt = SGD(model, lr=0.05, momentum=0.9)
        self._train_a_bit(model, opt, rng)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(path, model, opt, metadata={"epoch": 7})

        model2 = make_mlp(6, 12, 3, rng=np.random.default_rng(99))
        opt2 = SGD(model2, lr=0.3, momentum=0.9)
        meta = load_checkpoint(path, model2, opt2)
        assert meta == {"epoch": 7}
        np.testing.assert_array_equal(model2.state_vector(), model.state_vector())
        assert opt2.lr == pytest.approx(0.05)
        assert set(opt2._velocity) == set(opt._velocity)
        for name in opt._velocity:
            np.testing.assert_array_equal(opt2._velocity[name], opt._velocity[name])

    def test_resumed_training_is_bitwise_identical(self, rng, tmp_path):
        """Training 3+3 steps with a checkpoint in between equals 6 straight
        steps on the same data."""
        data_rng1 = np.random.default_rng(5)
        model_a = make_mlp(6, 12, 3, rng=np.random.default_rng(0))
        opt_a = SGD(model_a, lr=0.05, momentum=0.9)
        self._train_a_bit(model_a, opt_a, data_rng1, steps=6)

        data_rng2 = np.random.default_rng(5)
        model_b = make_mlp(6, 12, 3, rng=np.random.default_rng(0))
        opt_b = SGD(model_b, lr=0.05, momentum=0.9)
        self._train_a_bit(model_b, opt_b, data_rng2, steps=3)
        path = str(tmp_path / "mid.npz")
        save_checkpoint(path, model_b, opt_b)
        model_c = make_mlp(6, 12, 3, rng=np.random.default_rng(42))
        opt_c = SGD(model_c, lr=0.1, momentum=0.9)
        load_checkpoint(path, model_c, opt_c)
        self._train_a_bit(model_c, opt_c, data_rng2, steps=3)
        np.testing.assert_allclose(
            model_c.state_vector(), model_a.state_vector(), rtol=1e-12
        )

    def test_parameter_count_mismatch_rejected(self, rng, tmp_path):
        model = make_mlp(6, 12, 3, rng=np.random.default_rng(0))
        opt = SGD(model, lr=0.05)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(path, model, opt)
        other = make_mlp(6, 8, 3, rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="parameters"):
            load_checkpoint(path, other, SGD(other, lr=0.05))
