"""The chaos harness: seeded campaigns, honest verdicts, no leaks.

Full multi-scenario campaigns run in the CI ``chaos`` job (``python -m
repro chaos``); the tests here keep the harness itself honest — report
rendering, input validation, the campaign seeding contract, and that a
single cheap campaign runs green end-to-end and leaves the shm registry
empty (enforced test-wide by the conftest guard).
"""

import pytest

from repro.chaos import (
    SCENARIOS,
    CampaignResult,
    ChaosReport,
    run_campaigns,
)

pytestmark = pytest.mark.faults


class TestReportRendering:
    def test_pass_and_fail_verdicts(self):
        green = CampaignResult("workers", 0, "world=2", duration_s=0.5)
        red = CampaignResult(
            "gossip", 1, "peers=3", failures=["weights diverged"],
            duration_s=1.25,
        )
        assert green.passed and not red.passed
        assert "[PASS] workers #0" in green.render()
        rendered = red.render()
        assert "[FAIL] gossip #1" in rendered
        assert "weights diverged" in rendered

    def test_report_aggregates(self):
        report = ChaosReport(results=[
            CampaignResult("workers", 0, "a"),
            CampaignResult("elastic", 0, "b", failures=["boom"]),
        ])
        assert not report.passed
        assert report.failures == 1
        assert "2 campaigns, 1 failed" in report.render()
        assert "all invariants held" not in report.render()

    def test_all_green_banner(self):
        report = ChaosReport(results=[CampaignResult("workers", 0, "a")])
        assert report.passed
        assert report.render().endswith("0 failed — all invariants held")


class TestValidation:
    def test_rejects_zero_campaigns(self):
        with pytest.raises(ValueError, match="campaigns"):
            run_campaigns(campaigns=0)

    def test_rejects_unknown_scenario(self):
        with pytest.raises(ValueError, match="unknown scenarios"):
            run_campaigns(scenarios=("workers", "bogus"))

    def test_scenario_registry_is_complete(self):
        assert SCENARIOS == ("workers", "elastic", "gossip")


class TestCampaigns:
    def test_gossip_campaign_runs_green(self):
        # The cheapest scenario: single-process, no worker children.
        report = run_campaigns(scenarios=("gossip",), campaigns=1, seed=0)
        assert len(report.results) == 1
        (result,) = report.results
        assert result.scenario == "gossip"
        assert result.passed, result.render()

    def test_workers_campaign_runs_green_and_logs(self):
        # Seed 42's first workers campaign draws crash/slow faults (no
        # hangs), so it completes without paying a timeout detection.
        lines = []
        report = run_campaigns(
            scenarios=("workers",), campaigns=1, seed=42, log=lines.append
        )
        assert report.passed, report.render()
        assert any("workers #0" in line for line in lines)

    def test_campaign_config_is_seed_deterministic(self):
        first = run_campaigns(scenarios=("gossip",), campaigns=1, seed=7)
        second = run_campaigns(scenarios=("gossip",), campaigns=1, seed=7)
        assert first.results[0].config == second.results[0].config
        assert first.results[0].failures == second.results[0].failures
