"""Loss functions: values and gradients."""

import numpy as np
import pytest

from repro.nn.loss import CrossEntropyLoss, MSELoss
from tests.gradcheck import numeric_grad


class TestCrossEntropy:
    def test_uniform_logits_give_log_classes(self):
        loss = CrossEntropyLoss()
        logits = np.zeros((4, 10))
        labels = np.array([0, 3, 5, 9])
        assert loss(logits, labels) == pytest.approx(np.log(10))

    def test_perfect_prediction_near_zero(self):
        loss = CrossEntropyLoss()
        logits = np.full((2, 3), -50.0)
        logits[0, 1] = 50.0
        logits[1, 2] = 50.0
        assert loss(logits, np.array([1, 2])) == pytest.approx(0.0, abs=1e-6)

    def test_gradient_matches_numeric(self, rng):
        loss = CrossEntropyLoss()
        logits = rng.normal(size=(3, 5))
        labels = np.array([1, 0, 4])
        loss(logits, labels)
        analytic = loss.backward()
        numeric = numeric_grad(lambda: loss.forward(logits, labels), logits)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-5, atol=1e-8)

    def test_gradient_rows_sum_to_zero(self, rng):
        loss = CrossEntropyLoss()
        logits = rng.normal(size=(4, 6))
        loss(logits, np.array([0, 1, 2, 3]))
        grad = loss.backward()
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-12)

    def test_numerical_stability_huge_logits(self):
        loss = CrossEntropyLoss()
        logits = np.array([[1e4, -1e4, 0.0]])
        value = loss(logits, np.array([0]))
        assert np.isfinite(value)
        assert value == pytest.approx(0.0, abs=1e-6)

    def test_shape_validation(self, rng):
        loss = CrossEntropyLoss()
        with pytest.raises(ValueError, match="labels"):
            loss(rng.normal(size=(3, 4)), np.array([0, 1]))
        with pytest.raises(ValueError, match="logits"):
            loss(rng.normal(size=(3,)), np.array([0, 1, 2]))

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError, match="before forward"):
            CrossEntropyLoss().backward()


class TestMSE:
    def test_value(self):
        loss = MSELoss()
        assert loss(np.array([1.0, 2.0]), np.array([0.0, 0.0])) == pytest.approx(2.5)

    def test_gradient_matches_numeric(self, rng):
        loss = MSELoss()
        pred = rng.normal(size=(3, 2))
        target = rng.normal(size=(3, 2))
        loss(pred, target)
        analytic = loss.backward()
        numeric = numeric_grad(lambda: loss.forward(pred, target), pred)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-5, atol=1e-8)

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError, match="shape"):
            MSELoss()(rng.normal(size=(2, 2)), rng.normal(size=(2, 3)))
