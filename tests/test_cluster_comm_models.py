"""ClusterSpec communication models: flat, topology-aware, algorithm-select."""

import pytest

from repro.comm.cost_model import allreduce_time
from repro.comm.topology import ClusterTopology
from repro.models import get_model_spec
from repro.sim.calibration import LINK_10GBE
from repro.sim.strategies import ClusterSpec, simulate_iteration


@pytest.fixture(scope="module")
def resnet18():
    return get_model_spec("ResNet-18")


class TestAllreduceCost:
    def test_default_matches_flat_ring(self):
        cluster = ClusterSpec(32)
        nbytes = 25e6
        assert cluster.allreduce_cost(nbytes) == pytest.approx(
            allreduce_time(nbytes, 32, LINK_10GBE)
        )

    def test_topology_never_worse_than_flat(self):
        topo = ClusterSpec(32, topology=ClusterTopology(8, 4))
        flat = ClusterSpec(32)
        for nbytes in (1e4, 1e6, 1e8):
            assert topo.allreduce_cost(nbytes) <= flat.allreduce_cost(nbytes) + 1e-12

    def test_algorithm_selection_never_worse(self):
        auto = ClusterSpec(32, algorithm_selection=True)
        flat = ClusterSpec(32)
        for nbytes in (1e3, 1e5, 1e7, 1e9):
            assert auto.allreduce_cost(nbytes) <= flat.allreduce_cost(nbytes) + 1e-12

    def test_topology_world_size_must_match(self):
        with pytest.raises(ValueError, match="topology world size"):
            ClusterSpec(16, topology=ClusterTopology(8, 4))


class TestSimulationWithCommModels:
    def test_topology_speeds_up_comm_bound_iteration(self, resnet18):
        """Small fused compressed buckets are startup-bound: the two-level
        schedule with fewer slow-link steps shaves exposed comm."""
        flat = simulate_iteration(
            "ssgd", resnet18, cluster=ClusterSpec(32), batch_size=16,
        )
        topo = simulate_iteration(
            "ssgd", resnet18,
            cluster=ClusterSpec(32, topology=ClusterTopology(8, 4)),
            batch_size=16,
        )
        assert topo.total <= flat.total + 1e-9

    def test_all_methods_run_with_topology(self, resnet18):
        cluster = ClusterSpec(8, topology=ClusterTopology(2, 4))
        for method in ("ssgd", "acpsgd", "powersgd_star", "randomk"):
            bd = simulate_iteration(method, resnet18, cluster=cluster,
                                    batch_size=16, rank=4)
            assert bd.total > 0

    def test_algorithm_selection_runs(self, resnet18):
        cluster = ClusterSpec(16, algorithm_selection=True)
        bd = simulate_iteration("acpsgd", resnet18, cluster=cluster,
                                batch_size=16, rank=4)
        assert bd.total > 0
