"""Analytical accounting behind Tables I and II."""

import pytest

from repro.compression.complexity import communicate_elements, compress_flops
from repro.compression.ratios import (
    acpsgd_compressed_elements,
    compression_ratio,
    powersgd_compressed_elements,
    signsgd_compressed_bits,
    topk_compressed_elements,
    total_elements,
)


class TestRatios:
    SHAPES = [(64, 32), (64,), (16, 8, 3, 3)]  # 2048 + 64 + 1152 = 3264

    def test_total_elements(self):
        assert total_elements(self.SHAPES) == 3264

    def test_powersgd_elements(self):
        # (64+32)*4 + (16+72)*4 compressed + 64 uncompressed
        expected = (64 + 32) * 4 + (16 + 72) * 4 + 64
        assert powersgd_compressed_elements(self.SHAPES, rank=4) == expected

    def test_acpsgd_is_half_plus_vectors(self):
        power = powersgd_compressed_elements(self.SHAPES, rank=4)
        acp = acpsgd_compressed_elements(self.SHAPES, rank=4)
        assert acp == pytest.approx((power - 64) / 2 + 64)

    def test_rank_capped_by_matrix_dims(self):
        # A 2 x 100 matrix caps rank at 2.
        assert powersgd_compressed_elements([(2, 100)], rank=32) == (2 + 100) * 2

    def test_signsgd_bits(self):
        assert signsgd_compressed_bits(self.SHAPES) == 3264

    def test_topk_elements(self):
        assert topk_compressed_elements(self.SHAPES, 0.01) == 33

    def test_compression_ratio_dispatch(self):
        assert compression_ratio(self.SHAPES, "signsgd") == 32.0
        assert compression_ratio(self.SHAPES, "topk", ratio=0.001) == pytest.approx(
            3264 / max(1, round(3264 * 0.001))
        )
        assert compression_ratio(self.SHAPES, "powersgd", rank=4) > 1
        with pytest.raises(ValueError, match="unknown method"):
            compression_ratio(self.SHAPES, "gzip")

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            powersgd_compressed_elements(self.SHAPES, rank=0)
        with pytest.raises(ValueError):
            topk_compressed_elements(self.SHAPES, 0.0)


class TestComplexity:
    def test_ssgd_communicate(self):
        assert communicate_elements("ssgd", 4, 1000) == pytest.approx(1500)
        assert communicate_elements("ssgd", 1, 1000) == 0.0

    def test_signsgd_linear_in_p(self):
        t4 = communicate_elements("signsgd", 4, 3200)
        t8 = communicate_elements("signsgd", 8, 3200)
        assert t8 / t4 == pytest.approx(7 / 3)

    def test_topk(self):
        assert communicate_elements("topk", 4, 1000, k=10) == 60

    def test_powersgd_vs_acpsgd_halving(self):
        power = communicate_elements("powersgd", 8, 1000, n_c=100)
        acp = communicate_elements("acpsgd", 8, 1000, n_c=100)
        assert acp == pytest.approx(power / 2)

    def test_compress_flops_orderings(self):
        n = 1_000_000
        assert compress_flops("ssgd", n) == 0.0
        sign = compress_flops("signsgd", n)
        topk = compress_flops("topk", n, k=1000)
        power = compress_flops("powersgd", n, rank=4, rows=1000, cols=1000)
        acp = compress_flops("acpsgd", n, rank=4, rows=1000, cols=1000)
        assert sign > 0 and topk > 0
        assert acp < power  # the halving claim

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            communicate_elements("magic", 4, 10)
        with pytest.raises(ValueError):
            compress_flops("magic", 10)
