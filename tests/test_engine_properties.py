"""Property-based tests of the discrete-event engine on random task DAGs."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.engine import GPU_MAIN, GPU_SIDE, NIC, Engine, Task

STREAMS = (GPU_MAIN, GPU_SIDE, NIC)


@st.composite
def random_dag(draw):
    """A random forward-referencing task DAG (acyclic by construction)."""
    count = draw(st.integers(1, 24))
    tasks = []
    for idx in range(count):
        stream = draw(st.sampled_from(STREAMS))
        work = draw(st.floats(0.0, 5.0))
        max_deps = min(idx, 3)
        dep_count = draw(st.integers(0, max_deps))
        deps = tuple(
            f"t{d}" for d in sorted(
                draw(
                    st.sets(st.integers(0, idx - 1), min_size=dep_count,
                            max_size=dep_count)
                )
            )
        ) if idx > 0 else ()
        contends = draw(st.booleans())
        priority = draw(st.integers(0, 3))
        tasks.append(
            Task(f"t{idx}", stream, work, deps, tag="other",
                 contends=contends, priority=priority)
        )
    return tasks


class TestEngineProperties:
    @settings(max_examples=60, deadline=None)
    @given(tasks=random_dag(), rate=st.sampled_from((0.2, 0.5, 1.0)))
    def test_invariants_fifo(self, tasks, rate):
        records = Engine(contention_rate=rate).run(tasks)
        self._check_invariants(tasks, records, rate)

    @settings(max_examples=40, deadline=None)
    @given(tasks=random_dag())
    def test_invariants_priority_nic(self, tasks):
        records = Engine(disciplines={NIC: "priority"}).run(tasks)
        self._check_invariants(tasks, records, 0.4, fifo_nic=False)

    def _check_invariants(self, tasks, records, rate, fifo_nic=True):
        assert len(records) == len(tasks)
        by_id = {t.task_id: t for t in tasks}
        for task_id, record in records.items():
            task = by_id[task_id]
            # Dependencies respected.
            for dep in task.deps:
                assert records[dep].end <= record.start + 1e-9
            # Duration at least the work (never faster than full rate).
            assert record.duration >= task.work - 1e-9
            # Contention can at most slow by 1/rate.
            assert record.duration <= task.work / rate + 1e-9

        # No overlap within one stream.
        for stream in STREAMS:
            intervals = sorted(
                (records[t.task_id].start, records[t.task_id].end)
                for t in tasks if t.stream == stream
                and records[t.task_id].duration > 0
            )
            for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
                assert e1 <= s2 + 1e-9

        # Makespan bounded below by per-stream total work and by the
        # longest dependency chain.
        makespan = max(record.end for record in records.values())
        for stream in STREAMS:
            total = sum(t.work for t in tasks if t.stream == stream)
            assert makespan >= total - 1e-9

        # FIFO streams preserve submission order of start times.
        if fifo_nic:
            nic_tasks = [t for t in tasks if t.stream == NIC]
            starts = [records[t.task_id].start for t in nic_tasks]
            assert starts == sorted(starts)

    @settings(max_examples=30, deadline=None)
    @given(tasks=random_dag())
    def test_determinism(self, tasks):
        first = Engine().run(tasks)
        second = Engine().run(tasks)
        for task_id in first:
            assert first[task_id].start == second[task_id].start
            assert first[task_id].end == second[task_id].end

    @settings(max_examples=30, deadline=None)
    @given(tasks=random_dag())
    def test_contention_only_slows_gpu_streams(self, tasks):
        records = Engine(contention_rate=0.25).run(tasks)
        for task in tasks:
            if task.stream == NIC:
                assert records[task.task_id].duration == pytest.approx(
                    task.work, abs=1e-9
                )
