"""Sign-SGD compressor: packing, majority vote, error feedback."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compression.signsgd import (
    SignCompressor,
    SignPayload,
    majority_vote_aggregate,
)


class TestCompression:
    def test_payload_is_32x_smaller(self, rng):
        grad = rng.normal(size=6400)
        payload = SignCompressor(use_error_feedback=False).compress("g", grad)
        # 6400 bits = 800 bytes (+4 for the scale) vs 25600 fp32 bytes.
        assert payload.packed_bits.nbytes == 800
        assert payload.nbytes == 804

    def test_sign_roundtrip(self, rng):
        grad = rng.normal(size=100)
        payload = SignCompressor(use_error_feedback=False).compress("g", grad)
        signs = SignCompressor.unpack_signs(payload)
        expected = np.where(grad >= 0, 1.0, -1.0)
        np.testing.assert_array_equal(signs, expected)

    def test_scale_is_l1_mean(self, rng):
        grad = rng.normal(size=50)
        payload = SignCompressor(use_error_feedback=False).compress("g", grad)
        assert payload.scale == pytest.approx(np.abs(grad).mean())

    def test_non_multiple_of_8_lengths(self, rng):
        grad = rng.normal(size=13)
        payload = SignCompressor(use_error_feedback=False).compress("g", grad)
        assert SignCompressor.unpack_signs(payload).size == 13

    @settings(max_examples=30, deadline=None)
    @given(size=st.integers(1, 200), seed=st.integers(0, 5000))
    def test_property_roundtrip(self, size, seed):
        rng = np.random.default_rng(seed)
        grad = rng.normal(size=size)
        payload = SignCompressor(use_error_feedback=False).compress("g", grad)
        signs = SignCompressor.unpack_signs(payload)
        assert signs.size == size
        assert set(np.unique(signs)).issubset({-1.0, 1.0})


class TestErrorFeedback:
    def test_residual_carried_to_next_step(self, rng):
        comp = SignCompressor(use_error_feedback=True)
        grad = np.array([10.0, -0.1, 0.1, -10.0])
        comp.compress("g", grad)
        # Residual = grad - scale*sign(grad); compressing zeros next should
        # reproduce the residual's signs.
        payload2 = comp.compress("g", np.zeros(4))
        scale = np.abs(grad).mean()
        residual = grad - scale * np.sign(grad)
        expected_signs = np.where(residual >= 0, 1.0, -1.0)
        np.testing.assert_array_equal(
            SignCompressor.unpack_signs(payload2), expected_signs
        )

    def test_ef_cumulative_transmission_tracks_gradient(self, rng):
        """Sum of transmitted representatives ~ sum of inputs over time."""
        comp = SignCompressor(use_error_feedback=True)
        total_in = np.zeros(64)
        total_out = np.zeros(64)
        base = rng.normal(size=64)
        for _ in range(400):
            grad = base + 0.1 * rng.normal(size=64)
            payload = comp.compress("g", grad)
            rep = payload.scale * SignCompressor.unpack_signs(payload)
            total_in += grad
            total_out += rep
        gap = np.linalg.norm(total_out - total_in) / np.linalg.norm(total_in)
        assert gap < 0.5

    def test_reset_clears_state(self, rng):
        comp = SignCompressor(use_error_feedback=True)
        comp.compress("g", rng.normal(size=8))
        comp.reset()
        assert comp._error == {}


class TestMajorityVote:
    def test_unanimous(self):
        payloads = [
            SignCompressor(use_error_feedback=False).compress("g", np.array([1.0, -2.0]))
            for _ in range(3)
        ]
        out = majority_vote_aggregate(payloads, (2,))
        scale = payloads[0].scale
        np.testing.assert_allclose(out, [scale, -scale])

    def test_majority_wins(self):
        grads = [np.array([1.0]), np.array([1.0]), np.array([-1.0])]
        payloads = [
            SignCompressor(use_error_feedback=False).compress("g", g) for g in grads
        ]
        out = majority_vote_aggregate(payloads, (1,))
        assert out[0] > 0

    def test_tie_resolves_positive(self):
        grads = [np.array([1.0]), np.array([-1.0])]
        payloads = [
            SignCompressor(use_error_feedback=False).compress("g", g) for g in grads
        ]
        out = majority_vote_aggregate(payloads, (1,))
        assert out[0] > 0

    def test_size_mismatch_rejected(self, rng):
        p1 = SignCompressor(use_error_feedback=False).compress("g", rng.normal(size=4))
        p2 = SignCompressor(use_error_feedback=False).compress("g", rng.normal(size=5))
        with pytest.raises(ValueError, match="disagree"):
            majority_vote_aggregate([p1, p2], (4,))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            majority_vote_aggregate([], (1,))
