"""Unit tests of the repro.sched core: graph transforms, resource model,
placement schedulers, topology builders, Gantt rows, and the bench.

The crossover-reproduction test is the tentpole acceptance criterion: the
task-DAG model over the scheduler core must reproduce the analytic
flat/hierarchical all-reduce times — and hence the crossover point — that
:mod:`repro.comm.topology` prices.
"""

import pytest

from repro.comm.cost_model import ETHERNET_10G, INFINIBAND_100G
from repro.comm.topology import (
    NVLINK2,
    PCIE3_X16,
    ClusterTopology,
    crossover_bytes,
    flat_allreduce_time,
    hierarchical_allreduce_time,
)
from repro.sched import (
    EventLoop,
    LeastLoadedPlacement,
    ResourceModel,
    ResourcePool,
    Task,
    TaskGraph,
    TopologyPlacement,
    build_allreduce_graph,
    node_pools,
    resolve_discipline,
    simulate_allreduce_makespan,
)

TOPOLOGY = ClusterTopology(
    num_nodes=4, gpus_per_node=4,
    intra_link=NVLINK2, inter_link=ETHERNET_10G,
)


class TestTaskGraph:
    def test_duplicate_id_rejected(self):
        graph = TaskGraph([Task("a", "s", 1.0)])
        with pytest.raises(ValueError, match="duplicate task id"):
            graph.add(Task("a", "s", 1.0))

    def test_unknown_dep_rejected_by_validate(self):
        graph = TaskGraph([Task("a", "s", 1.0, deps=("ghost",))])
        with pytest.raises(ValueError, match="unknown"):
            graph.validate()

    def test_prefixed_rewrites_ids_and_deps(self):
        graph = TaskGraph([
            Task("a", "s", 1.0),
            Task("b", "s", 1.0, deps=("a",)),
        ])
        prefixed = graph.prefixed("it0:")
        assert [t.task_id for t in prefixed.tasks] == ["it0:a", "it0:b"]
        assert prefixed.get("it0:b").deps == ("it0:a",)

    def test_with_deps_replaces_and_validates(self):
        graph = TaskGraph([
            Task("a", "s", 1.0),
            Task("b", "s", 1.0, deps=("a",)),
        ])
        rewired = graph.with_deps({"b": ()})
        assert rewired.get("b").deps == ()
        with pytest.raises(ValueError, match="unknown task ids"):
            graph.with_deps({"ghost": ()})

    def test_merged_and_resources_order(self):
        left = TaskGraph([Task("a", "x", 1.0)])
        right = TaskGraph([Task("b", "y", 1.0), Task("c", "x", 1.0)])
        merged = left.merged(right)
        assert len(merged) == 3
        assert merged.resources() == ("x", "y")

    def test_cycle_detected(self):
        graph = TaskGraph([
            Task("a", "s", 1.0, deps=("b",)),
            Task("b", "s", 1.0, deps=("a",)),
        ])
        with pytest.raises(ValueError, match="cycle"):
            graph.critical_path_work()

    def test_critical_path_work(self):
        graph = TaskGraph([
            Task("a", "s", 2.0),
            Task("b", "t", 5.0),
            Task("c", "s", 3.0, deps=("a",)),
        ])
        assert graph.critical_path_work() == 5.0


class TestResourceModel:
    @staticmethod
    def _active(spec):
        return {
            resource: Task(f"on_{resource}", resource, 1.0, contends=contends)
            for resource, contends in spec.items()
        }

    def test_gpu_contention_pairs(self):
        model = ResourceModel.gpu_contention(0.25)
        rates = model.rates(
            self._active({"gpu_main": True, "gpu_side": True})
        )
        assert rates == {"gpu_main": 0.25, "gpu_side": 0.25}

    def test_non_contending_task_runs_free(self):
        model = ResourceModel.gpu_contention(0.25)
        rates = model.rates(
            self._active({"gpu_main": True, "gpu_side": False})
        )
        assert rates == {"gpu_main": 1.0, "gpu_side": 1.0}

    def test_unrelated_resources_unaffected(self):
        model = ResourceModel({("a", "b"): 0.5})
        rates = model.rates(
            self._active({"a": True, "b": True, "c": True})
        )
        assert rates == {"a": 0.5, "b": 0.5, "c": 1.0}

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError, match="contention_rate"):
            ResourceModel({("a", "b"): 0.0})

    def test_pool_validation(self):
        with pytest.raises(ValueError):
            ResourcePool("p", ())
        with pytest.raises(ValueError):
            ResourcePool("p", ("m", "m"))

    def test_unknown_discipline(self):
        with pytest.raises(ValueError, match="unknown discipline"):
            resolve_discipline("round-robin", "nic")


class TestPlacement:
    def test_least_loaded_balances_work(self):
        pool = ResourcePool("intra", ("m0", "m1"))
        graph = TaskGraph([
            Task("a", "intra", 3.0),
            Task("b", "intra", 1.0),
            Task("c", "intra", 1.0),
        ])
        placed = LeastLoadedPlacement().assign(graph, (pool,))
        streams = [t.stream for t in placed.tasks]
        assert set(streams) == {"m0", "m1"}
        # a -> m0 (3.0), b -> m1 (1.0), c -> m1 (still least loaded)
        assert streams == ["m0", "m1", "m1"]

    def test_topology_placement_honours_hints(self):
        topology = ClusterTopology(num_nodes=2, gpus_per_node=2)
        pools = node_pools(topology)
        graph = TaskGraph([
            Task("a", "intra", 1.0),
            Task("b", "intra", 1.0),
        ])
        placed = TopologyPlacement(topology, {"a": 1, "b": 0}).assign(
            graph, pools
        )
        assert placed.get("a").stream == "node1:intra"
        assert placed.get("b").stream == "node0:intra"

    def test_topology_placement_rejects_bad_hint(self):
        topology = ClusterTopology(num_nodes=2, gpus_per_node=2)
        graph = TaskGraph([Task("a", "intra", 1.0)])
        with pytest.raises(ValueError):
            TopologyPlacement(topology, {"a": 9}).assign(
                graph, node_pools(topology)
            )


class TestTopologyBuilders:
    def test_node_pools_shape(self):
        pools = node_pools(TOPOLOGY)
        by_name = {pool.name: pool for pool in pools}
        assert set(by_name) == {"intra", "nic"}
        assert by_name["intra"].members == tuple(
            f"node{i}:intra" for i in range(4)
        )

    def test_flat_graph_matches_analytic(self):
        nbytes = 8 * 1024 * 1024
        makespan = simulate_allreduce_makespan(nbytes, TOPOLOGY, "flat")
        expected = flat_allreduce_time(nbytes, TOPOLOGY)
        assert makespan == pytest.approx(expected, rel=1e-9)

    def test_hierarchical_graph_matches_analytic(self):
        nbytes = 8 * 1024 * 1024
        makespan = simulate_allreduce_makespan(
            nbytes, TOPOLOGY, "hierarchical"
        )
        expected = hierarchical_allreduce_time(nbytes, TOPOLOGY)
        assert makespan == pytest.approx(expected, rel=1e-9)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            build_allreduce_graph(1024, TOPOLOGY, scheme="mesh")

    def test_crossover_reproduced_by_task_dag(self):
        """Acceptance: the scheduler-core DAG model reproduces the
        analytic crossover point between flat and hierarchical
        (hierarchical wins below it — start-up bound — flat above)."""
        topology = ClusterTopology(
            num_nodes=4, gpus_per_node=4,
            intra_link=PCIE3_X16, inter_link=INFINIBAND_100G,
        )
        analytic = crossover_bytes(topology)
        assert 1024 < analytic < 1e9  # a real interior crossover
        for factor, faster in ((0.25, "hierarchical"), (4.0, "flat")):
            nbytes = analytic * factor
            flat = simulate_allreduce_makespan(nbytes, topology, "flat")
            hier = simulate_allreduce_makespan(
                nbytes, topology, "hierarchical"
            )
            winner = "hierarchical" if hier < flat else "flat"
            assert winner == faster, (
                f"at {factor}x crossover the DAG model says {winner}, "
                f"the analytic model says {faster}"
            )
        # And near the crossover the two schemes price within a few
        # percent of each other — the DAG model sits on the same curves.
        flat = simulate_allreduce_makespan(analytic, topology, "flat")
        hier = simulate_allreduce_makespan(analytic, topology,
                                           "hierarchical")
        assert hier == pytest.approx(flat, rel=0.05)


class TestHierarchicalGantt:
    def test_trace_renders_per_node_rows(self):
        """Satellite: gantt rows generalize beyond the legacy trio."""
        from repro.sim.gantt import render_gantt

        topology = ClusterTopology(num_nodes=2, gpus_per_node=2)
        graph = build_allreduce_graph(32 * 1024 * 1024, topology)
        records = EventLoop().run(graph)
        chart = render_gantt(records, width=60)
        for row in ("node0:intra", "node1:intra", "node0:nic", "node1:nic"):
            assert row in chart
        assert "=" in chart  # comm tasks render as '='


class TestSimBench:
    def test_bench_smoke(self):
        from repro.sched.bench import render_sim_report, run_sim_bench

        report = run_sim_bench(num_tasks=1200, streams=4, seed=1)
        assert report["deterministic"] is True
        assert report["per_task_cost_growth"] <= 4.0
        assert report["tasks_per_s"] > 0
        text = render_sim_report(report)
        assert "bit-identical" in text

    def test_bench_rejects_tiny_graphs(self):
        from repro.sched.bench import run_sim_bench

        with pytest.raises(ValueError):
            run_sim_bench(num_tasks=10)
