"""Property tests: ``ArrayDataset.shard`` partitions the data.

The elastic trainer re-shards at every membership change, so the shard
operator must stay pairwise **disjoint** and jointly **exhaustive** for
every world size a churn schedule can visit — no sample silently dropped,
none double-owned — and the re-shard must remain a pure function of
``(data, world_size)`` so replays are bit-identical.
"""

import numpy as np
import pytest

from repro.train.datasets import ArrayDataset


def make_dataset(num_samples: int) -> ArrayDataset:
    # Unique per-sample payloads so ownership can be tracked exactly.
    inputs = np.arange(num_samples, dtype=np.float64).reshape(-1, 1)
    labels = np.arange(num_samples) % 7
    return ArrayDataset(inputs, labels)


def owned_ids(data: ArrayDataset, world_size: int) -> list:
    return [
        data.shard(rank, world_size).inputs[:, 0].astype(int).tolist()
        for rank in range(world_size)
    ]


class TestPartitionProperty:
    @pytest.mark.parametrize("num_samples", [1, 2, 7, 64, 101, 1000])
    @pytest.mark.parametrize("world_size", [1, 2, 3, 5, 8, 16])
    def test_disjoint_and_exhaustive(self, num_samples, world_size):
        data = make_dataset(num_samples)
        shards = owned_ids(data, world_size)
        flat = [sample for shard in shards for sample in shard]
        assert len(flat) == len(set(flat)), "shards overlap"
        assert sorted(flat) == list(range(num_samples)), "samples lost"

    @pytest.mark.parametrize("num_samples", [13, 96, 250])
    def test_partition_survives_world_size_changes(self, num_samples):
        """A churn trajectory p -> p-1 -> p -> p+1: every intermediate
        sharding is itself a partition of the full dataset."""
        data = make_dataset(num_samples)
        for world_size in (4, 3, 4, 5):
            shards = owned_ids(data, world_size)
            flat = sorted(s for shard in shards for s in shard)
            assert flat == list(range(num_samples))

    def test_reshard_is_deterministic(self):
        data = make_dataset(200)
        first = owned_ids(data, 3)
        again = owned_ids(data, 3)
        assert first == again

    def test_labels_travel_with_inputs(self):
        data = make_dataset(50)
        for rank in range(4):
            shard = data.shard(rank, 4)
            ids = shard.inputs[:, 0].astype(int)
            assert np.array_equal(shard.labels, ids % 7)

    def test_shard_sizes_balanced(self):
        """Strided sharding splits n samples into shards differing by <= 1."""
        data = make_dataset(103)
        sizes = [len(data.shard(rank, 4)) for rank in range(4)]
        assert sum(sizes) == 103
        assert max(sizes) - min(sizes) <= 1

    def test_out_of_range_rank_rejected(self):
        data = make_dataset(10)
        with pytest.raises(ValueError):
            data.shard(3, 3)
        with pytest.raises(ValueError):
            data.shard(-1, 3)
