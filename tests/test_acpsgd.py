"""ACP-SGD compressor: alternation, convergence, EF, halved costs."""

import numpy as np
import pytest

from repro.compression.acpsgd import ACPSGDState


def _run_steps(state: ACPSGDState, matrix: np.ndarray, steps: int) -> np.ndarray:
    m_hat = None
    for t in range(1, steps + 1):
        factor = state.compress("w", matrix, t)
        m_hat = state.finalize("w", factor, t)
    return m_hat


class TestAlternation:
    def test_parity_rule(self):
        assert ACPSGDState.compresses_p(1)
        assert not ACPSGDState.compresses_p(2)
        assert ACPSGDState.compresses_p(3)

    def test_odd_step_emits_p_shaped_factor(self, rng):
        state = ACPSGDState(rank=3, seed=0)
        matrix = rng.normal(size=(10, 20))
        factor = state.compress("w", matrix, step=1)
        assert factor.shape == (10, 3)  # P: n x r
        state.finalize("w", factor, step=1)
        factor2 = state.compress("w", matrix, step=2)
        assert factor2.shape == (20, 3)  # Q: m x r

    def test_one_factor_per_step_vs_powersgd_two(self, rng):
        """The headline cost claim: one projection + one orthogonalization
        per step — the emitted payload alternates and is half of Power-SGD's
        (n r + m r) per step."""
        state = ACPSGDState(rank=2, seed=0, use_error_feedback=False)
        matrix = rng.normal(size=(8, 6))
        p_factor = state.compress("w", matrix, 1)
        state.finalize("w", p_factor, 1)
        q_factor = state.compress("w", matrix, 2)
        state.finalize("w", q_factor, 2)
        assert p_factor.size + q_factor.size == (8 + 6) * 2


class TestConvergence:
    def test_converges_to_best_rank_r(self, rng):
        matrix = rng.normal(size=(20, 30))
        u, s, vt = np.linalg.svd(matrix)
        best = (u[:, :3] * s[:3]) @ vt[:3]
        state = ACPSGDState(rank=3, seed=1, use_error_feedback=False)
        # Each ACP step is half a power iteration, so allow twice the steps
        # Power-SGD needs for the same tolerance.
        m_hat = _run_steps(state, matrix, 80)
        np.testing.assert_allclose(
            np.linalg.norm(matrix - m_hat),
            np.linalg.norm(matrix - best),
            rtol=1e-3,
        )

    def test_exact_for_low_rank_matrix(self, rng):
        a = rng.normal(size=(12, 2))
        b = rng.normal(size=(9, 2))
        matrix = a @ b.T
        state = ACPSGDState(rank=2, seed=0, use_error_feedback=False)
        m_hat = _run_steps(state, matrix, 30)
        np.testing.assert_allclose(m_hat, matrix, atol=1e-6)

    def test_tracks_slowly_changing_gradients(self, rng):
        """The paper's argument: with small update steps, M_t ~ M_{t-1}, so
        alternate compression matches full power iteration quality."""
        state = ACPSGDState(rank=4, seed=2, use_error_feedback=False)
        base = rng.normal(size=(16, 16))
        m_hat = None
        for t in range(1, 60):
            drift = base + 0.01 * t * np.outer(np.ones(16), np.ones(16))
            factor = state.compress("w", drift, t)
            m_hat = state.finalize("w", factor, t)
        u, s, vt = np.linalg.svd(drift)
        best = (u[:, :4] * s[:4]) @ vt[:4]
        assert np.linalg.norm(drift - m_hat) < 1.2 * np.linalg.norm(drift - best)


class TestErrorFeedback:
    def test_cumulative_transmission_tracks_gradients(self, rng):
        state = ACPSGDState(rank=2, seed=3, use_error_feedback=True)
        base = rng.normal(size=(12, 16))
        total_in = np.zeros_like(base)
        total_out = np.zeros_like(base)
        for t in range(1, 200):
            grad = base + 0.1 * rng.normal(size=base.shape)
            factor = state.compress("w", grad, t)
            m_hat = state.finalize("w", factor, t)
            total_in += grad
            total_out += m_hat
        gap = np.linalg.norm(total_out - total_in) / np.linalg.norm(total_in)
        assert gap < 0.15

    def test_error_matches_algorithm2(self, rng):
        """E_t = (M_t + E_{t-1}) - P_t Q_t^T with the LOCAL factor."""
        state = ACPSGDState(rank=2, seed=0, use_error_feedback=True)
        matrix = rng.normal(size=(6, 8))
        factor = state.compress("w", matrix, 1)
        carried = state._carried["w"]  # orthonormal Q_t
        expected_error = matrix - factor @ carried.T
        np.testing.assert_allclose(state._error["w"], expected_error, atol=1e-12)

    def test_no_ef_loses_mass(self, rng):
        state = ACPSGDState(rank=1, seed=3, use_error_feedback=False)
        base = rng.normal(size=(12, 16))
        total_in = np.zeros_like(base)
        total_out = np.zeros_like(base)
        for t in range(1, 100):
            factor = state.compress("w", base, t)
            total_out += state.finalize("w", factor, t)
            total_in += base
        gap = np.linalg.norm(total_out - total_in) / np.linalg.norm(total_in)
        assert gap > 0.3


class TestProtocol:
    def test_finalize_requires_compress(self, rng):
        state = ACPSGDState(rank=2)
        with pytest.raises(RuntimeError, match="before compress"):
            state.finalize("w", rng.normal(size=(4, 2)), 1)

    def test_step_counter_one_based(self, rng):
        state = ACPSGDState(rank=2)
        with pytest.raises(ValueError, match="1-based"):
            state.compress("w", rng.normal(size=(4, 4)), 0)

    def test_matrix_validation(self, rng):
        state = ACPSGDState(rank=2)
        with pytest.raises(ValueError, match="matrix"):
            state.compress("w", rng.normal(size=4), 1)

    def test_shared_seed_factors_agree_across_workers(self, rng):
        """Two workers with the same seed emit mergeable factors: their
        carried (orthogonalized) factors are identical, so the all-reduce
        average is meaningful."""
        s1 = ACPSGDState(rank=2, seed=11)
        s2 = ACPSGDState(rank=2, seed=11)
        m1 = rng.normal(size=(8, 8))
        m2 = rng.normal(size=(8, 8))
        s1.compress("w", m1, 1)
        s2.compress("w", m2, 1)
        np.testing.assert_allclose(s1._carried["w"], s2._carried["w"], atol=1e-12)

    def test_reset(self, rng):
        state = ACPSGDState(rank=2)
        state.compress("w", rng.normal(size=(4, 4)), 1)
        state.reset()
        assert state._p == {} and state._q == {} and state._carried == {}

    def test_invalid_rank(self):
        with pytest.raises(ValueError, match="rank"):
            ACPSGDState(rank=0)


class TestDistributedEquivalence:
    def test_multi_worker_average_approximates_mean_gradient(self, rng):
        """Aggregating factors across workers approximates the mean gradient
        (cumulative, via EF)."""
        world = 4
        states = [ACPSGDState(rank=4, seed=9) for _ in range(world)]
        base = rng.normal(size=(10, 12))
        total_mean = np.zeros_like(base)
        total_out = np.zeros_like(base)
        for t in range(1, 120):
            grads = [base + 0.2 * rng.normal(size=base.shape) for _ in range(world)]
            factors = [s.compress("w", g, t) for s, g in zip(states, grads)]
            agg = sum(factors) / world
            outs = [s.finalize("w", agg, t) for s in states]
            for out in outs[1:]:
                np.testing.assert_allclose(out, outs[0], atol=1e-10)
            total_mean += np.mean(grads, axis=0)
            total_out += outs[0]
        gap = np.linalg.norm(total_out - total_mean) / np.linalg.norm(total_mean)
        assert gap < 0.2
