"""Property-based tests across all gradient aggregators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.comm.process_group import ProcessGroup
from repro.optim.aggregators import make_aggregator

ALL_AGGREGATORS = (
    ("ssgd", {}),
    ("signsgd", {}),
    ("topk", {"ratio": 0.2}),
    ("randomk", {"ratio": 0.2}),
    ("qsgd", {}),
    ("terngrad", {}),
    ("powersgd", {"rank": 2}),
    ("acpsgd", {"rank": 2}),
    ("dgc", {"ratio": 0.2}),
)


@st.composite
def worker_gradients(draw):
    """Random (world_size, named gradient dicts) input."""
    world = draw(st.integers(1, 5))
    rows = draw(st.integers(2, 12))
    cols = draw(st.integers(2, 12))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    per_worker = [
        {
            "w": rng.normal(size=(rows, cols)),
            "b": rng.normal(size=rows),
        }
        for _ in range(world)
    ]
    return world, per_worker


class TestSSGDExactness:
    @settings(max_examples=30, deadline=None)
    @given(data=worker_gradients())
    def test_property_exact_mean(self, data):
        world, per_worker = data
        agg = make_aggregator("ssgd", ProcessGroup(world))
        out = agg.aggregate([{k: v.copy() for k, v in g.items()}
                             for g in per_worker])
        for name in per_worker[0]:
            mean = np.mean([g[name] for g in per_worker], axis=0)
            np.testing.assert_allclose(out[name], mean, rtol=1e-9, atol=1e-12)


class TestUniversalProperties:
    @pytest.mark.parametrize("method,kwargs", ALL_AGGREGATORS)
    @settings(max_examples=8, deadline=None)
    @given(data=worker_gradients())
    def test_property_shape_and_finiteness(self, method, kwargs, data):
        world, per_worker = data
        agg = make_aggregator(method, ProcessGroup(world), **kwargs)
        out = agg.aggregate([{k: v.copy() for k, v in g.items()}
                             for g in per_worker])
        assert set(out) == set(per_worker[0])
        for name, grad in per_worker[0].items():
            assert out[name].shape == grad.shape
            assert np.isfinite(out[name]).all(), (method, name)

    @pytest.mark.parametrize("method,kwargs", ALL_AGGREGATORS)
    def test_repeated_steps_stay_finite(self, method, kwargs, rng):
        """Stateful compressors (EF, reuse, momentum) must not blow up
        over repeated steps on a noisy gradient stream."""
        world = 3
        agg = make_aggregator(method, ProcessGroup(world), **kwargs)
        base = {"w": rng.normal(size=(8, 10)), "b": rng.normal(size=8)}
        for _ in range(20):
            per_worker = [
                {k: v + 0.3 * rng.normal(size=v.shape) for k, v in base.items()}
                for _ in range(world)
            ]
            out = agg.aggregate(per_worker)
            for name in out:
                assert np.isfinite(out[name]).all(), (method, name)
                # Bounded: no more than ~100x the input magnitude.
                assert np.abs(out[name]).max() < 100 * (
                    np.abs(base[name]).max() + 1
                )

    @pytest.mark.parametrize("method,kwargs", ALL_AGGREGATORS)
    def test_descent_direction_on_average(self, method, kwargs, rng):
        """Across steps, the aggregated gradient should correlate with the
        true mean gradient (all methods are descent methods)."""
        world = 2
        agg = make_aggregator(method, ProcessGroup(world), **kwargs)
        base = rng.normal(size=(12, 12))
        dots = []
        for _ in range(30):
            per_worker = [
                {"w": base + 0.2 * rng.normal(size=base.shape)}
                for _ in range(world)
            ]
            out = agg.aggregate(per_worker)["w"]
            denom = np.linalg.norm(out) * np.linalg.norm(base)
            if denom > 0:
                dots.append((out * base).sum() / denom)
        assert np.mean(dots) > 0.15, method
