"""Process-worker pool: bit-identity, lifecycle, failure modes.

The acceptance property mirrors the thread backend's: running worker
backprop in child processes over shared-memory arena slabs must not
change a single bit of the training trajectory relative to the
sequential path — for every bucket-capable aggregation method, with
gradient accumulation, at larger world sizes, under both start methods,
and through elastic churn. On top of that, the pool owns real OS
resources (children, ``/dev/shm`` segments), so lifecycle — explicit
close, idempotency, crash containment, leak detection — is tested as
behavior, not left to the GC.
"""

import numpy as np
import pytest

from repro.comm.process_group import ProcessGroup
from repro.models.convnets import make_small_vgg
from repro.nn.norm import BatchNorm2d
from repro.optim.aggregators import make_aggregator
from repro.optim.sgd import SGD
from repro.perf import shm
from repro.perf.arena import GradientArena
from repro.perf.counters import ALLOC_STATS, AllocStats
from repro.perf.procpool import ProcessWorkerPool, WorkerStepTask
from repro.perf.replicas import iter_modules
from repro.train.datasets import make_cifar_like
from repro.train.trainer import DataParallelTrainer

pytestmark = pytest.mark.perf

METHODS = ["ssgd", "signsgd", "topk", "powersgd", "acpsgd"]


def run_training(
    method,
    workers,
    steps=3,
    world_size=2,
    seed=7,
    accumulation_steps=1,
    start_method=None,
    buffer_bytes=None,
):
    """Train a few steps; return (losses, weights, batchnorm buffers)."""
    train_data, test_data = make_cifar_like(
        num_train=64, num_test=8, seed=seed
    )
    model = make_small_vgg(base_width=2, rng=np.random.default_rng(seed))
    trainer = DataParallelTrainer(
        model,
        SGD(model, lr=0.05, momentum=0.9),
        make_aggregator(method, ProcessGroup(world_size)),
        train_data,
        test_data,
        batch_size_per_worker=4,
        seed=seed,
        accumulation_steps=accumulation_steps,
        workers=workers,
        worker_start_method=start_method,
        buffer_bytes=buffer_bytes,
    )
    with trainer:
        losses = [trainer.train_step() for _ in range(steps)]
    weights = np.concatenate(
        [param.data.ravel() for _, param in model.named_parameters()]
    )
    buffers = np.concatenate(
        [
            np.concatenate([m.running_mean, m.running_var])
            for m in iter_modules(model)
            if isinstance(m, BatchNorm2d)
        ]
    )
    return losses, weights, buffers


def assert_identical(result_a, result_b):
    losses_a, weights_a, buffers_a = result_a
    losses_b, weights_b, buffers_b = result_b
    assert losses_a == losses_b
    np.testing.assert_array_equal(weights_a, weights_b)
    np.testing.assert_array_equal(buffers_a, buffers_b)


class TestProcessBitExactness:
    @pytest.mark.parametrize("method", METHODS)
    def test_process_matches_sequential(self, method):
        assert_identical(
            run_training(method, workers="seq"),
            run_training(method, workers="process"),
        )

    def test_process_matches_sequential_with_accumulation(self):
        assert_identical(
            run_training(
                "ssgd", workers="seq", accumulation_steps=3, steps=2
            ),
            run_training(
                "ssgd", workers="process", accumulation_steps=3, steps=2
            ),
        )

    def test_process_matches_sequential_world_four(self):
        assert_identical(
            run_training("ssgd", workers="seq", world_size=4, steps=2),
            run_training("ssgd", workers="process", world_size=4, steps=2),
        )

    def test_spawn_start_method_matches_fork(self):
        """Both start methods are supported and bit-identical."""
        assert_identical(
            run_training("ssgd", workers="seq", steps=2),
            run_training(
                "ssgd", workers="process", steps=2, start_method="spawn"
            ),
        )

    def test_process_matches_sequential_bucketed(self):
        """Process workers + the WFBP reducer (deferred mode) compose."""
        assert_identical(
            run_training("ssgd", workers="seq", steps=2),
            run_training(
                "ssgd", workers="process", steps=2, buffer_bytes=4096
            ),
        )


class TestProcessChurn:
    def test_churn_replay_matches_sequential(self):
        """Eject -> rejoin -> scale-up with process workers, bit-identical.

        Exercises the full elastic composition: ``ensure_slots`` growing
        shared slabs mid-run, a joiner child spawned at the admission
        boundary, an ejected child idling (freezing its rng stream), and
        the rejoin resuming it.
        """
        from repro.elastic import MembershipController
        from repro.faults import (
            FaultInjector,
            FaultPlan,
            Join,
            PermanentFailure,
            Recovery,
            ResilientProcessGroup,
        )
        from repro.train.resilience import ResilienceConfig

        def run(workers):
            plan = FaultPlan(
                seed=7,
                permanent=(PermanentFailure(rank=2, call_index=2),),
                recoveries=(Recovery(rank=2, call_index=5),),
                joins=(Join(call_index=8),),
            )
            train_data, test_data = make_cifar_like(
                num_train=64, num_test=8, seed=3
            )
            model = make_small_vgg(base_width=2, rng=np.random.default_rng(5))
            group = ResilientProcessGroup(3, injector=FaultInjector(plan))
            membership = MembershipController(group)
            trainer = DataParallelTrainer(
                model,
                SGD(model, lr=0.05, momentum=0.9),
                make_aggregator("acpsgd", group, rank=2),
                train_data,
                test_data,
                batch_size_per_worker=4,
                seed=13,
                resilience=ResilienceConfig(),
                membership=membership,
                workers=workers,
            )
            with trainer:
                losses = [trainer.train_step() for _ in range(6)]
            changes = [change.kind for change in membership.log.changes]
            assert changes == ["eject", "rejoin", "join"], changes
            weights = np.concatenate(
                [p.data.ravel() for _, p in model.named_parameters()]
            )
            return losses, weights

        losses_seq, weights_seq = run("seq")
        losses_proc, weights_proc = run("process")
        assert losses_seq == losses_proc
        np.testing.assert_array_equal(weights_seq, weights_proc)

    def test_membership_requires_process_or_seq(self):
        """Thread workers still cannot follow an elastic roster."""
        from repro.elastic import MembershipController
        from repro.faults import FaultInjector, FaultPlan, ResilientProcessGroup

        train_data, test_data = make_cifar_like(
            num_train=64, num_test=8, seed=3
        )
        model = make_small_vgg(base_width=2, rng=np.random.default_rng(5))
        group = ResilientProcessGroup(
            2, injector=FaultInjector(FaultPlan(seed=0))
        )
        with pytest.raises(ValueError, match="thread workers"):
            DataParallelTrainer(
                model,
                SGD(model, lr=0.05),
                make_aggregator("ssgd", group),
                train_data,
                test_data,
                membership=MembershipController(group),
                workers="thread",
            )


class TestSharedArena:
    def test_shared_slabs_have_segment_names(self):
        model = make_small_vgg(base_width=2, rng=np.random.default_rng(0))
        arena = GradientArena(model, 2, backing="shared")
        try:
            assert arena.is_shared
            names = {arena.segment_name(slot) for slot in range(2)}
            assert len(names) == 2  # one segment per slab
            assert names <= shm.live_segment_names()
        finally:
            arena.close()
        assert not (names & shm.live_segment_names())

    def test_private_arena_has_no_segment_names(self):
        model = make_small_vgg(base_width=2, rng=np.random.default_rng(0))
        arena = GradientArena(model, 1)
        assert not arena.is_shared
        with pytest.raises(ValueError, match="shared"):
            arena.segment_name(0)
        arena.close()  # no-op for private backing

    def test_ensure_slots_grows_shared_segments(self):
        model = make_small_vgg(base_width=2, rng=np.random.default_rng(0))
        arena = GradientArena(model, 1, backing="shared")
        try:
            first = arena.segment_name(0)
            arena.ensure_slots(3)
            assert arena.world_size == 3
            grown = {arena.segment_name(slot) for slot in range(3)}
            assert first in grown and len(grown) == 3
            # Existing mappings survive growth: slab 0 is untouched.
            arena.slab(0)[:] = 1.5
            assert float(arena.slab(0)[0]) == 1.5
        finally:
            arena.close()

    def test_close_is_idempotent(self):
        model = make_small_vgg(base_width=2, rng=np.random.default_rng(0))
        arena = GradientArena(model, 1, backing="shared")
        arena.close()
        arena.close()
        assert not shm.live_segment_names()


class TestPoolLifecycle:
    def _make_pool(self, world=1):
        train_data, _ = make_cifar_like(num_train=16, num_test=4, seed=0)
        model = make_small_vgg(base_width=2, rng=np.random.default_rng(0))
        arena = GradientArena(model, world, backing="shared")
        pool = ProcessWorkerPool(
            model, arena, train_data, seed=0, batch_size=2
        )
        return model, arena, pool

    def test_pool_requires_shared_arena(self):
        train_data, _ = make_cifar_like(num_train=16, num_test=4, seed=0)
        model = make_small_vgg(base_width=2, rng=np.random.default_rng(0))
        arena = GradientArena(model, 1)
        with pytest.raises(ValueError, match="shared"):
            ProcessWorkerPool(model, arena, train_data, seed=0, batch_size=2)

    def test_worker_error_propagates_with_traceback(self):
        model, arena, pool = self._make_pool()
        try:
            pool.ensure_ranks([0])
            pool.broadcast_weights(model)
            bogus = WorkerStepTask(
                rank=0,
                slot=0,
                slab_segment="repro-no-such-segment",
                shard_index=0,
                shard_world=1,
            )
            with pytest.raises(RuntimeError, match="rank 0 failed"):
                pool.run_step([bogus])
            # The child survives a failed task and serves the next one.
            good = WorkerStepTask(
                rank=0,
                slot=0,
                slab_segment=arena.segment_name(0),
                shard_index=0,
                shard_world=1,
            )
            (result,) = pool.run_step([good])
            assert np.isfinite(result.loss)
        finally:
            pool.close()
            arena.close()

    def test_close_is_idempotent_and_blocks_reuse(self):
        model, arena, pool = self._make_pool()
        pool.ensure_ranks([0])
        pool.close()
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.run_step([])
        arena.close()

    def test_trainer_close_is_idempotent(self):
        train_data, test_data = make_cifar_like(
            num_train=16, num_test=4, seed=0
        )
        model = make_small_vgg(base_width=2, rng=np.random.default_rng(0))
        trainer = DataParallelTrainer(
            model,
            SGD(model, lr=0.05),
            make_aggregator("ssgd", ProcessGroup(2)),
            train_data,
            test_data,
            batch_size_per_worker=2,
            workers="process",
        )
        trainer.train_step()
        trainer.close()
        trainer.close()
        assert not shm.live_segment_names()

    def test_process_requires_arena(self):
        train_data, test_data = make_cifar_like(
            num_train=16, num_test=4, seed=0
        )
        model = make_small_vgg(base_width=2, rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="use_arena"):
            DataParallelTrainer(
                model,
                SGD(model, lr=0.05),
                make_aggregator("ssgd", ProcessGroup(2)),
                train_data,
                test_data,
                use_arena=False,
                workers="process",
            )


class TestAllocStats:
    def test_merge_folds_counter_snapshots(self):
        stats = AllocStats()
        stats.pack_copies = 1
        stats.merge(
            {
                "pack_copies": 2,
                "unpack_copies": 3,
                "bucket_reduces": 4,
                "bucket_copies": 5,
                "fused_allocs": 99,  # derived key: ignored
            }
        )
        assert stats.pack_copies == 3
        assert stats.unpack_copies == 3
        assert stats.bucket_reduces == 4
        assert stats.bucket_copies == 5
        assert stats.fused_allocs == 6

    def test_process_steps_stay_zero_alloc(self):
        """Child counters merge back and the arena path stays copy-free."""
        train_data, test_data = make_cifar_like(
            num_train=16, num_test=4, seed=0
        )
        model = make_small_vgg(base_width=2, rng=np.random.default_rng(0))
        trainer = DataParallelTrainer(
            model,
            SGD(model, lr=0.05),
            make_aggregator("ssgd", ProcessGroup(2)),
            train_data,
            test_data,
            batch_size_per_worker=2,
            workers="process",
        )
        with trainer:
            trainer.train_step()
            ALLOC_STATS.reset()
            trainer.train_step()
            assert ALLOC_STATS.fused_allocs == 0


class TestLeakRegistry:
    def test_registry_tracks_create_and_release(self):
        before = shm.live_segment_names()
        segment = shm.create_segment(64)
        assert segment.name in shm.live_segment_names() - before
        shm.release_segment(segment, unlink=True)
        assert segment.name not in shm.live_segment_names()

    def test_force_release_all_cleans_strays(self):
        shm.create_segment(64)
        shm.create_segment(64)
        assert shm.force_release_all() >= 2
        assert not shm.live_segment_names()
