"""Alternative all-reduce algorithms: numerics, traffic, selection."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.comm.algorithms import (
    all_reduce_recursive_halving,
    all_reduce_tree,
    best_allreduce_algorithm,
    rabenseifner_allreduce_time,
    tree_allreduce_time,
)
from repro.comm.cost_model import allreduce_time
from repro.sim.calibration import LINK_10GBE


def _buffers(rng, world, length):
    return [rng.normal(size=length) for _ in range(world)]


class TestTreeAllReduce:
    def test_matches_sum(self, rng):
        bufs = _buffers(rng, 6, 33)
        results, _ = all_reduce_tree(bufs)
        for result in results:
            np.testing.assert_allclose(result, np.sum(bufs, axis=0), rtol=1e-10)

    def test_single_rank(self, rng):
        buf = rng.normal(size=5)
        results, stats = all_reduce_tree([buf])
        np.testing.assert_array_equal(results[0], buf)
        assert stats.steps == 0

    def test_round_count_logarithmic(self, rng):
        _, stats = all_reduce_tree(_buffers(rng, 8, 16))
        assert stats.steps == 6  # 2 * log2(8)

    @settings(max_examples=20, deadline=None)
    @given(world=st.integers(1, 9), length=st.integers(1, 40),
           seed=st.integers(0, 999))
    def test_property_any_world_size(self, world, length, seed):
        rng = np.random.default_rng(seed)
        bufs = _buffers(rng, world, length)
        results, _ = all_reduce_tree(bufs)
        expected = np.sum(bufs, axis=0)
        for result in results:
            np.testing.assert_allclose(result, expected, rtol=1e-9, atol=1e-9)


class TestRabenseifner:
    def test_matches_sum_power_of_two(self, rng):
        for world in (2, 4, 8):
            bufs = _buffers(rng, world, 64)
            results, _ = all_reduce_recursive_halving(bufs)
            for result in results:
                np.testing.assert_allclose(
                    result, np.sum(bufs, axis=0), rtol=1e-10
                )

    def test_rejects_non_power_of_two(self, rng):
        with pytest.raises(ValueError, match="power-of-two"):
            all_reduce_recursive_halving(_buffers(rng, 6, 8))

    def test_traffic_matches_ring_bandwidth(self, rng):
        """Rabenseifner moves the same per-rank volume as the ring."""
        from repro.comm.collectives import all_reduce_ring

        world, length = 8, 4096
        bufs = _buffers(rng, world, length)
        _, rab = all_reduce_recursive_halving(bufs)
        _, ring = all_reduce_ring(bufs)
        assert rab.bytes_sent_per_rank[0] == pytest.approx(
            ring.bytes_sent_per_rank[0], rel=0.02
        )

    def test_fewer_rounds_than_ring(self, rng):
        from repro.comm.collectives import all_reduce_ring

        bufs = _buffers(rng, 8, 64)
        _, rab = all_reduce_recursive_halving(bufs)
        _, ring = all_reduce_ring(bufs)
        assert rab.steps < ring.steps  # 6 vs 14

    @settings(max_examples=20, deadline=None)
    @given(exponent=st.integers(1, 4), length=st.integers(4, 64),
           seed=st.integers(0, 999))
    def test_property_power_of_two_worlds(self, exponent, length, seed):
        rng = np.random.default_rng(seed)
        world = 2**exponent
        bufs = _buffers(rng, world, length)
        results, _ = all_reduce_recursive_halving(bufs)
        expected = np.sum(bufs, axis=0)
        for result in results:
            np.testing.assert_allclose(result, expected, rtol=1e-9, atol=1e-9)


class TestCostAndSelection:
    def test_rabenseifner_dominates_ring(self):
        """Fewer startups, same bandwidth: never slower in the model."""
        for nbytes in (1e3, 1e6, 1e9):
            assert rabenseifner_allreduce_time(nbytes, 32, LINK_10GBE) <= \
                allreduce_time(nbytes, 32, LINK_10GBE) + 1e-12

    def test_tree_wins_small_ring_wins_large(self):
        small_algo, _ = best_allreduce_algorithm(1e2, 32, LINK_10GBE)
        assert small_algo in ("tree", "rabenseifner")
        # Non-power-of-two world (no Rabenseifner): ring for big messages.
        big_algo, _ = best_allreduce_algorithm(1e9, 24, LINK_10GBE)
        assert big_algo == "ring"

    def test_best_returns_minimum(self):
        algo, time = best_allreduce_algorithm(1e6, 16, LINK_10GBE)
        assert time <= allreduce_time(1e6, 16, LINK_10GBE)
        assert time <= tree_allreduce_time(1e6, 16, LINK_10GBE)

    def test_zero_cases(self):
        assert tree_allreduce_time(0, 8, LINK_10GBE) == 0.0
        assert rabenseifner_allreduce_time(1e6, 1, LINK_10GBE) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            tree_allreduce_time(-1, 8, LINK_10GBE)
        with pytest.raises(ValueError):
            rabenseifner_allreduce_time(1e3, 0, LINK_10GBE)
