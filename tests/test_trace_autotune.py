"""Trace export and buffer auto-tuning."""

import json

import pytest

from repro.models import get_model_spec
from repro.sim import (
    ClusterSpec,
    autotune_buffer_size,
    build_iteration_tasks,
    simulate_iteration,
    simulate_iteration_records,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.sim.engine import GPU_MAIN, NIC


@pytest.fixture(scope="module")
def resnet18():
    return get_model_spec("ResNet-18")


class TestBuildTasks:
    def test_graph_structure_ssgd(self, resnet18):
        tasks = build_iteration_tasks("ssgd", resnet18, batch_size=32)
        streams = {t.stream for t in tasks}
        assert streams == {GPU_MAIN, NIC}
        tags = {t.tag for t in tasks}
        assert {"forward", "backward", "comm"} <= tags

    def test_acp_parities_differ(self, resnet18):
        p_tasks = build_iteration_tasks("acpsgd", resnet18, rank=4,
                                        acp_parity_p=True)
        q_tasks = build_iteration_tasks("acpsgd", resnet18, rank=4,
                                        acp_parity_p=False)
        p_comm = sum(t.work for t in p_tasks if t.tag == "comm")
        q_comm = sum(t.work for t in q_tasks if t.tag == "comm")
        assert p_comm != pytest.approx(q_comm)

    def test_unknown_method(self, resnet18):
        with pytest.raises(ValueError, match="unknown"):
            build_iteration_tasks("magic", resnet18)


class TestTrace:
    def test_chrome_trace_document(self, resnet18):
        records = simulate_iteration_records("acpsgd", resnet18,
                                             batch_size=32, rank=4)
        doc = to_chrome_trace(records)
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(events) > 50
        for event in events:
            assert event["dur"] > 0
            assert event["ts"] >= 0
        # Timeline sorted and consistent with the breakdown makespan.
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)
        makespan = max(e["ts"] + e["dur"] for e in events) / 1e6
        bd = simulate_iteration_records("acpsgd", resnet18, batch_size=32, rank=4)
        assert makespan == pytest.approx(max(r.end for r in bd.values()))

    def test_metadata_rows(self, resnet18):
        records = simulate_iteration_records("ssgd", resnet18, batch_size=32)
        doc = to_chrome_trace(records)
        names = {
            e["args"]["name"] for e in doc["traceEvents"] if e["ph"] == "M"
        }
        assert {"gpu_main", "gpu_side", "nic"} == names

    def test_write_file(self, resnet18, tmp_path):
        records = simulate_iteration_records("powersgd_star", resnet18,
                                             batch_size=32, rank=4)
        path = tmp_path / "trace.json"
        write_chrome_trace(records, str(path))
        with open(path) as handle:
            doc = json.load(handle)
        assert "traceEvents" in doc


class TestAutotune:
    def test_finds_a_competitive_buffer(self, resnet18):
        cluster = ClusterSpec(32)
        result = autotune_buffer_size(
            "acpsgd", resnet18, cluster=cluster, rank=4, batch_size=16,
            coarse_mb=(0.25, 1, 4, 16, 64), refine_rounds=2,
        )
        # Tuned result must beat (or tie) the extreme candidates probed.
        worst = max(result.evaluated.values())
        assert result.best_time <= worst
        default = simulate_iteration(
            "acpsgd", resnet18, cluster=cluster, rank=4, batch_size=16,
        ).total
        assert result.best_time <= default * 1.02

    def test_refinement_adds_probes(self, resnet18):
        coarse = autotune_buffer_size(
            "ssgd", resnet18, batch_size=16, coarse_mb=(1, 16), refine_rounds=0,
        )
        refined = autotune_buffer_size(
            "ssgd", resnet18, batch_size=16, coarse_mb=(1, 16), refine_rounds=2,
        )
        assert len(refined.evaluated) > len(coarse.evaluated)
        assert refined.best_time <= coarse.best_time

    def test_validation(self, resnet18):
        with pytest.raises(ValueError, match="candidate"):
            autotune_buffer_size("ssgd", resnet18, coarse_mb=())

    def test_result_helpers(self, resnet18):
        result = autotune_buffer_size(
            "ssgd", resnet18, batch_size=16, coarse_mb=(1, 4), refine_rounds=0,
        )
        assert result.best_buffer_mb == pytest.approx(
            result.best_buffer_bytes / (1024 * 1024)
        )
        ref = max(result.evaluated)
        assert result.improvement_over(ref) >= 1.0 or True
