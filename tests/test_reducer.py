"""Bucketed reducer pipeline: segment collectives, staged aggregation, WFBP."""

import numpy as np
import pytest

import repro.nn as nn
from repro.comm import collectives
from repro.comm.process_group import ProcessGroup
from repro.faults.resilient import ResilientProcessGroup
from repro.models.convnets import make_mlp
from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.optim.aggregators import (
    AllReduceAggregator,
    RandomKAggregator,
    make_aggregator,
)
from repro.optim.sgd import SGD
from repro.perf.arena import GradientArena
from repro.sim import fit_link_from_bucket_timings
from repro.train.datasets import SyntheticImageDataset
from repro.train.reducer import BucketedReducer
from repro.train.resilience import ResilienceConfig
from repro.train.trainer import DataParallelTrainer

BUCKETED_METHODS = ["ssgd", "signsgd", "topk", "powersgd", "acpsgd"]


def _fill_slabs(arena, num_slots, seed):
    rng = np.random.default_rng(seed)
    for slot in range(num_slots):
        arena.slab(slot)[:] = rng.normal(size=arena.layout.total_elements)


def _mlp(depth=2, seed=7):
    return make_mlp(17, 9, 4, depth=depth, rng=np.random.default_rng(seed))


class TestSegmentCollectives:
    """Per-segment ring all-reduce vs one fused call: values and traffic."""

    @pytest.mark.parametrize("world", [1, 2, 3, 4, 5])
    def test_segments_reproduce_fused_result_bitwise(self, world):
        rng = np.random.default_rng(world)
        total = 97
        data = [rng.normal(size=total) for _ in range(world)]
        fused, _ = collectives.all_reduce_ring([buf.copy() for buf in data])

        segmented = [buf.copy() for buf in data]
        cuts = [0, 13, 14, 60, total]
        for lo, hi in zip(cuts, cuts[1:]):
            views = [buf[lo:hi] for buf in segmented]
            collectives.all_reduce_ring_segment_(views, lo, total)
        for got, want in zip(segmented, fused):
            np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("world", [2, 4])
    def test_copying_variant_matches_inplace(self, world):
        rng = np.random.default_rng(world + 10)
        total = 40
        data = [rng.normal(size=total) for _ in range(world)]
        inplace = [buf.copy() for buf in data]
        collectives.all_reduce_ring_segment_(
            [buf[8:25] for buf in inplace], 8, total
        )
        copied, _ = collectives.all_reduce_ring_segment(
            [buf[8:25] for buf in data], 8, total
        )
        for res in copied:
            np.testing.assert_array_equal(res, inplace[0][8:25])

    def test_traffic_sums_to_monolithic(self):
        """Per-segment bytes_sent must add up to the fused call's exactly."""
        world, total = 4, 120
        rng = np.random.default_rng(0)
        data = [rng.normal(size=total) for _ in range(world)]

        _, fused_stats = collectives.all_reduce_ring(
            [buf.copy() for buf in data]
        )

        segmented = [buf.copy() for buf in data]
        sums = np.zeros(world)
        cuts = [0, 30, 75, total]
        for lo, hi in zip(cuts, cuts[1:]):
            stats = collectives.all_reduce_ring_segment_(
                [buf[lo:hi] for buf in segmented], lo, total
            )
            sums += np.array(stats.bytes_sent_per_rank)
        np.testing.assert_array_equal(
            sums, np.array(fused_stats.bytes_sent_per_rank)
        )

    def test_zero_length_segment_is_noop(self):
        data = [np.arange(5.0), np.arange(5.0)]
        before = [buf.copy() for buf in data]
        collectives.all_reduce_ring_segment_([buf[2:2] for buf in data], 2, 5)
        for buf, want in zip(data, before):
            np.testing.assert_array_equal(buf, want)


class TestBucketedAggregation:
    """aggregate_bucketed must be bit-identical to aggregate, per method."""

    @pytest.mark.parametrize("method", BUCKETED_METHODS)
    @pytest.mark.parametrize("world", [1, 2, 4])
    def test_bit_identical_to_monolithic(self, method, world):
        model = _mlp()
        mono_arena = GradientArena(model, world)
        bucket_arena = GradientArena(model, world, bucket_bytes=60 * 8)
        assert len(bucket_arena.layout.buckets) > 1
        mono = make_aggregator(method, ProcessGroup(world))
        bucketed = make_aggregator(method, ProcessGroup(world))
        for step in range(3):  # several steps so EF residuals carry over
            _fill_slabs(mono_arena, world, 50 + step)
            _fill_slabs(bucket_arena, world, 50 + step)
            want = mono.aggregate(
                [mono_arena.grads(s) for s in range(world)]
            )
            got = bucketed.aggregate_bucketed(
                [bucket_arena.grads(s) for s in range(world)]
            )
            for name in want:
                np.testing.assert_array_equal(got[name], want[name])

    @pytest.mark.parametrize("method", BUCKETED_METHODS)
    def test_bucket_order_does_not_matter(self, method):
        world = 2
        model = _mlp()
        arenas = [
            GradientArena(model, world, bucket_bytes=40 * 8) for _ in range(2)
        ]
        num_buckets = len(arenas[0].layout.buckets)
        assert num_buckets >= 3
        orders = [list(range(num_buckets)), list(range(num_buckets))[::-1]]
        orders[1][0], orders[1][-1] = orders[1][-1], orders[1][0]
        aggs = [make_aggregator(method, ProcessGroup(world)) for _ in range(2)]
        results = []
        for arena, agg, order in zip(arenas, aggs, orders):
            _fill_slabs(arena, world, 3)
            results.append(
                agg.aggregate_bucketed(
                    [arena.grads(s) for s in range(world)], order=order
                )
            )
        for name in results[0]:
            np.testing.assert_array_equal(results[0][name], results[1][name])

    @pytest.mark.parametrize("method", BUCKETED_METHODS)
    def test_roster_churn_stays_bit_identical(self, method):
        """Eject/rejoin between steps: per-rank state must follow rank ids."""
        model = _mlp(depth=3)
        mono_arena = GradientArena(model, 4)
        bucket_arena = GradientArena(model, 4, bucket_bytes=40 * 8)
        mono = make_aggregator(method, ResilientProcessGroup(4))
        bucketed = make_aggregator(method, ResilientProcessGroup(4))
        rosters = [[0, 1, 2, 3], [0, 2, 3], [0, 2, 3], [1, 3], [0, 1, 2, 3]]
        for step, roster in enumerate(rosters):
            for agg in (mono, bucketed):
                agg.group.live_ranks = list(roster)
                agg.group.world_size = len(roster)
                agg.set_roster(roster)
            _fill_slabs(mono_arena, len(roster), 90 + step)
            _fill_slabs(bucket_arena, len(roster), 90 + step)
            want = mono.aggregate(
                [mono_arena.grads(s) for s in range(len(roster))]
            )
            got = bucketed.aggregate_bucketed(
                [bucket_arena.grads(s) for s in range(len(roster))]
            )
            for name in want:
                np.testing.assert_array_equal(got[name], want[name])

    def test_single_parameter_model(self):
        class OneParam(Module):
            def __init__(self):
                self.w = Parameter(np.zeros((6, 5)))

        model = OneParam()
        for bucket_bytes in (8, 10**6):  # smaller and larger than the tensor
            arena = GradientArena(model, 2, bucket_bytes=bucket_bytes)
            assert len(arena.layout.buckets) == 1
            _fill_slabs(arena, 2, 1)
            mono_arena = GradientArena(model, 2)
            _fill_slabs(mono_arena, 2, 1)
            agg = AllReduceAggregator(ProcessGroup(2))
            mono = AllReduceAggregator(ProcessGroup(2))
            got = agg.aggregate_bucketed([arena.grads(0), arena.grads(1)])
            want = mono.aggregate([mono_arena.grads(0), mono_arena.grads(1)])
            np.testing.assert_array_equal(got["w"], want["w"])

    def test_oversized_parameter_travels_alone(self):
        """A tensor bigger than buffer_bytes gets its own bucket."""
        model = _mlp()
        arena = GradientArena(model, 2, bucket_bytes=16)  # 2 elements
        sizes = [arena.layout.size_of(n) for n in arena.layout.names]
        assert max(sizes) * 8 > 16
        assert len(arena.layout.buckets) == len(arena.layout.names)
        mono_arena = GradientArena(model, 2)
        for a in (arena, mono_arena):
            _fill_slabs(a, 2, 4)
        bucketed = make_aggregator("signsgd", ProcessGroup(2))
        mono = make_aggregator("signsgd", ProcessGroup(2))
        got = bucketed.aggregate_bucketed([arena.grads(0), arena.grads(1)])
        want = mono.aggregate([mono_arena.grads(0), mono_arena.grads(1)])
        for name in want:
            np.testing.assert_array_equal(got[name], want[name])

    @pytest.mark.parametrize("method", BUCKETED_METHODS)
    def test_zero_size_parameters(self, method):
        class Gappy(Module):
            def __init__(self):
                self.a = Parameter(np.zeros((0,)))
                self.big = Parameter(np.zeros((9, 4)))
                self.empty_tail = Parameter(np.zeros((0,)))
                self.c = Parameter(np.zeros((5,)))

        model = Gappy()
        arena = GradientArena(model, 2, bucket_bytes=10 * 8)
        mono_arena = GradientArena(model, 2)
        for a in (arena, mono_arena):
            _fill_slabs(a, 2, 8)
        bucketed = make_aggregator(method, ProcessGroup(2))
        mono = make_aggregator(method, ProcessGroup(2))
        got = bucketed.aggregate_bucketed([arena.grads(0), arena.grads(1)])
        want = mono.aggregate([mono_arena.grads(0), mono_arena.grads(1)])
        for name in want:
            np.testing.assert_array_equal(got[name], want[name])

    def test_session_protocol_errors(self):
        model = _mlp()
        arena = GradientArena(model, 2, bucket_bytes=60 * 8)
        agg = AllReduceAggregator(ProcessGroup(2))
        with pytest.raises(RuntimeError, match="without begin_buckets"):
            agg.reduce_bucket(0)
        per_worker = [arena.grads(0), arena.grads(1)]
        agg.begin_buckets(per_worker)
        agg.reduce_bucket(0)
        with pytest.raises(RuntimeError, match="reduced twice"):
            agg.reduce_bucket(0)
        with pytest.raises(RuntimeError, match="unreduced buckets"):
            agg.finish_buckets()

    def test_requires_shared_arena_layout(self):
        model = _mlp()
        agg = AllReduceAggregator(ProcessGroup(2))
        plain = [
            {n: np.zeros(p.shape) for n, p in model.named_parameters()}
            for _ in range(2)
        ]
        with pytest.raises(ValueError, match="arena-backed"):
            agg.begin_buckets(plain)

    def test_unsupported_method_raises(self):
        model = _mlp()
        arena = GradientArena(model, 2, bucket_bytes=60 * 8)
        agg = RandomKAggregator(ProcessGroup(2))
        assert not agg.supports_bucketed
        with pytest.raises(NotImplementedError, match="bucketed"):
            agg.begin_buckets([arena.grads(0), arena.grads(1)])


def _flat_dataset(num, dim, classes, seed):
    centers = np.random.default_rng(999).normal(size=(classes, dim)) * 3
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, classes, size=num)
    images = centers[labels] + rng.normal(size=(num, dim))
    return SyntheticImageDataset(images.reshape(num, dim, 1, 1), labels)


def _make_trainer(method, world, buffer_bytes, accum=1, **kwargs):
    rng = np.random.default_rng(0)
    dim, classes = 12, 5
    model = nn.Sequential(
        nn.Flatten(), *make_mlp(dim, 10, classes, rng=rng).layers
    )
    aggregator = make_aggregator(method, ProcessGroup(world))
    return DataParallelTrainer(
        model,
        SGD(model, lr=0.05, momentum=0.9),
        aggregator,
        _flat_dataset(256, dim, classes, 1),
        _flat_dataset(64, dim, classes, 2),
        batch_size_per_worker=8,
        seed=3,
        accumulation_steps=accum,
        buffer_bytes=buffer_bytes,
        **kwargs,
    )


class TestBucketedTrainer:
    """End-to-end: bucketed WFBP trainer vs monolithic, bit for bit."""

    BUCKET = 60 * 8

    def _assert_same_trajectory(self, t_mono, t_bucket, steps=4):
        for _ in range(steps):
            assert t_mono.train_step() == t_bucket.train_step()
        np.testing.assert_array_equal(
            t_mono.model.state_vector(), t_bucket.model.state_vector()
        )

    @pytest.mark.parametrize("method", BUCKETED_METHODS)
    @pytest.mark.parametrize("world", [1, 2, 4])
    def test_bit_identical_training(self, method, world):
        self._assert_same_trajectory(
            _make_trainer(method, world, None),
            _make_trainer(method, world, self.BUCKET),
        )

    def test_eager_wfbp_engages(self):
        trainer = _make_trainer("ssgd", 2, self.BUCKET)
        for _ in range(3):
            trainer.train_step()
        reducer = trainer._reducer
        assert reducer.eager_steps == 3
        assert reducer.deferred_steps == 0
        assert len(reducer.last_timings) == reducer.num_buckets
        # Eager firing is reverse layout order (WFBP: output layers first).
        fired = [index for index, _, _ in reducer.last_timings]
        assert fired == sorted(fired, reverse=True)

    def test_world_one_first_step_defers_then_fires_eagerly(self):
        trainer = _make_trainer("ssgd", 1, self.BUCKET)
        trainer.train_step()
        assert trainer._reducer.deferred_steps == 1
        trainer.train_step()
        trainer.train_step()
        assert trainer._reducer.eager_steps == 2

    def test_gradient_accumulation_matches(self):
        self._assert_same_trajectory(
            _make_trainer("ssgd", 2, None, accum=3),
            _make_trainer("ssgd", 2, self.BUCKET, accum=3),
        )

    def test_per_tensor_buckets_match(self):
        """buffer_bytes=0 means one bucket per tensor (no fusion)."""
        t_bucket = _make_trainer("powersgd", 2, 0)
        assert (
            t_bucket._reducer.num_buckets
            == len(t_bucket._arena.layout.names)
        )
        self._assert_same_trajectory(
            _make_trainer("powersgd", 2, None), t_bucket
        )

    def test_parallel_workers_defer_but_match(self):
        t_par = _make_trainer("ssgd", 2, self.BUCKET, parallel_workers=True)
        self._assert_same_trajectory(_make_trainer("ssgd", 2, None), t_par)
        assert t_par._reducer.deferred_steps > 0
        assert t_par._reducer.eager_steps == 0

    def test_resilient_path_stays_bucketed_and_identical(self):
        t_mono = _make_trainer(
            "signsgd", 2, None, resilience=ResilienceConfig()
        )
        t_bucket = _make_trainer(
            "signsgd", 2, self.BUCKET, resilience=ResilienceConfig()
        )
        self._assert_same_trajectory(t_mono, t_bucket)
        assert t_bucket._reducer.deferred_steps == 4

    def test_fallback_aggregator_goes_through_buckets(self):
        trainer = _make_trainer(
            "topk", 2, self.BUCKET, resilience=ResilienceConfig()
        )
        reference = _make_trainer("topk", 2, None)
        trainer.train_step()
        reference.train_step()
        fallback = AllReduceAggregator(trainer.aggregator.group)
        per_worker = [trainer._arena.grads(s) for s in range(2)]
        _fill_slabs(trainer._arena, 2, 11)
        mono_arena = reference._arena
        _fill_slabs(mono_arena, 2, 11)
        got = trainer._aggregate(fallback, per_worker)
        want = AllReduceAggregator(ProcessGroup(2)).aggregate(
            [mono_arena.grads(s) for s in range(2)]
        )
        for name in want:
            np.testing.assert_array_equal(got[name], want[name])
        assert len(trainer._reducer.last_timings) > 0

    def test_buffer_bytes_validation(self):
        with pytest.raises(ValueError, match="use_arena"):
            _make_trainer("ssgd", 2, self.BUCKET, use_arena=False)
        with pytest.raises(ValueError, match="does not support bucketed"):
            _make_trainer("randomk", 2, self.BUCKET)


class TestReducerHooks:
    """The hook-driven (eager) machinery, driven directly."""

    class TwoParam(Module):
        def __init__(self):
            self.a = Parameter(np.zeros((4,)))
            self.b = Parameter(np.zeros((3,)))

    def _setup(self):
        model = self.TwoParam()
        arena = GradientArena(model, 2, bucket_bytes=8)  # per-tensor buckets
        aggregator = AllReduceAggregator(ProcessGroup(2))
        reducer = BucketedReducer(model, arena, aggregator)
        return model, arena, reducer

    def test_rejects_unbucketed_aggregator(self):
        model = self.TwoParam()
        arena = GradientArena(model, 2, bucket_bytes=8)
        with pytest.raises(ValueError, match="does not support bucketed"):
            BucketedReducer(model, arena, RandomKAggregator(ProcessGroup(2)))

    def _run_worker(self, model, arena, slot):
        arena.bind(model, slot)
        model.zero_grad()
        for _, param in model.named_parameters():
            param.accumulate_grad(np.full(param.shape, slot + 1.0))

    def test_buckets_fire_during_final_backward(self):
        model, arena, reducer = self._setup()
        reducer.begin_step(2, eager=True)
        reducer.begin_worker(0)
        self._run_worker(model, arena, 0)
        assert not any(reducer._fired)  # observation pass only
        reducer.begin_worker(1)
        self._run_worker(model, arena, 1)
        assert all(reducer._fired)  # every bucket fired from hooks
        result = reducer.finish_step()
        np.testing.assert_array_equal(result["a"], np.full((4,), 1.5))
        np.testing.assert_array_equal(result["b"], np.full((3,), 1.5))

    def test_sealed_parameter_raises_on_late_gradient(self):
        model, arena, reducer = self._setup()
        reducer.begin_step(2, eager=True)
        reducer.begin_worker(0)
        self._run_worker(model, arena, 0)
        reducer.begin_worker(1)
        self._run_worker(model, arena, 1)
        param = dict(model.named_parameters())["a"]
        with pytest.raises(RuntimeError, match="after its bucket"):
            param.accumulate_grad(np.ones(param.shape))

    def test_close_detaches_hooks(self):
        model, arena, reducer = self._setup()
        reducer.close()
        reducer.close()  # idempotent
        reducer.begin_step(2, eager=True)
        reducer.begin_worker(0)
        self._run_worker(model, arena, 0)
        reducer.begin_worker(1)
        self._run_worker(model, arena, 1)
        assert not any(reducer._fired)  # hooks gone: nothing fires eagerly
        reducer.finish_step()  # deferred catch-up still completes the step

    def test_removable_handle_is_selective(self):
        param = Parameter(np.zeros((2,)), name="p")
        seen = []
        keep = param.register_hook(lambda p: seen.append("keep"))
        drop = param.register_hook(lambda p: seen.append("drop"))
        drop.remove()
        drop.remove()  # idempotent
        param.accumulate_grad(np.ones(2))
        assert seen == ["keep"]
        assert keep is not None


class TestLinkFitFromTimings:
    def test_roundtrip_recovers_alpha_beta(self):
        from repro.comm.cost_model import ETHERNET_10G, allreduce_time

        samples = [
            (n, allreduce_time(n, 4, ETHERNET_10G))
            for n in (1e4, 1e5, 1e6, 1e7)
        ]
        spec = fit_link_from_bucket_timings(samples, 4, name="fit")
        assert spec.alpha == pytest.approx(ETHERNET_10G.alpha, rel=1e-6)
        assert spec.beta == pytest.approx(ETHERNET_10G.beta, rel=1e-6)

    def test_guards(self):
        with pytest.raises(ValueError, match="world_size"):
            fit_link_from_bucket_timings([(1e4, 1.0), (1e5, 2.0)], 1)
        with pytest.raises(ValueError, match="distinct"):
            fit_link_from_bucket_timings([(1e4, 1.0), (1e4, 1.1)], 4)
        with pytest.raises(ValueError, match="not positive"):
            fit_link_from_bucket_timings([(1e4, 2.0), (1e5, 1.0)], 4)

    def test_fits_real_reducer_timings(self):
        """The reducer's last_timings feed the fit directly."""
        trainer = _make_trainer("ssgd", 4, 60 * 8)
        for _ in range(2):
            trainer.train_step()
        samples = [
            (elements * 8, max(seconds, 1e-9))
            for _, elements, seconds in trainer._reducer.last_timings
        ]
        sizes = {nbytes for nbytes, _ in samples}
        if len(sizes) < 2:
            pytest.skip("model buckets collapsed to one size")
        try:
            spec = fit_link_from_bucket_timings(samples, 4)
        except ValueError:
            # In-process timings can be noise-dominated; the guard firing
            # is acceptable behaviour, not a failure.
            return
        assert spec.beta > 0
        assert spec.alpha >= 0
