"""Shared scenario matrix for the golden-trace equivalence check.

Each scenario names a task graph plus the engine configuration used to
run it — covering every ``simulate_iteration`` method, pipeline chains
(with and without the comm barrier / priority NIC), and fault-perturbed
replays. ``scripts/golden_trace.py capture`` records the resulting
``TaskRecord`` start/end times as IEEE-754 hex; ``tests/test_golden_trace.py``
re-runs the same scenarios through the current engine and requires
bit-identical records. The golden file was captured from the
pre-``repro.sched`` engine, so passing proves the legacy adapter is an
exact re-implementation.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.models import get_model_spec
from repro.sim.calibration import SIM_LINKS, SimConfig
from repro.sim.engine import Task
from repro.sim.faults import FaultModel
from repro.sim.pipeline import _apply_comm_priorities, _chain
from repro.sim.strategies import (
    ALL_METHODS,
    ClusterSpec,
    SystemConfig,
    build_iteration_tasks,
)

GOLDEN_PATH = "tests/data/golden_traces.json"


def _iteration(name: str, method: str, model_name: str = "ResNet-50",
               **overrides) -> Tuple[str, List[Task], Dict]:
    model = get_model_spec(model_name)
    cluster = overrides.pop("cluster", None)
    system = overrides.pop("system", None)
    sim = overrides.pop("sim", None) or SimConfig()
    tasks = build_iteration_tasks(
        method, model, cluster, system, sim,
        overrides.pop("batch_size", None),
        overrides.pop("rank", 4),
        overrides.pop("topk_ratio", 0.001),
        overrides.pop("acp_parity_p", True),
    )
    assert not overrides, f"unused overrides: {overrides}"
    return name, tasks, {"contention_rate": sim.contention_rate}


def _pipeline(name: str, method: str, *, pipelined: bool,
              priority_comm: bool = False,
              iterations: int = 3) -> Tuple[str, List[Task], Dict]:
    model = get_model_spec("ResNet-50")
    sim = SimConfig()
    per_iteration = []
    for idx in range(iterations):
        tasks = build_iteration_tasks(
            method, model, None, None, sim, acp_parity_p=(idx % 2 == 0)
        )
        if priority_comm:
            tasks = _apply_comm_priorities(tasks)
        per_iteration.append(tasks)
    chained = _chain(per_iteration, comm_barrier=not pipelined)
    engine_kwargs: Dict = {"contention_rate": sim.contention_rate}
    if priority_comm:
        engine_kwargs["disciplines"] = {"nic": "priority"}
    return name, chained, engine_kwargs


def _faulty(name: str, method: str, seed: int) -> Tuple[str, List[Task], Dict]:
    model = get_model_spec("ResNet-50")
    cluster = ClusterSpec(world_size=8)
    sim = SimConfig()
    tasks = build_iteration_tasks(method, model, cluster, None, sim)
    fault = FaultModel(
        straggler_prob=0.3, straggler_sigma=2.0, drop_rate=0.05,
        rank_down_s=0.002, worker_crash_prob=0.1,
    )
    rng = np.random.default_rng(seed)
    perturbed = fault.perturb(tasks, cluster.world_size, rng)
    return name, perturbed, {"contention_rate": sim.contention_rate}


def iter_scenarios() -> Iterator[Tuple[str, List[Task], Dict]]:
    """Yield ``(name, tasks, engine_kwargs)`` for every golden scenario."""
    # Every method (core six + the four extensions), paper defaults.
    for method in ALL_METHODS:
        yield _iteration(f"iter/{method}/resnet50", method)
    # ACP-SGD's other parity (Q-step graph differs slightly).
    yield _iteration("iter/acpsgd/resnet50/parity-q", "acpsgd",
                     acp_parity_p=False)
    # A transformer model, paper rank 32.
    for method in ("ssgd", "powersgd", "acpsgd"):
        yield _iteration(f"iter/{method}/bert-base", method,
                         model_name="BERT-Base", rank=32)
    # System-configuration corners.
    yield _iteration("iter/ssgd/no-wfbp", "ssgd",
                     system=SystemConfig(wfbp=False))
    yield _iteration("iter/topk/no-fusion", "topk",
                     system=SystemConfig(tensor_fusion=False))
    yield _iteration("iter/signsgd/no-scale", "signsgd",
                     system=SystemConfig(scale_compressed_buffer=False))
    # Cluster corners: small world on a slow link; topology-aware costs.
    yield _iteration("iter/ssgd/ws4-1gbe", "ssgd",
                     cluster=ClusterSpec(world_size=4, link=SIM_LINKS["1GbE"]))
    from repro.comm.topology import ClusterTopology

    topo_cluster = ClusterSpec(
        world_size=32,
        topology=ClusterTopology(num_nodes=8, gpus_per_node=4),
        algorithm_selection=True,
    )
    yield _iteration("iter/ssgd/topology", "ssgd", cluster=topo_cluster)
    yield _iteration("iter/acpsgd/topology", "acpsgd", cluster=topo_cluster)
    # Pipeline chains: overlap on/off, priority NIC discipline.
    yield _pipeline("pipeline/ssgd/pipelined", "ssgd", pipelined=True)
    yield _pipeline("pipeline/topk/barrier", "topk", pipelined=False)
    yield _pipeline("pipeline/acpsgd/priority", "acpsgd", pipelined=True,
                    priority_comm=True)
    # Fault-perturbed replays (stragglers, retransmits, downtime gates).
    yield _faulty("faults/ssgd/seed0", "ssgd", seed=0)
    yield _faulty("faults/topk/seed7", "topk", seed=7)
    yield _faulty("faults/acpsgd/seed3", "acpsgd", seed=3)


def run_scenario(tasks: List[Task], engine_kwargs: Dict) -> Dict[str, List[str]]:
    """Run one scenario and hex-encode every record's start/end."""
    from repro.sim.engine import Engine

    records = Engine(**engine_kwargs).run(tasks)
    return {
        task_id: [record.start.hex(), record.end.hex()]
        for task_id, record in sorted(records.items())
    }
