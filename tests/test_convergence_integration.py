"""Integration: the Fig. 6 / Fig. 7 convergence claims on reduced budgets.

These are the slowest tests in the suite (they actually train convnets on
several workers); the setups are scaled down to keep the suite fast while
preserving the relative claims.
"""

import pytest

from repro.experiments.fig6 import ConvergenceSetup, run_fig6, train_one
from repro.experiments.fig7 import run_fig7

SMALL = ConvergenceSetup(
    model_family="vgg",
    world_size=4,
    epochs=6,
    steps_per_epoch=12,
    batch_size=24,
    base_lr=0.08,
    rank=4,
    num_train=1200,
    num_test=320,
    seed=13,
)


@pytest.fixture(scope="module")
def fig6_histories():
    return run_fig6(SMALL)


@pytest.fixture(scope="module")
def fig7_histories():
    return run_fig7(SMALL)


class TestFig6Convergence:
    def test_all_methods_learn(self, fig6_histories):
        for method, hist in fig6_histories.items():
            assert hist.final_accuracy > 0.4, method  # chance = 0.1

    def test_compressed_methods_on_par_with_ssgd(self, fig6_histories):
        """The paper's central convergence claim: ACP-SGD ~ Power-SGD ~
        S-SGD in final accuracy."""
        ssgd = fig6_histories["ssgd"].final_accuracy
        for method in ("powersgd", "acpsgd"):
            acc = fig6_histories[method].final_accuracy
            assert acc > ssgd - 0.15, (method, acc, ssgd)

    def test_loss_decreases_for_all(self, fig6_histories):
        for method, hist in fig6_histories.items():
            assert hist.train_loss[-1] < hist.train_loss[0], method


class TestFig7Ablation:
    def test_full_acpsgd_is_best(self, fig7_histories):
        full = fig7_histories["acpsgd"].final_accuracy
        no_ef = fig7_histories["acpsgd_no_ef"].final_accuracy
        no_reuse = fig7_histories["acpsgd_no_reuse"].final_accuracy
        assert full >= no_ef - 0.02
        assert full >= no_reuse - 0.02

    def test_removing_ef_hurts(self, fig7_histories):
        """Fig. 7: ACP-SGD without EF converges clearly worse."""
        full = fig7_histories["acpsgd"].final_accuracy
        no_ef = fig7_histories["acpsgd_no_ef"].final_accuracy
        assert no_ef < full - 0.03


class TestResNetVariant:
    def test_resnet_family_trains_with_acpsgd(self):
        setup = ConvergenceSetup(
            model_family="resnet", world_size=2, epochs=5, steps_per_epoch=12,
            batch_size=24, base_lr=0.08, num_train=800, num_test=200, seed=5,
        )
        hist = train_one("acpsgd", setup)
        assert hist.final_accuracy > 0.3


class TestTransformerVariant:
    def test_transformer_family_trains_with_acpsgd(self):
        setup = ConvergenceSetup(
            model_family="transformer", world_size=2, epochs=3,
            steps_per_epoch=10, batch_size=32, base_lr=0.1, rank=4,
            num_train=800, num_test=200, seed=3,
        )
        hist = train_one("acpsgd", setup)
        assert hist.final_accuracy > 0.4  # chance = 0.1
