"""Adaptive rank selection."""

import numpy as np
import pytest

from repro.compression.adaptive import (
    per_tensor_ranks,
    rank_for_energy,
    rank_for_target_ratio,
)
from repro.compression.ratios import (
    acpsgd_compressed_elements,
    total_elements,
)
from repro.models import get_model_spec


class TestRankForTargetRatio:
    def test_meets_target_and_is_maximal(self):
        shapes = get_model_spec("ResNet-50").parameter_shapes()
        n = total_elements(shapes)
        rank = rank_for_target_ratio(shapes, target_ratio=32.0)
        assert n / acpsgd_compressed_elements(shapes, rank) >= 32.0
        # rank + 1 would violate the budget (maximality).
        assert n / acpsgd_compressed_elements(shapes, rank + 1) < 32.0

    def test_loose_target_gives_large_rank(self):
        shapes = get_model_spec("BERT-Base").parameter_shapes()
        loose = rank_for_target_ratio(shapes, 4.0)
        tight = rank_for_target_ratio(shapes, 64.0)
        assert loose > tight

    def test_unattainable_target_raises(self):
        # Mostly-vector model: compression cannot reach 1000x.
        shapes = [(64,), (64,), (8, 8)]
        with pytest.raises(ValueError, match="unattainable"):
            rank_for_target_ratio(shapes, 1000.0)

    def test_invalid_target(self):
        with pytest.raises(ValueError, match="target_ratio"):
            rank_for_target_ratio([(8, 8)], 1.0)


class TestRankForEnergy:
    def test_exact_low_rank_matrix(self, rng):
        a = rng.normal(size=(20, 3))
        b = rng.normal(size=(15, 3))
        matrix = a @ b.T  # exactly rank 3
        assert rank_for_energy(matrix, energy=0.999) == 3

    def test_full_energy_full_rank(self, rng):
        matrix = rng.normal(size=(6, 6))
        assert rank_for_energy(matrix, energy=1.0) == 6

    def test_energy_monotone(self, rng):
        matrix = rng.normal(size=(30, 30))
        r50 = rank_for_energy(matrix, 0.5)
        r90 = rank_for_energy(matrix, 0.9)
        r99 = rank_for_energy(matrix, 0.99)
        assert r50 <= r90 <= r99

    def test_max_rank_cap(self, rng):
        matrix = rng.normal(size=(30, 30))
        assert rank_for_energy(matrix, 0.99, max_rank=4) <= 4

    def test_zero_matrix(self):
        assert rank_for_energy(np.zeros((5, 5))) == 1

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="matrix"):
            rank_for_energy(rng.normal(size=5))
        with pytest.raises(ValueError, match="energy"):
            rank_for_energy(rng.normal(size=(3, 3)), energy=0.0)


class TestPerTensorRanks:
    def test_vectors_excluded_matrices_ranked(self, rng):
        grads = {
            "fc.weight": rng.normal(size=(16, 16)),
            "fc.bias": rng.normal(size=16),
            "conv.weight": rng.normal(size=(8, 4, 3, 3)),
        }
        ranks = per_tensor_ranks(grads, energy=0.9)
        assert set(ranks) == {"fc.weight", "conv.weight"}
        assert all(r >= 1 for r in ranks.values())
