"""Worker-process supervision: typed failures, recovery rungs, twins.

The contract under test, per ``docs/fault_tolerance.md``:

- the pool raises *typed* errors (:class:`WorkerDeadError` /
  :class:`WorkerTimeoutError`, both ``WorkerError``, both
  ``RuntimeError``) instead of bare ``RuntimeError``;
- under the ``"restart"`` policy a crashed/hung child is respawned, its
  sampling stream replayed, and the failed task re-run within the step —
  the recovered trajectory is **bit-identical to the fault-free run**;
- under the ``"eject"`` policy the step degrades, the rank is ejected at
  the next boundary through the membership controller, and later
  readmitted — bit-identical to the *sequential* twin simulating the
  same :class:`WorkerFault` schedule;
- every recovery path leaves zero leaked shm segments (the suite-wide
  conftest guard enforces this for every test here).

Every ``WorkerFault`` kind (``crash``, ``hang``, ``slow``) is exercised
under ``pytest -m faults``.
"""

import multiprocessing
import os
import signal

import numpy as np
import pytest

from repro.comm.process_group import ProcessGroup
from repro.elastic import MembershipController
from repro.faults import (
    FaultInjector,
    FaultPlan,
    SupervisionPolicy,
    WorkerDeadError,
    WorkerError,
    WorkerFault,
    WorkerSupervisor,
    WorkerTimeoutError,
)
from repro.faults.resilient import ResilientProcessGroup
from repro.faults.supervisor import SIGKILL_EXITCODE
from repro.models.convnets import make_mlp
from repro.optim.aggregators import make_aggregator
from repro.optim.sgd import SGD
from repro.perf import shm
from repro.perf.arena import GradientArena
from repro.perf.procpool import ProcessWorkerPool, WorkerStepTask
from repro.train.datasets import ArrayDataset
from repro.train.trainer import DataParallelTrainer

pytestmark = pytest.mark.faults

START_METHODS = sorted(
    set(multiprocessing.get_all_start_methods()) & {"fork", "spawn"}
)


def make_task(seed=0, n=128, features=6, classes=3):
    rng = np.random.default_rng(seed)
    w = rng.normal(size=(features, classes))
    x = rng.normal(size=(n, features))
    y = (x @ w).argmax(axis=1)
    split = int(n * 0.8)
    return (ArrayDataset(x[:split], y[:split]),
            ArrayDataset(x[split:], y[split:]))


def make_trainer(
    workers="process",
    plan=None,
    policy=None,
    membership_on=False,
    world=2,
    method="ssgd",
    seed=11,
    step_timeout=30.0,
    start_method=None,
):
    train_data, test_data = make_task(seed)
    model = make_mlp(6, 10, 3, rng=np.random.default_rng(5))
    membership = None
    if membership_on or policy is not None:
        group = ResilientProcessGroup(
            world, injector=FaultInjector(plan or FaultPlan(seed=seed))
        )
        if membership_on:
            membership = MembershipController(group)
    else:
        group = ProcessGroup(world)
    trainer = DataParallelTrainer(
        model,
        SGD(model, lr=0.05, momentum=0.9),
        make_aggregator(method, group),
        train_data,
        test_data,
        batch_size_per_worker=4,
        seed=seed,
        workers=workers,
        membership=membership,
        supervision=policy,
        worker_step_timeout=step_timeout,
        worker_start_method=start_method,
    )
    return trainer, model


def run_steps(trainer, model, steps):
    with trainer:
        losses = [trainer.train_step() for _ in range(steps)]
    weights = np.concatenate(
        [param.data.ravel() for _, param in model.named_parameters()]
    )
    return losses, weights


# ----------------------------------------------------------------------
# The typed hierarchy and the policy/supervisor objects
# ----------------------------------------------------------------------
class TestTypedErrors:
    def test_dead_error_carries_rank_exitcode_phase(self):
        error = WorkerDeadError(3, exitcode=-9, phase="spawn")
        assert isinstance(error, WorkerError)
        assert isinstance(error, RuntimeError)  # legacy handlers keep working
        assert error.rank == 3 and error.exitcode == -9
        assert error.phase == "spawn"
        assert "rank 3" in str(error) and "spawn" in str(error)

    def test_timeout_error_carries_rank_and_budget(self):
        error = WorkerTimeoutError(1, timeout_s=2.5)
        assert isinstance(error, WorkerError)
        assert error.rank == 1 and error.timeout_s == 2.5
        assert "2.5" in str(error)

    @pytest.mark.parametrize("kwargs", [
        {"on_failure": "retry"},
        {"max_restarts": -1},
        {"respawn_delay_steps": 0},
    ])
    def test_policy_validation(self, kwargs):
        with pytest.raises(ValueError):
            SupervisionPolicy(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        {"kind": "explode", "rank": 0, "step": 0},
        {"kind": "crash", "rank": -1, "step": 0},
        {"kind": "crash", "rank": 0, "step": -1},
        {"kind": "slow", "rank": 0, "step": 0, "delay_s": -0.1},
    ])
    def test_worker_fault_validation(self, kwargs):
        with pytest.raises(ValueError):
            WorkerFault(**kwargs)

    def test_plan_rejects_duplicate_fault_cells(self):
        with pytest.raises(ValueError, match="at most one"):
            FaultPlan(seed=0, worker_faults=(
                WorkerFault("crash", rank=1, step=2),
                WorkerFault("hang", rank=1, step=2),
            ))

    def test_plan_lookup(self):
        fault = WorkerFault("hang", rank=1, step=2)
        plan = FaultPlan(seed=0, worker_faults=(fault,))
        assert plan.worker_fault_at(1, 2) is fault
        assert plan.worker_fault_at(1, 3) is None
        assert plan.worker_fault_at(0, 2) is None

    def test_supervisor_classifies_and_budgets(self):
        supervisor = WorkerSupervisor(SupervisionPolicy(max_restarts=1))
        dead = WorkerDeadError(0, exitcode=-9)
        hung = WorkerTimeoutError(1, timeout_s=1.0)
        supervisor.record_failure(dead)
        supervisor.record_failure(hung)
        assert supervisor.stats.worker_crashes == 1
        assert supervisor.stats.worker_timeouts == 1
        supervisor.consume_restart(dead)
        assert supervisor.stats.worker_restarts == 1
        with pytest.raises(WorkerDeadError):
            supervisor.consume_restart(dead)  # budget exhausted: re-raises

    def test_simulated_failure_mapping(self):
        crash = WorkerSupervisor.simulated_failure(
            WorkerFault("crash", rank=2, step=0)
        )
        assert isinstance(crash, WorkerDeadError)
        assert crash.rank == 2 and crash.exitcode == SIGKILL_EXITCODE
        hang = WorkerSupervisor.simulated_failure(
            WorkerFault("hang", rank=1, step=0)
        )
        assert isinstance(hang, WorkerTimeoutError)
        # A slow child under the timeout completes normally: no failure.
        assert WorkerSupervisor.simulated_failure(
            WorkerFault("slow", rank=0, step=0)
        ) is None


# ----------------------------------------------------------------------
# Restart rung: bit-identical to fault-free, every fault kind
# ----------------------------------------------------------------------
class TestRestartPolicy:
    @pytest.mark.parametrize("kind", ["crash", "slow"])
    def test_bit_identical_to_fault_free(self, kind):
        plan = FaultPlan(seed=11, worker_faults=(
            WorkerFault(kind, rank=1, step=1, delay_s=0.01),
        ))
        policy = SupervisionPolicy(on_failure="restart")
        clean = run_steps(*make_trainer(), steps=3)
        faulty_trainer, faulty_model = make_trainer(plan=plan, policy=policy)
        faulty = run_steps(faulty_trainer, faulty_model, steps=3)
        seq = run_steps(
            *make_trainer(workers="seq", plan=plan, policy=policy), steps=3
        )
        assert faulty[0] == clean[0] == seq[0]
        assert np.array_equal(faulty[1], clean[1])
        assert np.array_equal(faulty[1], seq[1])
        stats = faulty_trainer.supervisor.stats
        if kind == "crash":
            assert stats.worker_crashes == 1
            assert stats.worker_restarts == 1
        else:  # slow: completes under the timeout, no supervision event
            assert stats.worker_crashes == 0
            assert stats.worker_restarts == 0

    def test_hang_detected_and_recovered(self):
        plan = FaultPlan(seed=11, worker_faults=(
            WorkerFault("hang", rank=0, step=1),
        ))
        policy = SupervisionPolicy(on_failure="restart")
        clean = run_steps(*make_trainer(), steps=3)
        trainer, model = make_trainer(
            plan=plan, policy=policy, step_timeout=3.0
        )
        faulty = run_steps(trainer, model, steps=3)
        assert faulty[0] == clean[0]
        assert np.array_equal(faulty[1], clean[1])
        assert trainer.supervisor.stats.worker_timeouts == 1
        assert trainer.supervisor.stats.worker_restarts == 1

    @pytest.mark.parametrize("workers", ["process", "seq"])
    def test_exhausted_budget_reraises(self, workers):
        plan = FaultPlan(seed=11, worker_faults=(
            WorkerFault("crash", rank=0, step=0),
        ))
        policy = SupervisionPolicy(on_failure="restart", max_restarts=0)
        trainer, _ = make_trainer(workers=workers, plan=plan, policy=policy)
        with trainer:
            with pytest.raises(WorkerDeadError):
                trainer.train_step()

    def test_accumulation_steps_replay_exactly(self):
        plan = FaultPlan(seed=11, worker_faults=(
            WorkerFault("crash", rank=0, step=1),
        ))
        policy = SupervisionPolicy(on_failure="restart")

        def build(**kwargs):
            train_data, test_data = make_task(11)
            model = make_mlp(6, 10, 3, rng=np.random.default_rng(5))
            group = ResilientProcessGroup(
                2, injector=FaultInjector(kwargs.pop("plan"))
            )
            trainer = DataParallelTrainer(
                model, SGD(model, lr=0.05, momentum=0.9),
                make_aggregator("ssgd", group), train_data, test_data,
                batch_size_per_worker=4, seed=11, accumulation_steps=2,
                workers="process", worker_step_timeout=30.0, **kwargs,
            )
            return trainer, model

        clean = run_steps(*build(plan=FaultPlan(seed=11)), steps=3)
        faulty = run_steps(*build(plan=plan, supervision=policy), steps=3)
        assert faulty[0] == clean[0]
        assert np.array_equal(faulty[1], clean[1])


# ----------------------------------------------------------------------
# Eject rung: degraded step, boundary ejection, scheduled rejoin
# ----------------------------------------------------------------------
class TestEjectPolicy:
    @pytest.mark.parametrize("kind,step_timeout", [
        ("crash", 30.0), ("hang", 3.0),
    ])
    def test_process_matches_sequential_twin(self, kind, step_timeout):
        plan = FaultPlan(seed=11, worker_faults=(
            WorkerFault(kind, rank=1, step=1),
        ))
        policy = SupervisionPolicy(on_failure="eject", respawn_delay_steps=2)
        results = {}
        for workers in ("process", "seq"):
            trainer, model = make_trainer(
                workers=workers, plan=plan, policy=policy,
                membership_on=True, step_timeout=step_timeout,
            )
            results[workers] = (
                run_steps(trainer, model, steps=5), trainer
            )
        (p_run, p_trainer), (s_run, s_trainer) = (
            results["process"], results["seq"]
        )
        assert p_run[0] == s_run[0]
        assert np.array_equal(p_run[1], s_run[1])
        for trainer in (p_trainer, s_trainer):
            log = trainer.membership.log
            assert [c.rank for c in log.of_kind("eject")] == [1]
            assert [c.rank for c in log.of_kind("rejoin")] == [1]
            assert trainer.aggregator.group.live_ranks == [0, 1]

    def test_no_rejoin_when_delay_is_none(self):
        plan = FaultPlan(seed=11, worker_faults=(
            WorkerFault("crash", rank=2, step=1),
        ))
        policy = SupervisionPolicy(
            on_failure="eject", respawn_delay_steps=None
        )
        trainer, model = make_trainer(
            plan=plan, policy=policy, membership_on=True, world=3
        )
        run_steps(trainer, model, steps=4)
        log = trainer.membership.log
        assert [c.rank for c in log.of_kind("eject")] == [2]
        assert log.of_kind("rejoin") == []
        assert trainer.aggregator.group.live_ranks == [0, 1]

    def test_eject_requires_membership(self):
        with pytest.raises(ValueError, match="MembershipController"):
            make_trainer(
                policy=SupervisionPolicy(on_failure="eject"),
                membership_on=False,
            )


# ----------------------------------------------------------------------
# Constructor validation and unsupervised propagation
# ----------------------------------------------------------------------
class TestSupervisionWiring:
    def test_requires_seq_or_process_workers(self):
        with pytest.raises(ValueError, match="workers"):
            make_trainer(workers="thread", policy=SupervisionPolicy())

    def test_hang_plan_requires_step_timeout(self):
        plan = FaultPlan(seed=0, worker_faults=(
            WorkerFault("hang", rank=0, step=0),
        ))
        with pytest.raises(ValueError, match="worker_step_timeout"):
            make_trainer(plan=plan, policy=SupervisionPolicy(),
                         step_timeout=None)

    def test_unsupervised_child_death_raises_typed_error(self):
        trainer, _ = make_trainer(step_timeout=10.0)
        with trainer:
            trainer.train_step()
            victim = trainer._procpool._children[1][1]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(5.0)
            with pytest.raises(WorkerDeadError) as excinfo:
                trainer.train_step()
            assert excinfo.value.rank == 1
            # SIGKILL shows up as a negative exitcode when reaped in time.
            assert excinfo.value.exitcode in (None, -signal.SIGKILL)


# ----------------------------------------------------------------------
# Pool lifecycle: crash-safe, idempotent, typed (satellites a/b/d)
# ----------------------------------------------------------------------
class TestPoolCrashSafety:
    def _make_pool(self, world=1, **kwargs):
        train_data, _ = make_task(0)
        model = make_mlp(6, 10, 3, rng=np.random.default_rng(0))
        arena = GradientArena(model, world, backing="shared")
        pool = ProcessWorkerPool(
            model, arena, train_data, seed=0, batch_size=4, **kwargs
        )
        return model, arena, pool

    def _task(self, arena, rank=0, slot=None):
        slot = rank if slot is None else slot
        return WorkerStepTask(
            rank=rank, slot=slot, slab_segment=arena.segment_name(slot),
            shard_index=rank, shard_world=arena.world_size,
        )

    def test_run_step_raises_typed_dead_error(self):
        model, arena, pool = self._make_pool(step_timeout=10.0)
        try:
            pool.ensure_ranks([0])
            pool.broadcast_weights(model)
            os.kill(pool._children[0][1].pid, signal.SIGKILL)
            pool._children[0][1].join(5.0)
            with pytest.raises(WorkerDeadError) as excinfo:
                pool.run_step([self._task(arena)])
            assert excinfo.value.rank == 0
        finally:
            pool.close()
            arena.close()

    def test_close_after_child_sigkill_reclaims_everything(self):
        model, arena, pool = self._make_pool(world=2)
        pool.ensure_ranks([0, 1])
        os.kill(pool._children[0][1].pid, signal.SIGKILL)
        pool.close()   # must not raise despite the broken pipe + zombie
        pool.close()   # and double-close stays a no-op
        arena.close()
        assert not shm.live_segment_names()

    def test_close_during_teardown_with_all_children_dead(self):
        model, arena, pool = self._make_pool(world=2)
        pool.ensure_ranks([0, 1])
        for rank in (0, 1):
            os.kill(pool._children[rank][1].pid, signal.SIGKILL)
        pool.close()
        arena.close()
        assert not shm.live_segment_names()

    def test_partially_constructed_pool_does_not_leak(self, monkeypatch):
        train_data, _ = make_task(0)
        model = make_mlp(6, 10, 3, rng=np.random.default_rng(0))
        arena = GradientArena(model, 1, backing="shared")
        before = shm.live_segment_names()
        monkeypatch.setattr(
            "repro.perf.procpool._scrubbed_template",
            lambda model: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        with pytest.raises(RuntimeError, match="boom"):
            ProcessWorkerPool(model, arena, train_data, seed=0, batch_size=4)
        # The constructor-owned broadcast segment was released on the way
        # out; only the arena's own segment may remain.
        assert shm.live_segment_names() == before
        arena.close()

    def test_discard_unknown_rank_is_noop(self):
        model, arena, pool = self._make_pool()
        try:
            pool.discard(7)  # never spawned: nothing to do, no error
        finally:
            pool.close()
            arena.close()

    def test_discard_kills_hung_child(self):
        plan = FaultPlan(seed=0, worker_faults=(
            WorkerFault("hang", rank=0, step=0),
        ))
        model, arena, pool = self._make_pool(
            step_timeout=2.0, fault_plan=plan
        )
        try:
            pool.ensure_ranks([0])
            pool.broadcast_weights(model)
            with pytest.raises(WorkerTimeoutError):
                pool.run_step([self._task(arena)])
            process = pool._children[0][1]
            assert process.is_alive()  # hung, not dead
            pool.discard(0)
            assert not process.is_alive()
            assert pool.worker_ranks == []
        finally:
            pool.close()
            arena.close()

    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_spawn_crash_during_admission(self, start_method):
        model, arena, pool = self._make_pool(
            step_timeout=15.0, start_method=start_method
        )
        try:
            pool.inject_spawn_crash(0)
            with pytest.raises(WorkerDeadError) as excinfo:
                pool.ensure_ranks([0])
            assert excinfo.value.phase == "spawn"
            assert pool.worker_ranks == []  # no half-initialized child kept
            # The crash was one-shot: admission succeeds on retry and the
            # child serves steps normally.
            pool.ensure_ranks([0])
            pool.broadcast_weights(model)
            (result,) = pool.run_step([self._task(arena)])
            assert np.isfinite(result.loss)
        finally:
            pool.close()
            arena.close()
        assert not shm.live_segment_names()

    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_supervised_trainer_rides_out_admission_crash(self, start_method):
        policy = SupervisionPolicy(on_failure="restart")
        clean = run_steps(
            *make_trainer(start_method=start_method), steps=2
        )
        trainer, model = make_trainer(
            policy=policy, start_method=start_method
        )
        with trainer:
            trainer._procpool.inject_spawn_crash(1)
            losses = [trainer.train_step() for _ in range(2)]
        weights = np.concatenate(
            [param.data.ravel() for _, param in model.named_parameters()]
        )
        assert losses == clean[0]
        assert np.array_equal(weights, clean[1])
        assert trainer.supervisor.stats.worker_crashes == 1
        assert trainer.supervisor.stats.worker_restarts == 1
