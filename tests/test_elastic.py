"""Elastic membership: eject, rejoin, scale up — deterministically.

The ISSUE acceptance scenarios:

- a churn schedule (permanent failure -> recovery -> brand-new join)
  trains to convergence within tolerance of the fault-free run, for both
  S-SGD and ACP-SGD;
- data shards stay pairwise disjoint and jointly exhaustive at every
  world size the run visits;
- the same churn schedule replayed twice is bit-identical, including the
  p -> p-1 -> p round trip;
- admissions warm-start compressor state (shared factors copied from the
  donor, error-feedback residuals zeroed) so a joiner never desyncs the
  aggregated trajectory.
"""

import numpy as np
import pytest

from repro.compression.acpsgd import ACPSGDState
from repro.compression.powersgd import PowerSGDState
from repro.elastic import MembershipController
from repro.faults import (
    FaultInjector,
    FaultPlan,
    Join,
    PermanentFailure,
    Recovery,
    ResilientProcessGroup,
)
from repro.faults.resilient import BackoffPolicy
from repro.models.convnets import make_mlp
from repro.optim import SGD, make_aggregator
from repro.train import DataParallelTrainer, ResilienceConfig
from repro.train.datasets import ArrayDataset

pytestmark = pytest.mark.faults


def make_data(seed=0, samples=96, features=6, classes=3):
    rng = np.random.default_rng(seed)
    inputs = rng.normal(size=(samples, features))
    labels = rng.integers(0, classes, size=samples)
    return ArrayDataset(inputs, labels), ArrayDataset(
        inputs[:16].copy(), labels[:16].copy()
    )


CHURN_PLAN = FaultPlan(
    seed=3,
    permanent=(PermanentFailure(rank=2, call_index=4),),
    recoveries=(Recovery(rank=2, call_index=10),),
    joins=(Join(call_index=16),),
)

ROUND_TRIP_PLAN = FaultPlan(
    seed=5,
    permanent=(PermanentFailure(rank=1, call_index=3),),
    recoveries=(Recovery(rank=1, call_index=9),),
)


def make_elastic_trainer(world_size=3, method="acpsgd", plan=CHURN_PLAN,
                         lr=0.05, rescale_lr=False, resilience=None):
    train_data, test_data = make_data()
    model = make_mlp(6, 10, 3, rng=np.random.default_rng(5))
    group = ResilientProcessGroup(
        world_size, injector=FaultInjector(plan),
        policy=BackoffPolicy(max_retries=1),
    )
    membership = MembershipController(group, rescale_lr=rescale_lr)
    kwargs = {"rank": 2} if method in ("acpsgd", "powersgd") else {}
    aggregator = make_aggregator(method, group, **kwargs)
    trainer = DataParallelTrainer(
        model, SGD(model, lr=lr, momentum=0.9), aggregator,
        train_data, test_data, batch_size_per_worker=8, seed=11,
        resilience=resilience, membership=membership,
    )
    return trainer, group, membership, model


def shard_ids(trainer):
    """The sample ids (first feature, int-cast) each rank currently owns."""
    return {
        rank: shard.inputs[:, 0].tolist()
        for rank, shard in trainer.train_shards.items()
    }


class TestChurnTraining:
    """The tentpole end-to-end scenario, for a plain and a stateful method."""

    @pytest.mark.parametrize("method", ["ssgd", "acpsgd"])
    def test_churn_run_converges_close_to_fault_free(self, method):
        elastic, group, membership, elastic_model = make_elastic_trainer(
            method=method
        )
        history = elastic.run(3, 12, method_label=method)

        # The schedule really played out: eject, rejoin, then scale-up.
        kinds = [change.kind for change in membership.log.changes]
        assert kinds == ["eject", "rejoin", "join"]
        assert group.live_ranks == [0, 1, 2, 3]
        assert group.stats.ejections == 1
        assert group.stats.rejoins == 1
        assert group.stats.joins == 1

        # Fault-free control: same model/data/seed, no churn.
        clean, _, _, clean_model = make_elastic_trainer(
            method=method, plan=FaultPlan(seed=3)
        )
        clean_history = clean.run(3, 12, method_label=method)

        assert np.isfinite(history.train_loss).all()
        final = history.train_loss[-1]
        clean_final = clean_history.train_loss[-1]
        # Churn perturbs the trajectory (different shards, world sizes)
        # but must not break optimization: the run keeps descending and
        # lands in the clean run's neighbourhood.
        assert history.train_loss[-1] < history.train_loss[0]
        assert final < clean_final + 0.5

    @pytest.mark.parametrize("method", ["ssgd", "acpsgd"])
    def test_shards_partition_data_at_every_world_size(self, method):
        trainer, group, membership, _ = make_elastic_trainer(method=method)
        all_ids = sorted(trainer.train_data.inputs[:, 0].tolist())
        seen_worlds = set()
        for _ in range(30):
            trainer.train_step()
            seen_worlds.add(len(group.live_ranks))
            owned = shard_ids(trainer)
            live = set(trainer.aggregator.roster)
            assert set(owned) == live
            flat = [s for ids in owned.values() for s in ids]
            assert len(flat) == len(set(flat)), "shards overlap"
            assert sorted(flat) == all_ids, "samples lost after re-shard"
        # The run actually visited shrink, recovery, and scale-up.
        assert {2, 3, 4} <= seen_worlds

    def test_churn_replay_is_bit_identical(self):
        first, _, _, first_model = make_elastic_trainer()
        first.run(2, 12, method_label="acpsgd")

        second, _, _, second_model = make_elastic_trainer()
        second.run(2, 12, method_label="acpsgd")

        assert np.array_equal(
            first_model.state_vector(), second_model.state_vector()
        )

    def test_round_trip_p_to_p_minus_1_to_p_is_deterministic(self):
        """p -> p-1 -> p: the rejoin restores the original world size and
        the whole trajectory replays step-for-step."""
        runs = []
        for _ in range(2):
            trainer, group, membership, model = make_elastic_trainer(
                world_size=3, plan=ROUND_TRIP_PLAN
            )
            per_step_weights = []
            for _ in range(15):
                trainer.train_step()
                per_step_weights.append(model.state_vector().copy())
            runs.append(per_step_weights)
            assert group.live_ranks == [0, 1, 2]
            sizes = [size for _, size in group.stats.world_size_timeline]
            assert sizes == [3, 2, 3]
        for step, (a, b) in enumerate(zip(*runs)):
            assert np.array_equal(a, b), f"step {step} diverged between replays"

    def test_rescale_lr_follows_world_size(self):
        trainer, group, _, _ = make_elastic_trainer(
            method="ssgd", plan=ROUND_TRIP_PLAN, lr=0.06, rescale_lr=True
        )
        for _ in range(15):
            trainer.train_step()
        # 3 -> 2 is an ejection (no rescale), 2 -> 3 a rejoin (x 3/2).
        assert trainer.optimizer.lr == pytest.approx(0.06 * 1.5)

    def test_elastic_works_with_resilience_ladder(self):
        trainer, group, membership, _ = make_elastic_trainer(
            resilience=ResilienceConfig(checkpoint_interval=0)
        )
        history = trainer.run(2, 12, method_label="acpsgd")
        assert np.isfinite(history.train_loss).all()
        assert membership.log.of_kind("rejoin")

    def test_membership_rejects_parallel_workers(self):
        train_data, test_data = make_data()
        model = make_mlp(6, 10, 3, rng=np.random.default_rng(5))
        group = ResilientProcessGroup(
            2, injector=FaultInjector(FaultPlan(seed=0))
        )
        membership = MembershipController(group)
        aggregator = make_aggregator("ssgd", group)
        with pytest.raises(ValueError, match="parallel_workers"):
            DataParallelTrainer(
                model, SGD(model, lr=0.05), aggregator, train_data,
                test_data, membership=membership, parallel_workers=True,
            )


class TestMembershipController:
    def test_needs_a_plan_or_an_injector(self):
        group = ResilientProcessGroup(2)
        with pytest.raises(ValueError, match="no plan"):
            MembershipController(group)
        MembershipController(group, plan=FaultPlan(seed=0))  # explicit plan OK

    def test_events_commit_only_once_their_call_index_passes(self):
        plan = FaultPlan(seed=0, joins=(Join(call_index=2),))
        group = ResilientProcessGroup(2, injector=FaultInjector(plan))
        controller = MembershipController(group)
        assert controller.begin_step() == [0, 1]  # call index still 0
        assert controller.pending_events == 1
        group.all_reduce([np.ones(4), np.ones(4)])
        group.all_reduce([np.ones(4), np.ones(4)])
        assert controller.begin_step() == [0, 1, 2]
        assert controller.pending_events == 0
        assert controller.log.changes[-1].kind == "join"
        assert controller.log.changes[-1].donor == 0

    def test_recovery_for_never_ejected_rank_is_a_noop(self):
        # The recovery's call index precedes the failure's: latest event
        # wins, the rank never goes down, and the admission is skipped.
        plan = FaultPlan(
            seed=0,
            permanent=(PermanentFailure(rank=1, call_index=50),),
            recoveries=(Recovery(rank=1, call_index=1),),
        )
        group = ResilientProcessGroup(2, injector=FaultInjector(plan))
        controller = MembershipController(group)
        group.all_reduce([np.ones(4), np.ones(4)])
        assert controller.begin_step() == [0, 1]
        assert controller.log.changes == []

    def test_ejection_recorded_in_log(self):
        plan = FaultPlan(
            seed=0, permanent=(PermanentFailure(rank=0, call_index=0),)
        )
        group = ResilientProcessGroup(
            2, injector=FaultInjector(plan),
            policy=BackoffPolicy(max_retries=0),
        )
        controller = MembershipController(group)
        group.all_reduce([np.ones(4), np.ones(4)])
        assert controller.begin_step() == [1]
        ejections = controller.log.of_kind("eject")
        assert [change.rank for change in ejections] == [0]
        assert ejections[0].donor is None
        assert "eject" in controller.log.render()

    def test_unbound_controller_manages_roster_only(self):
        plan = FaultPlan(seed=0, joins=(Join(call_index=0),))
        group = ResilientProcessGroup(2, injector=FaultInjector(plan))
        controller = MembershipController(group)  # never bound to a trainer
        assert controller.begin_step() == [0, 1, 2]
        assert group.stats.joins == 1


class TestPlanMembershipSemantics:
    def test_latest_event_wins(self):
        plan = FaultPlan(
            seed=0,
            permanent=(
                PermanentFailure(rank=1, call_index=2),
                PermanentFailure(rank=1, call_index=20),
            ),
            recoveries=(Recovery(rank=1, call_index=10),),
        )
        assert not plan.permanently_down(1, 1)   # before first failure
        assert plan.permanently_down(1, 2)       # failed
        assert plan.permanently_down(1, 9)       # still down
        assert not plan.permanently_down(1, 10)  # recovered
        assert plan.permanently_down(1, 20)      # failed again
        assert plan.permanently_down(1, 99)      # no later recovery
        assert plan.permanently_dead(5) == {1}
        assert plan.permanently_dead(15) == set()

    def test_membership_events_commit_order(self):
        plan = FaultPlan(
            seed=0,
            recoveries=(Recovery(rank=2, call_index=7),
                        Recovery(rank=0, call_index=7)),
            joins=(Join(call_index=7), Join(call_index=3)),
        )
        events = plan.membership_events()
        # By call index; at a tie, recoveries (by rank) before joins.
        assert isinstance(events[0], Join) and events[0].call_index == 3
        assert isinstance(events[1], Recovery) and events[1].rank == 0
        assert isinstance(events[2], Recovery) and events[2].rank == 2
        assert isinstance(events[3], Join)

    def test_event_validation(self):
        with pytest.raises(ValueError, match="rank"):
            Recovery(rank=-1, call_index=0)
        with pytest.raises(ValueError, match="call_index"):
            Recovery(rank=0, call_index=-1)
        with pytest.raises(ValueError, match="call_index"):
            Join(call_index=-2)


class TestCompressorWarmStart:
    def _run_powersgd_steps(self, state, rng, steps=3):
        for _ in range(steps):
            m = rng.normal(size=(6, 4))
            p = state.compute_p("w", m)
            q = state.compute_q("w", p)
            state.reconstruct("w", q)

    def test_powersgd_warm_start_copies_query_zeroes_error(self):
        rng = np.random.default_rng(0)
        donor = PowerSGDState(rank=2, seed=7)
        self._run_powersgd_steps(donor, rng)
        assert donor._error  # the donor accumulated a residual

        joiner = PowerSGDState(rank=2, seed=7)
        joiner.warm_start_from(donor)
        assert not joiner._error
        assert set(joiner._query) == set(donor._query)
        assert np.array_equal(joiner._query["w"], donor._query["w"])
        # A deep copy: mutating the joiner's never touches the donor's.
        joiner._query["w"][0, 0] += 1.0
        assert not np.array_equal(joiner._query["w"], donor._query["w"])

    def test_acpsgd_warm_start_syncs_alternation_phase(self):
        rng = np.random.default_rng(1)
        donor = ACPSGDState(rank=2, seed=7)
        for step in (1, 2, 3):
            m = rng.normal(size=(6, 4))
            factor = donor.compress("w", m, step)
            donor.finalize("w", factor, step)

        joiner = ACPSGDState(rank=2, seed=7)
        joiner.warm_start_from(donor)
        assert np.array_equal(joiner._p["w"], donor._p["w"])
        assert np.array_equal(joiner._q["w"], donor._q["w"])
        assert not joiner._error and not joiner._carried

    def test_acpsgd_warm_started_peer_is_in_phase(self):
        """With the per-worker residual out of the picture, a warm-started
        joiner produces the *identical* local factor for identical input —
        it orthogonalizes the same carried factor and compresses the same
        side of the factorization as the survivors."""
        rng = np.random.default_rng(1)
        donor = ACPSGDState(rank=2, seed=7, use_error_feedback=False)
        for step in (1, 2, 3):
            m = rng.normal(size=(6, 4))
            donor.finalize("w", donor.compress("w", m, step), step)

        joiner = ACPSGDState(rank=2, seed=7, use_error_feedback=False)
        joiner.warm_start_from(donor)
        m = rng.normal(size=(6, 4))
        assert np.array_equal(
            joiner.compress("w", m.copy(), 4), donor.compress("w", m.copy(), 4)
        )

    def test_aggregator_admit_rank_warm_starts_from_donor(self):
        group = ResilientProcessGroup(2)
        aggregator = make_aggregator("acpsgd", group, rank=2)
        grads = [{"w": np.random.default_rng(r).normal(size=(6, 4))}
                 for r in range(2)]
        aggregator.aggregate(grads)

        group.admit(group.allocate_rank(), rejoin=False)
        aggregator.admit_rank(2, donor_rank=0)
        aggregator.set_roster([0, 1, 2])
        donor_state = aggregator.state_for(0)
        joiner_state = aggregator.state_for(2)
        assert np.array_equal(joiner_state._p["w"], donor_state._p["w"])

        # The widened aggregate runs and stays finite.
        grads.append({"w": np.random.default_rng(9).normal(size=(6, 4))})
        out = aggregator.aggregate(grads)
        assert np.isfinite(out["w"]).all()

    def test_per_rank_state_follows_rank_ids_not_slots(self):
        """Ejecting rank 0 must not hand its EF residual to rank 1."""
        group = ResilientProcessGroup(3)
        aggregator = make_aggregator("topk", group, ratio=0.5)
        grads = [{"w": np.random.default_rng(r).normal(size=(8,))}
                 for r in range(3)]
        aggregator.aggregate(grads)
        rank1_state = aggregator.state_for(1)

        aggregator.set_roster([1, 2])  # rank 0 ejected
        assert aggregator.state_for(1) is rank1_state
        assert aggregator.state_for(0) is not rank1_state
