"""Repository-coherence checks: docs, benches and drivers stay in sync."""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


class TestDocsReferenceRealFiles:
    @pytest.mark.parametrize("doc", ["DESIGN.md", "EXPERIMENTS.md", "README.md"])
    def test_referenced_bench_files_exist(self, doc):
        text = (ROOT / doc).read_text()
        for match in re.findall(r"benchmarks/test_[a-z0-9_]+\.py", text):
            assert (ROOT / match).exists(), f"{doc} references missing {match}"

    def test_readme_module_paths_exist(self):
        text = (ROOT / "README.md").read_text()
        for match in set(re.findall(r"`repro\.([a-z_.]+)`", text)):
            parts = match.split(".")
            candidate = ROOT / "src" / "repro" / Path(*parts)
            assert (
                candidate.with_suffix(".py").exists()
                or (candidate / "__init__.py").exists()
                or _is_attribute(parts)
            ), f"README references repro.{match}"


def _is_attribute(parts):
    """Dotted path may name an attribute of a module (e.g. planner.plan)."""
    import importlib

    for split in range(len(parts), 0, -1):
        module_name = "repro." + ".".join(parts[:split])
        try:
            module = importlib.import_module(module_name)
        except ImportError:
            continue
        obj = module
        try:
            for attr in parts[split:]:
                obj = getattr(obj, attr)
        except AttributeError:
            return False
        return True
    return False


class TestEveryPaperArtifactHasABench:
    ARTIFACTS = [
        "table1", "table2", "table3", "fig2", "fig3", "fig4", "fig5",
        "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
    ]

    def test_driver_modules_exist(self):
        for artifact in self.ARTIFACTS:
            path = ROOT / "src" / "repro" / "experiments" / f"{artifact}.py"
            assert path.exists(), artifact

    def test_bench_exists_per_artifact(self):
        bench_names = {p.name for p in (ROOT / "benchmarks").glob("test_*.py")}
        mapping = {
            "table1": "test_table1_ratios.py",
            "table2": "test_table2_complexity.py",
            "table3": "test_table3_iteration.py",
            "fig2": "test_fig2_iteration_time.py",
            "fig3": "test_fig3_breakdown.py",
            "fig4": "test_fig4_schedules.py",
            "fig5": "test_fig5_cdf.py",
            "fig6": "test_fig6_convergence.py",
            "fig7": "test_fig7_ablation.py",
            "fig8": "test_fig8_breakdown.py",
            "fig9": "test_fig9_sysopt.py",
            "fig10": "test_fig10_buffer.py",
            "fig11": "test_fig11_hyperparams.py",
            "fig12": "test_fig12_scaling.py",
            "fig13": "test_fig13_bandwidth.py",
        }
        for artifact, bench in mapping.items():
            assert bench in bench_names, f"missing bench for {artifact}"

    def test_experiments_md_covers_every_artifact(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for heading in ("Table I", "Table II", "Table III", "Fig. 2",
                        "Fig. 3", "Fig. 4", "Fig. 5", "Fig. 6", "Fig. 7",
                        "Fig. 8", "Fig. 9", "Fig. 10", "Fig. 11", "Fig. 12",
                        "Fig. 13"):
            assert heading in text, heading


class TestPublicApiImportable:
    def test_star_exports_resolve(self):
        import repro.comm
        import repro.compression
        import repro.models
        import repro.nn
        import repro.optim
        import repro.sim
        import repro.train

        for package in (repro.comm, repro.compression, repro.models,
                        repro.nn, repro.optim, repro.sim, repro.train):
            for name in package.__all__:
                assert hasattr(package, name), (package.__name__, name)
