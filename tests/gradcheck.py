"""Finite-difference gradient checking helpers for the nn test suite."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.module import Module


def numeric_grad(fn: Callable[[], float], array: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``fn()`` w.r.t. ``array`` in place."""
    grad = np.zeros_like(array)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    for idx in range(flat.size):
        original = flat[idx]
        flat[idx] = original + eps
        upper = fn()
        flat[idx] = original - eps
        lower = fn()
        flat[idx] = original
        grad_flat[idx] = (upper - lower) / (2 * eps)
    return grad


def check_layer_gradients(
    layer: Module,
    x: np.ndarray,
    rtol: float = 1e-5,
    atol: float = 1e-7,
) -> None:
    """Verify a layer's analytic input and parameter gradients.

    Uses the scalar objective ``sum(w * layer(x))`` for a fixed random
    weighting ``w`` so the output gradient is non-trivial.
    """
    rng = np.random.default_rng(0)
    out = layer(x)
    weights = rng.normal(size=out.shape)

    def objective() -> float:
        return float((layer(x) * weights).sum())

    # Analytic gradients.
    layer.zero_grad()
    layer(x)
    grad_input = layer.backward(weights)

    num_grad_input = numeric_grad(objective, x)
    np.testing.assert_allclose(grad_input, num_grad_input, rtol=rtol, atol=atol)

    for name, param in layer.named_parameters():
        assert param.grad is not None, f"{name} got no gradient"
        num = numeric_grad(objective, param.data)
        np.testing.assert_allclose(
            param.grad, num, rtol=rtol, atol=atol,
            err_msg=f"parameter {name} gradient mismatch",
        )
