"""The capacity-planning service: keys, cache, single-flight, invalidation."""

import json
import threading

import pytest

from repro.comm.cost_model import LinkSpec
from repro.serve import (
    PlanQuery,
    PlannerService,
    ResultCache,
    canonical_float,
    dumps_canonical,
    plan_from_dict,
    plan_payload,
    plan_to_dict,
    serve_jsonl,
)
from repro.serve.service import (
    SOURCE_CACHE,
    SOURCE_COALESCED,
    SOURCE_COMPUTED,
    compute_plan_payload,
)
from repro.sim.calibration import CALIBRATION_GENERATION, SIM_LINKS

pytestmark = pytest.mark.serve

TEN_GBE = SIM_LINKS["10GbE"]


def small_query(**overrides):
    """A cheap-to-simulate query for tests that hit the real planner."""
    defaults = dict(model="ResNet-18", gpus=4, link=TEN_GBE,
                    tune_buffer=False)
    defaults.update(overrides)
    return PlanQuery(**defaults)


class TestCanonicalFloat:
    def test_equal_literals_one_representation(self):
        assert canonical_float(10.0) == canonical_float(1e1)
        assert repr(canonical_float(10.0)) == repr(canonical_float(1e1))

    def test_negative_zero_collapses(self):
        assert repr(canonical_float(-0.0)) == repr(canonical_float(0.0))

    def test_int_and_float_forms_agree(self):
        assert repr(canonical_float(10)) == repr(canonical_float(10.0))

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     float("-inf")])
    def test_non_finite_rejected(self, bad):
        with pytest.raises(ValueError, match="finite"):
            canonical_float(bad)

    def test_bool_rejected(self):
        with pytest.raises(TypeError, match="bool"):
            canonical_float(True)


class TestPlanQuery:
    def test_equal_specs_equal_keys(self):
        a = PlanQuery("ResNet-50", gpus=32,
                      link=LinkSpec("x", 1e-5, 1.15e9, 10.0))
        b = PlanQuery("ResNet-50", gpus=32,
                      link=LinkSpec("x", 0.00001, 1150000000.0, 1e1))
        assert a == b
        assert a.cache_key() == b.cache_key()

    def test_negative_zero_alpha_same_key(self):
        a = PlanQuery("ResNet-50", gpus=8, link=LinkSpec("x", 0.0, 1e9, 0.0))
        b = PlanQuery("ResNet-50", gpus=8, link=LinkSpec("x", -0.0, 1e9, -0.0))
        assert a.cache_key() == b.cache_key()

    def test_different_values_different_keys(self):
        a = small_query()
        assert a.cache_key() != small_query(gpus=8).cache_key()
        assert a.cache_key() != small_query(model="ResNet-50").cache_key()
        assert a.cache_key() != small_query(rank=2).cache_key()
        assert a.cache_key() != small_query(tune_buffer=True).cache_key()
        assert (a.cache_key() !=
                small_query(link=SIM_LINKS["1GbE"]).cache_key())

    def test_link_name_is_part_of_the_key(self):
        """Two identically parametrized links with different names are
        distinct deployments by declaration."""
        a = small_query(link=LinkSpec("site-a", 1e-5, 1e9, 10.0))
        b = small_query(link=LinkSpec("site-b", 1e-5, 1e9, 10.0))
        assert a.cache_key() != b.cache_key()

    def test_round_trip_preserves_key(self):
        query = small_query(rank=4, batch_size=16,
                            methods=("ssgd", "acpsgd"), topk_ratio=0.01)
        doc = query.to_dict()
        again = PlanQuery.from_dict(json.loads(json.dumps(doc)))
        assert again == query
        assert again.cache_key() == query.cache_key()

    def test_foreign_schema_rejected(self):
        doc = small_query().to_dict()
        doc["schema"] = "repro.plan/99"
        with pytest.raises(ValueError, match="unsupported schema"):
            PlanQuery.from_dict(doc)

    def test_validation(self):
        with pytest.raises(ValueError, match="gpus"):
            small_query(gpus=0)
        with pytest.raises(ValueError, match="rank"):
            small_query(rank=0)
        with pytest.raises(ValueError, match="batch_size"):
            small_query(batch_size=0)
        with pytest.raises(ValueError, match="unknown method"):
            small_query(methods=("magic",))
        with pytest.raises(ValueError, match="at least one"):
            small_query(methods=())

    def test_hashable(self):
        assert len({small_query(), small_query(), small_query(gpus=8)}) == 2


class TestResultCache:
    def test_put_get_hit_miss_counters(self):
        cache = ResultCache(shards=2, capacity_per_shard=4)
        key = small_query().cache_key()
        assert cache.get(key, 0) is None
        cache.put(key, 0, "payload")
        assert cache.get(key, 0) == "payload"
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["entries"] == 1 and len(cache) == 1

    def test_stale_generation_is_a_miss_and_drops(self):
        cache = ResultCache(shards=1, capacity_per_shard=4)
        cache.put("a" * 64, 0, "old")
        assert cache.get("a" * 64, 1) is None
        stats = cache.stats()
        assert stats["stale_drops"] == 1
        assert stats["entries"] == 0  # dropped, not kept around

    def test_lru_eviction(self):
        cache = ResultCache(shards=1, capacity_per_shard=2)
        keys = [format(i, "064x") for i in range(3)]
        for i, key in enumerate(keys):
            cache.put(key, 0, str(i))
        # Oldest key evicted; the other two survive.
        assert cache.get(keys[0], 0) is None
        assert cache.get(keys[1], 0) == "1"
        assert cache.get(keys[2], 0) == "2"
        assert cache.stats()["evictions"] == 1

    def test_lru_refresh_on_hit(self):
        cache = ResultCache(shards=1, capacity_per_shard=2)
        keys = [format(i, "064x") for i in range(3)]
        cache.put(keys[0], 0, "0")
        cache.put(keys[1], 0, "1")
        cache.get(keys[0], 0)  # refresh 0 so 1 is now LRU
        cache.put(keys[2], 0, "2")
        assert cache.get(keys[0], 0) == "0"
        assert cache.get(keys[1], 0) is None

    def test_keys_spread_across_shards(self):
        cache = ResultCache(shards=8, capacity_per_shard=64)
        indices = {
            cache.shard_index(small_query(gpus=g).cache_key())
            for g in range(1, 65)
        }
        assert len(indices) >= 4  # SHA-256 prefixes spread uniformly

    def test_invalidate_all(self):
        cache = ResultCache(shards=4, capacity_per_shard=8)
        for i in range(6):
            cache.put(format(i, "064x"), 0, str(i))
        assert cache.invalidate_all() == 6
        assert len(cache) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ResultCache(shards=0)
        with pytest.raises(ValueError):
            ResultCache(capacity_per_shard=0)


class CountingCompute:
    """Deterministic fake compute with per-key execution counts."""

    def __init__(self, delay_s=0.0):
        self.lock = threading.Lock()
        self.counts = {}
        self.delay_s = delay_s

    def __call__(self, query):
        import time

        key = query.cache_key()
        with self.lock:
            self.counts[key] = self.counts.get(key, 0) + 1
        if self.delay_s:
            time.sleep(self.delay_s)
        return dumps_canonical({"key": key, "model": query.model,
                                "gpus": query.gpus})


class TestPlannerServiceSingleFlight:
    def test_compute_once_then_cache(self):
        compute = CountingCompute()
        with PlannerService(compute_fn=compute) as service:
            query = small_query()
            first = service.submit(query)
            second = service.submit(query)
            assert first.source == SOURCE_COMPUTED
            assert second.source == SOURCE_CACHE
            assert first.payload == second.payload
            assert compute.counts[query.cache_key()] == 1

    def test_hammered_duplicates_run_once_per_unique_key(self):
        """Many threads x few unique queries => exactly one simulator
        execution per unique key, and identical payloads everywhere."""
        compute = CountingCompute(delay_s=0.02)
        unique = [small_query(gpus=g) for g in (2, 4, 8, 16)]
        results = {}
        errors = []
        barrier = threading.Barrier(24)

        with PlannerService(compute_fn=compute, max_workers=4) as service:
            def hammer(thread_id):
                try:
                    barrier.wait()
                    for repeat in range(8):
                        query = unique[(thread_id + repeat) % len(unique)]
                        result = service.submit(query)
                        results.setdefault(
                            query.cache_key(), set()
                        ).add(result.payload)
                except BaseException as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=hammer, args=(i,))
                       for i in range(24)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        assert not errors
        assert set(compute.counts.values()) == {1}  # one run per key
        assert len(compute.counts) == len(unique)
        for payloads in results.values():
            assert len(payloads) == 1  # deterministic payload per key
        # 24 threads x 8 submits = 192 answers from 4 computes.
        stats = service.stats()
        assert stats["computes"] == len(unique)
        assert (stats["cache"]["hits"] + stats["coalesced"]
                == 24 * 8 - len(unique))

    def test_leader_failure_propagates_and_releases_key(self):
        calls = {"n": 0}

        def flaky(query):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("backend down")
            return "ok"

        with PlannerService(compute_fn=flaky) as service:
            with pytest.raises(RuntimeError, match="backend down"):
                service.submit(small_query())
            # The key is not poisoned: the next caller recomputes.
            assert service.submit(small_query()).payload == "ok"

    def test_submit_batch_preserves_order_and_coalesces(self):
        compute = CountingCompute(delay_s=0.01)
        queries = [small_query(gpus=2), small_query(gpus=4),
                   small_query(gpus=2), small_query(gpus=8),
                   small_query(gpus=4)]
        with PlannerService(compute_fn=compute, max_workers=4) as service:
            results = service.submit_batch(queries)
        assert [r.query for r in results] == queries
        assert len(compute.counts) == 3
        assert set(compute.counts.values()) == {1}

    def test_lookup_is_cache_only(self):
        compute = CountingCompute()
        with PlannerService(compute_fn=compute) as service:
            query = small_query()
            assert service.lookup(query) is None
            assert compute.counts == {}  # lookup never computes
            service.submit(query)
            hit = service.lookup(query)
            assert hit is not None and hit.source == SOURCE_CACHE


class TestCalibrationInvalidation:
    SAMPLES = [(1 * 1024**2, 0.0021), (4 * 1024**2, 0.0079),
               (16 * 1024**2, 0.0305), (64 * 1024**2, 0.1205)]

    def test_recalibration_bumps_generation_and_recomputes(self):
        compute = CountingCompute()
        with PlannerService(compute_fn=compute) as service:
            query = small_query()
            before = service.generation()
            first = service.submit(query)
            assert service.submit(query).source == SOURCE_CACHE

            link = service.recalibrate(self.SAMPLES, world_size=4,
                                       name="measured")
            assert service.generation() == before + 1
            assert service.resolve_link("measured") == link

            # Same query again: the cached entry is stale, so it must be
            # recomputed (generation re-stamped), not served.
            second = service.submit(query)
            assert second.source == SOURCE_COMPUTED
            assert second.generation == first.generation + 1
            assert compute.counts[query.cache_key()] == 2
            assert service.cache.stats()["stale_drops"] >= 1

    def test_fresh_results_bit_identical_to_uncached_run(self):
        """After invalidation the served plan is byte-identical to a
        cache-less computation at the same generation (real planner)."""
        with PlannerService(max_workers=1) as service:
            query = small_query()
            service.submit(query)
            service.recalibrate(self.SAMPLES, world_size=4, name="anchor-a")
            served = service.submit(query)
        uncached = compute_plan_payload(query)
        assert served.payload == uncached
        assert served.source == SOURCE_COMPUTED

    def test_direct_fit_call_also_invalidates(self):
        """Any fit_link_from_bucket_timings call — not just ones routed
        through the service — must invalidate, since it re-anchors the
        simulator the service prices with."""
        from repro.sim.calibration import fit_link_from_bucket_timings

        compute = CountingCompute()
        with PlannerService(compute_fn=compute) as service:
            query = small_query()
            service.submit(query)
            fit_link_from_bucket_timings(self.SAMPLES, world_size=4)
            assert service.submit(query).source == SOURCE_COMPUTED
            assert compute.counts[query.cache_key()] == 2

    def test_mid_compute_recalibration_is_not_memoized(self):
        """A payload priced under generation g must not be served after a
        bump to g+1 that lands while it is still being computed."""
        service_box = {}

        def bump_during_compute(query):
            CALIBRATION_GENERATION.bump()
            return "priced-under-old-calibration"

        with PlannerService(compute_fn=bump_during_compute) as service:
            service_box["s"] = service
            query = small_query()
            result = service.submit(query)
            assert result.payload == "priced-under-old-calibration"
            # Not cached: the next submit recomputes under the new gen.
            assert service.lookup(query) is None


class TestWarmStart:
    def test_warm_start_precomputes_once(self):
        compute = CountingCompute()
        with PlannerService(compute_fn=compute, max_workers=4) as service:
            computed = service.warm_start(models=("ResNet-18", "ResNet-50"),
                                          gpus=(4, 8))
            assert computed == 4
            # The whole grid is now warm.
            assert service.warm_start(models=("ResNet-18", "ResNet-50"),
                                      gpus=(4, 8)) == 0
            hit = service.lookup(PlanQuery("ResNet-18", gpus=4,
                                           link=TEN_GBE, tune_buffer=False))
            assert hit is not None

    def test_warm_start_default_grid_covers_registry(self):
        from repro.models.registry import MODEL_SPECS

        compute = CountingCompute()
        with PlannerService(compute_fn=compute, max_workers=4) as service:
            computed = service.warm_start()
            assert computed == len(MODEL_SPECS)


class TestPayloadSchema:
    def test_cached_equals_uncached_byte_for_byte(self):
        query = small_query()
        with PlannerService() as service:
            cold = service.submit(query)
            warm = service.submit(query)
        fresh = compute_plan_payload(query)
        assert cold.payload == warm.payload == fresh
        assert warm.source == SOURCE_CACHE

    def test_plan_round_trips_through_schema(self):
        from repro.planner import plan

        result = plan("ResNet-18", gpus=4, link="10GbE", tune_buffer=True)
        doc = json.loads(plan_payload(result))
        again = plan_from_dict(doc)
        assert again == result
        assert plan_payload(again) == plan_payload(result)
        assert again.tuning is not None
        assert again.tuning.evaluated == result.tuning.evaluated

    def test_plan_result_parses_back(self):
        with PlannerService() as service:
            result = service.submit(small_query())
        assert result.plan.model == "ResNet-18"
        assert result.plan.recommended_method in (
            "ssgd", "powersgd", "powersgd_star", "acpsgd"
        )

    def test_foreign_plan_schema_rejected(self):
        from repro.planner import plan

        doc = plan_to_dict(plan("ResNet-18", gpus=4, tune_buffer=False))
        doc["schema"] = "repro.plan/0"
        with pytest.raises(ValueError, match="unsupported schema"):
            plan_from_dict(doc)


class TestServeJsonl:
    def make_line(self, **overrides):
        doc = small_query(**overrides).to_dict()
        return json.dumps(doc)

    def test_streams_plans_in_order(self):
        compute = CountingCompute()
        with PlannerService(compute_fn=compute, max_workers=2) as service:
            lines = [self.make_line(gpus=4), self.make_line(gpus=8),
                     self.make_line(gpus=4)]
            out = [json.loads(line)
                   for line in serve_jsonl(lines, service, batch_size=2)]
        assert len(out) == 3
        assert out[0]["key"] == out[2]["key"]
        assert out[0]["key"] != out[1]["key"]
        assert len(compute.counts) == 2

    def test_link_by_name_resolves(self):
        compute = CountingCompute()
        with PlannerService(compute_fn=compute) as service:
            doc = small_query().to_dict()
            doc["link"] = "10GbE"
            out = list(serve_jsonl([json.dumps(doc)], service))
        assert json.loads(out[0])["key"] == small_query().cache_key()

    def test_bad_lines_become_error_documents(self):
        compute = CountingCompute()
        with PlannerService(compute_fn=compute) as service:
            lines = ["not json", self.make_line(),
                     json.dumps({"model": "ResNet-18"})]  # missing fields
            out = [json.loads(line) for line in serve_jsonl(lines, service)]
        assert "error" in out[0]
        assert "plan" in out[1]
        assert "error" in out[2]

    def test_blank_lines_skipped(self):
        compute = CountingCompute()
        with PlannerService(compute_fn=compute) as service:
            out = list(serve_jsonl(["", "   ", self.make_line()], service))
        assert len(out) == 1

    def test_compute_failure_becomes_error_document(self):
        # A well-formed query whose *compute* fails (unknown model) must
        # yield an error line, not crash the stream for its neighbours.
        def picky(query):
            if query.model == "ResNet-18":
                raise KeyError("unknown model 'ResNet-18'")
            return dumps_canonical({"model": query.model})

        with PlannerService(compute_fn=picky, max_workers=2) as service:
            lines = [self.make_line(model="ResNet-18"),
                     self.make_line(model="ResNet-50")]
            out = [json.loads(line)
                   for line in serve_jsonl(lines, service, batch_size=2)]
        assert "error" in out[0]
        assert "ResNet-18" in out[0]["error"]
        assert "plan" in out[1]


class TestSubmitBatchErrors:
    def test_batch_raises_by_default(self):
        def broken(query):
            raise RuntimeError("boom")

        with PlannerService(compute_fn=broken) as service:
            with pytest.raises(RuntimeError):
                service.submit_batch([small_query()])

    def test_return_exceptions_isolates_bad_queries(self):
        def picky(query):
            if query.gpus == 8:
                raise RuntimeError("boom")
            return dumps_canonical({"gpus": query.gpus})

        with PlannerService(compute_fn=picky, max_workers=2) as service:
            results = service.submit_batch(
                [small_query(gpus=4), small_query(gpus=8),
                 small_query(gpus=16)],
                return_exceptions=True,
            )
        assert results[0].payload == dumps_canonical({"gpus": 4})
        assert isinstance(results[1], RuntimeError)
        assert results[2].payload == dumps_canonical({"gpus": 16})

    def test_failed_key_not_poisoned(self):
        # After a failure the in-flight slot must be released so a later
        # identical query can succeed (e.g. once the model is registered).
        attempts = {"n": 0}

        def flaky(query):
            attempts["n"] += 1
            if attempts["n"] == 1:
                raise RuntimeError("transient")
            return dumps_canonical({"ok": True})

        with PlannerService(compute_fn=flaky) as service:
            [first] = service.submit_batch([small_query()],
                                           return_exceptions=True)
            assert isinstance(first, RuntimeError)
            second = service.submit(small_query())
        assert second.payload == dumps_canonical({"ok": True})


class TestTopologyQueries:
    """repro.plan/2: the optional ``topology`` field of PlanQuery."""

    def _topology(self, nodes=2, g=2):
        from repro.comm.topology import NVLINK2, ClusterTopology

        return ClusterTopology(num_nodes=nodes, gpus_per_node=g,
                               intra_link=NVLINK2, inter_link=TEN_GBE)

    def test_round_trips_through_dict(self):
        query = small_query(gpus=4, topology=self._topology())
        restored = PlanQuery.from_dict(query.to_dict())
        assert restored == query
        assert restored.cache_key() == query.cache_key()
        assert restored.topology == self._topology()

    def test_flat_and_topology_queries_key_apart(self):
        flat = small_query(gpus=4)
        hier = small_query(gpus=4, topology=self._topology())
        assert flat.to_dict()["topology"] is None
        assert flat.cache_key() != hier.cache_key()

    def test_distinct_topologies_key_apart(self):
        two_by_two = small_query(gpus=4, topology=self._topology(2, 2))
        one_by_four = small_query(gpus=4, topology=self._topology(1, 4))
        assert two_by_two.cache_key() != one_by_four.cache_key()

    def test_world_size_mismatch_rejected(self):
        with pytest.raises(ValueError, match="world size"):
            small_query(gpus=8, topology=self._topology(2, 2))

    def test_jsonl_resolves_topology_link_names(self):
        compute = CountingCompute()
        with PlannerService(compute_fn=compute) as service:
            doc = small_query(gpus=4, topology=self._topology()).to_dict()
            doc["topology"]["intra_link"] = "NVLink2"
            doc["topology"]["inter_link"] = "10GbE"
            out = list(serve_jsonl([json.dumps(doc)], service))
        expected = small_query(gpus=4, topology=self._topology())
        assert json.loads(out[0])["key"] == expected.cache_key()

    def test_service_prices_topology_query(self):
        # With NVLink intra + 10GbE inter the hierarchical schedule is
        # never slower, so topology-aware pricing can only improve the
        # expected iteration time (ClusterSpec takes the best schedule).
        flat = small_query(gpus=4)
        hier = small_query(gpus=4, topology=self._topology())
        with PlannerService() as service:
            flat_doc = json.loads(service.submit(flat).payload)
            hier_doc = json.loads(service.submit(hier).payload)
        assert hier_doc["schema"] == "repro.plan/2"
        assert (hier_doc["expected_iteration_ms"]
                <= flat_doc["expected_iteration_ms"])
