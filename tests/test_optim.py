"""SGD with momentum and the warmup/multi-step LR schedule."""

import numpy as np
import pytest

from repro import nn
from repro.optim.lr_scheduler import WarmupMultiStepSchedule
from repro.optim.sgd import SGD


def _model(rng):
    return nn.Linear(3, 2, rng=rng)


class TestSGD:
    def test_plain_step_matches_manual(self, rng):
        model = _model(rng)
        opt = SGD(model, lr=0.1, momentum=0.0)
        before = model.weight.data.copy()
        grad = rng.normal(size=model.weight.shape)
        opt.step({"weight": grad, "bias": np.zeros(2)})
        np.testing.assert_allclose(model.weight.data, before - 0.1 * grad)

    def test_momentum_accumulates(self, rng):
        model = _model(rng)
        opt = SGD(model, lr=1.0, momentum=0.9)
        grad = np.ones(model.weight.shape)
        before = model.weight.data.copy()
        opt.step({"weight": grad})
        opt.step({"weight": grad})
        # Updates: v1 = g, v2 = 0.9 g + g = 1.9 g -> total 2.9 g.
        np.testing.assert_allclose(model.weight.data, before - 2.9 * grad)

    def test_weight_decay(self, rng):
        model = _model(rng)
        opt = SGD(model, lr=0.1, momentum=0.0, weight_decay=0.01)
        before = model.weight.data.copy()
        opt.step({"weight": np.zeros(model.weight.shape)})
        np.testing.assert_allclose(model.weight.data, before * (1 - 0.1 * 0.01))

    def test_uses_param_grads_when_no_dict(self, rng):
        model = _model(rng)
        x = rng.normal(size=(4, 3))
        model(x)
        model.backward(np.ones((4, 2)))
        before = model.weight.data.copy()
        opt = SGD(model, lr=0.1, momentum=0.0)
        opt.step()
        assert not np.allclose(model.weight.data, before)

    def test_missing_grads_skipped(self, rng):
        model = _model(rng)
        before = model.bias.data.copy()
        SGD(model, lr=0.1).step({"weight": np.zeros(model.weight.shape)})
        np.testing.assert_array_equal(model.bias.data, before)

    def test_shape_validation(self, rng):
        model = _model(rng)
        opt = SGD(model, lr=0.1)
        with pytest.raises(ValueError, match="gradient shape"):
            opt.step({"weight": np.zeros(5)})

    def test_hyperparameter_validation(self, rng):
        model = _model(rng)
        with pytest.raises(ValueError):
            SGD(model, lr=0.0)
        with pytest.raises(ValueError):
            SGD(model, lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            SGD(model, lr=0.1, weight_decay=-1)


class TestSchedule:
    def _schedule(self, rng, **kwargs):
        opt = SGD(_model(rng), lr=0.1)
        defaults = dict(base_lr=0.1, total_epochs=300, warmup_epochs=5,
                        milestones=(150, 220), gamma=0.1)
        defaults.update(kwargs)
        return WarmupMultiStepSchedule(opt, **defaults)

    def test_warmup_ramps_linearly(self, rng):
        sched = self._schedule(rng)
        assert sched.lr_at(0) < sched.lr_at(2.5) < sched.lr_at(4.9)
        assert sched.lr_at(2.5) == pytest.approx(0.05, rel=0.01)

    def test_plateau_then_decays(self, rng):
        sched = self._schedule(rng)
        assert sched.lr_at(100) == pytest.approx(0.1)
        assert sched.lr_at(160) == pytest.approx(0.01)
        assert sched.lr_at(250) == pytest.approx(0.001)

    def test_set_epoch_updates_optimizer(self, rng):
        sched = self._schedule(rng)
        sched.set_epoch(200)
        assert sched.optimizer.lr == pytest.approx(0.01)

    def test_no_warmup(self, rng):
        sched = self._schedule(rng, warmup_epochs=0)
        assert sched.lr_at(0) == pytest.approx(0.1)

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="sorted"):
            self._schedule(rng, milestones=(220, 150))
        with pytest.raises(ValueError, match="warmup"):
            self._schedule(rng, warmup_epochs=500)
        sched = self._schedule(rng)
        with pytest.raises(ValueError, match="epoch"):
            sched.lr_at(-1)
