"""Tensor-fusion bucket planning."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fusion import DEFAULT_BUFFER_BYTES, partition_buckets, scaled_buffer_size


class TestPartition:
    def test_no_fusion_with_zero_buffer(self):
        assert partition_buckets([10, 20, 30], 0) == [(0, 1), (1, 2), (2, 3)]

    def test_single_bucket_when_everything_fits(self):
        assert partition_buckets([10, 20, 30], 1000) == [(0, 3)]

    def test_greedy_fill(self):
        # capacity 25: [10, 10] | [20] | [10, 10]
        assert partition_buckets([10, 10, 20, 10, 10], 25) == [(0, 2), (2, 3), (3, 5)]

    def test_oversized_tensor_travels_alone(self):
        assert partition_buckets([100, 5, 5], 10) == [(0, 1), (1, 3)]

    def test_empty_input(self):
        assert partition_buckets([], 10) == []

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            partition_buckets([10], -1)
        with pytest.raises(ValueError):
            partition_buckets([-5], 10)

    @settings(max_examples=50, deadline=None)
    @given(
        sizes=st.lists(st.floats(0, 1000), min_size=0, max_size=40),
        buffer=st.floats(0, 2000),
    )
    def test_property_buckets_partition_input(self, sizes, buffer):
        buckets = partition_buckets(sizes, buffer)
        if not sizes:
            assert buckets == []
            return
        assert buckets[0][0] == 0
        assert buckets[-1][1] == len(sizes)
        for (s1, e1), (s2, e2) in zip(buckets, buckets[1:]):
            assert e1 == s2
            assert s1 < e1
        if buffer > 0:
            for start, end in buckets:
                if end - start > 1:
                    assert sum(sizes[start:end]) <= buffer + 1e-9


class TestSharedPolicy:
    def test_default_buffer_matches_horovod_default(self):
        """The paper benchmarks against Horovod's 25MB fusion threshold;
        both the simulator and the real reducer inherit this constant."""
        assert DEFAULT_BUFFER_BYTES == 25 * 1024 * 1024

    def test_arena_layout_uses_the_same_partition(self):
        """The execution path (ArenaLayout) and the simulator must agree
        on bucketing: same sizes + same buffer => same bucket spans."""
        import numpy as np

        from repro.models.convnets import make_mlp
        from repro.perf.arena import GradientArena

        model = make_mlp(17, 9, 4, rng=np.random.default_rng(0))
        buffer_bytes = 60 * 8
        arena = GradientArena(model, 1, bucket_bytes=buffer_bytes)
        layout = arena.layout
        elems = [layout.size_of(name) for name in layout.names]
        starts = [0]
        for size in elems:
            starts.append(starts[-1] + size)
        index_spans = partition_buckets(
            [8 * size for size in elems], buffer_bytes
        )
        expected = [(starts[s], starts[e]) for s, e in index_spans]
        assert list(layout.buckets) == expected


class TestScaledBuffer:
    def test_paper_example_resnet50(self):
        """25MB x (0.63MB / 97.5MB) ~ 0.16MB — the paper's §IV-B example."""
        mb = 1024 * 1024
        scaled = scaled_buffer_size(25 * mb, 0.63 * mb, 97.5 * mb)
        assert scaled == pytest.approx(0.1615 * mb, rel=0.01)

    def test_bucket_count_roughly_invariant(self):
        """Scaling the buffer by the compression rate keeps the number of
        buckets ~constant — the design's whole point."""
        raw_sizes = [5e6] * 20  # 100MB of gradients
        raw_buckets = partition_buckets(raw_sizes, 25e6)
        rate = 0.01
        compressed_sizes = [s * rate for s in raw_sizes]
        scaled = scaled_buffer_size(25e6, sum(compressed_sizes), sum(raw_sizes))
        compressed_buckets = partition_buckets(compressed_sizes, scaled)
        assert len(compressed_buckets) == len(raw_buckets)

    def test_validation(self):
        with pytest.raises(ValueError):
            scaled_buffer_size(-1, 1, 10)
        with pytest.raises(ValueError):
            scaled_buffer_size(10, -1, 10)
        with pytest.raises(ValueError):
            scaled_buffer_size(10, 1, 0)
