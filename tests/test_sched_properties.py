"""Property-based tests of the repro.sched scheduler core.

The invariants here are discipline-level guarantees of the generalized
event loop (arbitrary named resources, pluggable schedulers), distinct
from the legacy-engine properties in ``test_engine_properties.py``:

- a resource executes one task at a time (no same-resource overlap);
- every dependency and ``start_after`` gate precedes the dependent start;
- under the priority discipline with all-distinct priorities and no
  dependencies, the schedule is invariant to submission order;
- on a pure chain, fifo and priority produce identical records (only one
  task is ever ready, so the discipline cannot matter).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sched import EventLoop, ResourceModel, Task, TaskGraph

RESOURCES = ("alpha", "beta", "gamma")


@st.composite
def random_graph(draw):
    """A forward-referencing DAG over three named resources."""
    count = draw(st.integers(1, 20))
    tasks = []
    for idx in range(count):
        max_deps = min(idx, 3)
        dep_count = draw(st.integers(0, max_deps))
        deps = tuple(
            f"t{d}" for d in sorted(draw(st.sets(
                st.integers(0, idx - 1),
                min_size=dep_count, max_size=dep_count,
            )))
        ) if idx > 0 else ()
        tasks.append(Task(
            task_id=f"t{idx}",
            stream=draw(st.sampled_from(RESOURCES)),
            work=draw(st.floats(0.0, 3.0)),
            deps=deps,
            contends=draw(st.booleans()),
            priority=draw(st.integers(0, 3)),
            start_after=draw(st.sampled_from((0.0, 0.25, 1.0))),
        ))
    return TaskGraph(tasks)


@st.composite
def priority_batch(draw):
    """Independent unit-resource tasks with all-distinct priorities."""
    count = draw(st.integers(2, 10))
    priorities = draw(st.permutations(range(count)))
    works = draw(st.lists(st.floats(0.01, 2.0), min_size=count,
                          max_size=count))
    return [
        Task(f"t{idx}", "only", works[idx], priority=priorities[idx])
        for idx in range(count)
    ]


class TestCoreInvariants:
    @settings(max_examples=60, deadline=None)
    @given(graph=random_graph(),
           discipline=st.sampled_from(("fifo", "priority")))
    def test_no_same_resource_overlap(self, graph, discipline):
        loop = EventLoop(default_discipline=discipline)
        records = loop.run(graph)
        by_resource = {}
        for record in records.values():
            by_resource.setdefault(record.task.stream, []).append(record)
        for resource_records in by_resource.values():
            resource_records.sort(key=lambda r: (r.start, r.end))
            for earlier, later in zip(resource_records,
                                      resource_records[1:]):
                assert earlier.end <= later.start + 1e-9, (
                    f"{earlier.task.task_id} and {later.task.task_id} "
                    f"overlap on {earlier.task.stream}"
                )

    @settings(max_examples=60, deadline=None)
    @given(graph=random_graph(),
           discipline=st.sampled_from(("fifo", "priority")))
    def test_deps_and_gates_precede_starts(self, graph, discipline):
        records = EventLoop(default_discipline=discipline).run(graph)
        assert len(records) == len(graph)
        for task in graph:
            record = records[task.task_id]
            assert record.start >= task.start_after - 1e-12
            assert record.end >= record.start
            for dep in task.deps:
                assert records[dep].end <= record.start + 1e-9

    @settings(max_examples=60, deadline=None)
    @given(graph=random_graph())
    def test_contention_never_contracts_durations(self, graph):
        free = EventLoop().run(graph)
        shared = EventLoop(
            resources=ResourceModel({("alpha", "beta"): 0.25})
        ).run(graph)
        for task in graph:
            assert shared[task.task_id].duration >= (
                free[task.task_id].duration - 1e-9
            )


class TestDisciplineProperties:
    @settings(max_examples=60, deadline=None)
    @given(batch=priority_batch(), shuffle=st.randoms(use_true_random=False))
    def test_priority_schedule_invariant_to_submission_order(
        self, batch, shuffle
    ):
        """Distinct priorities + no deps: execution order is the priority
        order, so any submission permutation yields identical records."""
        baseline = EventLoop(default_discipline="priority").run(
            TaskGraph(batch)
        )
        shuffled = list(batch)
        shuffle.shuffle(shuffled)
        permuted = EventLoop(default_discipline="priority").run(
            TaskGraph(shuffled)
        )
        assert {
            task_id: (record.start, record.end)
            for task_id, record in baseline.items()
        } == {
            task_id: (record.start, record.end)
            for task_id, record in permuted.items()
        }

    @settings(max_examples=60, deadline=None)
    @given(works=st.lists(st.floats(0.0, 2.0), min_size=1, max_size=12),
           priorities=st.lists(st.integers(0, 5), min_size=12, max_size=12))
    def test_fifo_equals_priority_on_chains(self, works, priorities):
        """A pure chain admits exactly one ready task at a time, so the
        scheduling discipline cannot change the records."""
        tasks = [
            Task(f"t{idx}", "only", work,
                 deps=(f"t{idx - 1}",) if idx else (),
                 priority=priorities[idx])
            for idx, work in enumerate(works)
        ]
        fifo = EventLoop(default_discipline="fifo").run(TaskGraph(tasks))
        prio = EventLoop(default_discipline="priority").run(TaskGraph(tasks))
        for task in tasks:
            assert fifo[task.task_id].start == prio[task.task_id].start
            assert fifo[task.task_id].end == prio[task.task_id].end

    @settings(max_examples=40, deadline=None)
    @given(graph=random_graph(),
           discipline=st.sampled_from(("fifo", "priority")))
    def test_determinism(self, graph, discipline):
        first = EventLoop(default_discipline=discipline).run(graph)
        second = EventLoop(default_discipline=discipline).run(graph)
        assert {
            task_id: (record.start, record.end)
            for task_id, record in first.items()
        } == {
            task_id: (record.start, record.end)
            for task_id, record in second.items()
        }
