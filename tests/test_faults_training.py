"""End-to-end resilient training: the ISSUE acceptance scenarios.

The load-bearing assertions:

- a fault plan whose every fault is recovered within the retry budget is
  *invisible to the numerics* — the trajectory matches the fault-free run
  bit-exactly;
- the same plan replayed twice is bit-identical;
- a permanent rank loss shrinks the world to the survivors and training
  continues with rescaled averaging;
- the trainer ladder (skip-step, uncompressed fallback, rollback) fires in
  order and abords loudly past ``max_rollbacks``.
"""

import numpy as np
import pytest

from repro.faults import (
    FaultInjector,
    FaultPlan,
    PermanentFailure,
    ResilientProcessGroup,
    TransientFailure,
)
from repro.faults.resilient import BackoffPolicy
from repro.models.convnets import make_mlp
from repro.optim import SGD, make_aggregator
from repro.optim.aggregators import AllReduceAggregator
from repro.train import DataParallelTrainer, ResilienceConfig
from repro.train.datasets import ArrayDataset

pytestmark = pytest.mark.faults


def make_data(seed=0, samples=64, features=6, classes=3):
    rng = np.random.default_rng(seed)
    inputs = rng.normal(size=(samples, features))
    labels = rng.integers(0, classes, size=samples)
    return ArrayDataset(inputs, labels), ArrayDataset(
        inputs[:16].copy(), labels[:16].copy()
    )


def make_trainer(world_size=2, method="acpsgd", injector=None, policy=None,
                 resilience=None, lr=0.05):
    train_data, test_data = make_data()
    model = make_mlp(6, 10, 3, rng=np.random.default_rng(5))
    group = ResilientProcessGroup(world_size, injector=injector, policy=policy)
    kwargs = {"rank": 2} if method in ("acpsgd", "powersgd") else {}
    aggregator = make_aggregator(method, group, **kwargs)
    trainer = DataParallelTrainer(
        model, SGD(model, lr=lr, momentum=0.9), aggregator,
        train_data, test_data, batch_size_per_worker=8, seed=11,
        resilience=resilience,
    )
    return trainer, group, model


RECOVERABLE_PLAN = FaultPlan(
    seed=1,
    corrupt_rate=0.05,
    corrupt_mode="nan",
    transient=(TransientFailure(rank=1, call_index=5, attempts=2),),
)


class TestRecoveredFaultsAreInvisible:
    def test_trajectory_matches_fault_free_control_bit_exactly(self):
        injector = FaultInjector(RECOVERABLE_PLAN)
        faulty, faulty_group, faulty_model = make_trainer(injector=injector)
        faulty_history = faulty.run(1, 10, method_label="acpsgd")

        clean, _, clean_model = make_trainer(injector=None)
        clean_history = clean.run(1, 10, method_label="acpsgd")

        # The scheduled transient really fired and really burned retries...
        assert len(injector.events_of_kind("down")) == 2
        assert faulty_group.stats.retries >= 2
        assert faulty_group.stats.degraded_calls == 0
        # ...yet every retried collective reran on the original buffers, so
        # losses and final weights are bit-identical to the fault-free run.
        assert faulty_history.train_loss == clean_history.train_loss
        assert np.array_equal(
            faulty_model.state_vector(), clean_model.state_vector()
        )

    def test_same_plan_twice_is_bit_identical(self):
        weights = []
        for _ in range(2):
            trainer, _, model = make_trainer(
                injector=FaultInjector(RECOVERABLE_PLAN),
                resilience=ResilienceConfig(),
            )
            trainer.run(1, 8, method_label="acpsgd")
            weights.append(model.state_vector())
        assert np.array_equal(weights[0], weights[1])


class TestPermanentLossDuringTraining:
    def test_world_shrinks_and_training_continues(self):
        plan = FaultPlan(
            seed=2, permanent=(PermanentFailure(rank=2, call_index=2),)
        )
        trainer, group, _ = make_trainer(
            world_size=3, method="ssgd",
            injector=FaultInjector(plan),
            policy=BackoffPolicy(max_retries=1),
            resilience=ResilienceConfig(checkpoint_interval=0),
        )
        history = trainer.run(1, 6, method_label="ssgd")
        assert group.live_ranks == [0, 1]
        assert group.world_size == 2
        assert group.stats.ejected_ranks == [2]
        assert group.stats.degraded_calls >= 1
        assert all(np.isfinite(loss) for loss in history.train_loss)


class TestTrainerLadder:
    @staticmethod
    def _poison_gradients(trainer):
        """Make every subsequent worker gradient carry a NaN."""
        original = trainer._worker_gradients

        def poisoned(rank, *args, **kwargs):
            loss, grads = original(rank, *args, **kwargs)
            name = next(iter(grads))
            grads[name] = grads[name].copy()
            grads[name].reshape(-1)[0] = np.nan
            return loss, grads

        trainer._worker_gradients = poisoned

    @staticmethod
    def _inflate_losses(trainer, factor=1e9):
        """Keep gradients sane but report an exploding loss."""
        original = trainer._worker_gradients

        def inflated(rank, *args, **kwargs):
            loss, grads = original(rank, *args, **kwargs)
            return loss * factor, grads

        trainer._worker_gradients = inflated

    def test_nan_step_is_skipped_then_fallback_runs_uncompressed(self):
        cfg = ResilienceConfig(fallback_steps=2, checkpoint_interval=0)
        trainer, _, model = make_trainer(resilience=cfg)
        for _ in range(2):
            trainer.train_step()
        before = model.state_vector().copy()

        self._poison_gradients(trainer)
        reported = trainer.train_step()
        del trainer._worker_gradients  # restore the clean method

        log = trainer.resilience_log
        assert log.skipped_steps == 1
        assert log.residual_resets == 1
        assert log.fallback_activations == 1
        assert any("skipped" in note for note in log.notes)
        # No update was applied, and the reported loss stayed finite.
        assert np.array_equal(model.state_vector(), before)
        assert np.isfinite(reported)

        # The next steps aggregate uncompressed while compression re-warms.
        trainer.train_step()
        assert log.fallback_steps_run == 1
        assert isinstance(trainer._fallback_aggregator, AllReduceAggregator)
        trainer.train_step()
        trainer.train_step()
        assert log.fallback_steps_run == 2  # window closed after 2 steps

    def test_nan_aggregated_gradient_also_skips(self):
        # check_finite guards the *aggregated* gradient too; disable the
        # per-worker poison detection path by corrupting after aggregation.
        cfg = ResilienceConfig(fallback_steps=0, checkpoint_interval=0)
        trainer, _, model = make_trainer(resilience=cfg)
        original = trainer.aggregator.aggregate

        def bad_aggregate(per_worker):
            aggregated = original(per_worker)
            name = next(iter(aggregated))
            aggregated[name] = aggregated[name].copy()
            aggregated[name].reshape(-1)[0] = np.inf
            return aggregated

        trainer.aggregator.aggregate = bad_aggregate
        before = model.state_vector().copy()
        trainer.train_step()
        assert trainer.resilience_log.skipped_steps == 1
        assert np.array_equal(model.state_vector(), before)

    def test_divergence_rolls_back_to_last_checkpoint(self, tmp_path):
        cfg = ResilienceConfig(
            checkpoint_interval=1, checkpoint_dir=str(tmp_path),
            divergence_patience=1, fallback_steps=0, max_rollbacks=3,
        )
        trainer, _, model = make_trainer(resilience=cfg)
        for _ in range(3):
            trainer.train_step()
        checkpointed = model.state_vector().copy()

        self._inflate_losses(trainer)
        trainer.train_step()
        log = trainer.resilience_log
        assert log.divergence_alarms == 1
        assert log.rollbacks == 1
        assert any("rolled back" in note for note in log.notes)
        # The poisoned update was applied, then undone by the restore.
        assert np.array_equal(model.state_vector(), checkpointed)

    def test_exceeding_max_rollbacks_aborts_loudly(self, tmp_path):
        cfg = ResilienceConfig(
            checkpoint_interval=1, checkpoint_dir=str(tmp_path),
            divergence_patience=1, fallback_steps=0, max_rollbacks=0,
        )
        trainer, _, _ = make_trainer(resilience=cfg)
        for _ in range(2):
            trainer.train_step()
        self._inflate_losses(trainer)
        with pytest.raises(RuntimeError, match="max_rollbacks"):
            trainer.train_step()

    def test_rollback_before_any_checkpoint_is_survivable(self):
        cfg = ResilienceConfig(
            checkpoint_interval=0, divergence_patience=1, fallback_steps=0,
        )
        trainer, _, _ = make_trainer(resilience=cfg)
        trainer.train_step()
        self._inflate_losses(trainer)
        trainer.train_step()  # alarm fires; nothing to restore; no crash
        log = trainer.resilience_log
        assert log.divergence_alarms == 1
        assert log.rollbacks == 0
        assert any("before any checkpoint" in note for note in log.notes)

    def test_log_render_mentions_events(self):
        cfg = ResilienceConfig(fallback_steps=1, checkpoint_interval=0)
        trainer, _, _ = make_trainer(resilience=cfg)
        trainer.train_step()
        self._poison_gradients(trainer)
        trainer.train_step()
        rendered = trainer.resilience_log.render()
        assert "skipped steps         1" in rendered
        assert "events:" in rendered
