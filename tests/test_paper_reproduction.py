"""Headline reproduction checks: simulated numbers vs the paper's.

These are the repository's acceptance tests — if calibration or strategy
code drifts, they catch it. Absolute cells get generous tolerance (our
substrate is a simulator, not the authors' testbed); orderings and ratios
are asserted tightly, since those carry the paper's claims.
"""

import math

import pytest

from repro.experiments.fig9 import run_fig9
from repro.experiments.fig12 import run_fig12, scaling_increase
from repro.experiments.fig13 import run_fig13
from repro.experiments.microbench import (
    run_contention_microbench,
    run_fusion_microbench,
)
from repro.experiments.table3 import (
    PAPER_TABLE3,
    average_speedups,
    run_table3,
)


@pytest.fixture(scope="module")
def table3_rows():
    return run_table3()


class TestTable3:
    def test_cells_within_35_percent(self, table3_rows):
        for row in table3_rows:
            paper = PAPER_TABLE3[row.model]
            for method, sim_ms in row.times_ms.items():
                ratio = sim_ms / paper[method]
                assert 0.65 < ratio < 1.35, (
                    f"{row.model}/{method}: sim {sim_ms:.0f}ms vs paper "
                    f"{paper[method]}ms"
                )

    def test_mean_log_error_small(self, table3_rows):
        errs = []
        for row in table3_rows:
            paper = PAPER_TABLE3[row.model]
            for method, sim_ms in row.times_ms.items():
                errs.append(abs(math.log(sim_ms / paper[method])))
        assert sum(errs) / len(errs) < 0.15

    def test_acpsgd_wins_every_cell(self, table3_rows):
        """ACP-SGD consistently outperforms all baselines (the headline)."""
        for row in table3_rows:
            acp = row.times_ms["acpsgd"]
            for method in ("ssgd", "powersgd", "powersgd_star"):
                assert acp < row.times_ms[method], (row.model, method)

    def test_powersgd_star_ordering_flips_between_resnets_and_berts(
        self, table3_rows
    ):
        """P* beats P on ResNets (benign overlap) but loses on BERTs
        (GEMM-heavy hook compression contends with BP) — §V-C."""
        by_model = {row.model: row.times_ms for row in table3_rows}
        assert (
            by_model["ResNet-152"]["powersgd_star"]
            < by_model["ResNet-152"]["powersgd"]
        )
        for bert in ("BERT-Base", "BERT-Large"):
            assert by_model[bert]["powersgd_star"] > by_model[bert]["powersgd"]

    def test_average_speedups_match_headline(self, table3_rows):
        """Paper: ACP-SGD averages 4.06x over S-SGD, 1.34x over Power-SGD,
        1.51x over Power-SGD*."""
        speedups = average_speedups(table3_rows)
        assert speedups["ssgd"] == pytest.approx(4.06, rel=0.15)
        assert speedups["powersgd"] == pytest.approx(1.34, rel=0.20)
        assert speedups["powersgd_star"] == pytest.approx(1.51, rel=0.25)

    def test_max_speedup_on_bert_large(self, table3_rows):
        """Paper: up to 9.42x over S-SGD (BERT-Large)."""
        by_model = {row.model: row for row in table3_rows}
        speedup = by_model["BERT-Large"].speedup_over("ssgd")
        assert speedup == pytest.approx(9.42, rel=0.15)

    def test_powersgd_beats_ssgd_only_on_large_models(self, table3_rows):
        """§III-B: Power-SGD wins on BERTs, ~ties/loses on ResNets."""
        by_model = {row.model: row.times_ms for row in table3_rows}
        for bert in ("BERT-Base", "BERT-Large"):
            assert by_model[bert]["powersgd"] < 0.5 * by_model[bert]["ssgd"]
        for resnet in ("ResNet-50", "ResNet-152"):
            assert by_model[resnet]["powersgd"] > 0.75 * by_model[resnet]["ssgd"]


class TestFig9:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_fig9()

    def test_full_optimization_speedup_over_naive(self, rows):
        """ACP-SGD reaches ~2.14x over its naive variant (paper's number)."""
        acp = [r for r in rows if r.method == "acpsgd"]
        best = max(r.full_speedup_over_naive for r in acp)
        assert 1.7 < best < 2.8

    def test_tf_always_helps_with_wfbp(self, rows):
        for row in rows:
            assert row.times_ms["wfbp+tf"] < row.times_ms["wfbp"]

    def test_wfbp_helps_ssgd_and_acpsgd(self, rows):
        for row in rows:
            if row.method in ("ssgd", "acpsgd"):
                assert row.times_ms["wfbp"] < row.times_ms["naive"]

    def test_wfbp_does_not_help_powersgd_on_bert(self, rows):
        """The contention effect: WFBP alone gives Power-SGD little to
        nothing on BERT-Large (paper: it actively hurts by ~13%)."""
        row = next(r for r in rows if r.method == "powersgd_star"
                   and r.model == "BERT-Large")
        assert row.times_ms["wfbp"] > 0.9 * row.times_ms["naive"]


class TestFig12Scaling:
    def test_all_methods_scale_well(self):
        rows = run_fig12()
        increases = scaling_increase(rows)
        # Paper: +10% / +24% / +8% from 8 to 64 GPUs.
        for method, increase in increases.items():
            assert increase < 0.30, (method, increase)
        assert increases["acpsgd"] <= increases["ssgd"]


class TestFig13Bandwidth:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_fig13(models=("ResNet-50", "BERT-Base"))

    def _get(self, rows, link, model):
        return next(r for r in rows if r.link == link and r.model == model)

    def test_1gbe_speedups(self, rows):
        """Paper: ResNet-50 5.7x/7.1x; BERT-Base 11.2x/23.9x (P/ACP)."""
        rn = self._get(rows, "1GbE", "ResNet-50")
        assert rn.speedup("powersgd") == pytest.approx(5.7, rel=0.35)
        assert rn.speedup("acpsgd") == pytest.approx(7.1, rel=0.25)
        bert = self._get(rows, "1GbE", "BERT-Base")
        assert bert.speedup("powersgd") == pytest.approx(11.2, rel=0.25)
        assert bert.speedup("acpsgd") == pytest.approx(23.9, rel=0.25)

    def test_100gbib_acp_still_wins_on_bert(self, rows):
        """Paper: ~40% improvement over S-SGD on BERT-Base even on IB."""
        bert = self._get(rows, "100GbIB", "BERT-Base")
        assert 1.1 < bert.speedup("acpsgd") < 1.7

    def test_speedups_shrink_with_bandwidth(self, rows):
        speeds = [
            self._get(rows, link, "BERT-Base").speedup("acpsgd")
            for link in ("1GbE", "10GbE", "100GbIB")
        ]
        assert speeds[0] > speeds[1] > speeds[2]


class TestMicrobenchmarks:
    def test_single_gpu_contention(self):
        """Paper §III-C: ~13% slowdown of Power-SGD with WFBP on one GPU."""
        result = run_contention_microbench()
        assert 1.02 < result.slowdown < 1.6

    def test_fusion_anchors(self):
        """Paper §IV-B: raw 243->169ms; compressed 55.9->2.3ms (24.3x)."""
        results = run_fusion_microbench()
        raw = results["raw"]
        assert raw.fused_ms == pytest.approx(169, rel=0.1)
        assert raw.separate_ms == pytest.approx(243, rel=0.35)
        compressed = results["compressed"]
        assert compressed.separate_ms == pytest.approx(55.9, rel=0.4)
        assert compressed.speedup > 10  # paper: 24.3x
