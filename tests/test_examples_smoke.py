"""Smoke-run the fast examples as subprocesses (library-consumer view)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, *args: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestFastExamples:
    def test_timeline_trace(self, tmp_path):
        out = _run("timeline_trace.py", "ResNet-18", str(tmp_path))
        assert "acpsgd" in out
        assert (tmp_path / "ResNet-18_acpsgd.json").exists()

    def test_cluster_planning(self):
        out = _run("cluster_planning.py", "ResNet-50")
        assert "recommendation" in out
        assert "10GbE" in out

    def test_paper_evaluation_fast(self):
        out = _run("paper_evaluation.py", "--fast", timeout=420)
        assert "Table III" in out
        assert "ACP-SGD mean speedups" in out

    def test_buffer_size_sweep(self):
        out = _run("buffer_size_sweep.py", "--steps", "3")
        assert "MATCH bit-exactly" in out
        assert "monolithic" in out  # the fallback point is in the table

    def test_adaptive_compression(self):
        out = _run("adaptive_compression.py")
        assert "rank @90% energy" in out
        assert "rank 32" in out  # the paper's BERT choice, recovered

    def test_hierarchical_allreduce(self):
        out = _run("hierarchical_allreduce.py")
        assert "MATCH bit-exactly" in out
        assert "analytic crossover" in out
        assert "rel err 0.00e+00" in out  # DAG model sits on the curves
        assert "node0:nic" in out  # per-link gantt rows rendered

    @pytest.mark.serve
    def test_capacity_planning(self):
        out = _run("capacity_planning.py", "--queries", "24")
        assert "MATCH bit-exactly" in out
        assert "simulator runs" in out
        assert "recomputed (stale entry dropped)" in out

    @pytest.mark.faults
    def test_fault_tolerance(self):
        out = _run("fault_tolerance.py", "--epochs", "1", "--steps", "4")
        assert "MATCH bit-exactly" in out
        assert "collective calls" in out  # the resilience report printed
        assert "slowdown" in out  # the sim comparison printed

    @pytest.mark.faults
    def test_elastic_training(self):
        out = _run("elastic_training.py", "--epochs", "1", "--steps", "10")
        assert "MATCH bit-exactly" in out
        assert "rejoin" in out and "join" in out  # membership log printed
        assert "admission" in out  # the sim churn trace printed

    @pytest.mark.gossip
    def test_gossip_training(self):
        out = _run("gossip_training.py", "--windows", "10")
        assert "QUARANTINED" in out  # the trust table printed
        assert "honest replicas bit-identical (incl. joiner): True" in out
        assert "seeded replay bit-identical: True" in out
