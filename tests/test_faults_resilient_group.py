"""ResilientProcessGroup: detect, retry/backoff, fall back, degrade, eject."""

import numpy as np
import pytest

from repro.faults.plan import (
    FaultInjector,
    FaultPlan,
    PermanentFailure,
    TransientFailure,
)
from repro.faults.resilient import BackoffPolicy, ResilientProcessGroup

pytestmark = pytest.mark.faults


def buffers_for(world_size, scale=1.0):
    return [np.full(8, float(rank + 1) * scale) for rank in range(world_size)]


def expected_sum(world_size, scale=1.0):
    return np.full(8, sum(range(1, world_size + 1)) * scale)


class TestBackoffPolicy:
    def test_exponential_with_cap(self):
        policy = BackoffPolicy(base_delay_s=0.01, multiplier=2.0, max_delay_s=0.05)
        assert policy.backoff_delay(1) == pytest.approx(0.01)
        assert policy.backoff_delay(2) == pytest.approx(0.02)
        assert policy.backoff_delay(3) == pytest.approx(0.04)
        assert policy.backoff_delay(4) == pytest.approx(0.05)  # capped
        assert policy.backoff_delay(9) == pytest.approx(0.05)

    def test_first_retry_pays_exactly_base_delay(self):
        # Boundary: the multiplier must not apply before the second retry.
        policy = BackoffPolicy(base_delay_s=0.25, multiplier=16.0)
        assert policy.backoff_delay(1) == pytest.approx(0.25)

    def test_clamp_when_base_equals_max(self):
        # Boundary: base == max clamps from the very first retry.
        policy = BackoffPolicy(base_delay_s=0.05, multiplier=3.0,
                               max_delay_s=0.05)
        for retry in (1, 2, 10):
            assert policy.backoff_delay(retry) == pytest.approx(0.05)

    def test_clamp_exactly_at_crossover_retry(self):
        # 0.01 * 2^(r-1) crosses max_delay_s=0.08 exactly at retry 4.
        policy = BackoffPolicy(base_delay_s=0.01, multiplier=2.0,
                               max_delay_s=0.08)
        assert policy.backoff_delay(3) == pytest.approx(0.04)
        assert policy.backoff_delay(4) == pytest.approx(0.08)
        assert policy.backoff_delay(5) == pytest.approx(0.08)

    def test_zero_base_delay_stays_zero(self):
        policy = BackoffPolicy(base_delay_s=0.0, multiplier=2.0)
        assert policy.backoff_delay(1) == 0.0
        assert policy.backoff_delay(7) == 0.0

    def test_retry_is_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            BackoffPolicy().backoff_delay(0)
        with pytest.raises(ValueError, match="1-based"):
            BackoffPolicy().backoff_delay(-3)

    def test_budgets_validated(self):
        with pytest.raises(ValueError, match="max_retries"):
            BackoffPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="multiplier"):
            BackoffPolicy(multiplier=0.5)
        with pytest.raises(ValueError, match="call_timeout_s"):
            BackoffPolicy(call_timeout_s=0.0)
        with pytest.raises(ValueError, match="ring_failure_threshold"):
            BackoffPolicy(ring_failure_threshold=0)


class TestCleanOperation:
    def test_no_injector_behaves_like_plain_group(self):
        group = ResilientProcessGroup(4)
        result = group.all_reduce(buffers_for(4))
        assert np.allclose(result[0], expected_sum(4))
        assert group.stats.calls == 1 and group.stats.retries == 0
        assert not group.ring_disabled
        assert group.history[-1].algorithm == "allreduce_ring"

    def test_begin_step_returns_full_roster(self):
        group = ResilientProcessGroup(3)
        assert group.begin_step() == [0, 1, 2]
        assert group.world_size == 3


class TestRetryRecovery:
    def test_transient_failure_recovers_bit_exactly(self):
        plan = FaultPlan(
            seed=0, transient=(TransientFailure(rank=1, call_index=0, attempts=2),)
        )
        group = ResilientProcessGroup(2, injector=FaultInjector(plan))
        buffers = buffers_for(2)
        result = group.all_reduce(buffers)
        # Two failed attempts burned two retries, then the third attempt ran
        # on the original buffers: the reduction is exact, not degraded.
        assert np.array_equal(result[0], expected_sum(2))
        assert group.stats.retries == 2
        assert group.stats.drops_detected == 2  # a down rank looks dropped
        assert group.stats.degraded_calls == 0
        policy = group.policy
        assert group.stats.backoff_s == pytest.approx(
            policy.backoff_delay(1) + policy.backoff_delay(2)
        )
        # Backoff is accounted into the collective's delay, never slept.
        assert group.history[-1].delay_s == pytest.approx(group.stats.backoff_s)
        assert group.injected_delay_s() == pytest.approx(group.stats.backoff_s)

    def test_straggler_delay_accounted(self):
        plan = FaultPlan(seed=5, straggler_rate=1.0, straggler_delay_s=0.25)
        group = ResilientProcessGroup(2, injector=FaultInjector(plan))
        result = group.all_reduce(buffers_for(2))
        assert np.array_equal(result[0], expected_sum(2))  # slow, not wrong
        assert group.stats.straggler_delay_s == pytest.approx(0.25)
        assert group.stats.retries == 0


class TestTimeoutAndDegrade:
    def test_call_timeout_stops_retrying(self):
        policy = BackoffPolicy(max_retries=10, base_delay_s=1.0,
                               multiplier=1.0, max_delay_s=1.0,
                               call_timeout_s=1.5)
        plan = FaultPlan(
            seed=0, transient=(TransientFailure(rank=1, call_index=0, attempts=10),)
        )
        group = ResilientProcessGroup(2, injector=FaultInjector(plan),
                                      policy=policy)
        result = group.all_reduce(buffers_for(2), average=True)
        # One retry fit the 1.5s budget; the second would exceed it.
        assert group.stats.retries == 1
        assert group.stats.timeouts == 1
        assert group.stats.degraded_calls == 1
        # Degraded average rescales to the single contributing rank.
        assert np.array_equal(result[0], buffers_for(2)[0])

    def test_exhausted_retries_degrade_with_rescaled_average(self):
        policy = BackoffPolicy(max_retries=1)
        plan = FaultPlan(
            seed=0, transient=(TransientFailure(rank=2, call_index=0, attempts=5),)
        )
        group = ResilientProcessGroup(3, injector=FaultInjector(plan),
                                      policy=policy)
        buffers = buffers_for(3)
        result = group.all_reduce(buffers, average=True)
        # Ranks 0 and 1 contributed; the mean divides by 2, not 3.
        assert np.allclose(result[0], (buffers[0] + buffers[1]) / 2)
        assert group.stats.degraded_calls == 1
        assert group.live_ranks == [0, 1, 2]  # transient: no ejection

    def test_degraded_all_gather_omits_failed_payloads(self):
        policy = BackoffPolicy(max_retries=0)
        plan = FaultPlan(
            seed=0, transient=(TransientFailure(rank=1, call_index=0, attempts=5),)
        )
        group = ResilientProcessGroup(2, injector=FaultInjector(plan),
                                      policy=policy)
        gathered = group.all_gather([np.ones(3), np.full(5, 2.0)])
        assert len(gathered) == 2  # one view per caller rank
        assert [p.size for p in gathered[0]] == [3]  # rank 1's payload omitted

    def test_no_healthy_rank_raises(self):
        policy = BackoffPolicy(max_retries=1)
        plan = FaultPlan(seed=0, drop_rate=1.0)
        group = ResilientProcessGroup(2, injector=FaultInjector(plan),
                                      policy=policy)
        with pytest.raises(RuntimeError, match="no healthy rank"):
            group.all_reduce(buffers_for(2))


class TestRingFallback:
    def test_consecutive_failures_switch_to_naive(self):
        plan = FaultPlan(seed=0, transient=tuple(
            TransientFailure(rank=1, call_index=call, attempts=1)
            for call in range(3)
        ))
        group = ResilientProcessGroup(
            2, injector=FaultInjector(plan),
            policy=BackoffPolicy(ring_failure_threshold=3),
        )
        buffers = buffers_for(2)
        for _ in range(3):
            assert np.array_equal(group.all_reduce(buffers)[0], expected_sum(2))
            # Each call recovered via retry, so numerics never degraded...
        # ...but three consecutive retry-burning calls disable the ring.
        assert group.ring_disabled
        result = group.all_reduce(buffers)
        assert np.array_equal(result[0], expected_sum(2))
        assert group.history[-1].algorithm == "allreduce_naive"
        # The third failing call already dispatched naive (health is noted
        # before dispatch), so two naive calls have run by now.
        assert group.stats.ring_fallback_calls == 2
        assert "naive fallback" in group.resilience_report()

    def test_clean_call_resets_the_failure_streak(self):
        plan = FaultPlan(seed=0, transient=(
            TransientFailure(rank=1, call_index=0, attempts=1),
            TransientFailure(rank=1, call_index=1, attempts=1),
            # call 2 is clean; the streak restarts.
            TransientFailure(rank=1, call_index=3, attempts=1),
        ))
        group = ResilientProcessGroup(
            2, injector=FaultInjector(plan),
            policy=BackoffPolicy(ring_failure_threshold=3),
        )
        for _ in range(4):
            group.all_reduce(buffers_for(2))
        assert not group.ring_disabled


class TestPermanentLoss:
    def test_dead_rank_ejected_at_step_boundary(self):
        policy = BackoffPolicy(max_retries=1)
        plan = FaultPlan(seed=0, permanent=(PermanentFailure(rank=2, call_index=1),))
        group = ResilientProcessGroup(3, injector=FaultInjector(plan),
                                      policy=policy)
        buffers = buffers_for(3)
        assert np.array_equal(group.all_reduce(buffers)[0], expected_sum(3))

        # Call 1: rank 2 dies; the call degrades but the world is unchanged
        # until the next step boundary (no mid-step size changes).
        result = group.all_reduce(buffers, average=True)
        assert np.allclose(result[0], (buffers[0] + buffers[1]) / 2)
        assert group.world_size == 3 and group.live_ranks == [0, 1, 2]

        # Call 2, still pre-boundary: the known-dead rank costs no retries.
        retries_before = group.stats.retries
        group.all_reduce(buffers, average=True)
        assert group.stats.retries == retries_before

        assert group.begin_step() == [0, 1]
        assert group.world_size == 2
        assert group.stats.ejected_ranks == [2]
        assert "world 2/3 live" in group.resilience_report()

        # Post-ejection the caller supplies one buffer per survivor and the
        # ring re-chunks to the shrunken world.
        survivors = buffers_for(2)
        result = group.all_reduce(survivors, average=True)
        assert np.allclose(result[0], (survivors[0] + survivors[1]) / 2)
        assert group.history[-1].world_size == 2

    def test_all_ranks_dead_raises(self):
        policy = BackoffPolicy(max_retries=0)
        plan = FaultPlan(seed=0, permanent=(
            PermanentFailure(rank=0, call_index=0),
            PermanentFailure(rank=1, call_index=0),
        ))
        group = ResilientProcessGroup(2, injector=FaultInjector(plan),
                                      policy=policy)
        with pytest.raises(RuntimeError, match="no healthy rank"):
            group.all_reduce(buffers_for(2))
        with pytest.raises(RuntimeError, match="all ranks have failed"):
            group.begin_step()


class TestMembershipStats:
    def test_initial_timeline_entry(self):
        group = ResilientProcessGroup(4)
        assert group.stats.world_size_timeline == [(0, 4)]
        assert group.stats.ejections == 0
        assert group.stats.rejoins == 0
        assert group.stats.joins == 0

    def test_ejection_then_rejoin_counts_and_timeline(self):
        plan = FaultPlan(seed=0, permanent=(
            PermanentFailure(rank=1, call_index=0),
        ))
        group = ResilientProcessGroup(3, injector=FaultInjector(plan),
                                      policy=BackoffPolicy(max_retries=0))
        group.all_reduce(buffers_for(3))
        assert group.begin_step() == [0, 2]
        assert group.stats.ejections == 1
        assert group.stats.ejected_ranks == [1]

        group.admit(1, rejoin=True)
        assert group.live_ranks == [0, 1, 2]
        assert group.world_size == 3
        assert group.stats.rejoins == 1
        assert group.stats.rejoined_ranks == [1]
        sizes = [size for _, size in group.stats.world_size_timeline]
        assert sizes == [3, 2, 3]

    def test_join_allocates_fresh_rank_id(self):
        group = ResilientProcessGroup(3)
        rank = group.allocate_rank()
        assert rank == 3  # never collides with 0..2
        group.admit(rank, rejoin=False)
        assert group.live_ranks == [0, 1, 2, 3]
        assert group.stats.joins == 1
        assert group.stats.joined_ranks == [3]
        # Ids are never recycled, even past an ejection.
        assert group.allocate_rank() == 4

    def test_admit_live_rank_rejected(self):
        group = ResilientProcessGroup(2)
        with pytest.raises(ValueError, match="already live"):
            group.admit(1, rejoin=True)

    def test_report_renders_membership_lines(self):
        group = ResilientProcessGroup(2)
        group.admit(group.allocate_rank(), rejoin=False)
        report = group.resilience_report()
        assert "rejoins" in report
        assert "joins" in report
        assert "world-size timeline" in report
        assert "2@call0 -> 3@call0" in report

    def test_averaging_rescales_after_scale_up(self):
        group = ResilientProcessGroup(2)
        group.admit(group.allocate_rank(), rejoin=False)
        result = group.all_reduce(buffers_for(3), average=True)
        assert np.allclose(result[0], expected_sum(3) / 3)


class TestCorruptionDetection:
    def test_bitflip_caught_by_checksum_and_retried(self):
        # A bit flip may stay finite; the CRC must still catch every one.
        plan = FaultPlan(seed=6, corrupt_rate=0.25, corrupt_mode="bitflip")
        group = ResilientProcessGroup(2, injector=FaultInjector(plan))
        buffers = buffers_for(2)
        for _ in range(30):
            result = group.all_reduce(buffers)
            if group.stats.degraded_calls == 0:
                assert np.array_equal(result[0], expected_sum(2))
        assert group.stats.corruptions_detected > 0
        assert group.stats.retries > 0


class TestDeterministicJitter:
    def test_jitter_validated(self):
        with pytest.raises(ValueError, match="jitter"):
            BackoffPolicy(jitter=1.0)
        with pytest.raises(ValueError, match="jitter"):
            BackoffPolicy(jitter=-0.1)

    def test_zero_jitter_is_pure_exponential(self):
        policy = BackoffPolicy(base_delay_s=0.01, multiplier=2.0)
        rng = FaultPlan(seed=3).jitter_rng(0, 1)
        assert policy.backoff_delay(2, rng=rng) == pytest.approx(0.02)

    def test_no_rng_means_no_jitter(self):
        policy = BackoffPolicy(base_delay_s=0.01, multiplier=2.0, jitter=0.5)
        assert policy.backoff_delay(1) == pytest.approx(0.01)

    def test_jitter_stays_within_band(self):
        policy = BackoffPolicy(base_delay_s=0.01, multiplier=1.0,
                               max_delay_s=0.01, jitter=0.3)
        plan = FaultPlan(seed=11)
        for call in range(50):
            delay = policy.backoff_delay(1, rng=plan.jitter_rng(call, 1))
            assert 0.007 <= delay <= 0.013

    def test_jitter_draw_is_a_pure_function_of_seed_call_retry(self):
        policy = BackoffPolicy(base_delay_s=0.01, jitter=0.5)
        plan = FaultPlan(seed=11)
        a = policy.backoff_delay(1, rng=plan.jitter_rng(4, 1))
        b = policy.backoff_delay(1, rng=plan.jitter_rng(4, 1))
        assert a == b  # bit-identical, not just approximately equal
        # ...and actually sensitive to each coordinate of the stream key.
        assert a != policy.backoff_delay(1, rng=plan.jitter_rng(5, 1))
        assert a != policy.backoff_delay(1, rng=plan.jitter_rng(4, 2))
        other = FaultPlan(seed=12)
        assert a != policy.backoff_delay(1, rng=other.jitter_rng(4, 1))

    def test_jittered_run_replays_bit_identically(self):
        def run():
            policy = BackoffPolicy(base_delay_s=0.01, jitter=0.4)
            plan = FaultPlan(seed=2, transient=(
                TransientFailure(rank=1, call_index=0, attempts=2),
                TransientFailure(rank=0, call_index=3, attempts=1),
            ))
            group = ResilientProcessGroup(2, injector=FaultInjector(plan),
                                          policy=policy)
            for _ in range(5):
                group.all_reduce(buffers_for(2))
            return group.stats.backoff_s

        first, second = run(), run()
        assert first > 0.0
        assert first == second  # same plan seed -> same jittered delays

    def test_jitter_perturbs_accounted_backoff(self):
        def total_backoff(jitter):
            policy = BackoffPolicy(base_delay_s=0.01, jitter=jitter)
            plan = FaultPlan(seed=2, transient=(
                TransientFailure(rank=1, call_index=0, attempts=2),
            ))
            group = ResilientProcessGroup(2, injector=FaultInjector(plan),
                                          policy=policy)
            group.all_reduce(buffers_for(2))
            return group.stats.backoff_s

        assert total_backoff(0.4) != pytest.approx(total_backoff(0.0))


class TestSegmentRetryAndFallback:
    """all_reduce_segment(_) at world size 2 under a mid-segment drop."""

    SEGMENTS = ((0, 8), (8, 8), (16, 8))  # three buckets of one flat model
    TOTAL = 24

    def _bucket_buffers(self, scale=1.0):
        return [
            [np.full(8, float(rank + 1) * scale + seg) for rank in range(2)]
            for seg, _ in enumerate(self.SEGMENTS)
        ]

    def _run_segments(self, group, average=False):
        out = []
        for (seg_start, _), buffers in zip(self.SEGMENTS,
                                           self._bucket_buffers()):
            out.append(group.all_reduce_segment(
                buffers, seg_start, self.TOTAL, average=average)[0])
        return out

    def test_mid_segment_drop_retries_to_bit_exact(self):
        # The drop hits the middle bucket (call index 1) only; after the
        # retry every bucket must match a clean group bit for bit.
        plan = FaultPlan(seed=0, transient=(
            TransientFailure(rank=1, call_index=1, attempts=2),
        ))
        faulty = ResilientProcessGroup(2, injector=FaultInjector(plan))
        clean = ResilientProcessGroup(2)
        faulty_out = self._run_segments(faulty)
        clean_out = self._run_segments(clean)
        for got, want in zip(faulty_out, clean_out):
            assert np.array_equal(got, want)
        assert faulty.stats.retries == 2
        assert faulty.stats.degraded_calls == 0
        # Backoff was charged for the retried bucket, not slept.
        assert faulty.stats.backoff_s > 0.0

    def test_exhausted_retries_degrade_only_the_hit_bucket(self):
        policy = BackoffPolicy(max_retries=1)
        plan = FaultPlan(seed=0, transient=(
            TransientFailure(rank=1, call_index=1, attempts=5),
        ))
        group = ResilientProcessGroup(2, injector=FaultInjector(plan),
                                      policy=policy)
        out = self._run_segments(group, average=True)
        buffers = self._bucket_buffers()
        # Buckets 0 and 2 average both ranks; bucket 1 degrades to the
        # single surviving contributor (rank 0), rescaled accordingly.
        assert np.allclose(out[0], (buffers[0][0] + buffers[0][1]) / 2)
        assert np.array_equal(out[1], buffers[1][0])
        assert np.allclose(out[2], (buffers[2][0] + buffers[2][1]) / 2)
        assert group.stats.degraded_calls == 1
        assert group.live_ranks == [0, 1]  # transient fault: no ejection

    def test_fallback_threshold_switches_segments_to_naive(self):
        policy = BackoffPolicy(max_retries=0, ring_failure_threshold=1)
        plan = FaultPlan(seed=0, transient=(
            TransientFailure(rank=1, call_index=0, attempts=1),
        ))
        group = ResilientProcessGroup(2, injector=FaultInjector(plan),
                                      policy=policy)
        self._run_segments(group)
        # Call 0 tripped the one-strike threshold before its reduction ran,
        # so all three bucket calls took the naive path.
        assert group.stats.ring_fallback_calls == 3
        assert group.history[-1].algorithm == "allreduce_naive_segment"

    def test_naive_fallback_segment_matches_ring_values(self):
        policy = BackoffPolicy(max_retries=0, ring_failure_threshold=1)
        plan = FaultPlan(seed=0, transient=(
            TransientFailure(rank=1, call_index=0, attempts=1),
        ))
        faulty = ResilientProcessGroup(2, injector=FaultInjector(plan),
                                       policy=policy)
        clean = ResilientProcessGroup(2)
        faulty_out = self._run_segments(faulty)
        clean_out = self._run_segments(clean)
        # Buckets 1 and 2 (clean calls, naive algorithm) still reduce to
        # the same values the healthy ring computes.
        for got, want in zip(faulty_out[1:], clean_out[1:]):
            assert np.allclose(got, want)

    def test_in_place_variant_copies_result_back(self):
        plan = FaultPlan(seed=0, transient=(
            TransientFailure(rank=1, call_index=0, attempts=2),
        ))
        group = ResilientProcessGroup(2, injector=FaultInjector(plan))
        buffers = [np.full(8, 1.0), np.full(8, 2.0)]
        returned = group.all_reduce_segment_(buffers, 0, self.TOTAL)
        assert returned is buffers
        for buf in buffers:
            assert np.array_equal(buf, np.full(8, 3.0))
        assert group.stats.retries == 2
