"""Full-report renderer (fast path)."""

from repro.experiments.report import render_full_report


class TestReport:
    def test_fast_report_contains_every_artifact(self):
        lines = []
        render_full_report(fast=True, emit=lines.append)
        text = "\n".join(lines)
        for artifact in ("Table I", "Table II", "Table III", "Fig. 2",
                         "Fig. 3", "Fig. 4", "Fig. 5", "Fig. 8", "Fig. 9",
                         "Fig. 10", "Fig. 11", "Fig. 12", "Fig. 13",
                         "Microbenchmarks"):
            assert artifact in text, artifact
        # Fast mode skips the convergence figures.
        assert "Fig. 6" not in text
        assert "ACP-SGD mean speedups" in text

    def test_emit_receives_only_strings(self):
        seen = []
        render_full_report(fast=True, emit=seen.append)
        assert all(isinstance(item, str) for item in seen)
