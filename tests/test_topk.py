"""Top-k sparsification: selection, sampled thresholds, aggregation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compression.topk import (
    TopkCompressor,
    exact_topk_mask,
    sampled_threshold_topk_mask,
    sparse_aggregate,
)


class TestExactSelection:
    def test_selects_largest_magnitudes(self):
        flat = np.array([0.1, -5.0, 2.0, -0.01, 3.0])
        idx = exact_topk_mask(flat, 2)
        assert set(idx) == {1, 4}

    def test_k_zero_and_full(self, rng):
        flat = rng.normal(size=10)
        assert exact_topk_mask(flat, 0).size == 0
        assert set(exact_topk_mask(flat, 10)) == set(range(10))
        assert set(exact_topk_mask(flat, 99)) == set(range(10))

    def test_negative_k_rejected(self, rng):
        with pytest.raises(ValueError, match="k"):
            exact_topk_mask(rng.normal(size=5), -1)

    @settings(max_examples=30, deadline=None)
    @given(size=st.integers(1, 100), seed=st.integers(0, 5000))
    def test_property_selected_dominate_unselected(self, size, seed):
        rng = np.random.default_rng(seed)
        flat = rng.normal(size=size)
        k = max(1, size // 4)
        idx = exact_topk_mask(flat, k)
        selected_min = np.abs(flat[idx]).min()
        unselected = np.delete(np.abs(flat), idx)
        if unselected.size:
            assert selected_min >= unselected.max() - 1e-12


class TestSampledThreshold:
    def test_count_near_k(self, rng):
        flat = rng.normal(size=100_000)
        k = 1000
        idx = sampled_threshold_topk_mask(flat, k, rng)
        assert 0.5 * k <= idx.size <= 1.4 * k

    def test_selected_are_large(self, rng):
        flat = rng.normal(size=50_000)
        idx = sampled_threshold_topk_mask(flat, 500, rng)
        # Median of selected magnitudes far above overall median.
        assert np.median(np.abs(flat[idx])) > 3 * np.median(np.abs(flat))

    def test_constant_tensor_falls_back(self, rng):
        flat = np.ones(1000)
        idx = sampled_threshold_topk_mask(flat, 10, rng)
        assert idx.size >= 10

    def test_k_bounds(self, rng):
        flat = rng.normal(size=100)
        assert sampled_threshold_topk_mask(flat, 0, rng).size == 0
        assert sampled_threshold_topk_mask(flat, 100, rng).size == 100


class TestCompressor:
    def test_ratio_controls_k(self, rng):
        comp = TopkCompressor(ratio=0.01, use_error_feedback=False)
        payload = comp.compress("g", rng.normal(size=10_000))
        assert payload.k == 100
        assert payload.nbytes == 100 * 8

    def test_error_feedback_keeps_unsent_mass(self, rng):
        comp = TopkCompressor(ratio=0.1, use_error_feedback=True)
        grad = rng.normal(size=100)
        payload = comp.compress("g", grad)
        residual = comp._error["g"]
        dense = np.zeros(100)
        dense[payload.indices] = payload.values
        np.testing.assert_allclose(dense + residual, grad, atol=1e-12)

    def test_ef_eventually_transmits_everything(self, rng):
        """With a constant gradient, EF cycles through all coordinates."""
        comp = TopkCompressor(ratio=0.25, use_error_feedback=True)
        grad = rng.normal(size=32)
        sent = np.zeros(32)
        for _ in range(8):
            payload = comp.compress("g", grad * 0)  # only residual drains
            sent[payload.indices] += payload.values
            if _ == 0:
                # Seed the residual with one real gradient.
                pass
        comp.reset()
        # Direct check: residual + sent reconstructs cumulative input.
        comp2 = TopkCompressor(ratio=0.25, use_error_feedback=True)
        total_sent = np.zeros(32)
        for _ in range(6):
            payload = comp2.compress("g", grad)
            total_sent[payload.indices] += payload.values
        total_in = 6 * grad
        residual = comp2._error["g"]
        np.testing.assert_allclose(total_sent + residual, total_in, atol=1e-9)

    def test_invalid_params(self):
        with pytest.raises(ValueError, match="ratio"):
            TopkCompressor(ratio=0.0)
        with pytest.raises(ValueError, match="selection"):
            TopkCompressor(selection="magic")

    def test_sampled_selection_path(self, rng):
        comp = TopkCompressor(ratio=0.01, selection="sampled",
                              rng=np.random.default_rng(0))
        payload = comp.compress("g", rng.normal(size=50_000))
        assert 250 <= payload.k <= 700  # ~500 +/- tolerance


class TestSparseAggregate:
    def test_sums_across_workers(self):
        from repro.compression.topk import SparsePayload

        p1 = SparsePayload(np.array([0, 2]), np.array([1.0, 2.0]), 4)
        p2 = SparsePayload(np.array([2, 3]), np.array([3.0, 4.0]), 4)
        out = sparse_aggregate([p1, p2], (4,), average=False)
        np.testing.assert_allclose(out, [1.0, 0.0, 5.0, 4.0])
        mean = sparse_aggregate([p1, p2], (4,), average=True)
        np.testing.assert_allclose(mean, [0.5, 0.0, 2.5, 2.0])

    def test_duplicate_indices_within_payload_accumulate(self):
        from repro.compression.topk import SparsePayload

        p = SparsePayload(np.array([1, 1]), np.array([1.0, 1.0]), 3)
        out = sparse_aggregate([p], (3,), average=False)
        np.testing.assert_allclose(out, [0.0, 2.0, 0.0])

    def test_size_mismatch_rejected(self):
        from repro.compression.topk import SparsePayload

        p1 = SparsePayload(np.array([0]), np.array([1.0]), 4)
        p2 = SparsePayload(np.array([0]), np.array([1.0]), 5)
        with pytest.raises(ValueError, match="disagree"):
            sparse_aggregate([p1, p2], (4,))
