"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestSimulate:
    def test_basic_run(self, capsys):
        code = main(["simulate", "--method", "acpsgd", "--model", "ResNet-50",
                     "--gpus", "8", "--rank", "4", "--batch-size", "16"])
        assert code == 0
        out = capsys.readouterr().out
        assert "total=" in out and "acpsgd" in out

    def test_system_switches(self, capsys):
        code = main(["simulate", "--method", "ssgd", "--model", "ResNet-50",
                     "--batch-size", "16", "--no-wfbp", "--no-tf"])
        assert code == 0

    def test_trace_export(self, tmp_path, capsys):
        trace = tmp_path / "timeline.json"
        code = main(["simulate", "--method", "powersgd_star",
                     "--model", "ResNet-50", "--batch-size", "16",
                     "--rank", "4", "--trace", str(trace)])
        assert code == 0
        with open(trace) as handle:
            doc = json.load(handle)
        assert doc["traceEvents"]

    def test_unknown_model_errors(self):
        with pytest.raises(KeyError):
            main(["simulate", "--model", "AlexNet"])

    def test_unknown_method_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--method", "magic"])


class TestAutotune:
    def test_reports_best_buffer(self, capsys):
        code = main(["autotune", "--method", "ssgd", "--model", "ResNet-50",
                     "--batch-size", "16", "--gpus", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "best buffer" in out and "<-- best" in out


class TestBench:
    def test_hot_path_bench_smoke(self, tmp_path, capsys):
        report_path = tmp_path / "bench.json"
        code = main(["bench", "--world-size", "2", "--base-width", "2",
                     "--iters", "2", "--warmup", "1",
                     "--methods", "ssgd,randomk", "--no-train-step",
                     "--workers", "none",
                     "--output", str(report_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "ssgd" in out and "speedup" in out
        with open(report_path) as handle:
            report = json.load(handle)
        assert set(report["aggregate_step"]) == {"ssgd", "randomk"}
        crit = report["criteria"]
        assert crit["arena_fused_allocs_per_step"] == 0

    def test_worker_mode_bench_records_breakdown(self, tmp_path, capsys):
        """`--workers process` compares backends and records the criteria
        (the thread baseline is pulled in automatically)."""
        report_path = tmp_path / "bench.json"
        code = main(["bench", "--world-size", "2", "--base-width", "2",
                     "--iters", "2", "--warmup", "1",
                     "--methods", "ssgd,signsgd,terngrad",
                     "--no-train-step", "--no-buffer-sweep",
                     "--workers", "process",
                     "--output", str(report_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "process vs thread" in out
        with open(report_path) as handle:
            report = json.load(handle)
        modes = report["worker_modes"]
        assert set(modes) == {"ssgd", "signsgd", "terngrad"}
        for row in modes.values():
            assert set(row) >= {"thread", "process",
                                "process_vs_thread_speedup"}
            assert row["process"]["broadcast_mean_s"] > 0
        crit = report["criteria"]
        assert set(crit["process_vs_thread_speedup"]) == {
            "ssgd", "signsgd", "terngrad"
        }
        assert crit["cpu_count"] >= 1

    def test_rejects_unknown_worker_backend(self, capsys):
        assert main(["bench", "--workers", "bogus"]) == 2
        assert "unknown worker backend" in capsys.readouterr().out


class TestTrain:
    def test_tiny_training_run(self, capsys):
        code = main(["train", "--method", "ssgd", "--workers", "2",
                     "--epochs", "1", "--steps-per-epoch", "3",
                     "--samples", "200", "--batch-size", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "final accuracy" in out


class TestEvaluateJson:
    def test_json_export_smoke(self, tmp_path, capsys, monkeypatch):
        """`evaluate --json` writes structured results (patched to a tiny
        subset so the test stays fast)."""
        import repro.cli as cli

        written = {}

        def fake_export(path, fast):
            written["path"] = path
            written["fast"] = fast
            with open(path, "w") as handle:
                handle.write("{}")
            return {}

        monkeypatch.setattr("repro.experiments.export.export_json", fake_export)
        path = str(tmp_path / "r.json")
        code = cli.main(["evaluate", "--fast", "--json", path])
        assert code == 0
        assert written == {"path": path, "fast": True}


class TestExtensionMethods:
    def test_simulate_extension_method(self, capsys):
        code = main(["simulate", "--method", "terngrad", "--model",
                     "ResNet-50", "--batch-size", "16", "--gpus", "8"])
        assert code == 0
        assert "terngrad" in capsys.readouterr().out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_link_choices(self):
        args = build_parser().parse_args(
            ["simulate", "--link", "1GbE"]
        )
        assert args.link == "1GbE"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--link", "5GbE"])


@pytest.mark.serve
class TestPlanJson:
    def test_plan_json_round_trips_through_service_schema(self, capsys):
        """`plan --json` emits exactly the schema the service serves."""
        from repro.serve.schema import plan_from_dict, plan_payload

        code = main(["plan", "--model", "ResNet-18", "--gpus", "4",
                     "--rank", "4", "--no-tune", "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.plan/2"
        restored = plan_from_dict(doc)
        assert restored.model == "ResNet-18"
        assert restored.world_size == 4
        # Canonical payload of the parsed plan == canonical payload of a
        # fresh library call: one schema, two frontends.
        from repro.planner import plan

        direct = plan("ResNet-18", gpus=4, link="10GbE", rank=4,
                      tune_buffer=False)
        assert plan_payload(restored) == plan_payload(direct)

    def test_plan_human_output_unchanged(self, capsys):
        code = main(["plan", "--model", "ResNet-18", "--gpus", "4",
                     "--rank", "4", "--no-tune"])
        assert code == 0
        assert "recommended" in capsys.readouterr().out


@pytest.mark.serve
class TestServeCommand:
    def make_query_line(self, gpus):
        return json.dumps({"model": "ResNet-18", "gpus": gpus,
                           "link": "10GbE", "rank": 4,
                           "tune_buffer": False})

    def test_jsonl_file_in_file_out(self, tmp_path, capsys):
        queries = tmp_path / "queries.jsonl"
        plans = tmp_path / "plans.jsonl"
        queries.write_text("\n".join([
            self.make_query_line(4),
            self.make_query_line(8),
            self.make_query_line(4),  # duplicate -> cache/coalesce
        ]) + "\n")
        code = main(["serve", "--input", str(queries),
                     "--output", str(plans), "--workers", "2"])
        assert code == 0
        lines = [json.loads(line)
                 for line in plans.read_text().splitlines()]
        assert len(lines) == 3
        assert lines[0]["plan"]["model"] == "ResNet-18"
        assert lines[0]["key"] == lines[2]["key"]
        # Duplicate answered from the same computation: identical bytes.
        assert lines[0]["plan"] == lines[2]["plan"]

    def test_serve_reports_errors_per_line(self, tmp_path):
        queries = tmp_path / "queries.jsonl"
        plans = tmp_path / "plans.jsonl"
        queries.write_text("garbage\n" + self.make_query_line(4) + "\n")
        code = main(["serve", "--input", str(queries),
                     "--output", str(plans)])
        assert code == 0
        lines = [json.loads(line)
                 for line in plans.read_text().splitlines()]
        assert "error" in lines[0]
        assert "plan" in lines[1]


@pytest.mark.serve
class TestPlannerBench:
    def test_bench_planner_writes_report(self, tmp_path, capsys):
        report_path = tmp_path / "BENCH_planner.json"
        code = main(["bench", "--planner", "--queries", "4",
                     "--warm-lookups", "2000",
                     "--output", str(report_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "planner bench" in out and "hit rate" in out
        with open(report_path) as handle:
            report = json.load(handle)
        assert report["schema"] == "repro.bench.planner/1"
        # Acceptance criteria: warm hit rate nonzero, >= 1000 q/s warm,
        # cached plans byte-identical to uncached.
        assert report["warm"]["hit_rate"] > 0.0
        assert report["criteria"]["warm_qps"] >= 1000.0
        assert report["criteria"]["payload_bit_identical"] is True
        assert report["cold"]["qps"] > 0.0
        assert report["warm"]["p99_ms"] >= report["warm"]["p50_ms"]
