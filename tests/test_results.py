"""Breakdown accounting over task records."""

import pytest

from repro.sim.engine import GPU_MAIN, NIC, Task, TaskRecord
from repro.sim.results import IterationBreakdown, breakdown_from_records


def record(task_id, stream, tag, start, end):
    return TaskRecord(Task(task_id, stream, end - start, tag=tag), start, end)


class TestBreakdown:
    def test_pure_compute(self):
        records = {
            "ff": record("ff", GPU_MAIN, "forward", 0.0, 1.0),
            "bp": record("bp", GPU_MAIN, "backward", 1.0, 3.0),
        }
        bd = breakdown_from_records(records)
        assert bd.total == pytest.approx(3.0)
        assert bd.ffbp == pytest.approx(3.0)
        assert bd.compression == 0.0
        assert bd.comm_nonoverlap == 0.0

    def test_comm_overlapped_by_compute_not_counted(self):
        records = {
            "bp": record("bp", GPU_MAIN, "backward", 0.0, 2.0),
            "comm": record("comm", NIC, "comm", 1.0, 3.0),
        }
        bd = breakdown_from_records(records)
        assert bd.total == pytest.approx(3.0)
        assert bd.ffbp == pytest.approx(2.0)
        assert bd.comm_nonoverlap == pytest.approx(1.0)  # only the tail

    def test_compression_hidden_behind_backward(self):
        records = {
            "bp": record("bp", GPU_MAIN, "backward", 0.0, 3.0),
            "comp": record("comp", GPU_MAIN, "compression", 3.0, 4.0),
            "overlapped_comp": record("c2", "gpu_side", "compression", 1.0, 2.0),
        }
        bd = breakdown_from_records(records)
        assert bd.ffbp == pytest.approx(3.0)
        assert bd.compression == pytest.approx(1.0)  # only the exposed part

    def test_components_sum_to_total(self):
        records = {
            "ff": record("ff", GPU_MAIN, "forward", 0.0, 1.0),
            "comp": record("comp", GPU_MAIN, "compression", 1.0, 2.0),
            "comm": record("comm", NIC, "comm", 2.0, 4.0),
        }
        bd = breakdown_from_records(records)
        assert bd.ffbp + bd.compression + bd.comm_nonoverlap == pytest.approx(bd.total)

    def test_idle_gaps_not_attributed(self):
        records = {
            "ff": record("ff", GPU_MAIN, "forward", 0.0, 1.0),
            "comm": record("comm", NIC, "comm", 2.0, 3.0),
        }
        bd = breakdown_from_records(records)
        assert bd.total == pytest.approx(3.0)
        assert bd.ffbp + bd.compression + bd.comm_nonoverlap == pytest.approx(2.0)

    def test_empty_records(self):
        bd = breakdown_from_records({})
        assert bd.total == 0.0

    def test_milliseconds_and_render(self):
        bd = IterationBreakdown(total=0.25, ffbp=0.2, compression=0.03,
                                comm_nonoverlap=0.02)
        total, ffbp, comp, comm = bd.milliseconds
        assert total == pytest.approx(250)
        text = bd.render("acpsgd")
        assert "acpsgd" in text and "250.0ms" in text
