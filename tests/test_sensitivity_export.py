"""Sensitivity driver and JSON export."""

import json

import pytest

from repro.experiments.export import collect_all, export_json
from repro.experiments.sensitivity import (
    SensitivityPoint,
    render,
    run_sensitivity,
)


class TestSensitivity:
    @pytest.fixture(scope="class")
    def points(self):
        # A fast subset: one parameter each side of nominal.
        return run_sensitivity(
            parameters=("beta", "contention_rate"),
            factors=(0.8, 1.0, 1.25),
        )

    def test_claims_hold_near_calibration(self, points):
        for point in points:
            assert point.all_held, (point.parameter, point.factor)

    def test_point_structure(self, points):
        assert len(points) == 6
        for point in points:
            assert set(point.claims_held) == {
                "acp_fastest_everywhere",
                "ssgd_slowest_on_berts",
                "contention_flip",
            }

    def test_render(self, points):
        text = render(points)
        assert "HOLDS" in text
        assert "perturbation points" in text

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            run_sensitivity(parameters=("warp_speed",), factors=(1.0,))


class TestExport:
    @pytest.fixture(scope="class")
    def data(self):
        return collect_all(fast=True)

    def test_structure_complete(self, data):
        expected = {"table1", "table2", "table3", "fig2", "fig3", "fig5",
                    "fig8", "fig9", "fig10", "fig11a", "fig11b", "fig12",
                    "fig13", "microbench"}
        assert expected <= set(data)
        assert "fig6" not in data  # fast mode skips convergence

    def test_json_serializable(self, data, tmp_path):
        path = tmp_path / "results.json"
        with open(path, "w") as handle:
            json.dump(data, handle)
        loaded = json.loads(path.read_text())
        assert loaded["table3"][0]["model"] == "ResNet-50"

    def test_export_json_writes_file(self, tmp_path):
        path = str(tmp_path / "out.json")
        data = export_json(path, fast=True)
        on_disk = json.loads(open(path).read())
        assert set(on_disk) == set(data)

    def test_values_match_drivers(self, data):
        """Exported Table III must agree with a fresh driver run."""
        from repro.experiments.table3 import run_table3

        fresh = {row.model: row.times_ms for row in run_table3()}
        for row in data["table3"]:
            for method, value in row["times_ms"].items():
                assert value == pytest.approx(fresh[row["model"]][method])
