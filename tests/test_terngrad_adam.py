"""TernGrad quantizer and Adam optimizer."""

import numpy as np
import pytest

from repro.comm.process_group import ProcessGroup
from repro.compression.terngrad import (
    TernGradCompressor,
    _pack_ternary,
    _unpack_ternary,
)
from repro.models.convnets import make_mlp
from repro.optim.adam import Adam
from repro.optim.aggregators import make_aggregator


class TestTernaryPacking:
    def test_roundtrip(self, rng):
        values = rng.integers(-1, 2, size=37).astype(np.int8)
        packed = _pack_ternary(values)
        assert packed.nbytes == 10  # ceil(37/4)
        recovered = _unpack_ternary(packed, 37)
        np.testing.assert_array_equal(recovered, values.astype(np.float64))

    def test_exact_multiple_of_four(self, rng):
        values = rng.integers(-1, 2, size=16).astype(np.int8)
        recovered = _unpack_ternary(_pack_ternary(values), 16)
        np.testing.assert_array_equal(recovered, values)


class TestTernGrad:
    def test_values_are_ternary(self, rng):
        comp = TernGradCompressor(rng)
        grad = rng.normal(size=200)
        payload = comp.compress(grad)
        dense = TernGradCompressor.decompress(payload, (200,))
        levels = np.unique(np.round(np.abs(dense), 12))
        assert len(levels) <= 2  # {0, s}

    def test_unbiasedness(self, rng):
        comp = TernGradCompressor(rng)
        x = rng.normal(size=48)
        total = np.zeros(48)
        trials = 4000
        for _ in range(trials):
            payload = comp.compress(x)
            total += TernGradCompressor.decompress(payload, (48,))
        np.testing.assert_allclose(total / trials, x, atol=0.08)

    def test_payload_is_16x_smaller(self, rng):
        grad = rng.normal(size=6400)
        payload = TernGradCompressor(rng).compress(grad)
        assert payload.packed.nbytes == 1600  # 2 bits/element

    def test_zero_gradient(self):
        payload = TernGradCompressor().compress(np.zeros(10))
        np.testing.assert_array_equal(
            TernGradCompressor.decompress(payload, (10,)), np.zeros(10)
        )

    def test_clipping_reduces_scale(self, rng):
        grad = rng.normal(size=1000)
        grad[0] = 100.0  # outlier
        unclipped = TernGradCompressor(rng, clip_sigma=0.0).compress(grad)
        clipped = TernGradCompressor(rng, clip_sigma=2.5).compress(grad)
        assert clipped.scale < unclipped.scale

    def test_validation(self):
        with pytest.raises(ValueError, match="clip_sigma"):
            TernGradCompressor(clip_sigma=-1)

    def test_aggregator_registered(self, rng):
        agg = make_aggregator("terngrad", ProcessGroup(3))
        per_worker = [{"w": rng.normal(size=(6, 6))} for _ in range(3)]
        out = agg.aggregate(per_worker)
        assert out["w"].shape == (6, 6)
        assert np.isfinite(out["w"]).all()

    def test_aggregator_uses_allgather(self, rng):
        group = ProcessGroup(2)
        make_aggregator("terngrad", group).aggregate(
            [{"w": rng.normal(size=8)} for _ in range(2)]
        )
        assert any(s.algorithm == "all_gather" for s in group.history)


class TestAdam:
    def test_first_step_is_lr_sized(self, rng):
        """With bias correction, the first update has magnitude ~lr."""
        model = make_mlp(4, 8, 2, rng=rng)
        opt = Adam(model, lr=0.01)
        before = model.parameters()[0].data.copy()
        grads = {n: rng.normal(size=p.shape)
                 for n, p in model.named_parameters()}
        opt.step(grads)
        delta = np.abs(model.parameters()[0].data - before)
        assert np.median(delta) == pytest.approx(0.01, rel=0.05)

    def test_adapts_to_gradient_scale(self, rng):
        """Coordinates with persistently large gradients get the same step
        size as small ones (the defining Adam property)."""
        model = make_mlp(4, 8, 2, rng=rng)
        opt = Adam(model, lr=0.01)
        name, param = next(iter(model.named_parameters()))
        grad = np.ones(param.shape)
        grad.reshape(-1)[0] = 1000.0
        before = param.data.copy()
        for _ in range(5):
            opt.step({name: grad})
        delta = np.abs(param.data - before).reshape(-1)
        assert delta[0] == pytest.approx(delta[1], rel=0.05)

    def test_optimizes_quadratic(self, rng):
        """Adam reaches the optimum of a simple quadratic."""
        from repro.nn.linear import Linear

        model = Linear(1, 1, bias=False, rng=rng)
        opt = Adam(model, lr=0.1)
        target = 3.0
        for _ in range(200):
            grad = 2 * (model.weight.data - target)
            opt.step({"weight": grad})
        assert model.weight.data[0, 0] == pytest.approx(target, abs=0.05)

    def test_weight_decay(self, rng):
        model = make_mlp(4, 8, 2, rng=rng)
        opt = Adam(model, lr=0.1, weight_decay=0.1)
        name, param = next(iter(model.named_parameters()))
        before = np.abs(param.data).sum()
        for _ in range(20):
            opt.step({name: np.zeros(param.shape)})
        assert np.abs(param.data).sum() < before

    def test_trains_mlp(self, rng):
        from repro.nn.loss import CrossEntropyLoss

        model = make_mlp(8, 16, 3, rng=np.random.default_rng(0))
        opt = Adam(model, lr=0.01)
        loss_fn = CrossEntropyLoss()
        centers = np.random.default_rng(5).normal(size=(3, 8)) * 3
        losses = []
        for step in range(50):
            r = np.random.default_rng(step)
            y = r.integers(0, 3, size=32)
            x = centers[y] + r.normal(size=(32, 8))
            model.zero_grad()
            losses.append(loss_fn(model(x), y))
            model.backward(loss_fn.backward())
            opt.step()
        assert np.mean(losses[-10:]) < 0.3 * np.mean(losses[:10])

    def test_works_with_data_parallel_trainer(self):
        """Adam is interface-compatible with the trainer (duck-typed)."""
        from repro.comm.process_group import ProcessGroup
        from repro.models.transformer import make_tiny_bert
        from repro.optim.aggregators import make_aggregator
        from repro.train.datasets import make_token_classification
        from repro.train.trainer import DataParallelTrainer

        train_data, test_data = make_token_classification(
            num_train=320, num_test=80, vocab_size=24, seq_len=8,
            num_classes=4, seed=2,
        )
        model = make_tiny_bert(vocab_size=24, hidden=16, num_layers=1,
                               num_heads=2, max_seq=8, num_classes=4,
                               rng=np.random.default_rng(1))
        trainer = DataParallelTrainer(
            model, Adam(model, lr=0.01),
            make_aggregator("acpsgd", ProcessGroup(2), rank=4),
            train_data, test_data, batch_size_per_worker=16, seed=5,
        )
        for _ in range(20):
            trainer.train_step()
        assert trainer.evaluate() > 0.4  # chance = 0.25

    def test_validation(self, rng):
        model = make_mlp(4, 8, 2, rng=rng)
        with pytest.raises(ValueError):
            Adam(model, lr=0)
        with pytest.raises(ValueError):
            Adam(model, beta1=1.0)
        with pytest.raises(ValueError):
            Adam(model, eps=0)
        opt = Adam(model)
        with pytest.raises(ValueError, match="gradient shape"):
            opt.step({"layers.0.weight": np.zeros(3)})