"""Property tests for the cache-key contract (hypothesis).

The service's hit rate rests on one invariant: the cache key is a pure
function of query *value*. Floats are where that breaks in practice —
equal doubles with different spellings (``10.0`` vs ``1e1``), negative
zero, integer-valued floats — so these properties drive generated
:class:`LinkSpec` values through every such disguise and require the key
to be blind to all of them, and to distinguish every genuinely different
value.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.cost_model import LinkSpec
from repro.serve import PlanQuery, canonical_float, canonical_link

pytestmark = pytest.mark.serve

finite = st.floats(allow_nan=False, allow_infinity=False)
alphas = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
betas = st.floats(min_value=1.0, max_value=1e12, allow_nan=False)
gbps = st.floats(min_value=0.0, max_value=1e4, allow_nan=False)


def make_query(alpha, beta, nominal):
    return PlanQuery(
        "ResNet-50", gpus=16,
        link=LinkSpec("generated", alpha, beta, nominal),
        tune_buffer=False,
    )


def disguises(value):
    """Different spellings of the same float value."""
    forms = [value, float(repr(value)), value * 1.0, value + 0.0]
    if value == 0.0:
        forms.append(-0.0)
    if value == int(value) and abs(value) < 2**53:
        forms.append(float(int(value)))
    return forms


class TestCanonicalFloatProperties:
    @given(finite)
    def test_idempotent(self, value):
        once = canonical_float(value)
        assert repr(canonical_float(once)) == repr(once)

    @given(finite)
    def test_value_preserving(self, value):
        assert canonical_float(value) == value

    @given(finite)
    def test_all_disguises_share_one_repr(self, value):
        spellings = {repr(canonical_float(form)) for form in disguises(value)}
        assert len(spellings) == 1

    @given(finite)
    def test_never_negative_zero(self, value):
        out = canonical_float(value)
        if out == 0.0:
            assert math.copysign(1.0, out) == 1.0


class TestLinkKeyProperties:
    @settings(max_examples=60)
    @given(alphas, betas, gbps)
    def test_equal_specs_equal_keys(self, alpha, beta, nominal):
        """Every disguise of the same link values yields one cache key."""
        keys = {
            make_query(a, b, g).cache_key()
            for a in disguises(alpha)
            for b in disguises(beta)
            for g in disguises(nominal)
        }
        assert len(keys) == 1

    @settings(max_examples=60)
    @given(alphas, betas, gbps, alphas, betas, gbps)
    def test_keys_equal_iff_queries_equal(self, a1, b1, g1, a2, b2, g2):
        q1, q2 = make_query(a1, b1, g1), make_query(a2, b2, g2)
        assert (q1.cache_key() == q2.cache_key()) == (q1 == q2)

    @settings(max_examples=60)
    @given(alphas, betas, gbps)
    def test_canonical_link_round_trip_stable(self, alpha, beta, nominal):
        link = canonical_link(LinkSpec("x", alpha, beta, nominal))
        again = canonical_link(link)
        assert (repr(again.alpha), repr(again.beta),
                repr(again.nominal_gbps)) == \
               (repr(link.alpha), repr(link.beta), repr(link.nominal_gbps))

    @settings(max_examples=60)
    @given(alphas, betas, gbps)
    def test_serialization_round_trip_preserves_key(self, alpha, beta,
                                                    nominal):
        import json

        query = make_query(alpha, beta, nominal)
        again = PlanQuery.from_dict(json.loads(json.dumps(query.to_dict())))
        assert again.cache_key() == query.cache_key()
