"""Gradient arena: layout, zero-copy packing, in-place collectives."""

import numpy as np
import pytest

from repro.comm import collectives
from repro.comm.process_group import ProcessGroup
from repro.faults.resilient import ResilientProcessGroup
from repro.models.convnets import make_mlp
from repro.nn.parameter import Parameter
from repro.optim.aggregators import (
    AllReduceAggregator,
    _pack,
    _pack_fused,
    _unpack,
)
from repro.perf.arena import ArenaLayout, GradientArena
from repro.perf.counters import ALLOC_STATS


def small_model(seed=0):
    return make_mlp(12, 8, 4, rng=np.random.default_rng(seed))


def random_grads(model, seed=0):
    rng = np.random.default_rng(seed)
    return {
        name: rng.standard_normal(param.shape)
        for name, param in model.named_parameters()
    }


class TestArenaLayout:
    def test_offsets_are_contiguous_in_order(self):
        layout = ArenaLayout([("a", (2, 3)), ("b", (4,)), ("c", ())])
        assert layout.names == ["a", "b", "c"]
        assert layout.offsets == {"a": 0, "b": 6, "c": 10}
        assert layout.total_elements == 11

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ArenaLayout([("a", (2,)), ("a", (3,))])

    def test_span_contiguous_run(self):
        layout = ArenaLayout([("a", (2,)), ("b", (3,)), ("c", (4,))])
        assert layout.span(["a", "b", "c"]) == (0, 9)
        assert layout.span(["b", "c"]) == (2, 9)
        assert layout.span(["b"]) == (2, 5)
        assert layout.span(["a", "c"]) is None
        assert layout.span(["c", "b"]) is None
        assert layout.span(["missing"]) is None

    def test_buckets_partition_slab(self):
        layout = ArenaLayout(
            [("a", (4,)), ("b", (4,)), ("c", (4,))], bucket_bytes=32
        )
        assert layout.buckets == [(0, 4), (4, 8), (8, 12)]
        assert ArenaLayout([("a", (4,))]).buckets == [(0, 4)]


class TestGradientArena:
    def test_views_share_slab_storage(self):
        model = small_model()
        arena = GradientArena(model, world_size=2)
        grads = arena.grads(0)
        for name in arena.layout.names:
            assert np.shares_memory(grads[name], arena.slab(0))
        assert grads.fused_view(arena.layout.names) is arena.slab(0)

    def test_backward_writes_land_in_slab(self):
        model = small_model()
        arena = GradientArena(model, world_size=1)
        arena.bind(model, 0)
        model.zero_grad()
        x = np.random.default_rng(1).standard_normal((5, 12))
        out = model(x)
        model.backward(np.ones_like(out))
        slab = arena.slab(0)
        assert np.abs(slab).sum() > 0
        for name, param in model.named_parameters():
            lo = arena.layout.offsets[name]
            hi = lo + arena.layout.size_of(name)
            np.testing.assert_array_equal(
                param.grad.ravel(), slab[lo:hi]
            )

    def test_bind_shape_mismatch_rejected(self):
        arena = GradientArena(small_model(), world_size=1)
        other = make_mlp(12, 9, 4, rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="layout"):
            arena.bind(other, 0)

    def test_divide_matches_legacy_division(self):
        model = small_model()
        arena = GradientArena(model, world_size=1)
        rng = np.random.default_rng(2)
        values = rng.standard_normal(arena.layout.total_elements)
        np.copyto(arena.slab(0), values)
        arena.divide_(0, 3)
        np.testing.assert_array_equal(arena.slab(0), values / 3)

    def test_owns_identifies_slabs(self):
        arena = GradientArena(small_model(), world_size=2)
        assert arena.owns([arena.slab(0), arena.slab(1)])
        assert not arena.owns([arena.slab(0).copy()])


class TestParameterSlots:
    def test_slot_accumulation_matches_legacy(self):
        rng = np.random.default_rng(3)
        g1, g2 = rng.standard_normal((2, 4, 3))
        legacy = Parameter(np.zeros((4, 3)))
        legacy.accumulate_grad(g1)
        legacy.accumulate_grad(g2)

        slotted = Parameter(np.zeros((4, 3)))
        slot = np.full((4, 3), 99.0)  # stale garbage must be overwritten
        slotted.attach_grad_slot(slot)
        slotted.accumulate_grad(g1)
        slotted.accumulate_grad(g2)

        np.testing.assert_array_equal(legacy.grad, slotted.grad)
        assert slotted.grad is slot

    def test_zero_grad_marks_slot_stale_without_allocation(self):
        param = Parameter(np.zeros(3))
        slot = np.zeros(3)
        param.attach_grad_slot(slot)
        param.accumulate_grad(np.ones(3))
        assert param.grad is slot
        param.zero_grad()
        assert param.grad is None  # stale, not freed
        param.accumulate_grad(np.full(3, 2.0))
        np.testing.assert_array_equal(slot, np.full(3, 2.0))

    def test_attach_shape_mismatch_rejected(self):
        param = Parameter(np.zeros((2, 2)))
        with pytest.raises(ValueError, match="slot shape"):
            param.attach_grad_slot(np.zeros(5))

    def test_detach_returns_to_legacy_mode(self):
        param = Parameter(np.zeros(3))
        param.attach_grad_slot(np.zeros(3))
        param.detach_grad_slot()
        param.accumulate_grad(np.ones(3))
        assert param.grad is not None and param.grad.base is None


class TestPackUnpack:
    def test_pack_arena_grads_is_zero_copy(self):
        model = small_model()
        arena = GradientArena(model, world_size=1)
        grads = arena.grads(0)
        ALLOC_STATS.reset()
        buffer, is_view = _pack_fused(grads, arena.layout.names)
        assert is_view and buffer is arena.slab(0)
        assert ALLOC_STATS.pack_copies == 0

    def test_pack_plain_dict_copies_and_counts(self):
        model = small_model()
        grads = random_grads(model)
        names = list(grads)
        ALLOC_STATS.reset()
        buffer, is_view = _pack_fused(grads, names)
        assert not is_view
        assert ALLOC_STATS.pack_copies == 1
        np.testing.assert_array_equal(
            buffer, np.concatenate([grads[n].ravel() for n in names])
        )

    def test_unpack_returns_read_only_views(self):
        """Satellite regression: callers cannot scribble on shared buffers."""
        model = small_model()
        grads = random_grads(model)
        names = list(grads)
        buffer = _pack(grads, names)
        out = _unpack(buffer, grads, names)
        first = names[0]
        assert np.shares_memory(out[first], buffer)
        with pytest.raises(ValueError):
            out[first][...] = 0.0

    def test_unpack_copy_gives_private_writable_tensors(self):
        model = small_model()
        grads = random_grads(model)
        names = list(grads)
        buffer = _pack(grads, names)
        ALLOC_STATS.reset()
        out = _unpack(buffer, grads, names, copy=True)
        assert ALLOC_STATS.unpack_copies == len(names)
        for name in names:
            assert not np.shares_memory(out[name], buffer)
            out[name][...] = 0.0  # must not raise
        np.testing.assert_array_equal(
            buffer, np.concatenate([grads[n].ravel() for n in names])
        )


class TestInplaceAllReduce:
    @pytest.mark.parametrize("world_size", [2, 3, 4, 5])
    def test_matches_copying_all_reduce_bitwise(self, world_size):
        rng = np.random.default_rng(world_size)
        originals = [rng.standard_normal(23) for _ in range(world_size)]
        group = ProcessGroup(world_size)
        expected = group.all_reduce([b.copy() for b in originals], average=True)
        buffers = [b.copy() for b in originals]
        group.all_reduce_(buffers, average=True)
        for buf, ref in zip(buffers, expected):
            np.testing.assert_array_equal(buf, ref)

    def test_inplace_stats_recorded(self):
        group = ProcessGroup(4)
        group.all_reduce_([np.ones(8) for _ in range(4)])
        stats = group.history[-1]
        assert stats.algorithm == "allreduce_ring_inplace"
        assert stats.steps == 6

    def test_world_size_one_is_identity(self):
        buf = np.arange(5.0)
        collectives.all_reduce_ring_inplace([buf])
        np.testing.assert_array_equal(buf, np.arange(5.0))

    def test_rejects_bad_buffers(self):
        good = [np.zeros(8), np.zeros(8)]
        with pytest.raises(ValueError, match="float64"):
            collectives.all_reduce_ring_inplace(
                [np.zeros(8, dtype=np.float32), np.zeros(8)]
            )
        with pytest.raises(ValueError, match="length"):
            collectives.all_reduce_ring_inplace([np.zeros(8), np.zeros(9)])
        read_only = np.zeros(8)
        read_only.flags.writeable = False
        with pytest.raises(ValueError, match="writable"):
            collectives.all_reduce_ring_inplace([good[0], read_only])

    def test_resilient_group_forces_copying_path(self):
        group = ResilientProcessGroup(3)
        assert group.supports_inplace is False
        rng = np.random.default_rng(7)
        originals = [rng.standard_normal(11) for _ in range(3)]
        expected = group.all_reduce([b.copy() for b in originals], average=True)
        buffers = [b.copy() for b in originals]
        group.all_reduce_(buffers, average=True)
        for buf, ref in zip(buffers, expected):
            np.testing.assert_array_equal(buf, ref)


class TestAggregatorFastPath:
    def test_inplace_ssgd_matches_legacy_bitwise(self):
        model = small_model()
        world_size = 4
        arena = GradientArena(model, world_size)
        rng = np.random.default_rng(11)
        reference = [
            rng.standard_normal(arena.layout.total_elements)
            for _ in range(world_size)
        ]
        legacy_grads = []
        for slot, ref in enumerate(reference):
            np.copyto(arena.slab(slot), ref)
            grads = {}
            for name in arena.layout.names:
                lo = arena.layout.offsets[name]
                hi = lo + arena.layout.size_of(name)
                grads[name] = ref[lo:hi].reshape(arena.layout.shapes[name]).copy()
            legacy_grads.append(grads)

        expected = AllReduceAggregator(ProcessGroup(world_size)).aggregate(
            legacy_grads
        )
        ALLOC_STATS.reset()
        result = AllReduceAggregator(ProcessGroup(world_size)).aggregate(
            [arena.grads(slot) for slot in range(world_size)]
        )
        assert ALLOC_STATS.fused_allocs == 0
        for name in expected:
            np.testing.assert_array_equal(result[name], expected[name])
            assert np.shares_memory(result[name], arena.slab(0))

    def test_duplicate_buffers_fall_back_to_copying(self):
        """Two workers handing in the SAME slab cannot be reduced in place."""
        model = small_model()
        arena = GradientArena(model, world_size=1)
        np.copyto(arena.slab(0), 1.0)
        grads = arena.grads(0)
        aggregator = AllReduceAggregator(ProcessGroup(2))
        result = aggregator.aggregate([grads, grads])
        for name in result:
            np.testing.assert_array_equal(
                result[name], np.ones(arena.layout.shapes[name])
            )
