"""Training metrics and the reduce/gather collectives."""

import numpy as np
import pytest

from repro.comm import ProcessGroup
from repro.comm.collectives import gather, reduce
from repro.train.metrics import TrainingMetrics


class TestReduce:
    def test_sum_at_root(self, rng):
        bufs = [rng.normal(size=(4, 3)) for _ in range(5)]
        result, stats = reduce(bufs, root=2)
        np.testing.assert_allclose(result, np.sum(bufs, axis=0), rtol=1e-10)
        assert stats.algorithm == "reduce"
        # Root sends nothing; others send once each up the tree.
        assert stats.bytes_sent_per_rank[2] == 0
        assert stats.total_bytes == 4 * bufs[0].nbytes

    def test_logarithmic_rounds(self, rng):
        _, stats = reduce([rng.normal(size=4) for _ in range(8)])
        assert stats.steps == 3

    def test_single_rank(self, rng):
        buf = rng.normal(size=3)
        result, stats = reduce([buf])
        np.testing.assert_array_equal(result, buf)
        assert stats.steps == 0

    def test_invalid_root(self, rng):
        with pytest.raises(ValueError, match="root"):
            reduce([rng.normal(size=2)] * 3, root=3)

    @pytest.mark.parametrize("world", [2, 3, 5, 7, 8])
    @pytest.mark.parametrize("root", [0, 1])
    def test_any_world_and_root(self, world, root, rng):
        bufs = [rng.normal(size=6) for _ in range(world)]
        result, _ = reduce(bufs, root=min(root, world - 1))
        np.testing.assert_allclose(result, np.sum(bufs, axis=0), rtol=1e-10)


class TestGather:
    def test_collects_heterogeneous_payloads(self, rng):
        bufs = [rng.normal(size=k) for k in (2, 5, 3)]
        gathered, stats = gather(bufs, root=1)
        for received, sent_buf in zip(gathered, bufs):
            np.testing.assert_array_equal(received, sent_buf)
        assert stats.bytes_sent_per_rank[1] == 0  # root sends nothing
        assert stats.total_bytes == bufs[0].nbytes + bufs[2].nbytes

    def test_invalid_root(self, rng):
        with pytest.raises(ValueError, match="root"):
            gather([rng.normal(size=2)] * 2, root=5)


class TestTrainingMetrics:
    def test_step_timer_counts_group_traffic(self, rng):
        group = ProcessGroup(2)
        metrics = TrainingMetrics(group=group)
        metrics.start_step()
        group.all_reduce([rng.normal(size=100) for _ in range(2)])
        record = metrics.end_step(samples=64)
        assert record.samples == 64
        assert record.bytes_communicated == group.total_bytes()
        assert record.duration_s >= 0

    def test_aggregates(self):
        metrics = TrainingMetrics()
        metrics.record(0.5, 32, 1000)
        metrics.record(0.5, 32, 3000)
        assert metrics.steps == 2
        assert metrics.throughput() == pytest.approx(64.0)
        assert metrics.bytes_per_step() == pytest.approx(2000)
        assert metrics.mean_step_seconds() == pytest.approx(0.5)
        assert "samples/s" in metrics.render()

    def test_empty_metrics(self):
        metrics = TrainingMetrics()
        assert metrics.throughput() == 0.0
        assert metrics.bytes_per_step() == 0.0

    def test_misuse_and_validation(self):
        metrics = TrainingMetrics()
        with pytest.raises(RuntimeError, match="start_step"):
            metrics.end_step(1)
        with pytest.raises(ValueError):
            metrics.record(-1, 0)
