"""Open-membership gossip training: store, payload, scorer, cluster.

The acceptance contract this file gates:

- every payload corruption mode is caught and typed;
- a seeded run with >= 30% adversarial peers quarantines every bad peer
  within the scorer's bounded window count, converges within tolerance of
  the honest-only run, and replays bit-identically;
- joiners and returning peers land bit-identical to the veterans via
  store replay alone (no donor broadcast).
"""

import numpy as np
import pytest

from repro.compression.payload import (
    PayloadFormatError,
    pack_payload,
    payload_meta,
    unpack_payload,
)
from repro.faults.plan import (
    FaultPlan,
    Join,
    PeerFault,
    PermanentFailure,
    Recovery,
)
from repro.gossip import (
    Contribution,
    FilesystemStore,
    GossipCluster,
    GossipConfig,
    InMemoryStore,
    PeerScorer,
    ScorerConfig,
)
from repro.gossip.trainer import FlatLayout, decode_update
from repro.models.convnets import make_mlp
from repro.sim.calibration import SIM_LINKS
from repro.sim.gossip import (
    GossipWindowSpec,
    recommend_window_steps,
    window_survival_probability,
    window_utility_rate,
)
from repro.train.datasets import ArrayDataset

pytestmark = pytest.mark.gossip


# ----------------------------------------------------------------------
# Payload wire format
# ----------------------------------------------------------------------
class TestPayload:
    def make_blob(self):
        return pack_payload(
            {
                "indices": np.arange(12, dtype=np.int64),
                "values": np.linspace(-1.0, 1.0, 12),
            },
            {"peer": "peer-000", "window": 4, "num_elements": 64},
        )

    def test_round_trip(self):
        blob = self.make_blob()
        arrays, meta = unpack_payload(blob)
        assert np.array_equal(arrays["indices"], np.arange(12))
        assert np.allclose(arrays["values"], np.linspace(-1.0, 1.0, 12))
        assert meta == {"peer": "peer-000", "window": 4, "num_elements": 64}

    def test_returned_arrays_are_writable_copies(self):
        arrays, _ = unpack_payload(self.make_blob())
        arrays["values"][0] = 99.0  # must not raise

    def test_meta_peek(self):
        assert payload_meta(self.make_blob())["window"] == 4

    def test_pack_is_deterministic(self):
        assert self.make_blob() == self.make_blob()

    def test_every_single_bit_flip_is_caught(self):
        blob = self.make_blob()
        for bit in range(len(blob) * 8):
            raw = bytearray(blob)
            raw[bit // 8] ^= 1 << (bit % 8)
            with pytest.raises(PayloadFormatError):
                unpack_payload(bytes(raw))

    def test_every_truncation_is_caught(self):
        blob = self.make_blob()
        for cut in range(len(blob)):
            with pytest.raises(PayloadFormatError):
                unpack_payload(blob[:cut])

    def test_foreign_blob_rejected_by_magic(self):
        with pytest.raises(PayloadFormatError, match="magic"):
            unpack_payload(b"PKZIP-definitely-not-ours" + b"\x00" * 64)

    def test_absurd_header_length_rejected_without_allocation(self):
        from repro.compression.payload import PAYLOAD_MAGIC

        evil = PAYLOAD_MAGIC + (2**31 - 1).to_bytes(4, "little") * 2
        with pytest.raises(PayloadFormatError, match="header size"):
            unpack_payload(evil)


# ----------------------------------------------------------------------
# Update stores
# ----------------------------------------------------------------------
@pytest.fixture(params=["memory", "filesystem"])
def store(request, tmp_path):
    if request.param == "memory":
        return InMemoryStore()
    return FilesystemStore(str(tmp_path / "store"))


class TestStores:
    def test_publish_fetch_ordered_by_peer(self, store):
        store.publish(0, "peer-002", b"c")
        store.publish(0, "peer-000", b"a")
        store.publish(0, "peer-001", b"b")
        fetched = store.fetch(0)
        assert list(fetched) == ["peer-000", "peer-001", "peer-002"]
        assert fetched["peer-000"] == b"a"

    def test_fetch_missing_window_is_empty(self, store):
        assert store.fetch(7) == {}

    def test_republish_overwrites(self, store):
        store.publish(0, "peer-000", b"old")
        store.publish(0, "peer-000", b"new")
        assert store.fetch(0)["peer-000"] == b"new"

    def test_windows_ascending(self, store):
        for window in (5, 1, 3):
            store.publish(window, "peer-000", b"x")
        assert store.windows() == [1, 3, 5]

    def test_gc_drops_old_windows(self, store):
        for window in range(5):
            store.publish(window, "peer-000", b"x")
        assert store.gc(3) == 3
        assert store.windows() == [3, 4]
        assert store.fetch(1) == {}

    def test_publish_validation(self, store):
        with pytest.raises(ValueError, match="window"):
            store.publish(-1, "peer-000", b"x")
        with pytest.raises(ValueError, match="peer_id"):
            store.publish(0, "", b"x")
        with pytest.raises(TypeError, match="bytes"):
            store.publish(0, "peer-000", "not bytes")

    def test_filesystem_rejects_hostile_peer_ids(self, tmp_path):
        fs = FilesystemStore(str(tmp_path / "store"))
        for evil in ("../escape", "a/b", "a\x00b", ".."):
            with pytest.raises(ValueError, match="filesystem-safe"):
                fs.publish(0, evil, b"x")

    def test_filesystem_survives_reopen(self, tmp_path):
        root = str(tmp_path / "store")
        FilesystemStore(root).publish(2, "peer-000", b"payload")
        reopened = FilesystemStore(root)
        assert reopened.windows() == [2]
        assert reopened.fetch(2)["peer-000"] == b"payload"


# ----------------------------------------------------------------------
# Peer scorer
# ----------------------------------------------------------------------
def dense(values):
    return np.asarray(values, dtype=np.float64)


def honest_window(window, n=4, scale=1.0):
    rng = np.random.default_rng(window)
    return [
        Contribution(f"peer-{i:03d}",
                     update=scale * (dense([1.0, 1.0, 1.0, 1.0])
                                     + 0.05 * rng.normal(size=4)),
                     stamped_window=window)
        for i in range(n)
    ]


class TestScorer:
    def test_clean_window_full_weight(self):
        scorer = PeerScorer()
        weights = scorer.weigh_window(0, honest_window(0))
        assert all(w == pytest.approx(1.0) for w in weights.values())

    def test_decode_error_books_typed_offence(self):
        scorer = PeerScorer()
        contributions = honest_window(0)[:3] + [
            Contribution("peer-bad", decode_error="corrupt-payload: crc")
        ]
        weights = scorer.weigh_window(0, contributions)
        assert weights["peer-bad"] == 0.0
        assert scorer.offences_of_kind("corrupt-payload")[0].peer_id == "peer-bad"

    def test_non_finite_update_excluded(self):
        scorer = PeerScorer()
        contributions = honest_window(0)[:3] + [
            Contribution("peer-bad", update=dense([1.0, np.nan, 1.0, 1.0]),
                         stamped_window=0)
        ]
        weights = scorer.weigh_window(0, contributions)
        assert weights["peer-bad"] == 0.0
        assert scorer.offences_of_kind("non-finite")

    def test_staleness_decays_weight(self):
        config = ScorerConfig(staleness_half_life=2.0, max_lag=3)
        scorer = PeerScorer(config)
        contributions = honest_window(6)[:3]
        contributions.append(Contribution(
            "peer-stale", update=contributions[0].update.copy(),
            stamped_window=4))  # lag 2 = one half-life
        weights = scorer.weigh_window(6, contributions)
        assert weights["peer-stale"] == pytest.approx(0.5)

    def test_lag_beyond_max_is_an_offence(self):
        scorer = PeerScorer(ScorerConfig(max_lag=3))
        contributions = honest_window(9)[:3]
        contributions.append(Contribution(
            "peer-old", update=contributions[0].update.copy(),
            stamped_window=5))  # lag 4 > max_lag 3
        weights = scorer.weigh_window(9, contributions)
        assert weights["peer-old"] == 0.0
        assert scorer.offences_of_kind("lagging")

    def test_future_stamp_is_time_travel(self):
        scorer = PeerScorer()
        contributions = honest_window(2)[:3]
        contributions.append(Contribution(
            "peer-oracle", update=contributions[0].update.copy(),
            stamped_window=5))
        scorer.weigh_window(2, contributions)
        assert scorer.offences_of_kind("time-travel")

    def test_free_rider_and_blowup_excluded_by_norm(self):
        scorer = PeerScorer()
        contributions = honest_window(0)[:3] + [
            Contribution("peer-zero", update=dense([0, 0, 0, 0]),
                         stamped_window=0),
            Contribution("peer-huge", update=dense([1e6, 1e6, 1e6, 1e6]),
                         stamped_window=0),
        ]
        weights = scorer.weigh_window(0, contributions)
        assert weights["peer-zero"] == 0.0
        assert weights["peer-huge"] == 0.0
        assert scorer.offences_of_kind("free-rider")
        assert scorer.offences_of_kind("norm-blowup")

    def test_sign_flip_minority_excluded(self):
        scorer = PeerScorer()
        contributions = honest_window(0)
        flipped = -contributions[0].update
        contributions.append(Contribution("peer-flip", update=flipped,
                                          stamped_window=0))
        weights = scorer.weigh_window(0, contributions)
        assert weights["peer-flip"] == 0.0
        assert scorer.offences_of_kind("sign-flip")
        for i in range(4):
            assert weights[f"peer-{i:03d}"] > 0.0

    def test_adversarial_majority_cannot_eject_honest_peers(self):
        # 3 flipped vs 2 honest: the "dissenters" are not a minority, so
        # the direction screen must abstain rather than hand the attackers
        # an ejection lever.
        scorer = PeerScorer()
        honest = honest_window(0, n=2)
        flipped = [
            Contribution(f"peer-flip-{i}", update=-honest[0].update,
                         stamped_window=0)
            for i in range(3)
        ]
        weights = scorer.weigh_window(0, honest + flipped)
        assert all(weights[c.peer_id] > 0.0 for c in honest)
        assert not scorer.offences_of_kind("sign-flip")

    def test_persistent_offender_quarantined_within_bound(self):
        config = ScorerConfig()
        scorer = PeerScorer(config)
        bound = config.quarantine_windows_bound
        for window in range(bound + 2):
            contributions = honest_window(window)[:3] + [
                Contribution("peer-bad", decode_error="corrupt-payload: crc")
            ]
            scorer.weigh_window(window, contributions)
            if scorer.is_quarantined("peer-bad"):
                break
        assert scorer.is_quarantined("peer-bad")
        assert scorer.records["peer-bad"].quarantined_window < bound

    def test_quarantine_is_permanent_even_for_clean_updates(self):
        scorer = PeerScorer()
        for window in range(5):
            contributions = honest_window(window)[:3] + [
                Contribution("peer-bad", decode_error="corrupt-payload: crc")
            ]
            scorer.weigh_window(window, contributions)
        assert scorer.is_quarantined("peer-bad")
        clean = honest_window(5)[:3] + [
            Contribution("peer-bad", update=honest_window(5)[0].update,
                         stamped_window=5)
        ]
        weights = scorer.weigh_window(5, clean)
        assert weights["peer-bad"] == 0.0

    def test_clean_windows_recover_a_slipping_score(self):
        scorer = PeerScorer()
        one_bad = honest_window(0)[:3] + [
            Contribution("peer-shaky", decode_error="corrupt-payload: crc")
        ]
        scorer.weigh_window(0, one_bad)
        low = scorer.records["peer-shaky"].score
        for window in range(1, 4):
            contributions = honest_window(window)[:3]
            contributions.append(Contribution(
                "peer-shaky", update=contributions[0].update.copy(),
                stamped_window=window))
            scorer.weigh_window(window, contributions)
        assert scorer.records["peer-shaky"].score > low
        assert not scorer.is_quarantined("peer-shaky")

    def test_weights_deterministic_across_scorers(self):
        a, b = PeerScorer(), PeerScorer()
        for window in range(3):
            contributions = honest_window(window)
            wa = a.weigh_window(window, contributions)
            wb = b.weigh_window(window, list(reversed(contributions)))
            assert wa == wb  # order of arrival must not matter

    def test_render_mentions_quarantine(self):
        scorer = PeerScorer()
        for window in range(5):
            scorer.weigh_window(window, honest_window(window)[:3] + [
                Contribution("peer-bad", decode_error="corrupt-payload: x")
            ])
        assert "QUARANTINED" in scorer.render()


# ----------------------------------------------------------------------
# Cluster harness
# ----------------------------------------------------------------------
def make_task(seed=0, n=320, features=6, classes=3):
    rng = np.random.default_rng(seed)
    w = rng.normal(size=(features, classes))
    x = rng.normal(size=(n, features))
    y = (x @ w).argmax(axis=1)
    split = int(n * 0.8)
    return (ArrayDataset(x[:split], y[:split]),
            ArrayDataset(x[split:], y[split:]))


def mlp_factory(features=6, classes=3):
    def factory():
        return make_mlp(features, 16, classes,
                        rng=np.random.default_rng(1234))
    return factory


def make_cluster(plan=None, peers=5, config=None, store=None, seed=7):
    train, test = make_task()
    config = config or GossipConfig(local_steps=2, lr=0.1,
                                    compression_ratio=0.2)
    return GossipCluster(mlp_factory(), train, test, config, plan=plan,
                         peers=peers, store=store, seed=seed)


ADVERSARIAL_PLAN = FaultPlan(seed=7, peer_faults=(
    PeerFault("sign-flip", rank=3, start_window=0),
    PeerFault("corrupt-payload", rank=4, start_window=0),
))  # 2 adversaries of 5 peers = 40% >= the 30% acceptance floor


class TestClusterAdversarial:
    def test_every_adversary_quarantined_within_bound(self):
        cluster = make_cluster(plan=ADVERSARIAL_PLAN)
        report = cluster.run(8)
        bound = cluster.config.scorer.quarantine_windows_bound
        assert set(report.quarantined) == {"peer-003", "peer-004"}
        # Offences start at window 0, so quarantine must land within the
        # EMA bound plus the direction screen's one-window warm-up.
        for window in report.quarantined.values():
            assert window <= bound + 1

    def test_honest_peers_stay_bit_identical(self):
        cluster = make_cluster(plan=ADVERSARIAL_PLAN)
        cluster.run(6)
        honest = cluster.honest_peers()
        reference = honest[0].state_vector()
        for peer in honest[1:]:
            assert np.array_equal(reference, peer.state_vector())

    def test_converges_within_tolerance_of_honest_only_run(self):
        adversarial = make_cluster(plan=ADVERSARIAL_PLAN)
        honest_only = make_cluster(plan=FaultPlan(seed=7))
        r_adv = adversarial.run(8)
        r_hon = honest_only.run(8)
        # Same seeded task: the defended run must land in the same loss
        # basin as the run with no attackers at all.
        assert r_adv.window_losses[-1] == pytest.approx(
            r_hon.window_losses[-1], abs=0.1)
        assert r_adv.final_accuracy >= r_hon.final_accuracy - 0.1
        state_adv = adversarial.honest_peers()[0].state_vector()
        state_hon = honest_only.honest_peers()[0].state_vector()
        assert float(np.abs(state_adv - state_hon).max()) < 0.1

    def test_seeded_replay_is_bit_identical(self):
        first = make_cluster(plan=ADVERSARIAL_PLAN)
        second = make_cluster(plan=ADVERSARIAL_PLAN)
        r1 = first.run(6)
        r2 = second.run(6)
        assert r1.window_losses == r2.window_losses
        assert r1.quarantined == r2.quarantined
        assert np.array_equal(first.honest_peers()[0].state_vector(),
                              second.honest_peers()[0].state_vector())

    def test_free_rider_and_lagging_also_quarantined(self):
        plan = FaultPlan(seed=7, peer_faults=(
            PeerFault("free-rider", rank=3, start_window=0),
            PeerFault("lagging", rank=4, start_window=0, lag=5),
        ))
        cluster = make_cluster(plan=plan)
        report = cluster.run(10)
        assert set(report.quarantined) == {"peer-003", "peer-004"}
        assert report.offence_counts.get("free-rider", 0) > 0
        assert report.offence_counts.get("lagging", 0) > 0

    def test_filesystem_store_matches_memory_store(self, tmp_path):
        mem = make_cluster(plan=ADVERSARIAL_PLAN, store=InMemoryStore())
        fs = make_cluster(
            plan=ADVERSARIAL_PLAN,
            store=FilesystemStore(str(tmp_path / "store")),
        )
        r_mem = mem.run(4)
        r_fs = fs.run(4)
        assert r_mem.window_losses == r_fs.window_losses
        assert np.array_equal(mem.honest_peers()[0].state_vector(),
                              fs.honest_peers()[0].state_vector())

    def test_faults_outside_roster_rejected(self):
        plan = FaultPlan(seed=7, peer_faults=(
            PeerFault("sign-flip", rank=9, start_window=0),
        ))
        with pytest.raises(ValueError, match="outside the founding roster"):
            make_cluster(plan=plan, peers=5)


class TestClusterMembership:
    CHURN_PLAN = FaultPlan(
        seed=7,
        permanent=(PermanentFailure(rank=1, call_index=2),),
        recoveries=(Recovery(rank=1, call_index=5),),
        joins=(Join(call_index=4),),
    )

    def test_joiner_lands_bit_identical_via_store_replay(self):
        cluster = make_cluster(plan=self.CHURN_PLAN)
        report = cluster.run(8)
        assert any("peer-005 joined (complete store replay)" in line
                   for line in report.membership)
        reference = cluster.peers["peer-000"].state_vector()
        assert np.array_equal(reference,
                              cluster.peers["peer-005"].state_vector())

    def test_returning_peer_catches_up_bit_identical(self):
        cluster = make_cluster(plan=self.CHURN_PLAN)
        report = cluster.run(8)
        assert any("peer-001 departed" in line for line in report.membership)
        assert any("peer-001 returned" in line for line in report.membership)
        reference = cluster.peers["peer-000"].state_vector()
        assert np.array_equal(reference,
                              cluster.peers["peer-001"].state_vector())

    def test_departed_peer_stops_publishing(self):
        cluster = make_cluster(plan=FaultPlan(
            seed=7, permanent=(PermanentFailure(rank=1, call_index=2),),
        ))
        cluster.run(4)
        assert "peer-001" in cluster.store.peers(1)
        assert "peer-001" not in cluster.store.peers(2)
        assert "peer-001" not in cluster.store.peers(3)

    def test_gc_makes_late_join_partial_but_still_converging(self):
        config = GossipConfig(local_steps=2, lr=0.1, compression_ratio=0.2,
                              store_retention=2)
        plan = FaultPlan(seed=7, joins=(Join(call_index=6),))
        cluster = make_cluster(plan=plan, config=config)
        report = cluster.run(10)
        assert any("peer-005 joined (partial store replay)" in line
                   for line in report.membership)
        # The joiner is live and close to the veterans, not equal.
        veteran = cluster.peers["peer-000"].state_vector()
        joiner = cluster.peers["peer-005"].state_vector()
        assert not np.array_equal(veteran, joiner)
        assert float(np.abs(veteran - joiner).max()) < 1.0

    def test_retention_bounds_the_store(self):
        config = GossipConfig(local_steps=1, lr=0.1, compression_ratio=0.2,
                              store_retention=3)
        cluster = make_cluster(plan=FaultPlan(seed=7), config=config)
        cluster.run(9)
        assert cluster.store.windows() == [6, 7, 8]


class TestFlatLayoutAndDecode:
    def test_flatten_unflatten_round_trip(self):
        model = make_mlp(6, 16, 3, rng=np.random.default_rng(0))
        layout = FlatLayout.from_model(model)
        tensors = {name: param.data.copy()
                   for name, param in model.named_parameters()}
        flat = layout.flatten(tensors)
        assert flat.size == layout.total
        rebuilt = layout.unflatten(flat)
        for name in tensors:
            assert np.array_equal(tensors[name], rebuilt[name])

    def test_decode_classifies_geometry_lie_as_metadata(self):
        blob = pack_payload(
            {"indices": np.arange(3, dtype=np.int64),
             "values": np.ones(3)},
            {"peer": "p", "window": 0, "num_elements": 999},
        )
        contribution = decode_update("p", blob, 64)
        assert contribution.update is None
        assert contribution.decode_error.startswith("metadata")

    def test_decode_classifies_corruption_as_corrupt_payload(self):
        blob = pack_payload(
            {"indices": np.arange(3, dtype=np.int64),
             "values": np.ones(3)},
            {"peer": "p", "window": 0, "num_elements": 64},
        )
        raw = bytearray(blob)
        raw[len(raw) // 2] ^= 0x10
        contribution = decode_update("p", bytes(raw), 64)
        assert contribution.update is None
        assert contribution.decode_error.startswith("corrupt-payload")

    def test_decode_rejects_out_of_range_indices(self):
        blob = pack_payload(
            {"indices": np.array([0, 70], dtype=np.int64),
             "values": np.ones(2)},
            {"peer": "p", "window": 0, "num_elements": 64},
        )
        contribution = decode_update("p", blob, 64)
        assert contribution.decode_error.startswith("metadata")

    def test_decode_densifies_sparse_update(self):
        blob = pack_payload(
            {"indices": np.array([1, 5], dtype=np.int64),
             "values": np.array([2.0, -3.0])},
            {"peer": "p", "window": 2, "num_elements": 8},
        )
        contribution = decode_update("p", blob, 8)
        expected = np.zeros(8)
        expected[1], expected[5] = 2.0, -3.0
        assert np.array_equal(contribution.update, expected)
        assert contribution.stamped_window == 2


# ----------------------------------------------------------------------
# Window economy (sim)
# ----------------------------------------------------------------------
class TestWindowEconomy:
    SPEC = GossipWindowSpec(peers=8, update_bytes=512 * 1024,
                            step_time_s=0.05, churn_per_step=0.01)

    def test_survival_decays_with_window_length(self):
        assert (window_survival_probability(self.SPEC, 1)
                > window_survival_probability(self.SPEC, 10))

    def test_higher_churn_prefers_shorter_windows(self):
        link = SIM_LINKS["1GbE"]
        calm = GossipWindowSpec(peers=8, update_bytes=512 * 1024,
                                step_time_s=0.05, churn_per_step=0.0005)
        stormy = GossipWindowSpec(peers=8, update_bytes=512 * 1024,
                                  step_time_s=0.05, churn_per_step=0.05)
        assert (recommend_window_steps(stormy, link)
                <= recommend_window_steps(calm, link))

    def test_slower_link_prefers_longer_windows(self):
        fast = SIM_LINKS["100GbIB"]
        slow = SIM_LINKS["1GbE"]
        assert (recommend_window_steps(self.SPEC, slow)
                >= recommend_window_steps(self.SPEC, fast))

    def test_utility_rate_positive_and_finite(self):
        link = SIM_LINKS["10GbE"]
        for steps in (1, 4, 16):
            rate = window_utility_rate(self.SPEC, link, steps)
            assert rate > 0.0
            assert np.isfinite(rate)

    def test_validation(self):
        with pytest.raises(ValueError, match="peers"):
            GossipWindowSpec(peers=1, update_bytes=1, step_time_s=0.1)
        with pytest.raises(ValueError, match="churn"):
            GossipWindowSpec(peers=2, update_bytes=1, step_time_s=0.1,
                             churn_per_step=1.0)
        with pytest.raises(ValueError, match="local_steps"):
            window_utility_rate(self.SPEC, SIM_LINKS["10GbE"], 0)


# ----------------------------------------------------------------------
# CLI smoke
# ----------------------------------------------------------------------
class TestCli:
    def test_gossip_subcommand_runs(self, capsys):
        from repro.cli import main

        code = main([
            "gossip", "--peers", "4", "--windows", "4", "--samples", "200",
            "--local-steps", "1", "--adversaries", "1", "--hidden", "8",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "quarantined" in out
        assert "peer trust" in out

    def test_gossip_rejects_adversarial_majority(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="honest-majority"):
            main(["gossip", "--peers", "4", "--adversaries", "2"])
