"""Discrete-event engine: FIFO, dependencies, contention math."""

import pytest

from repro.sim.engine import GPU_MAIN, GPU_SIDE, NIC, Engine, Task


def run(tasks, rate=0.5):
    return Engine(contention_rate=rate).run(tasks)


class TestBasics:
    def test_sequential_fifo(self):
        rec = run([
            Task("a", GPU_MAIN, 1.0),
            Task("b", GPU_MAIN, 2.0),
        ])
        assert rec["a"].end == pytest.approx(1.0)
        assert rec["b"].start == pytest.approx(1.0)
        assert rec["b"].end == pytest.approx(3.0)

    def test_independent_streams_parallel(self):
        rec = run([
            Task("compute", GPU_MAIN, 2.0),
            Task("comm", NIC, 3.0),
        ])
        assert rec["compute"].end == pytest.approx(2.0)
        assert rec["comm"].end == pytest.approx(3.0)

    def test_dependency_delays_start(self):
        rec = run([
            Task("a", GPU_MAIN, 1.0),
            Task("c", NIC, 1.0, deps=("a",)),
        ])
        assert rec["c"].start == pytest.approx(1.0)
        assert rec["c"].end == pytest.approx(2.0)

    def test_fifo_head_of_line_blocking(self):
        """A blocked head prevents later tasks in the same stream."""
        rec = run([
            Task("x", NIC, 5.0),
            Task("blocked", GPU_MAIN, 1.0, deps=("x",)),
            Task("behind", GPU_MAIN, 1.0),
        ])
        assert rec["blocked"].start == pytest.approx(5.0)
        assert rec["behind"].start == pytest.approx(6.0)

    def test_zero_work_tasks(self):
        rec = run([
            Task("a", GPU_MAIN, 0.0),
            Task("b", GPU_MAIN, 1.0, deps=("a",)),
        ])
        assert rec["a"].end == 0.0
        assert rec["b"].end == pytest.approx(1.0)


class TestContention:
    def test_both_gpu_streams_slow_down(self):
        """With rate 0.5, two concurrent 1s GPU tasks take 2s each."""
        rec = run([
            Task("main", GPU_MAIN, 1.0),
            Task("side", GPU_SIDE, 1.0),
        ], rate=0.5)
        assert rec["main"].end == pytest.approx(2.0)
        assert rec["side"].end == pytest.approx(2.0)

    def test_contention_ends_when_one_finishes(self):
        """side(0.5s work) at rate 0.5 finishes at 1.0; main then speeds up:
        main does 0.5 work by t=1.0, remaining 1.5 at full rate -> 2.5."""
        rec = run([
            Task("main", GPU_MAIN, 2.0),
            Task("side", GPU_SIDE, 0.5),
        ], rate=0.5)
        assert rec["side"].end == pytest.approx(1.0)
        assert rec["main"].end == pytest.approx(2.5)

    def test_non_contending_task_runs_free(self):
        """A contends=False side task does not slow the main stream."""
        rec = run([
            Task("main", GPU_MAIN, 2.0),
            Task("qr", GPU_SIDE, 1.0, contends=False),
        ], rate=0.5)
        assert rec["main"].end == pytest.approx(2.0)
        assert rec["qr"].end == pytest.approx(1.0)

    def test_nic_never_contends(self):
        rec = run([
            Task("main", GPU_MAIN, 2.0),
            Task("comm", NIC, 2.0),
        ], rate=0.5)
        assert rec["main"].end == pytest.approx(2.0)
        assert rec["comm"].end == pytest.approx(2.0)

    def test_analytic_processor_sharing_formula(self):
        """For side work C < main work B: makespan = B + C(1-rho)/rho."""
        rho = 0.25
        B, C = 10.0, 2.0
        rec = run([
            Task("main", GPU_MAIN, B),
            Task("side", GPU_SIDE, C),
        ], rate=rho)
        assert rec["main"].end == pytest.approx(B + C * (1 - rho) / rho)

    def test_analytic_formula_side_longer_than_main(self):
        """For C > B the roles swap: side ends at C + B(1-rho)/rho."""
        rho = 0.5
        B, C = 2.0, 10.0
        rec = run([
            Task("main", GPU_MAIN, B),
            Task("side", GPU_SIDE, C),
        ], rate=rho)
        assert rec["main"].end == pytest.approx(B / rho)
        assert rec["side"].end == pytest.approx(C + B * (1 - rho) / rho)

    def test_three_way_no_extra_contention(self):
        """NIC activity never changes GPU contention rates."""
        rec = run([
            Task("main", GPU_MAIN, 1.0),
            Task("side", GPU_SIDE, 1.0),
            Task("wire", NIC, 5.0),
        ], rate=0.5)
        assert rec["main"].end == pytest.approx(2.0)
        assert rec["wire"].end == pytest.approx(5.0)


class TestValidation:
    def test_duplicate_ids(self):
        with pytest.raises(ValueError, match="duplicate"):
            run([Task("a", GPU_MAIN, 1.0), Task("a", NIC, 1.0)])

    def test_unknown_dependency(self):
        with pytest.raises(ValueError, match="unknown"):
            run([Task("a", GPU_MAIN, 1.0, deps=("ghost",))])

    def test_deadlock_detection(self):
        with pytest.raises(ValueError, match="deadlock"):
            run([
                Task("a", GPU_MAIN, 1.0, deps=("b",)),
                Task("b", NIC, 1.0, deps=("a",)),
            ])

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            Task("a", GPU_MAIN, -1.0)

    def test_invalid_rate(self):
        with pytest.raises(ValueError, match="contention_rate"):
            Engine(contention_rate=0.0)
