"""Iteration-time variance simulation."""

import pytest

from repro.models import get_model_spec
from repro.sim.variance import (
    IterationDistribution,
    simulate_iteration_distribution,
)
from repro.sim.strategies import ClusterSpec, simulate_iteration


@pytest.fixture(scope="module")
def resnet18():
    return get_model_spec("ResNet-18")


class TestVariance:
    def test_mean_close_to_deterministic(self, resnet18):
        dist = simulate_iteration_distribution(
            "ssgd", resnet18, cluster=ClusterSpec(8), batch_size=16,
            iterations=12, seed=1,
        )
        base = simulate_iteration(
            "ssgd", resnet18, cluster=ClusterSpec(8), batch_size=16
        ).total
        assert dist.mean == pytest.approx(base, rel=0.05)

    def test_std_small_relative_to_mean(self, resnet18):
        """Per-task 2% jitter averages out over hundreds of tasks — the
        paper's <=1% iteration-level std."""
        dist = simulate_iteration_distribution(
            "acpsgd", resnet18, cluster=ClusterSpec(8), batch_size=16,
            rank=4, iterations=12, seed=2,
        )
        assert 0 < dist.std < 0.05 * dist.mean

    def test_zero_jitter_acp_still_varies_by_parity(self, resnet18):
        """With sigma=0, ACP-SGD's P/Q parity alternation is the only
        variance source — std > 0 but tiny; S-SGD is exactly constant."""
        acp = simulate_iteration_distribution(
            "acpsgd", resnet18, cluster=ClusterSpec(8), batch_size=16,
            rank=4, iterations=6, jitter_sigma=0.0,
        )
        assert acp.std >= 0.0
        ssgd = simulate_iteration_distribution(
            "ssgd", resnet18, cluster=ClusterSpec(8), batch_size=16,
            iterations=6, jitter_sigma=0.0,
        )
        assert ssgd.std == pytest.approx(0.0, abs=1e-12)

    def test_deterministic_given_seed(self, resnet18):
        a = simulate_iteration_distribution(
            "ssgd", resnet18, batch_size=16, iterations=5, seed=7)
        b = simulate_iteration_distribution(
            "ssgd", resnet18, batch_size=16, iterations=5, seed=7)
        assert a.samples == b.samples

    def test_more_jitter_more_std(self, resnet18):
        small = simulate_iteration_distribution(
            "ssgd", resnet18, batch_size=16, iterations=10,
            jitter_sigma=0.01, seed=3)
        large = simulate_iteration_distribution(
            "ssgd", resnet18, batch_size=16, iterations=10,
            jitter_sigma=0.10, seed=3)
        assert large.std > 2 * small.std

    def test_render_and_validation(self, resnet18):
        dist = IterationDistribution((0.1, 0.11, 0.09))
        assert "+/-" in dist.render("x")
        with pytest.raises(ValueError, match="iterations"):
            simulate_iteration_distribution("ssgd", resnet18, iterations=1)
        with pytest.raises(ValueError, match="jitter"):
            simulate_iteration_distribution("ssgd", resnet18,
                                            jitter_sigma=-0.1)
