"""Smoke grid: every method x every paper model simulates sanely."""

import pytest

from repro.models import get_model_spec
from repro.models.registry import PAPER_RANKS
from repro.sim.strategies import ALL_METHODS as METHODS
from repro.sim.strategies import ClusterSpec, simulate_iteration

MODELS = ("ResNet-50", "ResNet-152", "BERT-Base", "BERT-Large",
          "ResNet-18", "VGG-16")


@pytest.fixture(scope="module")
def grid():
    """Simulate the full grid once (fast: <5s total)."""
    results = {}
    for model_name in MODELS:
        spec = get_model_spec(model_name)
        for method in METHODS:
            results[(model_name, method)] = simulate_iteration(
                method, spec, cluster=ClusterSpec(16),
                rank=PAPER_RANKS[model_name],
            )
    return results


class TestGrid:
    @pytest.mark.parametrize("model_name", MODELS)
    @pytest.mark.parametrize("method", METHODS)
    def test_breakdown_sane(self, grid, model_name, method):
        bd = grid[(model_name, method)]
        assert bd.total > 0
        assert bd.ffbp > 0
        assert bd.compression >= 0
        assert bd.comm_nonoverlap >= 0
        assert bd.ffbp + bd.compression + bd.comm_nonoverlap <= bd.total + 1e-9
        # Nothing takes absurdly long (catching unit errors): < 60s/iter.
        assert bd.total < 60.0

    @pytest.mark.parametrize("model_name", MODELS)
    def test_ffbp_consistent_across_methods(self, grid, model_name):
        """All methods share the same model compute; their FF&BP components
        may differ only by overlap accounting and contention (<= ~2.5x)."""
        values = [grid[(model_name, m)].ffbp for m in METHODS]
        assert max(values) < 2.5 * min(values)

    @pytest.mark.parametrize("model_name", MODELS)
    def test_ssgd_has_no_compression_cost(self, grid, model_name):
        assert grid[(model_name, "ssgd")].compression == 0.0

    def test_vgg16_is_a_compression_showcase(self, grid):
        """VGG-16's 138M params (two-thirds in one FC matrix) make low-rank
        compression spectacular — ACP-SGD should crush S-SGD."""
        assert grid[("VGG-16", "acpsgd")].total < 0.5 * grid[("VGG-16", "ssgd")].total
