"""Method task-graph strategies: structure and qualitative behaviour."""

import pytest

from repro.models import get_model_spec
from repro.sim.calibration import SimConfig
from repro.sim.strategies import (
    ClusterSpec,
    METHODS,
    SystemConfig,
    simulate_iteration,
)


@pytest.fixture(scope="module")
def resnet18():
    return get_model_spec("ResNet-18")


class TestBasics:
    @pytest.mark.parametrize("method", METHODS)
    def test_all_methods_simulate(self, method, resnet18):
        bd = simulate_iteration(method, resnet18, cluster=ClusterSpec(8),
                                batch_size=32, rank=4)
        assert bd.total > 0
        assert bd.ffbp > 0
        # Stacked components never exceed the makespan.
        assert bd.ffbp + bd.compression + bd.comm_nonoverlap <= bd.total + 1e-9

    def test_unknown_method_rejected(self, resnet18):
        with pytest.raises(ValueError, match="unknown method"):
            simulate_iteration("sgd2", resnet18)

    def test_invalid_batch(self, resnet18):
        with pytest.raises(ValueError, match="batch_size"):
            simulate_iteration("ssgd", resnet18, batch_size=0)

    def test_single_worker_has_no_comm(self, resnet18):
        bd = simulate_iteration("ssgd", resnet18, cluster=ClusterSpec(1),
                                batch_size=32)
        assert bd.comm_nonoverlap == pytest.approx(0.0, abs=1e-3)

    def test_compute_scales_with_batch(self, resnet18):
        small = simulate_iteration("acpsgd", resnet18, cluster=ClusterSpec(1),
                                   batch_size=16, rank=4)
        large = simulate_iteration("acpsgd", resnet18, cluster=ClusterSpec(1),
                                   batch_size=64, rank=4)
        assert large.ffbp > 3 * small.ffbp


class TestSystemOptimizations:
    def test_wfbp_and_tf_monotone_for_ssgd(self, resnet18):
        """naive >= wfbp >= wfbp+tf for S-SGD (Fig. 9's left bars).

        Uses a small batch so the config is communication-bound, the regime
        the paper's Fig. 9 models are in. (In compute-bound regimes
        fine-grained WFBP can hide everything and TF's bucket delay shows —
        a real effect, not asserted here.)
        """
        naive = simulate_iteration("ssgd", resnet18, batch_size=16,
                                   system=SystemConfig(False, False))
        wfbp = simulate_iteration("ssgd", resnet18, batch_size=16,
                                  system=SystemConfig(True, False))
        full = simulate_iteration("ssgd", resnet18, batch_size=16,
                                  system=SystemConfig(True, True))
        assert naive.total >= wfbp.total >= full.total

    def test_acpsgd_benefits_from_wfbp_and_tf(self, resnet18):
        naive = simulate_iteration("acpsgd", resnet18,
                                   system=SystemConfig(False, False), rank=4)
        full = simulate_iteration("acpsgd", resnet18,
                                  system=SystemConfig(True, True), rank=4)
        assert full.total < naive.total

    def test_buffer_size_extremes(self, resnet18):
        """0-buffer (no TF) and huge-buffer (no WFBP) both lose to 25MB for
        communication-bound settings."""
        mb = 1024 * 1024
        times = {}
        for buf in (1, 25 * mb, 10_000 * mb):
            times[buf] = simulate_iteration(
                "ssgd", resnet18, batch_size=16,
                system=SystemConfig(True, True, buffer_bytes=buf),
            ).total
        assert times[25 * mb] <= times[1]
        assert times[25 * mb] <= times[10_000 * mb]


class TestMethodStructure:
    def test_acpsgd_parity_average_is_deterministic(self, resnet18):
        a = simulate_iteration("acpsgd", resnet18, rank=4)
        b = simulate_iteration("acpsgd", resnet18, rank=4)
        assert a.total == b.total

    def test_rank_increases_lowrank_cost(self, resnet18):
        low = simulate_iteration("acpsgd", resnet18, rank=2)
        high = simulate_iteration("acpsgd", resnet18, rank=16)
        assert high.total > low.total

    def test_powersgd_star_contention_visible_on_one_gpu(self):
        """The §III-C anchor: hook overlap is SLOWER on one GPU (no comm to
        hide, pure interference)."""
        spec = get_model_spec("ResNet-50")
        cluster = ClusterSpec(1)
        no_overlap = simulate_iteration(
            "powersgd_star", spec, cluster=cluster,
            system=SystemConfig(False, False), rank=4,
        )
        overlap = simulate_iteration(
            "powersgd_star", spec, cluster=cluster,
            system=SystemConfig(True, False), rank=4,
        )
        slowdown = overlap.total / no_overlap.total
        assert 1.02 < slowdown < 1.6  # paper: ~1.13

    def test_more_workers_cost_more_for_allgather_methods(self, resnet18):
        t8 = simulate_iteration("signsgd", resnet18, cluster=ClusterSpec(8))
        t32 = simulate_iteration("signsgd", resnet18, cluster=ClusterSpec(32))
        assert t32.total > t8.total

    def test_custom_sim_config(self, resnet18):
        """A slower GPU spec inflates compute time."""
        from repro.sim.calibration import GPUSpec, RTX2080TI

        slow_gpu = GPUSpec(
            "slow", RTX2080TI.peak_flops / 4, RTX2080TI.efficiency,
            RTX2080TI.kernel_launch, RTX2080TI.memory_bandwidth,
        )
        fast = simulate_iteration("ssgd", resnet18, sim=SimConfig())
        slow = simulate_iteration("ssgd", resnet18, sim=SimConfig(gpu=slow_gpu))
        assert slow.ffbp > 2 * fast.ffbp
