"""GPU-side cost helpers."""

import pytest

from repro.models.spec import LayerSpec, TensorSpec
from repro.sim import gpu as G
from repro.sim.calibration import SimConfig


@pytest.fixture
def sim():
    return SimConfig()


class TestLayerTimes:
    def test_forward_scales_with_batch(self, sim):
        layer = LayerSpec("l", "gemm", (), forward_flops=1e9)
        t1 = G.layer_forward_time(layer, 1, sim)
        t4 = G.layer_forward_time(layer, 4, sim)
        # Launch overhead is fixed; the FLOP part scales 4x.
        assert 3.0 < (t4 - sim.gpu.kernel_launch) / (t1 - sim.gpu.kernel_launch) < 4.01

    def test_backward_uses_multiple(self, sim):
        layer = LayerSpec("l", "gemm", (), forward_flops=1e9,
                          backward_flops_multiple=2.0)
        assert G.layer_backward_time(layer, 8, sim) > 1.9 * (
            G.layer_forward_time(layer, 8, sim) - sim.gpu.kernel_launch
        )

    def test_zero_flops_layer_is_free(self, sim):
        layer = LayerSpec("l", "elementwise", (), forward_flops=0.0)
        assert G.layer_forward_time(layer, 8, sim) == 0.0

    def test_kind_changes_rate(self, sim):
        conv = LayerSpec("c", "conv", (), forward_flops=1e10)
        norm = LayerSpec("n", "norm", (), forward_flops=1e10)
        assert G.layer_forward_time(conv, 1, sim) < G.layer_forward_time(norm, 1, sim)


class TestCompressionCosts:
    def test_orthogonalize_launch_dominates_small_ranks(self, sim):
        t = G.orthogonalize_time(rows=1024, rank=4, sim=sim)
        assert t == pytest.approx(sim.qr_launch, rel=0.25)

    def test_projection_scales_with_rank(self, sim):
        t4 = G.lowrank_project_time(512, 512, 4, sim)
        t64 = G.lowrank_project_time(512, 512, 64, sim)
        assert t64 > 8 * (t4 - sim.gpu.kernel_launch)

    def test_topk_costlier_than_sign(self, sim):
        """The paper's Fig. 3: Top-k compression ~4x Sign-SGD's."""
        nbytes = 440e6  # BERT-Base
        ratio = G.topk_compress_time(nbytes, sim) / G.sign_compress_time(nbytes, sim)
        assert 3.0 < ratio < 5.5

    def test_decompress_scales_with_world(self, sim):
        """Gathered-bits term grows with p; the fixed dense-write term
        (total_bytes) bounds the ratio: (32/32+1)/(4/32+1) ~ 1.78."""
        small = G.sign_decompress_time(1e8, 4, sim)
        large = G.sign_decompress_time(1e8, 32, sim)
        assert 1.5 * small < large < 2.5 * small

    def test_error_feedback_time_positive(self, sim):
        assert G.error_feedback_time(512, 512, sim) > 0

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            sim.kind_time("gemm", -1)
        with pytest.raises(ValueError):
            sim.memory_pass_time(-5)
