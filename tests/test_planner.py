"""Deployment planner."""

import pytest

from repro.planner import Plan, plan


class TestPlanner:
    @pytest.fixture(scope="class")
    def bert_plan(self):
        return plan("BERT-Large", gpus=32, link="10GbE", tune_buffer=False)

    def test_recommends_acpsgd_for_bert_on_ethernet(self, bert_plan):
        """The paper's headline configuration: ACP-SGD wins."""
        assert bert_plan.recommended_method == "acpsgd"
        assert bert_plan.speedup_over_ssgd > 5.0

    def test_all_candidates_assessed(self, bert_plan):
        methods = {a.method for a in bert_plan.assessments}
        assert {"ssgd", "signsgd", "topk", "powersgd",
                "powersgd_star", "acpsgd"} == methods

    def test_signsgd_flagged_oom_on_bert_large(self, bert_plan):
        sign = next(a for a in bert_plan.assessments if a.method == "signsgd")
        assert not sign.fits_memory

    def test_render(self, bert_plan):
        text = bert_plan.render()
        assert "recommended" in text
        assert "BERT-Large" in text and "32 GPUs" in text

    def test_never_recommends_low_quality_method(self):
        """Even if Top-k simulated faster, the quality tier excludes it."""
        result = plan("BERT-Large", gpus=32, link="1GbE", tune_buffer=False)
        assert result.recommended_method in (
            "ssgd", "powersgd", "powersgd_star", "acpsgd"
        )

    def test_fast_network_small_model_keeps_ssgd_competitive(self):
        """On 100Gb IB with ResNet-50 the planner may keep S-SGD; whatever
        it picks must not be slower than S-SGD."""
        result = plan("ResNet-50", gpus=32, link="100GbIB", rank=4,
                      tune_buffer=False)
        ssgd = next(a for a in result.assessments if a.method == "ssgd")
        winner = next(a for a in result.assessments
                      if a.method == result.recommended_method)
        assert winner.iteration_ms <= ssgd.iteration_ms + 1e-9

    def test_buffer_tuning_improves_or_matches(self):
        untuned = plan("ResNet-152", gpus=16, rank=4, tune_buffer=False)
        tuned = plan("ResNet-152", gpus=16, rank=4, tune_buffer=True)
        assert tuned.expected_iteration_ms <= untuned.expected_iteration_ms + 1e-9
        assert tuned.tuned_buffer_mb > 0

    def test_unknown_link_rejected(self):
        with pytest.raises(ValueError, match="unknown link"):
            plan("ResNet-50", link="5GbE")

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            plan("AlexNet")
