"""Bit-exactness of the arena and parallel-worker training paths.

The acceptance property of the whole perf subsystem: turning on the
zero-copy arena, the in-place collective, or thread-parallel worker
backprop must not change a single bit of the training trajectory relative
to the legacy sequential implementation — for every aggregation method.
"""

import numpy as np
import pytest

from repro.comm.process_group import ProcessGroup
from repro.models.convnets import make_small_vgg
from repro.nn.dropout import Dropout
from repro.nn.norm import BatchNorm2d
from repro.optim.aggregators import make_aggregator
from repro.optim.sgd import SGD
from repro.perf.replicas import ReplicaSet, iter_modules
from repro.train.datasets import make_cifar_like
from repro.train.trainer import DataParallelTrainer

METHODS = ["ssgd", "signsgd", "topk", "powersgd", "acpsgd"]


def run_training(
    method,
    use_arena,
    parallel_workers,
    steps=3,
    world_size=2,
    seed=7,
    accumulation_steps=1,
):
    """Train a few steps; return (losses, weights, batchnorm buffers)."""
    train_data, test_data = make_cifar_like(
        num_train=64, num_test=8, seed=seed
    )
    model = make_small_vgg(base_width=2, rng=np.random.default_rng(seed))
    trainer = DataParallelTrainer(
        model,
        SGD(model, lr=0.05, momentum=0.9),
        make_aggregator(method, ProcessGroup(world_size)),
        train_data,
        test_data,
        batch_size_per_worker=4,
        seed=seed,
        accumulation_steps=accumulation_steps,
        use_arena=use_arena,
        parallel_workers=parallel_workers,
    )
    losses = [trainer.train_step() for _ in range(steps)]
    weights = np.concatenate(
        [param.data.ravel() for _, param in model.named_parameters()]
    )
    buffers = np.concatenate(
        [
            np.concatenate([m.running_mean, m.running_var])
            for m in iter_modules(model)
            if isinstance(m, BatchNorm2d)
        ]
    )
    return losses, weights, buffers


def assert_identical(result_a, result_b):
    losses_a, weights_a, buffers_a = result_a
    losses_b, weights_b, buffers_b = result_b
    assert losses_a == losses_b
    np.testing.assert_array_equal(weights_a, weights_b)
    np.testing.assert_array_equal(buffers_a, buffers_b)


class TestArenaBitExactness:
    @pytest.mark.parametrize("method", METHODS)
    def test_arena_matches_legacy(self, method):
        assert_identical(
            run_training(method, use_arena=False, parallel_workers=False),
            run_training(method, use_arena=True, parallel_workers=False),
        )

    def test_arena_matches_legacy_with_accumulation(self):
        assert_identical(
            run_training(
                "ssgd", use_arena=False, parallel_workers=False,
                accumulation_steps=3, steps=2,
            ),
            run_training(
                "ssgd", use_arena=True, parallel_workers=False,
                accumulation_steps=3, steps=2,
            ),
        )


class TestParallelBitExactness:
    @pytest.mark.parametrize("method", METHODS)
    def test_parallel_matches_sequential(self, method):
        assert_identical(
            run_training(method, use_arena=True, parallel_workers=False),
            run_training(method, use_arena=True, parallel_workers=True),
        )

    def test_parallel_matches_legacy_world_four(self):
        """The full stack (arena + in-place + threads) vs the original."""
        assert_identical(
            run_training(
                "ssgd", use_arena=False, parallel_workers=False, world_size=4
            ),
            run_training(
                "ssgd", use_arena=True, parallel_workers=True, world_size=4
            ),
        )


class TestReplicaSet:
    def test_replicas_share_weight_storage(self):
        model = make_small_vgg(base_width=2, rng=np.random.default_rng(0))
        replicas = ReplicaSet(model, count=3)
        master = dict(model.named_parameters())
        for replica in replicas.replicas[1:]:
            for name, param in replica.named_parameters():
                assert param.data is master[name].data

    def test_begin_round_rebinds_after_optimizer_step(self):
        model = make_small_vgg(base_width=2, rng=np.random.default_rng(0))
        replicas = ReplicaSet(model, count=2)
        # SGD *reassigns* param.data, leaving clones pointing at stale arrays.
        for _, param in model.named_parameters():
            param.data = param.data * 0.5
        replicas.begin_round()
        master = dict(model.named_parameters())
        for name, param in replicas.replicas[1].named_parameters():
            assert param.data is master[name].data
        replicas.end_round(2)

    def test_dropout_rejected(self):
        class Dropped(type(make_small_vgg())):
            pass

        model = make_small_vgg(base_width=2)
        model.drop = Dropout(0.5)
        with pytest.raises(ValueError, match="Dropout"):
            ReplicaSet(model, count=2)

    def test_batchnorm_replay_matches_direct_updates(self):
        rng = np.random.default_rng(5)
        direct = BatchNorm2d(3)
        recorded = BatchNorm2d(3)
        batches = [rng.standard_normal((2, 3, 4, 4)) for _ in range(3)]
        for batch in batches:
            direct(batch)
        recorded.stat_recorder = []
        for batch in batches:
            recorded(batch)
        # Recording must leave the buffers untouched...
        np.testing.assert_array_equal(recorded.running_mean, np.zeros(3))
        replay_target = BatchNorm2d(3)
        for mean, var in recorded.stat_recorder:
            replay_target.apply_batch_stats(mean, var)
        # ...and replaying reproduces the direct update sequence bit-exactly.
        np.testing.assert_array_equal(
            replay_target.running_mean, direct.running_mean
        )
        np.testing.assert_array_equal(
            replay_target.running_var, direct.running_var
        )
