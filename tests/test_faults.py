"""Fault plans, the injector, payload validation, and collective dtype checks."""

import numpy as np
import pytest

from repro.comm import collectives
from repro.faults.plan import (
    FaultInjector,
    FaultPlan,
    PermanentFailure,
    TransientFailure,
    corrupt_payload,
)
from repro.utils.validation import assert_finite, is_finite, payload_checksum

pytestmark = pytest.mark.faults


class TestFaultPlanValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError, match="drop_rate"):
            FaultPlan(drop_rate=1.5)
        with pytest.raises(ValueError, match="corrupt_rate"):
            FaultPlan(corrupt_rate=-0.1)

    def test_corrupt_mode_checked(self):
        with pytest.raises(ValueError, match="corrupt_mode"):
            FaultPlan(corrupt_mode="scramble")

    def test_scheduled_failures_validated(self):
        with pytest.raises(ValueError, match="attempts"):
            TransientFailure(rank=0, call_index=0, attempts=0)
        with pytest.raises(ValueError, match="rank"):
            PermanentFailure(rank=-1, call_index=0)

    def test_rank_down_semantics(self):
        plan = FaultPlan(
            transient=(TransientFailure(rank=1, call_index=3, attempts=2),),
            permanent=(PermanentFailure(rank=2, call_index=5),),
        )
        # Transient: down only for the scheduled call's first two attempts.
        assert plan.rank_down(3, 0, 1) and plan.rank_down(3, 1, 1)
        assert not plan.rank_down(3, 2, 1)
        assert not plan.rank_down(4, 0, 1)
        # Permanent: down for every call at or after the scheduled one.
        assert not plan.rank_down(4, 0, 2)
        assert plan.rank_down(5, 0, 2) and plan.rank_down(9, 3, 2)
        assert plan.permanently_dead(4) == set()
        assert plan.permanently_dead(5) == {2}


class TestFaultInjectorDeterminism:
    def test_same_plan_same_draws(self):
        plan = FaultPlan(seed=3, drop_rate=0.3, corrupt_rate=0.2,
                         straggler_rate=0.2)
        first = FaultInjector(plan)
        second = FaultInjector(plan)
        for call in range(20):
            a = first.sample(call, 0, [0, 1, 2])
            b = second.sample(call, 0, [0, 1, 2])
            assert a.dropped == b.dropped
            assert a.corrupted == b.corrupted
            assert a.straggler_delay_s == b.straggler_delay_s
        assert first.events == second.events

    def test_retry_resamples_random_faults(self):
        # Attempt is part of the RNG key: across many calls, at least one
        # drop on attempt 0 must clear on attempt 1 (a retransmit usually
        # succeeds, like a real network).
        plan = FaultPlan(seed=0, drop_rate=0.4)
        injector = FaultInjector(plan)
        recovered = 0
        for call in range(50):
            if injector.sample(call, 0, [0, 1]).dropped - \
                    injector.sample(call, 1, [0, 1]).dropped:
                recovered += 1
        assert recovered > 0

    def test_events_log_and_filter(self):
        plan = FaultPlan(
            seed=1, transient=(TransientFailure(rank=0, call_index=0),)
        )
        injector = FaultInjector(plan)
        faults = injector.sample(0, 0, [0, 1])
        assert faults.down == {0}
        assert not faults.clean and faults.faulty_ranks == {0}
        assert [e.rank for e in injector.events_of_kind("down")] == [0]
        assert injector.events_of_kind("drop") == []

    def test_apply_marks_drops_and_corruption(self):
        plan = FaultPlan(seed=2, corrupt_mode="nan")
        injector = FaultInjector(plan)
        buffers = [np.ones(8), np.full(8, 2.0)]
        faults = injector.sample(0, 0, [0, 1])
        faults.dropped.add(0)
        faults.corrupted.add(1)
        received = injector.apply(buffers, [0, 1], faults)
        assert received[0] is None
        assert np.isnan(received[1]).sum() == 1
        assert not np.isnan(buffers[1]).any()  # original untouched


class TestCorruptPayload:
    def test_nan_mode_poisons_one_element(self):
        rng = np.random.default_rng(0)
        original = np.arange(16, dtype=np.float64)
        corrupted = corrupt_payload(original, rng, "nan")
        assert np.isnan(corrupted).sum() == 1
        assert np.array_equal(original, np.arange(16))

    def test_bitflip_changes_exactly_one_bit(self):
        rng = np.random.default_rng(4)
        original = np.linspace(-1, 1, 32)
        corrupted = corrupt_payload(original, rng, "bitflip")
        xored = np.frombuffer(original.tobytes(), dtype=np.uint8) ^ \
            np.frombuffer(corrupted.tobytes(), dtype=np.uint8)
        assert sum(bin(b).count("1") for b in xored) == 1
        # The CRC must catch it even when the flipped value stays finite.
        assert payload_checksum(corrupted) != payload_checksum(original)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown corrupt mode"):
            corrupt_payload(np.ones(4), np.random.default_rng(0), "garble")


class TestValidationUtils:
    def test_assert_finite_passes_through(self):
        arr = np.ones(5)
        assert assert_finite(arr, "grad") is arr
        ints = np.arange(4)
        assert assert_finite(ints) is ints  # integers cannot carry NaN

    def test_assert_finite_names_offender_and_counts(self):
        bad = np.ones(10)
        bad[2] = np.nan
        bad[7] = np.inf
        with pytest.raises(ValueError, match=r"qsgd payload contains 2 non-finite"):
            assert_finite(bad, "qsgd payload")

    def test_is_finite(self):
        assert is_finite(np.zeros(3))
        assert is_finite(np.arange(3))
        assert not is_finite(np.array([1.0, np.nan]))
        assert not is_finite(np.array([np.inf]))

    def test_checksum_is_content_sensitive(self):
        arr = np.arange(64, dtype=np.float64)
        assert payload_checksum(arr) == payload_checksum(arr.copy())
        tweaked = arr.copy()
        tweaked[17] += 1e-12
        assert payload_checksum(tweaked) != payload_checksum(arr)


class TestCollectiveDtypeValidation:
    def test_all_gather_rejects_mixed_dtypes_naming_rank(self):
        buffers = [np.ones(4, dtype=np.float64),
                   np.ones(6, dtype=np.float32)]
        with pytest.raises(ValueError, match="rank 1 buffer dtype float32"):
            collectives.all_gather(buffers)

    def test_gather_rejects_mixed_dtypes_naming_rank(self):
        buffers = [np.ones(4, dtype=np.float32),
                   np.ones(4, dtype=np.float32),
                   np.ones(2, dtype=np.int64)]
        with pytest.raises(ValueError, match="rank 2 buffer dtype int64"):
            collectives.gather(buffers)

    def test_shapes_may_still_differ(self):
        # Top-k payload sizes legitimately differ across ranks.
        buffers = [np.ones(4), np.ones(6)]
        gathered, _ = collectives.all_gather(buffers)
        assert [p.size for p in gathered[0]] == [4, 6]
        root, _ = collectives.gather(buffers)
        assert [p.size for p in root] == [4, 6]

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError, match="at least one rank"):
            collectives.all_gather([])
