"""Module base class: parameter discovery, hooks, state vectors."""

import numpy as np
import pytest

from repro import nn
from repro.nn.parameter import Parameter


class TestParameterDiscovery:
    def test_named_parameters_are_stamped(self, rng):
        model = nn.Sequential(nn.Linear(3, 4, rng=rng), nn.ReLU(),
                              nn.Linear(4, 2, rng=rng))
        names = [name for name, _ in model.named_parameters()]
        assert names == [
            "layers.0.weight", "layers.0.bias",
            "layers.2.weight", "layers.2.bias",
        ]
        for name, param in model.named_parameters():
            assert param.name == name

    def test_num_parameters(self, rng):
        model = nn.Linear(10, 5, rng=rng)
        assert model.num_parameters() == 10 * 5 + 5

    def test_nested_modules_discovered(self, rng):
        class Wrapper(nn.Module):
            def __init__(self):
                super().__init__()
                self.inner = nn.Linear(2, 2, rng=rng)
                self.extras = [nn.Linear(2, 2, rng=rng)]

        names = [name for name, _ in Wrapper().named_parameters()]
        assert "inner.weight" in names
        assert "extras.0.weight" in names

    def test_zero_grad(self, rng):
        layer = nn.Linear(3, 2, rng=rng)
        layer(rng.normal(size=(1, 3)))
        layer.backward(np.ones((1, 2)))
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None


class TestTrainEvalPropagation:
    def test_mode_propagates_to_children(self, rng):
        model = nn.Sequential(nn.Dropout(0.5), nn.BatchNorm2d(2))
        model.eval()
        assert not model.layers[0].training
        assert not model.layers[1].training
        model.train()
        assert model.layers[0].training


class TestStateVector:
    def test_roundtrip(self, rng):
        model = nn.Sequential(nn.Linear(4, 3, rng=rng), nn.Linear(3, 2, rng=rng))
        state = model.state_vector()
        assert state.size == model.num_parameters()
        model2 = nn.Sequential(nn.Linear(4, 3, rng=np.random.default_rng(99)),
                               nn.Linear(3, 2, rng=np.random.default_rng(98)))
        model2.load_state_vector(state)
        np.testing.assert_array_equal(model2.state_vector(), state)

    def test_size_mismatch_rejected(self, rng):
        model = nn.Linear(2, 2, rng=rng)
        with pytest.raises(ValueError, match="state vector"):
            model.load_state_vector(np.zeros(3))


class TestGradientHooks:
    def test_hook_fires_on_accumulate(self):
        param = Parameter(np.zeros((2, 2)))
        seen = []
        param.register_hook(lambda p: seen.append(p.grad.copy()))
        param.accumulate_grad(np.ones((2, 2)))
        assert len(seen) == 1
        np.testing.assert_array_equal(seen[0], np.ones((2, 2)))

    def test_hooks_fire_in_backward_layer_order(self, rng):
        """WFBP readiness order: the LAST layer's gradient is ready FIRST."""
        model = nn.Sequential(nn.Linear(3, 3, rng=rng), nn.Linear(3, 3, rng=rng))
        order = []
        for name, param in model.named_parameters():
            param.register_hook(lambda p: order.append(p.name))
        model(rng.normal(size=(1, 3)))
        model.backward(np.ones((1, 3)))
        # Layer 1 (the output layer) fires before layer 0.
        assert order.index("layers.1.weight") < order.index("layers.0.weight")

    def test_grad_shape_validation(self):
        param = Parameter(np.zeros((2, 2)))
        with pytest.raises(ValueError, match="grad shape"):
            param.accumulate_grad(np.ones(3))

    def test_clear_hooks(self):
        param = Parameter(np.zeros(2))
        seen = []
        param.register_hook(lambda p: seen.append(1))
        param.clear_hooks()
        param.accumulate_grad(np.ones(2))
        assert seen == []

    def test_grad_accumulates_across_calls(self):
        param = Parameter(np.zeros(3))
        param.accumulate_grad(np.ones(3))
        param.accumulate_grad(np.ones(3))
        np.testing.assert_array_equal(param.grad, 2 * np.ones(3))
