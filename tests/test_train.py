"""Datasets, history, and the data-parallel trainer."""

import numpy as np
import pytest

from repro.comm.process_group import ProcessGroup
from repro.models.convnets import make_mlp
from repro.nn.loss import CrossEntropyLoss
from repro.optim.aggregators import make_aggregator
from repro.optim.sgd import SGD
from repro.train.datasets import SyntheticImageDataset, make_cifar_like
from repro.train.history import TrainingHistory
from repro.train.trainer import DataParallelTrainer


class TestDatasets:
    def test_shapes_and_determinism(self):
        train1, test1 = make_cifar_like(num_train=100, num_test=20, seed=5)
        train2, _ = make_cifar_like(num_train=100, num_test=20, seed=5)
        assert train1.images.shape == (100, 3, 16, 16)
        assert len(test1) == 20
        np.testing.assert_array_equal(train1.images, train2.images)

    def test_different_seeds_differ(self):
        a, _ = make_cifar_like(num_train=50, seed=1)
        b, _ = make_cifar_like(num_train=50, seed=2)
        assert not np.allclose(a.images, b.images)

    def test_shards_partition_dataset(self):
        train, _ = make_cifar_like(num_train=101, num_test=10)
        shards = [train.shard(r, 4) for r in range(4)]
        assert sum(len(s) for s in shards) == 101

    def test_shard_validation(self):
        train, _ = make_cifar_like(num_train=10, num_test=2)
        with pytest.raises(ValueError, match="rank"):
            train.shard(4, 4)

    def test_batch_sampling(self, rng):
        train, _ = make_cifar_like(num_train=50, num_test=10)
        images, labels = train.batch(rng, 8)
        assert images.shape == (8, 3, 16, 16)
        assert labels.shape == (8,)

    def test_classes_are_separable(self):
        """Mean template distance must far exceed noise — the dataset is
        learnable by design."""
        def ratio(jitter):
            train, _ = make_cifar_like(
                num_train=400, num_test=10, noise=0.3, jitter=jitter, seed=0
            )
            classes = [c for c in range(10) if (train.labels == c).any()]
            means = np.stack([
                train.images[train.labels == c].mean(axis=0) for c in classes
            ])
            centre = means.mean(axis=0)

            def norms(arr):
                return np.linalg.norm(arr.reshape(arr.shape[0], -1), axis=1)

            between = norms(means - centre).mean()
            within = np.mean([
                norms(train.images[train.labels == c] - means[i]).mean()
                for i, c in enumerate(classes)
            ])
            return between / within

        # Without spatial jitter the class templates dominate the noise;
        # jitter smears the raw class means but keeps structure.
        assert ratio(jitter=0) > 0.5
        assert ratio(jitter=2) > 0.15

    def test_dataset_validation(self):
        with pytest.raises(ValueError, match="NCHW"):
            SyntheticImageDataset(np.zeros((4, 3, 8)), np.zeros(4, dtype=int))
        with pytest.raises(ValueError, match="labels"):
            SyntheticImageDataset(np.zeros((4, 3, 8, 8)), np.zeros(5, dtype=int))


class TestHistory:
    def test_record_and_properties(self):
        hist = TrainingHistory("ssgd")
        hist.record(0, 2.0, 0.3, 0.1)
        hist.record(1, 1.0, 0.6, 0.1)
        assert hist.final_accuracy == 0.6
        assert hist.best_accuracy == 0.6
        assert "epoch   1" in hist.render()

    def test_empty_history_raises(self):
        with pytest.raises(ValueError, match="no epochs"):
            TrainingHistory("x").final_accuracy


class _FlatDataset:
    """Adapter: flat-vector Gaussian-mixture dataset for MLP trainer tests.

    Class centers come from a fixed seed so train and test share the same
    distribution; only the samples differ.
    """

    @staticmethod
    def build(num, dim, classes, seed):
        centers = np.random.default_rng(999).normal(size=(classes, dim)) * 3
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, classes, size=num)
        images = centers[labels] + rng.normal(size=(num, dim))
        # Store as NCHW with H=W=1 so SyntheticImageDataset accepts it.
        return SyntheticImageDataset(
            images.reshape(num, dim, 1, 1), labels
        )


class TestTrainer:
    def _make_trainer(self, method="ssgd", world=2, **agg_kwargs):
        rng = np.random.default_rng(0)
        dim, classes = 8, 4
        train = _FlatDataset.build(200, dim, classes, 1)
        test = _FlatDataset.build(80, dim, classes, 2)

        import repro.nn as nn

        model = nn.Sequential(nn.Flatten(), *make_mlp(dim, 16, classes, rng=rng).layers)
        group = ProcessGroup(world)
        aggregator = make_aggregator(method, group, **agg_kwargs)
        optimizer = SGD(model, lr=0.05, momentum=0.9)
        return DataParallelTrainer(
            model, optimizer, aggregator, train, test,
            batch_size_per_worker=16, seed=3,
        )

    def test_loss_decreases(self):
        trainer = self._make_trainer()
        first = np.mean([trainer.train_step() for _ in range(3)])
        for _ in range(25):
            last = trainer.train_step()
        assert last < first

    def test_accuracy_improves_over_chance(self):
        trainer = self._make_trainer()
        for _ in range(40):
            trainer.train_step()
        assert trainer.evaluate() > 0.5  # chance = 0.25

    def test_run_records_history(self):
        trainer = self._make_trainer()
        hist = trainer.run(epochs=2, steps_per_epoch=3)
        assert len(hist.epochs) == 2
        assert all(np.isfinite(hist.train_loss))

    def test_acpsgd_trains(self):
        trainer = self._make_trainer("acpsgd", rank=4)
        for _ in range(40):
            trainer.train_step()
        assert trainer.evaluate() > 0.5

    def test_validation(self):
        trainer = self._make_trainer()
        with pytest.raises(ValueError):
            trainer.run(epochs=0, steps_per_epoch=1)
        with pytest.raises(ValueError):
            DataParallelTrainer(
                trainer.model, trainer.optimizer, trainer.aggregator,
                _FlatDataset.build(10, 8, 4, 0), _FlatDataset.build(10, 8, 4, 1),
                batch_size_per_worker=0,
            )

    def test_gradient_accumulation_reduces_comm_rounds(self):
        """Accumulation runs more compute per collective round."""
        rng = np.random.default_rng(0)
        dim, classes = 8, 4
        train = _FlatDataset.build(200, dim, classes, 1)
        test = _FlatDataset.build(80, dim, classes, 2)

        import repro.nn as nn

        model = nn.Sequential(nn.Flatten(),
                              *make_mlp(dim, 16, classes, rng=rng).layers)
        group = ProcessGroup(2)
        trainer = DataParallelTrainer(
            model, SGD(model, lr=0.05, momentum=0.9),
            make_aggregator("ssgd", group), train, test,
            batch_size_per_worker=8, seed=3, accumulation_steps=4,
        )
        for _ in range(10):
            trainer.train_step()
        # 10 steps -> 10 collectives regardless of micro-batches.
        assert len(group.history) == 10
        assert trainer.evaluate() > 0.4

    def test_accumulated_gradients_are_microbatch_means(self):
        """The aggregated gradient is the mean over micro-batches (scale
        invariance vs accumulation_steps)."""
        rng = np.random.default_rng(0)
        train = _FlatDataset.build(64, 8, 4, 1)
        test = _FlatDataset.build(16, 8, 4, 2)

        import repro.nn as nn

        model = nn.Sequential(nn.Flatten(),
                              *make_mlp(8, 16, 4, rng=rng).layers)
        trainer = DataParallelTrainer(
            model, SGD(model, lr=0.05), make_aggregator("ssgd", ProcessGroup(1)),
            train, test, batch_size_per_worker=8, seed=3, accumulation_steps=3,
        )
        _, grads = trainer._worker_gradients(0)
        # Magnitude comparable to a single batch gradient, not 3x.
        trainer2 = DataParallelTrainer(
            model, SGD(model, lr=0.05), make_aggregator("ssgd", ProcessGroup(1)),
            train, test, batch_size_per_worker=8, seed=3, accumulation_steps=1,
        )
        _, grads1 = trainer2._worker_gradients(0)
        for name in grads:
            ratio = np.linalg.norm(grads[name]) / max(
                1e-12, np.linalg.norm(grads1[name])
            )
            assert ratio < 2.5

    def test_accumulation_validation(self):
        rng = np.random.default_rng(0)
        train = _FlatDataset.build(20, 8, 4, 1)

        import repro.nn as nn

        model = nn.Sequential(nn.Flatten(),
                              *make_mlp(8, 8, 4, rng=rng).layers)
        with pytest.raises(ValueError, match="accumulation_steps"):
            DataParallelTrainer(
                model, SGD(model, lr=0.05),
                make_aggregator("ssgd", ProcessGroup(1)), train, train,
                batch_size_per_worker=8, accumulation_steps=0,
            )

    def test_ssgd_equals_singleworker_mean_gradient(self):
        """One aggregated S-SGD step == SGD on the mean of worker gradients."""
        trainer = self._make_trainer(world=3)
        per_worker = []
        losses = []
        for rank in range(3):
            loss, grads = trainer._worker_gradients(rank)
            per_worker.append(grads)
            losses.append(loss)
        aggregated = trainer.aggregator.aggregate(per_worker)
        for name in aggregated:
            manual = np.mean([g[name] for g in per_worker], axis=0)
            np.testing.assert_allclose(aggregated[name], manual, rtol=1e-10)
