"""Seeded store-level fault injection and torn-write hygiene.

:class:`FaultyStore` wraps any :class:`UpdateStore` with seeded drops,
replication lag, torn (prefix-truncated) fetches, and outage windows.
Because every draw is keyed by ``(seed, window, peer, stream)`` rather
than call order, the injected chaos is bit-reproducible: replaying a
campaign replays the exact same faults. The tests here pin each fault
kind with rate-1.0 configs, the keyed-draw determinism, and the
end-to-end cluster replay; the :class:`FilesystemStore` tests cover the
torn-*write* side (a publisher crashing between ``mkstemp`` and
``os.replace`` leaves a stray ``.tmp`` that must never be served).
"""

import os

import numpy as np
import pytest

from repro.faults import FaultPlan
from repro.gossip import (
    FaultyStore,
    FilesystemStore,
    GossipCluster,
    GossipConfig,
    InMemoryStore,
    StoreFaultConfig,
    StoreUnavailableError,
)
from repro.models.convnets import make_mlp
from repro.train.datasets import ArrayDataset

pytestmark = [pytest.mark.faults, pytest.mark.gossip]


def make_task(seed=0, n=192, features=6, classes=3):
    rng = np.random.default_rng(seed)
    w = rng.normal(size=(features, classes))
    x = rng.normal(size=(n, features))
    y = (x @ w).argmax(axis=1)
    split = int(n * 0.8)
    return (ArrayDataset(x[:split], y[:split]),
            ArrayDataset(x[split:], y[split:]))


def faulty(inner=None, **kwargs):
    return FaultyStore(inner or InMemoryStore(), StoreFaultConfig(**kwargs))


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"drop_publish_rate": -0.1},
        {"drop_publish_rate": 1.5},
        {"torn_fetch_rate": 2.0},
        {"delay_windows": 0},
        {"drop_publish_rate": 0.7, "delay_publish_rate": 0.7},
        {"outage_windows": (-1,)},
    ])
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            StoreFaultConfig(**kwargs)

    def test_outage_windows_coerced_to_tuple(self):
        config = StoreFaultConfig(outage_windows=[3, 1])
        assert config.outage_windows == (3, 1)


class TestFaultKinds:
    def test_dropped_publish_never_lands(self):
        store = faulty(drop_publish_rate=1.0)
        store.publish(0, "alice", b"payload")
        assert store.fetch(0) == {}
        assert store.stats.dropped_publishes == 1
        assert store.stats.delayed_publishes == 0

    def test_delayed_publish_becomes_visible_one_window_late(self):
        store = faulty(delay_publish_rate=1.0, delay_windows=1)
        store.publish(0, "alice", b"payload")
        # Not yet replicated: a window-0 reader sees nothing.
        assert store.fetch(0) == {}
        assert store.stats.delayed_publishes == 1
        assert store.stats.delivered_late == 0
        # The first operation referencing window 1 advances the visibility
        # clock and flushes the buffered blob into the inner store.
        assert store.fetch(1) == {}
        assert store.fetch(0) == {"alice": b"payload"}
        assert store.stats.delivered_late == 1

    def test_torn_fetch_returns_strict_prefix(self):
        store = faulty(torn_fetch_rate=1.0)
        blob = bytes(range(64))
        store.publish(0, "alice", blob)
        fetched = store.fetch(0)["alice"]
        assert len(fetched) < len(blob)
        assert blob.startswith(fetched)
        assert store.stats.torn_fetches == 1
        # The inner store is untouched: tearing happens on the read path.
        assert store.inner.fetch(0)["alice"] == blob

    def test_outage_window_raises_typed_error(self):
        store = faulty(outage_windows=(2,))
        store.publish(0, "alice", b"payload")
        with pytest.raises(StoreUnavailableError) as excinfo:
            store.publish(2, "alice", b"payload")
        assert excinfo.value.op == "publish" and excinfo.value.window == 2
        with pytest.raises(StoreUnavailableError):
            store.fetch(2)
        assert store.stats.unavailable_ops == 2
        # Windows outside the outage stay serviceable.
        assert store.fetch(0) == {"alice": b"payload"}

    def test_keyed_draws_are_replay_stable(self):
        # Same (seed, window, peer) => same fate, regardless of call
        # order or how many times the op is repeated.
        first = faulty(seed=9, torn_fetch_rate=1.0)
        second = faulty(seed=9, torn_fetch_rate=1.0)
        blob = bytes(range(100))
        first.publish(3, "bob", blob)
        second.publish(3, "bob", blob)
        torn = first.fetch(3)["bob"]
        assert first.fetch(3)["bob"] == torn  # repeat fetch, same tear
        assert second.fetch(3)["bob"] == torn  # fresh wrapper, same tear

    def test_different_peers_draw_independent_fates(self):
        store = faulty(seed=4, drop_publish_rate=0.5)
        for index in range(32):
            store.publish(0, f"peer-{index}", b"x")
        landed = len(store.fetch(0))
        assert 0 < landed < 32  # the fate is per-peer, not global

    def test_gc_drops_stale_delayed_entries(self):
        store = faulty(delay_publish_rate=1.0, delay_windows=5)
        store.publish(0, "alice", b"payload")
        assert store.stats.delayed_publishes == 1
        store.gc(keep_from=1)  # original window 0 aged out while buffered
        store.fetch(6)  # advance well past the release window
        assert store.fetch(0) == {}
        assert store.stats.delivered_late == 0

    def test_windows_delegates_to_inner(self):
        store = faulty()
        store.publish(2, "alice", b"a")
        store.publish(5, "bob", b"b")
        assert store.windows() == [2, 5]


class TestClusterUnderFaults:
    def _report(self, seed=13):
        train_data, test_data = make_task(seed)
        store = FaultyStore(
            InMemoryStore(),
            StoreFaultConfig(
                seed=seed,
                drop_publish_rate=0.2,
                delay_publish_rate=0.2,
                torn_fetch_rate=0.2,
                outage_windows=(3,),
            ),
        )
        cluster = GossipCluster(
            lambda: make_mlp(6, 16, 3, rng=np.random.default_rng(1234)),
            train_data,
            test_data,
            config=GossipConfig(local_steps=2, lr=0.1,
                                compression_ratio=0.2),
            plan=FaultPlan(seed=seed),
            peers=4,
            store=store,
            seed=seed,
        )
        report = cluster.run(windows=6)
        peer = cluster.peers[sorted(cluster.peers)[0]]
        weights = np.concatenate(
            [p.data.ravel() for _, p in peer.model.named_parameters()]
        )
        return report, weights, store.stats

    def test_replay_is_bit_identical_and_chaos_fired(self):
        first_report, first_weights, first_stats = self._report()
        second_report, second_weights, second_stats = self._report()
        assert np.array_equal(first_weights, second_weights)
        assert first_report.final_accuracy == second_report.final_accuracy
        assert first_stats == second_stats
        assert np.all(np.isfinite(first_weights))
        # The campaign actually exercised the chaos paths.
        assert first_stats.unavailable_ops > 0
        assert first_stats.dropped_publishes > 0
        assert first_stats.torn_fetches > 0
        assert first_stats.delivered_late <= first_stats.delayed_publishes


class TestFilesystemTornWrites:
    def _window_dir(self, store, window):
        return os.path.join(store.root, f"window-{window:08d}")

    def test_fetch_ignores_stray_tmp_files(self, tmp_path):
        store = FilesystemStore(str(tmp_path))
        store.publish(0, "alice", b"real")
        with open(os.path.join(self._window_dir(store, 0),
                               "crashed-writer.tmp"), "wb") as handle:
            handle.write(b"half a blo")
        assert store.fetch(0) == {"alice": b"real"}

    def test_gc_removes_stray_tmp_and_keeps_blobs(self, tmp_path):
        store = FilesystemStore(str(tmp_path))
        store.publish(1, "alice", b"real")
        stray = os.path.join(self._window_dir(store, 1), "dead.tmp")
        with open(stray, "wb") as handle:
            handle.write(b"partial")
        store.gc(keep_from=0)  # window 1 is kept, the stray is not
        assert not os.path.exists(stray)
        assert store.fetch(1) == {"alice": b"real"}

    def test_gc_still_drops_expired_windows(self, tmp_path):
        store = FilesystemStore(str(tmp_path))
        store.publish(0, "alice", b"old")
        store.publish(4, "alice", b"new")
        store.gc(keep_from=3)
        assert store.windows() == [4]
        assert store.fetch(0) == {}
