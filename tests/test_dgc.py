"""DGC momentum-corrected Top-k aggregation."""

import numpy as np
import pytest

from repro.comm.process_group import ProcessGroup
from repro.optim.aggregators import make_aggregator
from repro.optim.dgc import DGCTopkAggregator

WORLD = 4


def _grads(rng, world=WORLD):
    return [
        {"w": rng.normal(size=(10, 12)), "b": rng.normal(size=10)}
        for _ in range(world)
    ]


class TestDGC:
    def test_output_well_formed(self, rng):
        agg = DGCTopkAggregator(ProcessGroup(WORLD), ratio=0.1)
        out = agg.aggregate(_grads(rng))
        assert set(out) == {"w", "b"}
        assert out["w"].shape == (10, 12)
        assert np.isfinite(out["w"]).all()

    def test_factory_registration(self):
        agg = make_aggregator("dgc", ProcessGroup(2), ratio=0.1)
        assert agg.method == "dgc"

    def test_momentum_correction_steady_state(self, rng):
        """With constant gradient g, ratio 0.5 and momentum m, each
        coordinate transmits on alternate steps: its velocity gains g on the
        off step and (1 + m) g on the on step, so the per-step average
        transmitted is (2 + m)/2 * g — 1.25 g for m = 0.5. Clearing u at
        transmitted coordinates (the DGC rule) is what caps it there instead
        of the uncorrected g / (1 - m)."""
        momentum = 0.5
        agg = DGCTopkAggregator(ProcessGroup(1), ratio=0.5, momentum=momentum)
        g = rng.normal(size=(6, 6))
        total = np.zeros_like(g)
        steps = 300
        for _ in range(steps):
            out = agg.aggregate([{"w": g.copy()}])
            total += out["w"]
        average = total / steps
        expected = (2 + momentum) / 2
        assert np.median(average / g) == pytest.approx(expected, rel=0.1)
        corr = np.corrcoef(average.ravel(), g.ravel())[0, 1]
        assert corr > 0.95

    def test_transmitted_coordinates_cleared(self, rng):
        agg = DGCTopkAggregator(ProcessGroup(1), ratio=0.25)
        agg.aggregate([{"w": rng.normal(size=(4, 4))}])
        state = agg.state_for(0)
        v = state.v["fused"]
        # At least k coordinates were zeroed.
        assert (v == 0.0).sum() >= 4

    def test_uses_allgather(self, rng):
        group = ProcessGroup(WORLD)
        DGCTopkAggregator(group, ratio=0.1).aggregate(_grads(rng))
        assert any(s.algorithm == "all_gather" for s in group.history)

    def test_validation(self):
        with pytest.raises(ValueError, match="ratio"):
            DGCTopkAggregator(ProcessGroup(2), ratio=0.0)
        with pytest.raises(ValueError, match="momentum"):
            DGCTopkAggregator(ProcessGroup(2), momentum=1.0)

    def test_worker_count_checked(self, rng):
        agg = DGCTopkAggregator(ProcessGroup(3))
        with pytest.raises(ValueError, match="expected"):
            agg.aggregate(_grads(rng, world=2))

    def test_trains_a_model(self, rng):
        """DGC + momentum-free SGD reduces loss on a small task."""
        from repro.models.convnets import make_mlp
        from repro.nn.loss import CrossEntropyLoss
        from repro.optim.sgd import SGD

        model = make_mlp(8, 16, 3, rng=np.random.default_rng(0))
        agg = DGCTopkAggregator(ProcessGroup(2), ratio=0.25, momentum=0.9)
        opt = SGD(model, lr=0.02, momentum=0.0)  # momentum lives in DGC
        loss_fn = CrossEntropyLoss()
        centers = np.random.default_rng(5).normal(size=(3, 8)) * 3

        def batch(seed):
            r = np.random.default_rng(seed)
            y = r.integers(0, 3, size=32)
            return centers[y] + r.normal(size=(32, 8)), y

        losses = []
        for step in range(60):
            per_worker = []
            step_losses = []
            for w in range(2):
                x, y = batch(step * 2 + w)
                model.zero_grad()
                step_losses.append(loss_fn(model(x), y))
                model.backward(loss_fn.backward())
                per_worker.append({
                    n: p.grad.copy() for n, p in model.named_parameters()
                })
            opt.step(agg.aggregate(per_worker))
            losses.append(np.mean(step_losses))
        assert np.mean(losses[-10:]) < 0.5 * np.mean(losses[:10])
