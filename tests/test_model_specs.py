"""Shape-level model specs validated against the paper's Table I."""

import pytest

from repro.compression.ratios import compression_ratio
from repro.models import get_model_spec
from repro.models.registry import PAPER_RANKS, paper_batch_size
from repro.models.spec import LayerSpec, ModelSpec, TensorSpec, conv_layer


class TestParameterCounts:
    """Table I's #Param column (millions), within 1%."""

    @pytest.mark.parametrize(
        "name,paper_millions",
        [
            ("ResNet-50", 25.6),
            ("ResNet-152", 60.2),
            ("ResNet-18", 11.7),
            ("VGG-16", 138.4),
        ],
    )
    def test_vision_models(self, name, paper_millions):
        spec = get_model_spec(name)
        assert spec.num_parameters / 1e6 == pytest.approx(paper_millions, rel=0.01)

    @pytest.mark.parametrize(
        "name,paper_millions",
        [("BERT-Base", 110.1), ("BERT-Large", 336.2)],
    )
    def test_bert_models(self, name, paper_millions):
        # Our BERT counts exclude the MLM-head transform the paper's
        # checkpoint appears to include (~0.6M/1.1M); 1.5% tolerance.
        spec = get_model_spec(name)
        assert spec.num_parameters / 1e6 == pytest.approx(paper_millions, rel=0.015)


class TestCompressionRatios:
    """Table I's Power-SGD ratio column, within ~6%."""

    @pytest.mark.parametrize(
        "name,paper_ratio",
        [
            ("ResNet-50", 67),
            ("ResNet-152", 53),
            ("BERT-Base", 16),
            ("BERT-Large", 21),
        ],
    )
    def test_powersgd_ratio(self, name, paper_ratio):
        spec = get_model_spec(name)
        ratio = compression_ratio(
            spec.parameter_shapes(), "powersgd", rank=PAPER_RANKS[name]
        )
        assert ratio == pytest.approx(paper_ratio, rel=0.06)

    def test_acpsgd_ratio_is_double_powersgd(self):
        """ACP-SGD sends one factor per step — 2x the headline ratio (minus
        the uncompressed vector parameters)."""
        spec = get_model_spec("ResNet-50")
        shapes = spec.parameter_shapes()
        power = compression_ratio(shapes, "powersgd", rank=4)
        acp = compression_ratio(shapes, "acpsgd", rank=4)
        assert 1.5 * power < acp <= 2.0 * power


class TestStructure:
    def test_resnet50_tensor_count(self):
        """161 learnable tensors (53 convs + 106 BN affine + fc w/b) — the
        number of per-tensor all-reduces the paper's §IV-B anchor implies."""
        assert get_model_spec("ResNet-50").num_tensors == 161

    def test_backward_layers_reversed(self):
        spec = get_model_spec("ResNet-18")
        forward = [l.name for l in spec.layers]
        backward = [l.name for l in spec.backward_layers()]
        assert backward == forward[::-1]

    def test_flops_positive_and_scale_with_batch(self):
        spec = get_model_spec("ResNet-50")
        f32 = spec.forward_flops(32)
        f64 = spec.forward_flops(64)
        assert f32 > 0
        assert f64 == pytest.approx(2 * f32)
        assert spec.backward_flops(32) > f32  # BP ~2x FF

    def test_resnet50_flops_match_literature(self):
        """torchvision ResNet-50 ~ 4.09 GMACs = 8.2 GFLOPs per image."""
        spec = get_model_spec("ResNet-50")
        gflops = spec.forward_flops(1) / 1e9
        assert gflops == pytest.approx(8.2, rel=0.05)

    def test_bert_base_flops_scale(self):
        """~24 S H^2 L for the GEMMs at S=64: ~11 GFLOPs forward."""
        spec = get_model_spec("BERT-Base")
        gflops = spec.forward_flops(1) / 1e9
        assert 9 < gflops < 13

    def test_paper_batch_sizes(self):
        assert paper_batch_size("ResNet-50") == 64
        assert paper_batch_size("ResNet-152") == 32
        assert paper_batch_size("BERT-Base") == 32
        assert paper_batch_size("BERT-Large") == 8

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError, match="unknown model"):
            get_model_spec("AlexNet")
        with pytest.raises(KeyError):
            paper_batch_size("AlexNet")


class TestSpecPrimitives:
    def test_tensor_spec_size(self):
        t = TensorSpec("w", (4, 3, 2))
        assert t.size == 24
        assert t.nbytes == 96

    def test_conv_layer_flops(self):
        layer = conv_layer("c", 3, 8, 3, out_hw=10)
        assert layer.forward_flops == 2.0 * 100 * 8 * 3 * 9
        assert layer.backward_flops == 2 * layer.forward_flops

    def test_model_spec_totals(self):
        layer = LayerSpec("l", "gemm", (TensorSpec("w", (2, 2)),), 10.0)
        spec = ModelSpec("tiny", (layer,), 1)
        assert spec.num_parameters == 4
        assert spec.num_tensors == 1
        assert spec.parameter_bytes == 16
