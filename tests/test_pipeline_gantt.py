"""Steady-state pipeline simulation, priority scheduling, Gantt rendering."""

import pytest

from repro.models import get_model_spec
from repro.sim.engine import GPU_MAIN, NIC, Engine, Task
from repro.sim.gantt import render_gantt
from repro.sim.pipeline import simulate_steady_state
from repro.sim.strategies import ClusterSpec, simulate_iteration_records


@pytest.fixture(scope="module")
def resnet18():
    return get_model_spec("ResNet-18")


class TestPriorityDiscipline:
    def test_priority_overrides_submission_order(self):
        """On a priority stream, a later-submitted high-priority ready task
        runs before an earlier low-priority one."""
        engine = Engine(disciplines={NIC: "priority"})
        records = engine.run([
            Task("low", NIC, 1.0, priority=0),
            Task("high", NIC, 1.0, priority=5),
        ])
        assert records["high"].start == pytest.approx(0.0)
        assert records["low"].start == pytest.approx(1.0)

    def test_no_head_of_line_blocking(self):
        """A blocked high-priority head does not stall ready work."""
        engine = Engine(disciplines={NIC: "priority"})
        records = engine.run([
            Task("gate", GPU_MAIN, 2.0),
            Task("blocked", NIC, 1.0, deps=("gate",), priority=9),
            Task("free", NIC, 1.0, priority=0),
        ])
        assert records["free"].start == pytest.approx(0.0)
        assert records["blocked"].start == pytest.approx(2.0)

    def test_non_preemptive(self):
        """A running task finishes even if a higher priority becomes ready."""
        engine = Engine(disciplines={NIC: "priority"})
        records = engine.run([
            Task("long", NIC, 3.0, priority=0),
            Task("gate", GPU_MAIN, 1.0),
            Task("urgent", NIC, 1.0, deps=("gate",), priority=9),
        ])
        assert records["long"].end == pytest.approx(3.0)
        assert records["urgent"].start == pytest.approx(3.0)

    def test_fifo_unchanged_by_default(self):
        records = Engine().run([
            Task("a", NIC, 1.0, priority=0),
            Task("b", NIC, 1.0, priority=9),
        ])
        assert records["a"].end <= records["b"].start

    def test_invalid_discipline(self):
        with pytest.raises(ValueError, match="discipline"):
            Engine(disciplines={NIC: "weighted-fair"})


class TestSteadyState:
    def test_steady_not_worse_than_single(self, resnet18):
        result = simulate_steady_state(
            "acpsgd", resnet18, cluster=ClusterSpec(8), batch_size=16,
            rank=4, iterations=3,
        )
        assert result.steady_iteration <= result.single_iteration * 1.01
        assert result.pipeline_gain >= 0.99

    def test_nonblocking_methods_pipeline(self, resnet18):
        """Pipelined chaining is at least as good as the full barrier."""
        barrier = simulate_steady_state(
            "ssgd", resnet18, batch_size=16, iterations=3, pipelined=False,
        )
        pipelined = simulate_steady_state(
            "ssgd", resnet18, batch_size=16, iterations=3, pipelined=True,
        )
        assert pipelined.steady_iteration <= barrier.steady_iteration * 1.001

    def test_priority_comm_not_worse(self, resnet18):
        fifo = simulate_steady_state("ssgd", resnet18, batch_size=16,
                                     iterations=3)
        prio = simulate_steady_state("ssgd", resnet18, batch_size=16,
                                     iterations=3, priority_comm=True)
        assert prio.steady_iteration <= fifo.steady_iteration * 1.005

    def test_iterations_validation(self, resnet18):
        with pytest.raises(ValueError, match="iterations"):
            simulate_steady_state("ssgd", resnet18, iterations=1)


class TestGantt:
    def test_renders_rows_and_legend(self, resnet18):
        records = simulate_iteration_records("acpsgd", resnet18,
                                             batch_size=16, rank=4)
        chart = render_gantt(records, width=60)
        lines = chart.splitlines()
        assert any(line.startswith(" gpu |") for line in lines)
        assert any(line.startswith(" nic |") for line in lines)
        assert "F=forward" in chart

    def test_side_stream_shown_only_when_used(self, resnet18):
        acp = render_gantt(
            simulate_iteration_records("acpsgd", resnet18, batch_size=16,
                                       rank=4), width=50,
        )
        assert "side" not in acp
        star = render_gantt(
            simulate_iteration_records("powersgd_star", resnet18,
                                       batch_size=16, rank=4), width=50,
        )
        assert "side" in star

    def test_row_width_matches(self, resnet18):
        records = simulate_iteration_records("ssgd", resnet18, batch_size=16)
        chart = render_gantt(records, width=40)
        gpu_row = next(l for l in chart.splitlines() if l.startswith(" gpu"))
        assert len(gpu_row.split("|")[1]) == 40

    def test_empty_and_validation(self):
        assert render_gantt({}) == "(empty timeline)"
        with pytest.raises(ValueError, match="width"):
            render_gantt({}, width=2)


class TestFig4:
    def test_charts_render(self):
        from repro.experiments.fig4 import render, run_fig4

        charts = run_fig4(model_name="ResNet-18", width=50)
        text = render(charts)
        assert "Power-SGD*" in text and "ACP-SGD" in text
        assert text.count("F=forward") == 3
