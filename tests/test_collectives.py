"""Collective algorithms: numerics and traffic accounting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.comm import collectives as C


def _random_buffers(rng, world, shape):
    return [rng.normal(size=shape) for _ in range(world)]


class TestRingAllReduce:
    def test_matches_naive_sum(self, rng):
        bufs = _random_buffers(rng, 5, (7, 13))
        ring, _ = C.all_reduce_ring(bufs)
        naive, _ = C.all_reduce_naive(bufs)
        for r, n in zip(ring, naive):
            np.testing.assert_allclose(r, n, rtol=1e-10)

    def test_all_ranks_get_identical_results(self, rng):
        bufs = _random_buffers(rng, 4, (10,))
        ring, _ = C.all_reduce_ring(bufs)
        for result in ring[1:]:
            np.testing.assert_array_equal(result, ring[0])

    def test_single_rank_is_identity(self, rng):
        buf = rng.normal(size=(3, 3))
        results, stats = C.all_reduce_ring([buf])
        np.testing.assert_array_equal(results[0], buf)
        assert stats.bytes_sent_per_rank == [0]

    def test_does_not_mutate_inputs(self, rng):
        bufs = _random_buffers(rng, 3, (5,))
        copies = [b.copy() for b in bufs]
        C.all_reduce_ring(bufs)
        for buf, copy in zip(bufs, copies):
            np.testing.assert_array_equal(buf, copy)

    def test_traffic_matches_table2_formula(self, rng):
        """Per-rank traffic = 2 (p-1)/p * N elements (within chunk padding)."""
        world, n = 8, 4096
        bufs = _random_buffers(rng, world, (n,))
        _, stats = C.all_reduce_ring(bufs)
        expected = 2 * (world - 1) / world * n * 8  # float64 bytes
        for sent in stats.bytes_sent_per_rank:
            assert sent == pytest.approx(expected, rel=0.01)
        assert stats.steps == 2 * (world - 1)

    def test_uneven_buffer_smaller_than_world(self, rng):
        """A 3-element buffer across 5 ranks still reduces correctly."""
        bufs = _random_buffers(rng, 5, (3,))
        ring, _ = C.all_reduce_ring(bufs)
        np.testing.assert_allclose(ring[0], sum(bufs), rtol=1e-10)

    @settings(max_examples=25, deadline=None)
    @given(
        world=st.integers(1, 7),
        length=st.integers(1, 64),
        seed=st.integers(0, 2**16),
    )
    def test_property_ring_equals_sum(self, world, length, seed):
        rng = np.random.default_rng(seed)
        bufs = [rng.normal(size=length) for _ in range(world)]
        ring, _ = C.all_reduce_ring(bufs)
        expected = np.sum(bufs, axis=0)
        for result in ring:
            np.testing.assert_allclose(result, expected, rtol=1e-9, atol=1e-9)

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError, match="shape"):
            C.all_reduce_ring([rng.normal(size=3), rng.normal(size=4)])

    def test_empty_rank_list_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            C.all_reduce_ring([])


class TestReduceScatter:
    def test_chunks_hold_reduced_values(self, rng):
        world = 4
        bufs = _random_buffers(rng, world, (16,))
        chunks, _ = C.reduce_scatter(bufs)
        total = np.sum([b for b in bufs], axis=0)
        reassembled = np.concatenate(chunks)
        np.testing.assert_allclose(reassembled, total, rtol=1e-10)

    def test_chunk_ownership_partition(self, rng):
        world = 3
        bufs = _random_buffers(rng, world, (10,))
        chunks, _ = C.reduce_scatter(bufs)
        assert sum(c.size for c in chunks) == 10

    def test_traffic_is_half_of_allreduce(self, rng):
        world, n = 4, 1024
        bufs = _random_buffers(rng, world, (n,))
        _, rs_stats = C.reduce_scatter(bufs)
        _, ar_stats = C.all_reduce_ring(bufs)
        assert rs_stats.total_bytes == pytest.approx(ar_stats.total_bytes / 2, rel=0.02)


class TestAllGather:
    def test_every_rank_sees_every_buffer(self, rng):
        world = 4
        bufs = _random_buffers(rng, world, (6,))
        gathered, _ = C.all_gather(bufs)
        for rank in range(world):
            for src in range(world):
                np.testing.assert_array_equal(gathered[rank][src], bufs[src])

    def test_heterogeneous_payload_sizes(self, rng):
        """Top-k payloads differ per rank; all-gather must support that."""
        bufs = [rng.normal(size=k) for k in (3, 5, 2, 7)]
        gathered, stats = C.all_gather(bufs)
        for rank in range(4):
            assert [g.size for g in gathered[rank]] == [3, 5, 2, 7]
        # Each rank forwards every payload (p-1 hops total per payload).
        assert stats.total_bytes == 3 * sum(b.nbytes for b in bufs)

    def test_traffic_linear_in_world_size(self, rng):
        """All-gather per-rank traffic grows with p (Table II)."""
        n = 256
        totals = []
        for world in (2, 4, 8):
            bufs = _random_buffers(rng, world, (n,))
            _, stats = C.all_gather(bufs)
            totals.append(stats.total_bytes / world)  # mean per rank
        assert totals[1] > totals[0]
        assert totals[2] > totals[1]
        # per-rank ~ (p-1) * n * 8 bytes
        assert totals[2] == pytest.approx(7 * n * 8, rel=0.05)


class TestBroadcast:
    def test_all_ranks_receive_root(self, rng):
        bufs = _random_buffers(rng, 5, (4, 4))
        out, _ = C.broadcast(bufs, root=2)
        for result in out:
            np.testing.assert_array_equal(result, bufs[2])

    def test_invalid_root_rejected(self, rng):
        with pytest.raises(ValueError, match="root"):
            C.broadcast(_random_buffers(rng, 3, (2,)), root=3)


class TestChunkBounds:
    def test_covers_range_without_overlap(self):
        bounds = C._chunk_bounds(17, 5)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == 17
        for (lo1, hi1), (lo2, hi2) in zip(bounds, bounds[1:]):
            assert hi1 == lo2

    @settings(max_examples=50, deadline=None)
    @given(length=st.integers(0, 200), chunks=st.integers(1, 16))
    def test_property_partition(self, length, chunks):
        bounds = C._chunk_bounds(length, chunks)
        assert len(bounds) == chunks
        total = sum(hi - lo for lo, hi in bounds)
        assert total == length
        sizes = [hi - lo for lo, hi in bounds]
        assert max(sizes) - min(sizes) <= 1
