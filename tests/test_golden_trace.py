"""Golden-trace equivalence: the legacy ``Engine`` adapter over the
``repro.sched`` core must reproduce the pre-refactor records bit-for-bit.

``tests/data/golden_traces.json`` was captured (via
``scripts/golden_trace.py capture``) from the engine *before* the
scheduler-core refactor; every scenario here re-runs through the current
adapter and compares IEEE-754 hex start/end times exactly.
"""

import json
import os

import pytest

from tests.golden_scenarios import iter_scenarios, run_scenario

_GOLDEN_FILE = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "tests", "data", "golden_traces.json")

SCENARIOS = {name: (tasks, kwargs) for name, tasks, kwargs in iter_scenarios()}


@pytest.fixture(scope="module")
def golden():
    with open(_GOLDEN_FILE) as handle:
        return json.load(handle)


def test_every_golden_scenario_still_exists(golden):
    assert set(golden) == set(SCENARIOS)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_bit_identical_to_golden(name, golden):
    tasks, engine_kwargs = SCENARIOS[name]
    assert run_scenario(tasks, engine_kwargs) == golden[name], (
        f"scenario {name!r} drifted from the pre-refactor golden trace"
    )
