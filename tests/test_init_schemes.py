"""Weight initialization schemes."""

import math

import numpy as np
import pytest

from repro.nn import init


class TestFanComputation:
    def test_linear_shapes(self):
        assert init._fan_in_out((10, 20)) == (20, 10)

    def test_conv_shapes(self):
        # (out, in, kh, kw): receptive field multiplies both fans.
        assert init._fan_in_out((8, 4, 3, 3)) == (4 * 9, 8 * 9)

    def test_vector_rejected(self):
        with pytest.raises(ValueError, match="2 dims"):
            init._fan_in_out((5,))


class TestDistributions:
    def _std(self, draw, shape, trials=20):
        rng = np.random.default_rng(0)
        samples = np.concatenate(
            [draw(shape, rng).reshape(-1) for _ in range(trials)]
        )
        return samples.std(), samples.mean()

    def test_kaiming_normal_std(self):
        shape = (64, 32)
        std, mean = self._std(init.kaiming_normal, shape)
        expected = math.sqrt(2.0 / 32)
        assert std == pytest.approx(expected, rel=0.05)
        assert abs(mean) < 0.02

    def test_kaiming_uniform_bound(self):
        rng = np.random.default_rng(1)
        values = init.kaiming_uniform((64, 32), rng)
        bound = math.sqrt(2.0) * math.sqrt(3.0 / 32)
        assert np.abs(values).max() <= bound
        assert np.abs(values).max() > 0.8 * bound

    def test_xavier_normal_std(self):
        shape = (40, 60)
        std, _ = self._std(init.xavier_normal, shape)
        expected = math.sqrt(2.0 / (40 + 60))
        assert std == pytest.approx(expected, rel=0.05)

    def test_xavier_uniform_bound(self):
        rng = np.random.default_rng(2)
        values = init.xavier_uniform((40, 60), rng)
        bound = math.sqrt(6.0 / 100)
        assert np.abs(values).max() <= bound

    def test_deterministic_under_seed(self):
        a = init.kaiming_normal((4, 4), np.random.default_rng(9))
        b = init.kaiming_normal((4, 4), np.random.default_rng(9))
        np.testing.assert_array_equal(a, b)

    def test_conv_fan_in_scales_std(self):
        """Bigger receptive fields shrink the init std (He rule)."""
        rng = np.random.default_rng(3)
        small = init.kaiming_normal((16, 4, 1, 1), rng).std()
        large = init.kaiming_normal((16, 4, 5, 5), rng).std()
        assert large < small / 3
