"""Runnable models: shapes, gradients, trainability."""

import numpy as np
import pytest

from repro.models.convnets import ResidualBlock, make_mlp, make_small_resnet, make_small_vgg
from repro.nn.loss import CrossEntropyLoss
from tests.gradcheck import check_layer_gradients


class TestResidualBlock:
    def test_identity_skip_shapes(self, rng):
        block = ResidualBlock(4, 4, rng=rng)
        out = block(rng.normal(size=(2, 4, 8, 8)))
        assert out.shape == (2, 4, 8, 8)

    def test_projection_skip_shapes(self, rng):
        block = ResidualBlock(4, 8, stride=2, rng=rng)
        out = block(rng.normal(size=(2, 4, 8, 8)))
        assert out.shape == (2, 8, 4, 4)

    def test_gradients_identity_skip(self, rng):
        block = ResidualBlock(2, 2, rng=rng)
        check_layer_gradients(block, rng.normal(size=(2, 2, 4, 4)),
                              rtol=1e-4, atol=1e-6)

    def test_gradients_projection_skip(self, rng):
        block = ResidualBlock(2, 4, stride=2, rng=rng)
        check_layer_gradients(block, rng.normal(size=(2, 2, 4, 4)),
                              rtol=1e-4, atol=1e-6)


class TestFactories:
    def test_vgg_forward(self, rng):
        model = make_small_vgg(base_width=4, rng=rng)
        out = model(rng.normal(size=(2, 3, 16, 16)))
        assert out.shape == (2, 10)

    def test_resnet_forward(self, rng):
        model = make_small_resnet(base_width=4, rng=rng)
        out = model(rng.normal(size=(2, 3, 16, 16)))
        assert out.shape == (2, 10)

    def test_mlp_depth_validation(self):
        with pytest.raises(ValueError, match="depth"):
            make_mlp(4, 8, 2, depth=0)

    def test_models_have_compressible_matrices(self, rng):
        """Conv/linear weights must be matrix-shaped for low-rank methods."""
        model = make_small_vgg(base_width=4, rng=rng)
        multi_dim = [p for p in model.parameters() if len(p.shape) >= 2]
        assert len(multi_dim) >= 5


class TestEndToEndTraining:
    def test_one_step_reduces_loss(self, rng):
        """A single-model SGD step on a fixed batch reduces its loss."""
        model = make_mlp(8, 16, 3, rng=rng)
        loss_fn = CrossEntropyLoss()
        x = rng.normal(size=(32, 8))
        y = rng.integers(0, 3, size=32)
        before = loss_fn(model(x), y)
        model.backward(loss_fn.backward())
        for param in model.parameters():
            param.data -= 0.5 * param.grad
        after = loss_fn(model(x), y)
        assert after < before

    def test_resnet_backward_produces_all_gradients(self, rng):
        model = make_small_resnet(base_width=4, rng=rng)
        loss_fn = CrossEntropyLoss()
        x = rng.normal(size=(4, 3, 8, 8))
        y = rng.integers(0, 10, size=4)
        loss_fn(model(x), y)
        model.backward(loss_fn.backward())
        for name, param in model.named_parameters():
            assert param.grad is not None, name
            assert np.isfinite(param.grad).all(), name
