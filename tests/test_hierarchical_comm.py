"""Tests of the topology-aware hierarchical all-reduce.

The load-bearing contract: hierarchical all-reduce is **bit-identical**
to the flat ring (it replays the canonical flat-ring fold and only
*accounts* the two-level schedule), so switching ``topology=`` on a
trainer can never change a training trajectory — only the modeled wire
traffic. Traffic/step accounting follows the reduce-scatter/all-gather
decomposition at each level.
"""

import numpy as np
import pytest

from repro.comm import (
    ProcessGroup,
    all_reduce_hierarchical,
    all_reduce_hierarchical_,
    all_reduce_hierarchical_segment_,
    all_reduce_ring,
    all_reduce_ring_segment_,
    hierarchical_steps,
    hierarchical_traffic,
)
from repro.comm.collectives import all_reduce_ring_inplace
from repro.comm.topology import ClusterTopology

TOPO_2x2 = ClusterTopology(num_nodes=2, gpus_per_node=2)
TOPO_1x4 = ClusterTopology(num_nodes=1, gpus_per_node=4)


def _random_buffers(rng, world, length):
    return [rng.standard_normal(length) for _ in range(world)]


class TestBitIdentity:
    @pytest.mark.parametrize("topology,length", [
        (TOPO_2x2, 1),
        (TOPO_2x2, 997),
        (TOPO_1x4, 256),
        (ClusterTopology(num_nodes=2, gpus_per_node=3), 1001),
        (ClusterTopology(num_nodes=4, gpus_per_node=2), 4096),
    ])
    def test_matches_flat_ring_exactly(self, rng, topology, length):
        flat = _random_buffers(rng, topology.world_size, length)
        hier = [buf.copy() for buf in flat]
        all_reduce_ring_inplace(flat)
        all_reduce_hierarchical_(hier, topology)
        for rank in range(topology.world_size):
            assert flat[rank].tobytes() == hier[rank].tobytes()

    def test_segment_matches_flat_segment_exactly(self, rng):
        length = 777
        flat = _random_buffers(rng, 4, length)
        hier = [buf.copy() for buf in flat]
        for start, stop in ((0, 300), (300, 777)):
            all_reduce_ring_segment_(
                [buf[start:stop] for buf in flat], start, length
            )
            all_reduce_hierarchical_segment_(
                [buf[start:stop] for buf in hier], start, length, TOPO_2x2
            )
        for rank in range(4):
            assert flat[rank].tobytes() == hier[rank].tobytes()

    def test_copying_variant_preserves_inputs_and_shapes(self, rng):
        buffers = [rng.standard_normal((4, 8)) for _ in range(4)]
        originals = [buf.copy() for buf in buffers]
        results, stats = all_reduce_hierarchical(buffers, TOPO_2x2)
        assert stats.algorithm == "allreduce_hierarchical"
        expected, _ = all_reduce_ring([buf.reshape(-1) for buf in buffers])
        for rank in range(4):
            np.testing.assert_array_equal(buffers[rank], originals[rank])
            assert results[rank].shape == (4, 8)
            assert (results[rank].reshape(-1).tobytes()
                    == expected[rank].tobytes())

    def test_single_rank_is_identity(self):
        topology = ClusterTopology(num_nodes=1, gpus_per_node=1)
        buf = np.arange(5, dtype=np.float64)
        stats = all_reduce_hierarchical_([buf], topology)
        np.testing.assert_array_equal(buf, np.arange(5, dtype=np.float64))
        assert stats.bytes_sent_per_rank == [0]
        assert stats.steps == 0


class TestAccounting:
    def test_traffic_formula_2x2(self):
        elems, g, nodes = 1001, 2, 2
        per_rank = hierarchical_traffic(elems, TOPO_2x2, 8)
        expected = int(round(
            (2 * elems * (g - 1) / g
             + 2 * (elems / g) * (nodes - 1) / nodes) * 8
        ))
        assert per_rank == [expected] * 4

    def test_steps_formula(self):
        assert hierarchical_steps(TOPO_2x2) == 2 * (2 - 1) + 2 * (2 - 1)
        assert hierarchical_steps(TOPO_1x4) == 2 * (4 - 1)

    def test_hierarchical_takes_fewer_steps_than_flat(self, rng):
        # For divisible payloads total bytes match the flat ring exactly
        # ((g-1)/g + (1/g)(nodes-1)/nodes == (p-1)/p); the win is fewer
        # serial rounds, and only 1/g of the traffic crosses nodes.
        topology = ClusterTopology(num_nodes=2, gpus_per_node=4)
        buffers = _random_buffers(rng, 8, 4096)
        flat_stats = all_reduce_ring_inplace(
            [buf.copy() for buf in buffers]
        )
        hier_stats = all_reduce_hierarchical_(buffers, topology)
        assert hier_stats.algorithm == "allreduce_hierarchical"
        assert (sum(hier_stats.bytes_sent_per_rank)
                == sum(flat_stats.bytes_sent_per_rank))
        assert hier_stats.steps < flat_stats.steps

    def test_empty_payload(self):
        per_rank = hierarchical_traffic(0, TOPO_2x2, 8)
        assert per_rank == [0, 0, 0, 0]


class TestValidation:
    def test_world_size_mismatch(self, rng):
        with pytest.raises(ValueError, match="rank buffers"):
            all_reduce_hierarchical_(_random_buffers(rng, 3, 8), TOPO_2x2)

    def test_non_float64_rejected(self):
        buffers = [np.zeros(4, dtype=np.float32) for _ in range(4)]
        with pytest.raises(ValueError, match="float64"):
            all_reduce_hierarchical_(buffers, TOPO_2x2)

    def test_segment_out_of_range(self, rng):
        buffers = _random_buffers(rng, 4, 10)
        with pytest.raises(ValueError, match="out of range"):
            all_reduce_hierarchical_segment_(buffers, 8, 10, TOPO_2x2)


class TestProcessGroupDispatch:
    def test_topology_routes_to_hierarchical(self, rng):
        group = ProcessGroup(4, topology=TOPO_2x2)
        buffers = _random_buffers(rng, 4, 257)
        expected, _ = all_reduce_ring([buf.copy() for buf in buffers])
        group.all_reduce_(buffers)
        assert group.history[-1].algorithm == "allreduce_hierarchical"
        for rank in range(4):
            assert buffers[rank].tobytes() == expected[rank].tobytes()

    def test_set_topology_validates_world_size(self):
        group = ProcessGroup(4)
        with pytest.raises(ValueError, match="world size"):
            group.set_topology(ClusterTopology(num_nodes=3,
                                               gpus_per_node=2))

    @staticmethod
    def _trainer_parts(world=4, seed=7):
        from repro.models.convnets import make_small_vgg
        from repro.optim.aggregators import make_aggregator
        from repro.optim.sgd import SGD
        from repro.train.datasets import make_cifar_like

        train_data, test_data = make_cifar_like(
            num_train=8, num_test=4, seed=seed
        )
        model = make_small_vgg(base_width=2,
                               rng=np.random.default_rng(seed))
        return (
            model, SGD(model, lr=0.05),
            make_aggregator("ssgd", ProcessGroup(world)),
            train_data, test_data,
        )

    def test_trainer_wires_topology_onto_group(self):
        from repro.train.trainer import DataParallelTrainer

        parts = self._trainer_parts()
        trainer = DataParallelTrainer(
            *parts, batch_size_per_worker=2, topology=TOPO_2x2
        )
        assert trainer.aggregator.group.topology is TOPO_2x2

    def test_trainer_rejects_group_without_topology_support(self):
        from repro.train.trainer import DataParallelTrainer

        class Groupish:
            world_size = 4

        parts = list(self._trainer_parts())
        parts[2].group = Groupish()
        with pytest.raises(ValueError, match="does not support topology"):
            DataParallelTrainer(
                *parts, batch_size_per_worker=2, topology=TOPO_2x2
            )

    def test_trainer_rejects_topology_world_mismatch(self):
        from repro.train.trainer import DataParallelTrainer

        parts = self._trainer_parts(world=3)
        with pytest.raises(ValueError, match="world size"):
            DataParallelTrainer(
                *parts, batch_size_per_worker=2, topology=TOPO_2x2
            )
