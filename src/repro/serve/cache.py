"""Sharded, memoized, generation-aware result cache.

The planning workload is read-heavy: millions of cheap lookups over a
small population of expensive simulator results. The cache is therefore
N independent LRU shards — the query's SHA-256 key picks the shard, each
shard has its own lock, bound, and counters — so concurrent readers on
different shards never contend on one lock, and a single hot shard can
evict without touching the others.

Entries are stamped with the *calibration generation* current when they
were computed (:data:`repro.sim.calibration.CALIBRATION_GENERATION`).
A lookup presents the current generation; an entry from an older one is
dropped and reported as a miss — a re-anchored link model must never
serve results priced under the old calibration.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass
class ShardStats:
    """Counters of one shard (monotone except ``entries``)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    stale_drops: int = 0
    entries: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "stale_drops": self.stale_drops,
            "entries": self.entries,
        }


class _Shard:
    """One LRU-bounded segment of the key space."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.lock = threading.Lock()
        self.entries: "OrderedDict[str, Tuple[int, str]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.stale_drops = 0

    def get(self, key: str, generation: int) -> Optional[str]:
        with self.lock:
            item = self.entries.get(key)
            if item is None:
                self.misses += 1
                return None
            entry_generation, payload = item
            if entry_generation != generation:
                # Stale calibration: evict so the next put replaces it.
                del self.entries[key]
                self.stale_drops += 1
                self.misses += 1
                return None
            self.entries.move_to_end(key)
            self.hits += 1
            return payload

    def put(self, key: str, generation: int, payload: str) -> None:
        with self.lock:
            if key in self.entries:
                self.entries.move_to_end(key)
            self.entries[key] = (generation, payload)
            while len(self.entries) > self.capacity:
                self.entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> int:
        with self.lock:
            dropped = len(self.entries)
            self.entries.clear()
            return dropped

    def stats(self) -> ShardStats:
        with self.lock:
            return ShardStats(
                hits=self.hits,
                misses=self.misses,
                evictions=self.evictions,
                stale_drops=self.stale_drops,
                entries=len(self.entries),
            )


class ResultCache:
    """N-shard LRU cache from query key to canonical plan payload.

    Args:
        shards: number of independent segments (>= 1).
        capacity_per_shard: LRU bound per shard; total capacity is
            ``shards * capacity_per_shard``.
    """

    def __init__(self, shards: int = 8, capacity_per_shard: int = 4096) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if capacity_per_shard < 1:
            raise ValueError(
                f"capacity_per_shard must be >= 1, got {capacity_per_shard}"
            )
        self._shards: List[_Shard] = [
            _Shard(capacity_per_shard) for _ in range(shards)
        ]

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def capacity(self) -> int:
        return sum(s.capacity for s in self._shards)

    def shard_index(self, key: str) -> int:
        """Map a hex SHA-256 key onto its shard.

        The leading 64 bits of the digest are uniform, so taking them
        modulo the shard count spreads keys evenly for any shard count.
        """
        return int(key[:16], 16) % len(self._shards)

    def get(self, key: str, generation: int) -> Optional[str]:
        """The payload for ``key`` at ``generation``, or ``None``."""
        return self._shards[self.shard_index(key)].get(key, generation)

    def put(self, key: str, generation: int, payload: str) -> None:
        """Insert/refresh ``key``; may evict the shard's LRU entry."""
        self._shards[self.shard_index(key)].put(key, generation, payload)

    def invalidate_all(self) -> int:
        """Drop every entry (explicit invalidation); returns the count."""
        return sum(shard.clear() for shard in self._shards)

    def __len__(self) -> int:
        return sum(len(shard.entries) for shard in self._shards)

    def stats(self) -> Dict[str, object]:
        """Aggregate + per-shard counters (hit rate over all lookups)."""
        per_shard = [shard.stats() for shard in self._shards]
        hits = sum(s.hits for s in per_shard)
        misses = sum(s.misses for s in per_shard)
        lookups = hits + misses
        return {
            "shards": len(per_shard),
            "capacity": self.capacity,
            "entries": sum(s.entries for s in per_shard),
            "hits": hits,
            "misses": misses,
            "evictions": sum(s.evictions for s in per_shard),
            "stale_drops": sum(s.stale_drops for s in per_shard),
            "hit_rate": (hits / lookups) if lookups else 0.0,
            "per_shard": [s.to_dict() for s in per_shard],
        }
