"""Planner-service throughput benchmark (``BENCH_planner.json``).

Unlike every earlier benchmark in this repo, the headline here is not
step time but *queries per second*: a capacity-planning service lives or
dies on how many "which method for my cluster?" questions it can absorb.
The benchmark measures

- **cold** throughput/latency: unique queries, empty cache — each one
  pays a full simulator sweep;
- **warm** throughput/latency: a deterministic query stream drawn from
  the same population — answered from the sharded cache;
- the cache hit rate of the warm pass, and
- a byte-identity probe: one warm payload compared against the same
  query computed by a fresh, cache-less service.

``python -m repro bench --planner`` and ``scripts/bench_planner.py``
both write the report, which CI tracks next to ``BENCH_hotpath.json``.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.serve.cache import ResultCache
from repro.serve.query import PlanQuery
from repro.serve.service import PlannerService
from repro.sim.calibration import SIM_LINKS

#: Fast-to-simulate models, cycled to build the benchmark grid. The big
#: paper models (BERT-Large, ResNet-152) simulate in ~1s each and belong
#: in warm_start(), not in a quick benchmark's cold pass.
_GRID_MODELS = ("ResNet-18", "ResNet-50", "BERT-Base", "VGG-16")
_GRID_GPUS = (8, 16, 32, 64)
_GRID_LINKS = ("10GbE", "1GbE", "100GbIB")

WARM_QPS_TARGET = 1000.0


def default_query_grid(
    unique_queries: int,
    tune_buffer: bool = False,
    models: Sequence[str] = _GRID_MODELS,
    gpus: Sequence[int] = _GRID_GPUS,
    links: Sequence[str] = _GRID_LINKS,
) -> List[PlanQuery]:
    """A deterministic grid of ``unique_queries`` distinct queries."""
    if unique_queries < 1:
        raise ValueError(
            f"unique_queries must be >= 1, got {unique_queries}"
        )
    grid: List[PlanQuery] = []
    index = 0
    while len(grid) < unique_queries:
        model = models[index % len(models)]
        world = gpus[(index // len(models)) % len(gpus)]
        link = links[(index // (len(models) * len(gpus))) % len(links)]
        index += 1
        if index > unique_queries * 100:  # grid exhausted (tiny axes)
            raise ValueError(
                f"cannot build {unique_queries} unique queries from "
                f"{len(models)}x{len(gpus)}x{len(links)} grid axes"
            )
        query = PlanQuery(
            model=model, gpus=world, link=SIM_LINKS[link],
            tune_buffer=tune_buffer,
        )
        if query not in grid:
            grid.append(query)
    return grid


def _latency_stats(latencies_s: Sequence[float]) -> Dict[str, float]:
    ms = np.asarray(latencies_s, dtype=float) * 1e3
    return {
        "p50_ms": float(np.percentile(ms, 50)),
        "p99_ms": float(np.percentile(ms, 99)),
        "mean_ms": float(ms.mean()),
        "max_ms": float(ms.max()),
    }


def run_planner_bench(
    unique_queries: int = 12,
    warm_lookups: int = 5000,
    max_workers: int = 4,
    shards: int = 8,
    capacity_per_shard: int = 4096,
    tune_buffer: bool = False,
    seed: int = 0,
    service: Optional[PlannerService] = None,
) -> Dict[str, object]:
    """Run the cold/warm planner benchmark and return the report dict."""
    owns_service = service is None
    if service is None:
        service = PlannerService(
            cache=ResultCache(shards=shards,
                              capacity_per_shard=capacity_per_shard),
            max_workers=max_workers,
        )
    try:
        grid = default_query_grid(unique_queries, tune_buffer=tune_buffer)

        # Cold pass: every query is a miss and pays a simulator sweep.
        cold_latencies: List[float] = []
        start_cold = time.perf_counter()
        for query in grid:
            begin = time.perf_counter()
            result = service.submit(query)
            cold_latencies.append(time.perf_counter() - begin)
            assert result.source == "computed"
        cold_seconds = time.perf_counter() - start_cold

        # Warm pass: a deterministic stream over the same population.
        rng = np.random.default_rng(seed)
        stream = [grid[i] for i in rng.integers(0, len(grid), warm_lookups)]
        warm_latencies: List[float] = []
        hits_before = service.cache.stats()["hits"]
        start_warm = time.perf_counter()
        for query in stream:
            begin = time.perf_counter()
            service.submit(query)
            warm_latencies.append(time.perf_counter() - begin)
        warm_seconds = time.perf_counter() - start_warm
        warm_hits = service.cache.stats()["hits"] - hits_before
        hit_rate = warm_hits / warm_lookups if warm_lookups else 0.0

        # Batched warm pass: the submit_batch() front door.
        start_batch = time.perf_counter()
        service.submit_batch(stream)
        batch_seconds = time.perf_counter() - start_batch

        # Byte-identity probe: cached payload == a fresh cache-less run.
        probe = grid[0]
        cached_payload = service.submit(probe).payload
        with PlannerService(cache=ResultCache(shards=1,
                                              capacity_per_shard=1),
                            max_workers=1) as fresh:
            fresh_payload = fresh.submit(probe).payload
        payload_identical = cached_payload == fresh_payload

        warm_qps = warm_lookups / warm_seconds if warm_seconds > 0 else 0.0
        report: Dict[str, object] = {
            "schema": "repro.bench.planner/1",
            "config": {
                "unique_queries": unique_queries,
                "warm_lookups": warm_lookups,
                "max_workers": max_workers,
                "shards": service.cache.num_shards,
                "capacity_per_shard": capacity_per_shard,
                "tune_buffer": tune_buffer,
                "seed": seed,
            },
            "cold": {
                "queries": len(grid),
                "seconds": cold_seconds,
                "qps": len(grid) / cold_seconds if cold_seconds > 0 else 0.0,
                **_latency_stats(cold_latencies),
            },
            "warm": {
                "queries": warm_lookups,
                "seconds": warm_seconds,
                "qps": warm_qps,
                "hit_rate": hit_rate,
                **_latency_stats(warm_latencies),
            },
            "warm_batched": {
                "queries": len(stream),
                "seconds": batch_seconds,
                "qps": (len(stream) / batch_seconds
                        if batch_seconds > 0 else 0.0),
            },
            "service": service.stats(),
            "criteria": {
                "warm_qps_target": WARM_QPS_TARGET,
                "warm_qps": warm_qps,
                "meets_warm_qps_target": warm_qps >= WARM_QPS_TARGET,
                "warm_hit_rate_nonzero": hit_rate > 0.0,
                "payload_bit_identical": payload_identical,
            },
        }
        return report
    finally:
        if owns_service:
            service.close()


def render_report(report: Dict[str, object]) -> str:
    """Human-readable summary of one benchmark report."""
    cold = report["cold"]
    warm = report["warm"]
    batched = report["warm_batched"]
    criteria = report["criteria"]
    lines = [
        f"planner bench: {cold['queries']} unique queries, "  # type: ignore[index]
        f"{warm['queries']} warm lookups",  # type: ignore[index]
        f"  cold : {cold['qps']:10.1f} q/s   "  # type: ignore[index]
        f"p50 {cold['p50_ms']:8.2f}ms  p99 {cold['p99_ms']:8.2f}ms",  # type: ignore[index]
        f"  warm : {warm['qps']:10.1f} q/s   "  # type: ignore[index]
        f"p50 {warm['p50_ms']:8.4f}ms  p99 {warm['p99_ms']:8.4f}ms  "  # type: ignore[index]
        f"hit rate {warm['hit_rate']:.1%}",  # type: ignore[index]
        f"  batch: {batched['qps']:10.1f} q/s (submit_batch front door)",  # type: ignore[index]
        f"  warm >= {criteria['warm_qps_target']:.0f} q/s: "  # type: ignore[index]
        f"{'PASS' if criteria['meets_warm_qps_target'] else 'FAIL'}; "  # type: ignore[index]
        f"cached == uncached payload: "
        f"{'PASS' if criteria['payload_bit_identical'] else 'FAIL'}",  # type: ignore[index]
    ]
    return "\n".join(lines)
