"""The planning service: batched queries over the memoized simulator.

``PlannerService`` turns :func:`repro.planner.plan` — one expensive
simulator sweep per call — into a high-throughput lookup service:

- every answer is the canonical payload of :func:`repro.serve.schema
  .plan_payload`, stored in a sharded LRU :class:`ResultCache` keyed by
  the query's canonical SHA-256;
- concurrent identical queries are *single-flighted*: the first caller
  computes, everyone else parks on the same in-flight slot and receives
  the leader's payload — the simulator runs exactly once per unique key;
- ``submit_batch`` fans uncached queries across a thread pool (the
  simulator is pure Python, so this buys overlap rather than parallel
  speedup, and more importantly bounds the latency of a mixed batch by
  its slowest miss, not the sum of misses);
- entries carry the calibration generation
  (:data:`repro.sim.calibration.CALIBRATION_GENERATION`); re-anchoring
  the link model via :meth:`recalibrate` (or any direct
  ``fit_link_from_bucket_timings`` call) bumps it, so every older entry
  is dropped on its next lookup instead of being served stale.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.comm.cost_model import LinkSpec
from repro.serve.cache import ResultCache
from repro.serve.query import PlanQuery, canonical_link
from repro.serve.schema import plan_from_dict, plan_payload
from repro.sim.calibration import (
    CALIBRATION_GENERATION,
    SIM_LINKS,
    fit_link_from_bucket_timings,
)

#: Answer provenance: a fresh simulator run, a cache hit, or a ride on
#: another caller's in-flight computation.
SOURCE_COMPUTED = "computed"
SOURCE_CACHE = "cache"
SOURCE_COALESCED = "coalesced"


@dataclass(frozen=True)
class PlanResult:
    """One answered query.

    Attributes:
        query: the canonical query.
        payload: canonical JSON of the plan (byte-identical across cache
            hits, coalesced waits, and fresh computes of the same query
            at the same calibration generation).
        source: one of ``computed`` / ``cache`` / ``coalesced``.
        generation: calibration generation the plan was priced under.
    """

    query: PlanQuery
    payload: str
    source: str
    generation: int

    @property
    def plan(self):
        """The payload parsed back into a :class:`repro.planner.Plan`."""
        import json

        return plan_from_dict(json.loads(self.payload))

    @property
    def cached(self) -> bool:
        return self.source != SOURCE_COMPUTED


class _InFlight:
    """Single-flight slot: the leader publishes, followers wait."""

    def __init__(self) -> None:
        self.done = threading.Event()
        self.payload: Optional[str] = None
        self.generation: int = 0
        self.error: Optional[BaseException] = None


def compute_plan_payload(query: PlanQuery) -> str:
    """Run the planner for one query and serialize canonically.

    This is the default compute function; tests inject counters around it
    to assert single-flight semantics.
    """
    from repro.planner import plan

    result = plan(
        query.model,
        gpus=query.gpus,
        link=query.link,
        rank=query.rank,
        batch_size=query.batch_size,
        tune_buffer=query.tune_buffer,
        methods=query.methods,
        topk_ratio=query.topk_ratio,
        topology=query.topology,
    )
    return plan_payload(result)


class PlannerService:
    """Memoized, single-flighted, batched front end of the planner.

    Args:
        cache: result cache (default: 8 shards x 4096 entries).
        max_workers: thread-pool width for batch fan-out.
        compute_fn: ``PlanQuery -> payload`` override (tests, sharding
            across processes, ...). Must be deterministic per query and
            calibration generation.
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        max_workers: int = 4,
        compute_fn: Optional[Callable[[PlanQuery], str]] = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.cache = cache if cache is not None else ResultCache()
        self._compute = compute_fn or compute_plan_payload
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="planner"
        )
        self._lock = threading.Lock()
        self._inflight: Dict[str, _InFlight] = {}
        self._computes = 0
        self._coalesced = 0
        #: Links this service can resolve by name in JSONL queries:
        #: the network presets, the intra-node presets (for topology
        #: queries), plus anything registered by recalibrate().
        from repro.comm.topology import NVLINK2, PCIE3_X16

        self.links: Dict[str, LinkSpec] = dict(SIM_LINKS)
        self.links[NVLINK2.name] = NVLINK2
        self.links[PCIE3_X16.name] = PCIE3_X16

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "PlannerService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- calibration -------------------------------------------------------

    @staticmethod
    def generation() -> int:
        """The calibration generation new answers are priced under."""
        return CALIBRATION_GENERATION.value

    def recalibrate(
        self,
        samples: Sequence[Tuple[float, float]],
        world_size: int,
        name: str = "calibrated",
        nominal_gbps: float = 0.0,
    ) -> LinkSpec:
        """Re-anchor the link model from measured bucket timings.

        Fits a :class:`LinkSpec` through
        :func:`repro.sim.calibration.fit_link_from_bucket_timings` (which
        bumps the calibration generation, invalidating every cached
        result) and registers it under ``name`` for by-name queries.
        """
        link = canonical_link(fit_link_from_bucket_timings(
            samples, world_size, name=name, nominal_gbps=nominal_gbps
        ))
        with self._lock:
            self.links[link.name] = link
        return link

    def resolve_link(self, name: str) -> LinkSpec:
        """A preset or previously calibrated link, by name."""
        with self._lock:
            link = self.links.get(name)
        if link is None:
            raise KeyError(
                f"unknown link {name!r}; known: "
                f"{', '.join(sorted(self.links))}"
            )
        return link

    def invalidate(self) -> int:
        """Explicitly drop every cached plan; returns the count dropped."""
        return self.cache.invalidate_all()

    # -- queries -----------------------------------------------------------

    def lookup(self, query: PlanQuery) -> Optional[PlanResult]:
        """Cache-only probe (no simulation, counts as hit/miss)."""
        generation = self.generation()
        payload = self.cache.get(query.cache_key(), generation)
        if payload is None:
            return None
        return PlanResult(query, payload, SOURCE_CACHE, generation)

    def submit(self, query: PlanQuery) -> PlanResult:
        """Answer one query: cache hit, coalesced wait, or fresh compute."""
        key = query.cache_key()
        generation = self.generation()
        payload = self.cache.get(key, generation)
        if payload is not None:
            return PlanResult(query, payload, SOURCE_CACHE, generation)
        with self._lock:
            slot = self._inflight.get(key)
            leader = slot is None
            if leader:
                slot = _InFlight()
                self._inflight[key] = slot
        if leader:
            return self._compute_as_leader(query, key, slot, generation)
        slot.done.wait()
        if slot.error is not None:
            raise slot.error
        with self._lock:
            self._coalesced += 1
        assert slot.payload is not None
        return PlanResult(
            query, slot.payload, SOURCE_COALESCED, slot.generation
        )

    def _compute_as_leader(
        self, query: PlanQuery, key: str, slot: _InFlight, generation: int
    ) -> PlanResult:
        try:
            payload = self._compute(query)
        except BaseException as exc:  # propagate to every waiter
            slot.error = exc
            with self._lock:
                self._inflight.pop(key, None)
            slot.done.set()
            raise
        with self._lock:
            self._computes += 1
            self._inflight.pop(key, None)
        # Only memoize if calibration did not move mid-compute: a payload
        # priced under generation g must never be served as generation g+1.
        if self.generation() == generation:
            self.cache.put(key, generation, payload)
        slot.payload = payload
        slot.generation = generation
        slot.done.set()
        return PlanResult(query, payload, SOURCE_COMPUTED, generation)

    def submit_batch(
        self,
        queries: Sequence[PlanQuery],
        return_exceptions: bool = False,
    ) -> List[PlanResult]:
        """Answer a batch, preserving order.

        Cache hits are answered inline; misses fan out across the worker
        pool, and duplicates inside the batch coalesce onto one compute
        via the single-flight path. With ``return_exceptions=True`` a
        query whose compute fails (e.g. an unknown model) yields its
        exception object in that slot instead of aborting the whole
        batch — one bad query must not sink its neighbours.
        """
        pending: List[Tuple[int, "object"]] = []
        results: List[Optional[PlanResult]] = [None] * len(queries)
        for index, query in enumerate(queries):
            hit = self.lookup(query)
            if hit is not None:
                results[index] = hit
            else:
                pending.append((index, self._pool.submit(self.submit, query)))
        for index, future in pending:
            try:
                results[index] = future.result()  # type: ignore[union-attr]
            except Exception as exc:  # noqa: BLE001 — caller opted in
                if not return_exceptions:
                    raise
                results[index] = exc  # type: ignore[assignment]
        return results  # type: ignore[return-value]

    # -- warm start --------------------------------------------------------

    def warm_start(
        self,
        models: Optional[Sequence[str]] = None,
        links: Sequence[str] = ("10GbE",),
        gpus: Sequence[int] = (32,),
        tune_buffer: bool = False,
    ) -> int:
        """Precompute the grid for the registry models.

        Returns the number of fresh simulator runs (already-cached grid
        points cost nothing). The default grid skips buffer tuning — the
        expensive refinement is better spent on demand — but a service
        fronting one known cluster should warm with ``tune_buffer=True``.
        """
        from repro.models.registry import MODEL_SPECS

        model_names = tuple(models) if models is not None else MODEL_SPECS
        grid = [
            PlanQuery(
                model=model, gpus=world, link=self.resolve_link(link_name),
                tune_buffer=tune_buffer,
            )
            for model in model_names
            for link_name in links
            for world in gpus
        ]
        before = self.stats()["computes"]
        self.submit_batch(grid)
        return self.stats()["computes"] - before

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Service + cache counters."""
        with self._lock:
            computes = self._computes
            coalesced = self._coalesced
            inflight = len(self._inflight)
        return {
            "computes": computes,
            "coalesced": coalesced,
            "inflight": inflight,
            "generation": self.generation(),
            "cache": self.cache.stats(),
        }


def serve_jsonl(
    lines: Iterable[str],
    service: PlannerService,
    batch_size: int = 64,
) -> Iterable[str]:
    """The ``python -m repro serve`` loop: JSONL queries in, JSONL out.

    Each input line is a :meth:`PlanQuery.to_dict` document (a ``link``
    given as a bare string resolves against the service's named links).
    Yields one canonical JSON line per query, in input order:
    ``{"key": ..., "generation": ..., "source": ..., "plan": {...}}``.
    Malformed lines — and well-formed queries whose compute fails, e.g.
    an unknown model — yield an ``{"error": ...}`` line instead of
    killing the stream.
    """
    import json

    from repro.serve.query import dumps_canonical

    batch: List[PlanQuery] = []
    errors: Dict[int, str] = {}  # position in the current window -> message
    position = 0

    def flush():
        nonlocal batch, errors, position
        answered = service.submit_batch(batch, return_exceptions=True)
        answers = iter(answered)
        for slot in range(position):
            if slot in errors:
                yield dumps_canonical({"error": errors[slot]})
                continue
            result = next(answers)
            if isinstance(result, Exception):
                yield dumps_canonical(
                    {"error": f"{type(result).__name__}: {result}"}
                )
            else:
                yield dumps_canonical({
                    "key": result.query.cache_key(),
                    "generation": result.generation,
                    "source": result.source,
                    "plan": json.loads(result.payload),
                })
        batch, errors, position = [], {}, 0

    for raw in lines:
        raw = raw.strip()
        if not raw:
            continue
        try:
            doc = json.loads(raw)

            def named_link(value):
                # A bare-string link resolves against the service's
                # registry (presets + recalibrated fits).
                if not isinstance(value, str):
                    return value
                link = service.resolve_link(value)
                return {"name": value, "alpha": link.alpha,
                        "beta": link.beta,
                        "nominal_gbps": link.nominal_gbps}

            if isinstance(doc.get("link"), str):
                doc = dict(doc)
                doc["link"] = named_link(doc["link"])
            if isinstance(doc.get("topology"), dict):
                doc = dict(doc)
                topo = dict(doc["topology"])
                topo["intra_link"] = named_link(topo.get("intra_link"))
                topo["inter_link"] = named_link(topo.get("inter_link"))
                doc["topology"] = topo
            batch.append(PlanQuery.from_dict(doc))
        except Exception as exc:  # noqa: BLE001 — reported per line
            errors[position] = f"{type(exc).__name__}: {exc}"
        position += 1
        if position >= batch_size:
            yield from flush()
    if position:
        yield from flush()
