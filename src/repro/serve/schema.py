"""Versioned serialization of plans — one schema, two frontends.

``python -m repro plan --json`` and the ``python -m repro serve`` JSONL
loop both emit exactly this schema, and the result cache stores exactly
the canonical string :func:`plan_payload` produces. That single choke
point is what makes the service's contract checkable: a cached plan is
*byte-identical* to an uncached one because both are the same pure
function of the same :class:`~repro.planner.Plan`.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.planner import MethodAssessment, Plan
from repro.serve.query import SCHEMA_VERSION, canonical_float, dumps_canonical
from repro.sim.autotune import TuneResult


def assessment_to_dict(item: MethodAssessment) -> Dict[str, object]:
    """JSON-safe form of one candidate assessment."""
    return {
        "method": item.method,
        "iteration_ms": canonical_float(item.iteration_ms, "iteration_ms"),
        "memory_gib": canonical_float(item.memory_gib, "memory_gib"),
        "fits_memory": bool(item.fits_memory),
        "quality_note": item.quality_note,
    }


def assessment_from_dict(doc: Dict[str, object]) -> MethodAssessment:
    """Inverse of :func:`assessment_to_dict`."""
    return MethodAssessment(
        method=str(doc["method"]),
        iteration_ms=float(doc["iteration_ms"]),  # type: ignore[arg-type]
        memory_gib=float(doc["memory_gib"]),  # type: ignore[arg-type]
        fits_memory=bool(doc["fits_memory"]),
        quality_note=str(doc["quality_note"]),
    )


def plan_to_dict(plan: Plan) -> Dict[str, object]:
    """Versioned JSON-safe form of a full recommendation."""
    tuning: Optional[Dict[str, object]] = None
    if plan.tuning is not None:
        tuning = plan.tuning.to_dict()
    return {
        "schema": SCHEMA_VERSION,
        "model": plan.model,
        "world_size": int(plan.world_size),
        "link_name": plan.link_name,
        "rank": int(plan.rank),
        "assessments": [assessment_to_dict(a) for a in plan.assessments],
        "recommended_method": plan.recommended_method,
        "expected_iteration_ms": canonical_float(
            plan.expected_iteration_ms, "expected_iteration_ms"
        ),
        "tuned_buffer_mb": canonical_float(
            plan.tuned_buffer_mb, "tuned_buffer_mb"
        ),
        "speedup_over_ssgd": canonical_float(
            plan.speedup_over_ssgd, "speedup_over_ssgd"
        ),
        "tuning": tuning,
    }


def plan_from_dict(doc: Dict[str, object]) -> Plan:
    """Inverse of :func:`plan_to_dict`; rejects foreign schema versions."""
    schema = doc.get("schema", SCHEMA_VERSION)
    if schema != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema {schema!r}; this build reads "
            f"{SCHEMA_VERSION!r}"
        )
    tuning = None
    if doc.get("tuning") is not None:
        tuning = TuneResult.from_dict(doc["tuning"])  # type: ignore[arg-type]
    return Plan(
        model=str(doc["model"]),
        world_size=int(doc["world_size"]),  # type: ignore[arg-type]
        link_name=str(doc["link_name"]),
        rank=int(doc["rank"]),  # type: ignore[arg-type]
        assessments=tuple(
            assessment_from_dict(a) for a in doc["assessments"]  # type: ignore[union-attr]
        ),
        recommended_method=str(doc["recommended_method"]),
        expected_iteration_ms=float(doc["expected_iteration_ms"]),  # type: ignore[arg-type]
        tuned_buffer_mb=float(doc["tuned_buffer_mb"]),  # type: ignore[arg-type]
        speedup_over_ssgd=float(doc["speedup_over_ssgd"]),  # type: ignore[arg-type]
        tuning=tuning,
    )


def plan_payload(plan: Plan) -> str:
    """The canonical wire/cache form: deterministic JSON of the plan.

    This exact string is what the result cache stores and what both
    frontends emit — byte-identity between cached and fresh answers is
    asserted against it.
    """
    return dumps_canonical(plan_to_dict(plan))
