"""Canonical, hashable planning queries.

A :class:`PlanQuery` is the cache key of the planning service: two queries
that describe the same deployment must hash identically, byte for byte,
or the memoized result cache fragments and its hit rate collapses. The
subtle part is floats — ``LinkSpec(alpha=1e-5)`` and
``LinkSpec(alpha=0.00001)`` parse to the same double, but ``-0.0 == 0.0``
while ``repr`` distinguishes them, and integers (``beta=10**9``) compare
equal to their float forms while serializing differently. Construction
therefore normalizes every numeric field through :func:`canonical_float`
(IEEE-754 double, negative zero collapsed, non-finite rejected), so the
canonical JSON form — and hence the SHA-256 cache key — is a pure
function of numeric *value*, not spelling.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.comm.cost_model import LinkSpec
from repro.comm.topology import ClusterTopology

#: Version tag stamped on every serialized query and plan. Bump on any
#: field change; readers reject documents from other versions instead of
#: silently mis-parsing them.
#: /2: added the optional ``topology`` field (two-level node topology).
SCHEMA_VERSION = "repro.plan/2"

# Methods the planner (and therefore the service) knows how to assess.
# Mirrors repro.planner._CANDIDATES; imported lazily there to keep this
# module import-light for the hot hashing path.
QUERY_METHODS = ("ssgd", "signsgd", "topk", "powersgd", "powersgd_star",
                 "acpsgd")


def canonical_float(value: float, name: str = "value") -> float:
    """Normalize a number so equal values share one representation.

    - any real number (int, bool excluded, numpy scalar, float) becomes a
      Python float;
    - ``-0.0`` collapses to ``0.0`` (they compare equal but ``repr`` and
      the raw bits differ);
    - NaN and infinities are rejected — NaN is unequal even to itself, so
      it can never be a cache key component.

    After this, ``repr`` (shortest round-trip in all supported Pythons)
    is a canonical spelling: equal floats produce equal strings.
    """
    if isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got bool")
    out = float(value)
    if not math.isfinite(out):
        raise ValueError(f"{name} must be finite, got {out!r}")
    if out == 0.0:
        return 0.0  # collapse -0.0
    return out


def canonical_link(link: LinkSpec) -> LinkSpec:
    """Return ``link`` with every numeric field canonicalized."""
    return LinkSpec(
        name=str(link.name),
        alpha=canonical_float(link.alpha, "alpha"),
        beta=canonical_float(link.beta, "beta"),
        nominal_gbps=canonical_float(link.nominal_gbps, "nominal_gbps"),
    )


def link_to_dict(link: LinkSpec) -> Dict[str, object]:
    """JSON-safe form of a (canonicalized) link."""
    link = canonical_link(link)
    return {
        "name": link.name,
        "alpha": link.alpha,
        "beta": link.beta,
        "nominal_gbps": link.nominal_gbps,
    }


def link_from_dict(doc: Dict[str, object]) -> LinkSpec:
    """Inverse of :func:`link_to_dict`."""
    return canonical_link(LinkSpec(
        name=str(doc["name"]),
        alpha=float(doc["alpha"]),  # type: ignore[arg-type]
        beta=float(doc["beta"]),  # type: ignore[arg-type]
        nominal_gbps=float(doc["nominal_gbps"]),  # type: ignore[arg-type]
    ))


def canonical_topology(topology: ClusterTopology) -> ClusterTopology:
    """Return ``topology`` with both link levels canonicalized."""
    return ClusterTopology(
        num_nodes=int(topology.num_nodes),
        gpus_per_node=int(topology.gpus_per_node),
        intra_link=canonical_link(topology.intra_link),
        inter_link=canonical_link(topology.inter_link),
    )


def topology_to_dict(topology: ClusterTopology) -> Dict[str, object]:
    """JSON-safe form of a (canonicalized) topology."""
    topology = canonical_topology(topology)
    return {
        "num_nodes": topology.num_nodes,
        "gpus_per_node": topology.gpus_per_node,
        "intra_link": link_to_dict(topology.intra_link),
        "inter_link": link_to_dict(topology.inter_link),
    }


def topology_from_dict(doc: Dict[str, object]) -> ClusterTopology:
    """Inverse of :func:`topology_to_dict`."""
    return canonical_topology(ClusterTopology(
        num_nodes=int(doc["num_nodes"]),  # type: ignore[arg-type]
        gpus_per_node=int(doc["gpus_per_node"]),  # type: ignore[arg-type]
        intra_link=link_from_dict(doc["intra_link"]),  # type: ignore[arg-type]
        inter_link=link_from_dict(doc["inter_link"]),  # type: ignore[arg-type]
    ))


def dumps_canonical(doc: object) -> str:
    """Deterministic JSON: sorted keys, no whitespace, ASCII only.

    Equal documents produce byte-identical strings — the foundation of
    both the cache key and the byte-identical-payload contract.
    """
    return json.dumps(doc, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=True, allow_nan=False)


@dataclass(frozen=True)
class PlanQuery:
    """One capacity-planning question, in canonical form.

    Attributes:
        model: registry model name (e.g. ``"BERT-Large"``).
        gpus: cluster size (world size of the simulated ring).
        link: the interconnect, canonicalized; either a preset or a
            calibrated :class:`LinkSpec` fitted from measurements.
        rank: low-rank compression rank; ``None`` means the paper's
            per-model default (resolved at compute time, so the *query*
            stays distinct from an explicit-rank query).
        batch_size: per-GPU batch; ``None`` = the paper's.
        methods: candidate grid the planner assesses.
        topk_ratio: Top-k keep fraction for the grid's ``topk`` entry.
        tune_buffer: run the fusion-buffer autotuner for the winner.
        topology: optional two-level node topology (canonicalized; its
            world size must equal ``gpus``). When set, the planner prices
            all-reduces by the best of the flat and hierarchical
            schedules. ``None`` (flat ``link`` only) remains a distinct
            query from any explicit topology.
    """

    model: str
    gpus: int
    link: LinkSpec
    rank: Optional[int] = None
    batch_size: Optional[int] = None
    methods: Tuple[str, ...] = QUERY_METHODS
    topk_ratio: float = 0.001
    tune_buffer: bool = True
    topology: Optional[ClusterTopology] = None

    def __post_init__(self) -> None:
        if self.gpus < 1:
            raise ValueError(f"gpus must be >= 1, got {self.gpus}")
        if self.rank is not None and self.rank < 1:
            raise ValueError(f"rank must be >= 1, got {self.rank}")
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        methods = tuple(str(m) for m in self.methods)
        if not methods:
            raise ValueError("need at least one candidate method")
        for method in methods:
            if method not in QUERY_METHODS:
                raise ValueError(
                    f"unknown method {method!r}; "
                    f"available: {', '.join(QUERY_METHODS)}"
                )
        # Normalize in place (frozen dataclass => object.__setattr__).
        object.__setattr__(self, "model", str(self.model))
        object.__setattr__(self, "gpus", int(self.gpus))
        object.__setattr__(self, "link", canonical_link(self.link))
        object.__setattr__(
            self, "rank", None if self.rank is None else int(self.rank)
        )
        object.__setattr__(
            self, "batch_size",
            None if self.batch_size is None else int(self.batch_size),
        )
        object.__setattr__(self, "methods", methods)
        object.__setattr__(
            self, "topk_ratio", canonical_float(self.topk_ratio, "topk_ratio")
        )
        object.__setattr__(self, "tune_buffer", bool(self.tune_buffer))
        if self.topology is not None:
            if self.topology.world_size != self.gpus:
                raise ValueError(
                    f"topology world size {self.topology.world_size} != "
                    f"gpus {self.gpus}"
                )
            object.__setattr__(
                self, "topology", canonical_topology(self.topology)
            )

    def to_dict(self) -> Dict[str, object]:
        """Versioned JSON-safe form (shared by the CLI and the service)."""
        return {
            "schema": SCHEMA_VERSION,
            "model": self.model,
            "gpus": self.gpus,
            "link": link_to_dict(self.link),
            "rank": self.rank,
            "batch_size": self.batch_size,
            "methods": list(self.methods),
            "topk_ratio": self.topk_ratio,
            "tune_buffer": self.tune_buffer,
            "topology": (None if self.topology is None
                         else topology_to_dict(self.topology)),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "PlanQuery":
        """Inverse of :meth:`to_dict`; rejects foreign schema versions."""
        schema = doc.get("schema", SCHEMA_VERSION)
        if schema != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported schema {schema!r}; this build reads "
                f"{SCHEMA_VERSION!r}"
            )
        return cls(
            model=str(doc["model"]),
            gpus=int(doc["gpus"]),  # type: ignore[arg-type]
            link=link_from_dict(doc["link"]),  # type: ignore[arg-type]
            rank=None if doc.get("rank") is None else int(doc["rank"]),  # type: ignore[arg-type]
            batch_size=(None if doc.get("batch_size") is None
                        else int(doc["batch_size"])),  # type: ignore[arg-type]
            methods=tuple(doc.get("methods", QUERY_METHODS)),  # type: ignore[arg-type]
            topk_ratio=float(doc.get("topk_ratio", 0.001)),  # type: ignore[arg-type]
            tune_buffer=bool(doc.get("tune_buffer", True)),
            topology=(None if doc.get("topology") is None
                      else topology_from_dict(doc["topology"])),  # type: ignore[arg-type]
        )

    def cache_key(self) -> str:
        """SHA-256 over the canonical JSON form.

        Equal queries — including ones spelled with different float
        literals — share one key; the link's *name* participates (two
        differently named links with identical alpha/beta are distinct
        deployments by declaration).
        """
        digest = hashlib.sha256(
            dumps_canonical(self.to_dict()).encode("ascii")
        )
        return digest.hexdigest()
