"""repro.serve: the capacity-planning service over the simulator.

The "serve millions of users" face of the project: the calibrated
performance simulator becomes the *backend* of a planning service, and
this package is its front — canonical hashable queries
(:mod:`repro.serve.query`), one versioned plan schema shared by the CLI
and the service (:mod:`repro.serve.schema`), a sharded memoized result
cache (:mod:`repro.serve.cache`), the single-flighted batched service
itself (:mod:`repro.serve.service`), and the throughput benchmark
(:mod:`repro.serve.bench`).

    >>> from repro.serve import PlannerService, PlanQuery
    >>> from repro.sim.calibration import SIM_LINKS
    >>> with PlannerService() as service:
    ...     q = PlanQuery("ResNet-50", gpus=32, link=SIM_LINKS["10GbE"])
    ...     first = service.submit(q)     # simulator sweep
    ...     again = service.submit(q)     # cache hit, byte-identical
    ...     assert first.payload == again.payload

See ``docs/planner_service.md`` for the architecture, the cache-key
contract, the invalidation rules, and the benchmark methodology.
"""

from repro.serve.cache import ResultCache, ShardStats
from repro.serve.query import (
    SCHEMA_VERSION,
    PlanQuery,
    canonical_float,
    canonical_link,
    canonical_topology,
    dumps_canonical,
    link_from_dict,
    link_to_dict,
    topology_from_dict,
    topology_to_dict,
)
from repro.serve.schema import (
    assessment_from_dict,
    assessment_to_dict,
    plan_from_dict,
    plan_payload,
    plan_to_dict,
)
from repro.serve.service import (
    PlannerService,
    PlanResult,
    compute_plan_payload,
    serve_jsonl,
)

__all__ = [
    "SCHEMA_VERSION",
    "PlanQuery",
    "PlanResult",
    "PlannerService",
    "ResultCache",
    "ShardStats",
    "assessment_from_dict",
    "assessment_to_dict",
    "canonical_float",
    "canonical_link",
    "canonical_topology",
    "compute_plan_payload",
    "dumps_canonical",
    "link_from_dict",
    "link_to_dict",
    "topology_from_dict",
    "topology_to_dict",
    "plan_from_dict",
    "plan_payload",
    "plan_to_dict",
    "serve_jsonl",
]
