"""Deployment planner: one call from (model, cluster) to a recommendation.

The question the paper equips a practitioner to answer is *"how should I
aggregate gradients on my cluster?"*. This module packages the repository's
machinery — the performance simulator, the buffer autotuner, and the memory
model — behind a single API:

    >>> from repro.planner import plan
    >>> p = plan("BERT-Large", gpus=32, link="10GbE")
    >>> p.recommended_method, p.expected_iteration_ms
    ('acpsgd', ...)

used by ``examples/cluster_planning.py`` and suitable for notebooks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.comm.cost_model import LinkSpec
from repro.comm.topology import ClusterTopology
from repro.models import get_model_spec
from repro.models.registry import PAPER_RANKS
from repro.sim.autotune import TuneResult, autotune_buffer_size
from repro.sim.calibration import SIM_LINKS
from repro.sim.memory import RTX2080TI_MEMORY_BYTES, estimate_memory
from repro.sim.strategies import ClusterSpec, simulate_iteration

MB = 1024.0 * 1024.0

# Methods the planner considers, with their practical caveats.
_CANDIDATES = ("ssgd", "signsgd", "topk", "powersgd", "powersgd_star", "acpsgd")

_QUALITY_NOTES = {
    "ssgd": "exact gradients (no approximation)",
    "signsgd": "biased; needs error feedback and small LR; weakest quality",
    "topk": "biased; error feedback makes it solid; compute-heavy selection",
    "powersgd": "low-rank; accuracy on par with S-SGD at adequate rank",
    "powersgd_star": "as Power-SGD; overlap may contend with compute",
    "acpsgd": "low-rank; accuracy on par with S-SGD (EF + reuse)",
}


@dataclass(frozen=True)
class MethodAssessment:
    """One candidate's simulated cost and feasibility."""

    method: str
    iteration_ms: float
    memory_gib: float
    fits_memory: bool
    quality_note: str


@dataclass(frozen=True)
class Plan:
    """A deployment recommendation for (model, cluster)."""

    model: str
    world_size: int
    link_name: str
    rank: int
    assessments: Tuple[MethodAssessment, ...]
    recommended_method: str
    expected_iteration_ms: float
    tuned_buffer_mb: float
    speedup_over_ssgd: float
    tuning: Optional[TuneResult] = None

    def render(self) -> str:
        """Human-readable recommendation card."""
        from repro.experiments.common import METHOD_LABELS
        from repro.utils.formatting import render_table

        rows = []
        for item in self.assessments:
            marker = " <-- recommended" if item.method == self.recommended_method else ""
            rows.append([
                METHOD_LABELS.get(item.method, item.method),
                f"{item.iteration_ms:.0f}ms",
                f"{item.memory_gib:.1f}GiB" + ("" if item.fits_memory else " (OOM)"),
                item.quality_note + marker,
            ])
        header = (
            f"Plan for {self.model} on {self.world_size} GPUs ({self.link_name}), "
            f"rank {self.rank}:"
        )
        table = render_table(["method", "iteration", "memory", "notes"], rows)
        footer = (
            f"\nrecommended: {self.recommended_method} at "
            f"~{self.expected_iteration_ms:.0f}ms/iter "
            f"({self.speedup_over_ssgd:.1f}x over S-SGD), "
            f"fusion buffer ~{self.tuned_buffer_mb:.1f}MB"
        )
        return f"{header}\n{table}{footer}"


def plan(
    model_name: str,
    gpus: int = 32,
    link: Union[str, LinkSpec] = "10GbE",
    rank: Optional[int] = None,
    batch_size: Optional[int] = None,
    memory_capacity_bytes: float = RTX2080TI_MEMORY_BYTES,
    tune_buffer: bool = True,
    methods: Optional[Sequence[str]] = None,
    topk_ratio: float = 0.001,
    topology: Optional[ClusterTopology] = None,
) -> Plan:
    """Assess every method and recommend one for this deployment.

    The recommendation is the fastest method whose memory estimate fits
    and whose convergence quality is on par with S-SGD (the sign/top-k
    family is reported but never recommended over a low-rank method that
    is also faster, matching the paper's conclusions).

    Args:
        model_name: a model from :mod:`repro.models.registry`.
        gpus: cluster size.
        link: one of ``1GbE`` / ``10GbE`` / ``100GbIB``, or an explicit
            :class:`~repro.comm.cost_model.LinkSpec` — e.g. one fitted
            from measured bucket timings by
            :func:`repro.sim.calibration.fit_link_from_bucket_timings`.
        rank: low-rank compression rank (default: the paper's choice).
        batch_size: per-GPU batch (default: the paper's).
        memory_capacity_bytes: per-GPU memory for the feasibility check.
        tune_buffer: run the fusion-buffer autotuner for the winner.
        methods: candidate subset to assess (default: all of
            :data:`_CANDIDATES`). S-SGD is always simulated as the
            speedup baseline even when excluded from the assessments.
        topk_ratio: Top-k keep fraction (paper: 0.001).
        topology: optional two-level node topology; when given (its world
            size must equal ``gpus``) all-reduce durations are priced by
            the best of the flat and hierarchical schedules (see
            :mod:`repro.comm.topology`), so the recommendation accounts
            for fast intra-node links.
    """
    if isinstance(link, LinkSpec):
        link_spec = link
    else:
        if link not in SIM_LINKS:
            raise ValueError(
                f"unknown link {link!r}; available: {', '.join(sorted(SIM_LINKS))}"
            )
        link_spec = SIM_LINKS[link]
    candidates = tuple(methods) if methods is not None else _CANDIDATES
    if not candidates:
        raise ValueError("need at least one candidate method")
    for method in candidates:
        if method not in _CANDIDATES:
            raise ValueError(
                f"unknown method {method!r}; available: {', '.join(_CANDIDATES)}"
            )
    spec = get_model_spec(model_name)
    rank = rank if rank is not None else PAPER_RANKS[model_name]
    batch = batch_size if batch_size is not None else spec.default_batch_size
    cluster = ClusterSpec(gpus, link_spec, topology=topology)

    def assess(method: str) -> MethodAssessment:
        breakdown = simulate_iteration(
            method, spec, cluster=cluster, rank=rank, batch_size=batch,
            topk_ratio=topk_ratio,
        )
        memory = estimate_memory(
            "powersgd" if method == "powersgd_star" else method,
            spec, batch, gpus, rank=rank, topk_ratio=topk_ratio,
        )
        return MethodAssessment(
            method=method,
            iteration_ms=breakdown.total * 1e3,
            memory_gib=memory.total / (1024.0**3),
            fits_memory=memory.fits(memory_capacity_bytes),
            quality_note=_QUALITY_NOTES[method],
        )

    assessments = [assess(method) for method in candidates]

    # Recommend among methods that fit memory and hold S-SGD-level quality.
    quality_tier = ("ssgd", "powersgd", "powersgd_star", "acpsgd")
    eligible = [a for a in assessments
                if a.fits_memory and a.method in quality_tier]
    if not eligible:  # fall back to anything that fits
        eligible = [a for a in assessments if a.fits_memory] or list(assessments)
    winner = min(eligible, key=lambda a: a.iteration_ms)

    ssgd_ms = next(
        (a.iteration_ms for a in assessments if a.method == "ssgd"),
        None,
    )
    if ssgd_ms is None:  # baseline still simulated when not assessed
        ssgd_ms = assess("ssgd").iteration_ms
    tuned_mb = 25.0
    expected_ms = winner.iteration_ms
    tuning: Optional[TuneResult] = None
    if tune_buffer:
        tuning = autotune_buffer_size(
            winner.method, spec, cluster=cluster, rank=rank, batch_size=batch,
            refine_rounds=2,
        )
        tuned_mb = tuning.best_buffer_mb
        expected_ms = min(expected_ms, tuning.best_time * 1e3)

    return Plan(
        model=model_name,
        world_size=gpus,
        link_name=link_spec.name,
        rank=rank,
        assessments=tuple(assessments),
        recommended_method=winner.method,
        expected_iteration_ms=expected_ms,
        tuned_buffer_mb=tuned_mb,
        speedup_over_ssgd=ssgd_ms / expected_ms,
        tuning=tuning,
    )
