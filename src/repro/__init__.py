"""repro: reproduction of "Evaluation and Optimization of Gradient
Compression for Distributed Deep Learning" (Zhang et al., ICDCS 2023).

Top-level packages:

- :mod:`repro.nn` — from-scratch numpy NN framework with gradient hooks.
- :mod:`repro.models` — runnable convnets + exact shape-level specs of the
  paper's models (ResNet-50/152, BERT-Base/Large, VGG-16, ResNet-18).
- :mod:`repro.comm` — in-process collectives (real ring all-reduce,
  all-gather, ...) and alpha-beta network cost models.
- :mod:`repro.compression` — Sign-SGD, Top-k, Random-k, QSGD, Power-SGD and
  **ACP-SGD** (the paper's contribution) compressors.
- :mod:`repro.optim` — SGD + LR schedules + one distributed gradient
  aggregator per method.
- :mod:`repro.train` — synchronous data-parallel trainer and synthetic
  datasets for the convergence experiments.
- :mod:`repro.sim` — discrete-event cluster performance simulator (WFBP,
  tensor fusion, compute/communication overlap and contention).
- :mod:`repro.serve` — capacity-planning service over the simulator:
  canonical hashable queries, sharded memoized result cache with
  single-flight de-duplication, batched API + JSONL loop, and
  calibration-generation invalidation.
- :mod:`repro.experiments` — one driver per table/figure of the paper.
"""

__version__ = "1.0.0"

from repro.planner import Plan, plan  # noqa: E402  (convenience API)

__all__ = [
    "nn",
    "models",
    "comm",
    "compression",
    "optim",
    "train",
    "sim",
    "serve",
    "experiments",
    "Plan",
    "plan",
]
