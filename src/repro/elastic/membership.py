"""Step-boundary membership control for elastic data-parallel training.

The :class:`MembershipController` sits between the trainer and a
:class:`~repro.faults.resilient.ResilientProcessGroup` and owns the full
membership story of a run:

- **Ejections** (fail-down) are committed by the group's ``begin_step`` as
  before; the controller records them in its :class:`MembershipLog`.
- **Rejoins** (:class:`~repro.faults.plan.Recovery` events) readmit a
  previously ejected rank under its original rank id.
- **Joins** (:class:`~repro.faults.plan.Join` events) admit a brand-new
  rank under a never-used id (allocated past the highest id ever seen, so
  ids are never recycled and per-rank state can never be confused).

All three commit only at :meth:`MembershipController.begin_step` — the
same boundary the fault stack uses for ejections — so the world size never
changes *within* a training step and the ring re-chunks exactly once per
membership change.

Admission protocol (deterministic, in commit order):

1. the group adds the rank to the live roster (``admit``), which rescales
   every later averaged collective to the new world size;
2. the current model parameters and optimizer state are broadcast from the
   *donor* — the lowest-id survivor — through the group's ``broadcast``
   collective, so the sync traffic is measured like any other collective;
3. the aggregator builds fresh compressor state for the rank, warm-started
   from the donor's (:meth:`GradientAggregator.admit_rank`): shared
   carried state (Power-SGD's reused query, ACP-SGD's alternating factors)
   is copied, per-worker error-feedback residuals start at zero;
4. optionally, the learning rate is rescaled linearly with the world size
   (the linear-scaling rule; off by default because the repo's convergence
   baselines fix the global batch assignment per worker);
5. the trainer (which re-syncs its roster every step) re-shards the
   dataset disjointly and exhaustively over the new roster and allocates
   an arena slab and data-sampling stream for the new rank.

Every draw and every allocation is a pure function of (seed, rank id,
call index), so a churn schedule replayed over the same plan is
bit-identical — the property ``scripts/check_determinism.py`` gates on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.faults.plan import FaultPlan, Join, Recovery
from repro.faults.resilient import ResilientProcessGroup


@dataclass(frozen=True)
class MembershipChange:
    """One committed membership transition (the controller's log entry)."""

    kind: str  # "eject" | "rejoin" | "join"
    rank: int
    call_index: int  # group call index at which the change committed
    world_size: int  # live world size *after* the change
    donor: Optional[int] = None  # state donor for admissions, None for ejections


@dataclass
class MembershipLog:
    """Append-only record of every committed membership change."""

    changes: List[MembershipChange] = field(default_factory=list)

    def of_kind(self, kind: str) -> List[MembershipChange]:
        return [change for change in self.changes if change.kind == kind]

    def render(self) -> str:
        """Human-readable one-change-per-line summary."""
        if not self.changes:
            return "no membership changes"
        lines = []
        for change in self.changes:
            donor = f" (state from rank {change.donor})" if change.donor is not None else ""
            lines.append(
                f"call {change.call_index:>4}: {change.kind:<6} rank "
                f"{change.rank}{donor} -> world {change.world_size}"
            )
        return "\n".join(lines)


class MembershipController:
    """Commits scheduled membership events at step boundaries.

    Args:
        group: the resilient group whose roster is being managed.
        plan: the fault plan holding the Recovery/Join schedule; defaults
            to the plan of the group's own injector (the common case where
            failures and rejoins come from one schedule).
        rescale_lr: multiply the bound optimizer's learning rate by
            ``new_world / old_world`` at every commit (linear scaling).

    The controller is inert until a trainer is :meth:`bind`-ed: without
    one it still manages the roster (useful for unit tests) but skips the
    state-sync half of the admission protocol.
    """

    def __init__(
        self,
        group: ResilientProcessGroup,
        plan: Optional[FaultPlan] = None,
        rescale_lr: bool = False,
    ):
        if plan is None:
            if group.injector is None:
                raise ValueError(
                    "no plan given and the group has no injector to take "
                    "one from"
                )
            plan = group.injector.plan
        self.group = group
        self.plan = plan
        self.rescale_lr = rescale_lr
        self.log = MembershipLog()
        self._events = list(plan.membership_events())
        self._cursor = 0
        # Dynamically scheduled rejoins (the worker supervisor's
        # respawn-and-rejoin requests): (boundaries remaining, rank).
        self._dynamic: List[List[int]] = []
        self._trainer = None

    def bind(self, trainer) -> None:
        """Attach the trainer whose model/optimizer/aggregator we sync.

        Duck-typed: anything with ``model``, ``optimizer`` and
        ``aggregator`` attributes works.
        """
        self._trainer = trainer

    @property
    def pending_events(self) -> int:
        """Scheduled membership events not yet committed."""
        return len(self._events) - self._cursor + len(self._dynamic)

    def schedule_rejoin(self, rank: int, after_boundaries: int) -> None:
        """Request a dynamic readmission of ``rank`` (supervisor path).

        Plan events are known up front; a worker crash is not — the
        supervisor discovers it mid-step and asks for the rank back
        *here*. The rejoin commits at the ``after_boundaries``-th
        :meth:`begin_step` from now, through the same admission protocol
        as a plan :class:`~repro.faults.plan.Recovery`. With
        ``after_boundaries=1`` it commits at the very boundary the
        ejection does (eject-then-readmit: the roster never visibly
        shrinks); larger values leave the world smaller for
        ``after_boundaries - 1`` steps. Counting boundaries — not wall
        clock — keeps the schedule bit-reproducible across backends.
        """
        if after_boundaries < 1:
            raise ValueError(
                f"after_boundaries must be >= 1, got {after_boundaries}"
            )
        if rank < 0:
            raise ValueError(f"rank must be >= 0, got {rank}")
        self._dynamic.append([after_boundaries, rank])

    def begin_step(self) -> List[int]:
        """Commit due ejections and admissions; returns the live roster.

        Ejections first (the group's own boundary logic), then every
        Recovery/Join whose ``call_index`` has been reached, in the plan's
        deterministic commit order. An admission that races its own
        ejection within one boundary resolves to eject-then-readmit.
        """
        before = set(self.group.live_ranks)
        self.group.begin_step()
        for rank in sorted(before - set(self.group.live_ranks)):
            self.log.changes.append(
                MembershipChange(
                    "eject", rank, self.group.call_index, self.group.world_size
                )
            )
        while (self._cursor < len(self._events)
               and self._events[self._cursor].call_index <= self.group.call_index):
            event = self._events[self._cursor]
            self._cursor += 1
            if isinstance(event, Recovery):
                if event.rank in self.group.live_ranks:
                    continue  # recovered before its ejection ever committed
                self._admit(event.rank, rejoin=True)
            elif isinstance(event, Join):
                self._admit(self.group.allocate_rank(), rejoin=False)
        if self._dynamic:
            due: List[int] = []
            remaining: List[List[int]] = []
            for boundaries, rank in self._dynamic:
                if boundaries <= 1:
                    due.append(rank)
                else:
                    remaining.append([boundaries - 1, rank])
            self._dynamic = remaining
            for rank in sorted(due):
                if rank in self.group.live_ranks:
                    continue
                self._admit(rank, rejoin=True)
        return list(self.group.live_ranks)

    # ------------------------------------------------------------------
    # Admission protocol
    # ------------------------------------------------------------------
    def _admit(self, rank: int, rejoin: bool) -> None:
        group = self.group
        old_world = group.world_size
        donor = min(group.live_ranks)
        group.admit(rank, rejoin=rejoin)
        trainer = self._trainer
        if trainer is not None:
            self._broadcast_state(trainer, donor)
            trainer.aggregator.admit_rank(rank, donor_rank=donor)
            if self.rescale_lr:
                trainer.optimizer.lr *= group.world_size / old_world
        self.log.changes.append(
            MembershipChange(
                "rejoin" if rejoin else "join",
                rank,
                group.call_index,
                group.world_size,
                donor=donor,
            )
        )

    def _broadcast_state(self, trainer, donor: int) -> None:
        """Broadcast model weights + optimizer state from the donor.

        In the lockstep simulation every worker already shares the one
        physical model, so the broadcast's *numerics* are a no-op — but it
        is issued through the group so the admission's synchronization
        traffic (a full model + optimizer state transfer) is measured on
        the wire exactly like a real elastic runtime's would be.
        """
        payload = self._pack_state(trainer)
        if payload.size == 0:
            return
        roster = list(self.group.live_ranks)
        root = roster.index(donor)
        buffers = [
            payload if slot == root else np.zeros_like(payload)
            for slot in range(len(roster))
        ]
        self.group.broadcast(buffers, root=root)

    @staticmethod
    def _pack_state(trainer) -> np.ndarray:
        """Flatten model parameters and optimizer state into one buffer."""
        chunks = [
            param.data.reshape(-1).astype(np.float64)
            for _, param in trainer.model.named_parameters()
        ]
        state = getattr(trainer.optimizer, "_velocity", None)
        if state:
            chunks.extend(
                state[name].reshape(-1).astype(np.float64)
                for name in sorted(state)
            )
        if not chunks:
            return np.zeros(0, dtype=np.float64)
        return np.concatenate(chunks)


def joiner_rng(seed: int, rank: int) -> np.random.Generator:
    """Deterministic data-sampling stream for rank ``rank``.

    Child ``rank`` of the run's root :class:`numpy.random.SeedSequence` —
    the same stream ``spawn_rngs`` hands the initial workers, extended to
    arbitrary rank ids, so the stream a rank draws depends only on
    ``(seed, rank)`` and never on when it joined.
    """
    root = np.random.SeedSequence(seed)
    return np.random.default_rng(root.spawn(rank + 1)[rank])
