"""Elastic membership: ranks leave, rejoin, and join mid-run.

The fault stack (:mod:`repro.faults`) handles the *fail-down* half of
elasticity — detected permanent failures shrink the world at step
boundaries. This package adds the *fail-up* half: a
:class:`MembershipController` that commits scheduled
:class:`~repro.faults.plan.Recovery` and :class:`~repro.faults.plan.Join`
events at the same step boundaries, running a deterministic admission
protocol (state broadcast from a survivor, compressor warm-start, dataset
re-shard) so training continues seamlessly at the new world size.
"""

from repro.elastic.membership import (
    MembershipChange,
    MembershipController,
    MembershipLog,
    joiner_rng,
)

__all__ = [
    "MembershipChange",
    "MembershipController",
    "MembershipLog",
    "joiner_rng",
]
