"""Elastic membership: ranks leave, rejoin, and join mid-run.

The fault stack (:mod:`repro.faults`) handles the *fail-down* half of
elasticity — detected permanent failures shrink the world at step
boundaries. This package adds the *fail-up* half: a
:class:`MembershipController` that commits scheduled
:class:`~repro.faults.plan.Recovery` and :class:`~repro.faults.plan.Join`
events at the same step boundaries, running a deterministic admission
protocol (state broadcast from a survivor, compressor warm-start, dataset
re-shard) so training continues seamlessly at the new world size.

For the open-membership gossip mode, :mod:`repro.elastic.open_admission`
provides the donor-less variant: a joiner reconstructs state by replaying
the update store instead of receiving a broadcast from a live rank.
"""

from repro.elastic.membership import (
    MembershipChange,
    MembershipController,
    MembershipLog,
    joiner_rng,
)
from repro.elastic.open_admission import (
    CatchUpPlan,
    allocate_peer_index,
    catch_up_plan,
)

__all__ = [
    "MembershipChange",
    "MembershipController",
    "MembershipLog",
    "joiner_rng",
    "CatchUpPlan",
    "allocate_peer_index",
    "catch_up_plan",
]
