"""Donor-less admission for open-membership (store-mediated) training.

The closed-world admission protocol (:mod:`repro.elastic.membership`)
synchronizes a joiner by broadcasting model + optimizer state from a
surviving *donor* rank — fine inside a process group, impossible in the
gossip mode where peers never talk to each other directly and nobody is
obliged to serve a multi-megabyte state transfer to a stranger.

The open-membership path needs no donor because **the store is the
broadcast**: every window's aggregated update is reconstructible from the
published payloads, so a brand-new peer

1. builds the *founding* model state — a pure function of the run seed,
   identical to what every founder started from;
2. replays the retained windows from the store in order, screening each
   with a fresh :class:`~repro.gossip.scorer.PeerScorer` of its own
   (the scorer is deterministic, so the replayed trust trajectory — and
   therefore every aggregation weight — matches what the veterans
   computed live);
3. starts publishing from its first live window with cold compressor
   state (zero momentum / EF residual), exactly like a founder at
   window 0.

When the store has been garbage-collected past window 0 the replay is
*partial*: the joiner lands near, not on, the veterans' state and
converges toward them through the shared aggregation. :func:`catch_up_plan`
reports which of the two regimes applies so callers (and tests) can
assert the right contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class CatchUpPlan:
    """Replay schedule for one admission.

    Attributes:
        windows: store windows to replay, ascending.
        complete: True when the replay reaches back to window 0 with no
            holes — the joiner will land bit-identical to a peer that
            lived through the run; False means the store was gc'd (or has
            gaps) and the joiner only lands *near* the veterans.
    """

    windows: Tuple[int, ...]
    complete: bool


def allocate_peer_index(used_indices: Sequence[int]) -> int:
    """Next never-used peer index (ids are never recycled).

    Mirrors :meth:`ResilientProcessGroup.allocate_rank`: allocating past
    the all-time maximum means a joiner can never collide with a live,
    departed, or quarantined peer — per-peer trust and data streams stay
    unambiguous forever.
    """
    return max(used_indices, default=-1) + 1


def catch_up_plan(
    store_windows: Sequence[int], join_window: int
) -> CatchUpPlan:
    """Which windows a peer admitted at ``join_window`` must replay.

    Every retained window strictly before the join is replayed in order.
    The replay is *complete* when it starts at window 0 and is gap-free —
    the determinism contract the gossip tests gate on.
    """
    if join_window < 0:
        raise ValueError(f"join_window must be >= 0, got {join_window}")
    windows: List[int] = sorted(
        window for window in store_windows if 0 <= window < join_window
    )
    complete = windows == list(range(join_window))
    return CatchUpPlan(windows=tuple(windows), complete=complete)
