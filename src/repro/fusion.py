"""Tensor-fusion buffer planning (§IV-B of the paper) — shared module.

Gradients become ready in back-propagation order; tensor fusion packs
consecutive ready tensors into fixed-size buffers, each aggregated with one
collective. The buffer size trades WFBP overlap (small buffers) against
start-up amortization (large buffers).

This is the **single source of truth** for the bucketing policy: the
discrete-event simulator (:mod:`repro.sim.strategies`) and the real
execution path (:class:`repro.perf.arena.ArenaLayout` /
:class:`repro.train.reducer.BucketedReducer`) both partition through
:func:`partition_buckets`, so the simulated and the measured buffer-size
sensitivity (Fig. 8 / Fig. 10) can never drift apart.

For compressed methods the paper scales the buffer by the compression rate
("compressed buffer size"): e.g. ResNet-50 at rank 4 compresses to 0.64%
(P) / 1.07% (Q) of the gradient bytes, so a 25MB default buffer becomes
0.16MB / 0.27MB — keeping the *number* of buffers (and hence the
overlap/startup trade-off) roughly invariant across ranks. Fig. 10 shows
this makes ACP-SGD robust to the buffer-size hyper-parameter.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

#: PyTorch-DDP's default fusion buffer (§IV-B) — the paper's baseline.
DEFAULT_BUFFER_BYTES = 25 * 1024 * 1024


def partition_buckets(
    sizes_bytes: Sequence[float], buffer_bytes: float
) -> List[Tuple[int, int]]:
    """Greedily pack consecutive tensors into buckets of ``buffer_bytes``.

    Args:
        sizes_bytes: tensor sizes in readiness (BP) order.
        buffer_bytes: bucket capacity; ``0`` means no fusion (one tensor per
            bucket); a value >= the total means one bucket for everything.

    Returns:
        Half-open index ranges ``[(start, end), ...]`` covering the input.
        A bucket always holds at least one tensor, so a tensor larger than
        the buffer travels alone (PyTorch-DDP behaviour).
    """
    if buffer_bytes < 0:
        raise ValueError(f"buffer_bytes must be >= 0, got {buffer_bytes}")
    count = len(sizes_bytes)
    if count == 0:
        return []
    if buffer_bytes == 0:
        return [(idx, idx + 1) for idx in range(count)]
    buckets: List[Tuple[int, int]] = []
    start = 0
    filled = 0.0
    for idx, size in enumerate(sizes_bytes):
        if size < 0:
            raise ValueError(f"tensor size must be >= 0, got {size}")
        if idx > start and filled + size > buffer_bytes:
            buckets.append((start, idx))
            start = idx
            filled = 0.0
        filled += size
    buckets.append((start, count))
    return buckets


def scaled_buffer_size(
    default_buffer_bytes: float,
    compressed_total_bytes: float,
    uncompressed_total_bytes: float,
) -> float:
    """The paper's compressed buffer size: default x compression rate.

    E.g. 25MB x (0.63MB / 97.5MB) = 0.16MB for ResNet-50's P factors at
    rank 4, which batches the P tensors into ~4 buffers just like the
    uncompressed gradients.
    """
    if default_buffer_bytes < 0:
        raise ValueError(
            f"default_buffer_bytes must be >= 0, got {default_buffer_bytes}"
        )
    if uncompressed_total_bytes <= 0:
        raise ValueError(
            f"uncompressed_total_bytes must be > 0, got {uncompressed_total_bytes}"
        )
    if compressed_total_bytes < 0:
        raise ValueError(
            f"compressed_total_bytes must be >= 0, got {compressed_total_bytes}"
        )
    rate = compressed_total_bytes / uncompressed_total_bytes
    return default_buffer_bytes * rate
