"""Trainer-level resilience policy and accounting.

The comm layer (:mod:`repro.faults.resilient`) heals what it can detect on
the wire; this module handles what only the *trainer* can see — a loss or
gradient that went non-finite (numeric blow-up, EF residual divergence) or
a loss trajectory that is running away. The recovery ladder, mildest first:

1. **Skip-step** — a non-finite loss/gradient step applies no update and
   resets every compressor's error-feedback residual (a blown-up residual
   otherwise re-poisons the next step).
2. **Compression fallback** — after a skip, the next ``fallback_steps``
   steps aggregate *uncompressed* (plain ring all-reduce) so training makes
   clean progress while the compressor state re-warms.
3. **Rollback** — when divergence persists (``divergence_patience``
   consecutive bad steps), restore the newest loadable checkpoint from the
   :class:`~repro.train.checkpoint.CheckpointManager` ring and continue;
   after ``max_rollbacks`` restorations the run aborts loudly.

Everything is deterministic: no wall clocks, no unseeded randomness, so a
fault-injected run replayed with the same seeds is bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs for the trainer's detect/skip/fallback/rollback ladder.

    Attributes:
        check_finite: verify per-worker losses/gradients and the aggregated
            gradient every step.
        fallback_steps: steps of uncompressed aggregation after a skip or
            rollback (0 disables the fallback rung).
        divergence_factor: a finite loss above ``factor * ema`` counts as a
            divergent step.
        divergence_patience: consecutive divergent/skipped steps before a
            rollback fires.
        checkpoint_interval: steps between good-state checkpoints (0
            disables checkpointing, and with it the rollback rung).
        checkpoint_dir: where the checkpoint ring lives; ``None`` uses a
            fresh temporary directory.
        checkpoint_keep: ring size (>= 2 lets a corrupt newest file fall
            back to its predecessor).
        max_rollbacks: abort the run after this many restorations.
        loss_ema_beta: smoothing for the divergence baseline.
    """

    check_finite: bool = True
    fallback_steps: int = 5
    divergence_factor: float = 10.0
    divergence_patience: int = 3
    checkpoint_interval: int = 10
    checkpoint_dir: Optional[str] = None
    checkpoint_keep: int = 2
    max_rollbacks: int = 3
    loss_ema_beta: float = 0.9

    def __post_init__(self) -> None:
        if self.fallback_steps < 0:
            raise ValueError(
                f"fallback_steps must be >= 0, got {self.fallback_steps}"
            )
        if self.divergence_factor <= 1.0:
            raise ValueError(
                f"divergence_factor must be > 1, got {self.divergence_factor}"
            )
        if self.divergence_patience < 1:
            raise ValueError(
                f"divergence_patience must be >= 1, got {self.divergence_patience}"
            )
        if self.checkpoint_interval < 0:
            raise ValueError(
                f"checkpoint_interval must be >= 0, got {self.checkpoint_interval}"
            )
        if self.checkpoint_keep < 1:
            raise ValueError(
                f"checkpoint_keep must be >= 1, got {self.checkpoint_keep}"
            )
        if self.max_rollbacks < 0:
            raise ValueError(
                f"max_rollbacks must be >= 0, got {self.max_rollbacks}"
            )
        if not 0.0 <= self.loss_ema_beta < 1.0:
            raise ValueError(
                f"loss_ema_beta must be in [0, 1), got {self.loss_ema_beta}"
            )


@dataclass
class ResilienceLog:
    """What the trainer's resilience ladder actually did during a run."""

    skipped_steps: int = 0
    residual_resets: int = 0
    fallback_activations: int = 0
    fallback_steps_run: int = 0
    divergence_alarms: int = 0
    rollbacks: int = 0
    checkpoints_saved: int = 0
    notes: List[str] = field(default_factory=list)

    def note(self, message: str) -> None:
        """Append a human-readable event line (kept short; for reports)."""
        self.notes.append(message)

    def render(self) -> str:
        lines = [
            f"skipped steps         {self.skipped_steps}",
            f"residual resets       {self.residual_resets}",
            f"fallback activations  {self.fallback_activations}",
            f"fallback steps run    {self.fallback_steps_run}",
            f"divergence alarms     {self.divergence_alarms}",
            f"rollbacks             {self.rollbacks}",
            f"checkpoints saved     {self.checkpoints_saved}",
        ]
        if self.notes:
            lines.append("events:")
            lines.extend(f"  - {note}" for note in self.notes)
        return "\n".join(lines)
