"""Synchronous data-parallel trainer over simulated workers.

Semantics mirror DDP + the paper's compression prototypes:

- every worker holds the same model weights (enforced by construction: one
  physical replica evaluated per worker shard, like DDP's lockstep);
- per step, each worker computes local gradients on its own batch;
- a :class:`~repro.optim.aggregators.GradientAggregator` combines them
  (through the measured collectives) into the global gradient;
- a single SGD update applies the global gradient.

The trainer keeps one physical model and replays it per worker batch; this
is numerically identical to per-worker replicas under synchronous updates,
while per-worker *compressor* state (EF residuals) lives inside the
aggregator, preserving each method's true distributed behaviour.

Resilience (optional): pass a
:class:`~repro.train.resilience.ResilienceConfig` to arm the trainer-level
recovery ladder — non-finite skip-step with EF residual reset, temporary
fallback to uncompressed aggregation, and divergence rollback to the last
good checkpoint. Pair it with a
:class:`~repro.faults.resilient.ResilientProcessGroup` to also survive
injected communication faults; the trainer then follows the group's live
roster, so a permanent rank loss shrinks the data-parallel world to the
surviving ranks mid-run.
"""

from __future__ import annotations

import tempfile
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.comm.topology import ClusterTopology
from repro.elastic.membership import MembershipController, joiner_rng
from repro.faults.supervisor import (
    SupervisionPolicy,
    WorkerError,
    WorkerSupervisor,
)
from repro.nn.loss import CrossEntropyLoss
from repro.nn.module import Module
from repro.optim.aggregators import AllReduceAggregator, GradientAggregator
from repro.optim.lr_scheduler import WarmupMultiStepSchedule
from repro.optim.sgd import SGD
from repro.perf.arena import GradientArena
from repro.perf.procpool import (
    ProcessWorkerPool,
    WorkerStepResult,
    WorkerStepTask,
)
from repro.perf.replicas import ReplicaSet
from repro.train.checkpoint import CheckpointError, CheckpointManager
from repro.train.datasets import ArrayDataset
from repro.train.history import TrainingHistory
from repro.train.reducer import BucketedReducer
from repro.train.resilience import ResilienceConfig, ResilienceLog
from repro.utils.seeding import spawn_rngs
from repro.utils.validation import is_finite


class DataParallelTrainer:
    """Train one model with data parallelism across simulated workers.

    ``optimizer`` is duck-typed: anything exposing ``step(grads)`` and an
    ``lr`` attribute works (:class:`~repro.optim.sgd.SGD`,
    :class:`~repro.optim.adam.Adam`).
    """

    def __init__(
        self,
        model: Module,
        optimizer: SGD,
        aggregator: GradientAggregator,
        train_data: ArrayDataset,
        test_data: ArrayDataset,
        batch_size_per_worker: int = 32,
        schedule: Optional[WarmupMultiStepSchedule] = None,
        seed: int = 0,
        accumulation_steps: int = 1,
        resilience: Optional[ResilienceConfig] = None,
        use_arena: bool = True,
        parallel_workers: bool = False,
        membership: Optional["MembershipController"] = None,
        buffer_bytes: Optional[int] = None,
        workers: Optional[str] = None,
        worker_start_method: Optional[str] = None,
        worker_step_timeout: Optional[float] = None,
        supervision: Optional[SupervisionPolicy] = None,
        topology: Optional[ClusterTopology] = None,
    ):
        if batch_size_per_worker < 1:
            raise ValueError(
                f"batch_size_per_worker must be >= 1, got {batch_size_per_worker}"
            )
        if accumulation_steps < 1:
            raise ValueError(
                f"accumulation_steps must be >= 1, got {accumulation_steps}"
            )
        # ``workers`` selects the backprop backend; ``parallel_workers`` is
        # the legacy boolean alias for the thread backend and still works.
        if workers is None:
            workers = "thread" if parallel_workers else "seq"
        if workers not in ("seq", "thread", "process"):
            raise ValueError(
                f"workers must be 'seq', 'thread' or 'process', got {workers!r}"
            )
        if workers == "process" and not use_arena:
            raise ValueError(
                "workers='process' requires use_arena=True: worker processes "
                "exchange gradients through the shared-memory arena slabs"
            )
        self.workers = workers
        parallel_workers = workers == "thread"
        if membership is not None and parallel_workers:
            raise ValueError(
                "membership and thread workers (parallel_workers) are "
                "mutually exclusive: the "
                "replica set is sized at construction and cannot follow an "
                "elastic roster (workers='process' spawns joiners on demand "
                "and composes with membership)"
            )
        self.model = model
        self.optimizer = optimizer
        self.aggregator = aggregator
        self.world_size = aggregator.group.world_size
        # Topology-aware collectives: route the group's all-reduces over
        # the two-level hierarchical schedule. Values are bit-identical to
        # the flat ring (see repro.comm.hierarchical), so trajectories do
        # not depend on the wire schedule — only traffic accounting does.
        self.topology = topology
        if topology is not None:
            set_topology = getattr(aggregator.group, "set_topology", None)
            if set_topology is None:
                raise ValueError(
                    f"group {type(aggregator.group).__name__} does not "
                    "support topology-aware collectives"
                )
            if membership is not None:
                raise ValueError(
                    "topology and membership are mutually exclusive: the "
                    "node topology fixes the world size, an elastic roster "
                    "changes it"
                )
            set_topology(topology)
        self.seed = seed
        self.train_data = train_data
        self.membership = membership
        if membership is not None:
            membership.bind(self)
        # --- worker-process supervision (inert when supervision is None) ---
        self._supervisor: Optional[WorkerSupervisor] = None
        if supervision is not None:
            if workers not in ("seq", "process"):
                raise ValueError(
                    "supervision requires workers='process' (real child "
                    "processes) or workers='seq' (the simulated twin the "
                    f"determinism checks diff against); got workers={workers!r}"
                )
            if not use_arena:
                raise ValueError(
                    "supervision requires use_arena=True: a failed worker's "
                    "slot contributes its (stale) arena slab to the step"
                )
            if supervision.on_failure == "eject" and membership is None:
                raise ValueError(
                    "supervision on_failure='eject' requires a "
                    "MembershipController: ejections and scheduled rejoins "
                    "commit through its admission protocol"
                )
            plan = None
            if membership is not None:
                plan = membership.plan
            else:
                injector = getattr(aggregator.group, "injector", None)
                if injector is not None:
                    plan = injector.plan
            if (workers == "process" and worker_step_timeout is None
                    and plan is not None
                    and any(f.kind == "hang" for f in plan.worker_faults)):
                raise ValueError(
                    "the fault plan schedules 'hang' worker faults but "
                    "worker_step_timeout is not set: a hung child is only "
                    "observable through the step timeout, so the run would "
                    "stall forever"
                )
            self._supervisor = WorkerSupervisor(
                supervision,
                plan=plan,
                stats=getattr(aggregator.group, "stats", None),
            )
        # Shards and sampling streams are keyed by *rank id*. Without a
        # membership controller the assignment is fixed at construction
        # (an ejected rank's shard is simply dropped); with one, the data
        # is re-sharded disjointly over the live roster at every
        # membership change (see ``_sync_roster``).
        self._shard_roster: Tuple[int, ...] = tuple(range(self.world_size))
        self.train_shards: Dict[int, ArrayDataset] = {
            rank: train_data.shard(rank, self.world_size)
            for rank in range(self.world_size)
        }
        self.test_data = test_data
        self.batch_size = batch_size_per_worker
        self.schedule = schedule
        self.accumulation_steps = accumulation_steps
        self.loss_fn = CrossEntropyLoss()
        self._rngs: Dict[int, np.random.Generator] = dict(
            enumerate(spawn_rngs(seed, self.world_size))
        )
        # --- hot-path state: gradient arena + optional parallel workers ---
        if buffer_bytes is not None and not use_arena:
            raise ValueError(
                "buffer_bytes requires use_arena=True: buckets are "
                "contiguous views of the fused arena slab"
            )
        if buffer_bytes is not None and not aggregator.supports_bucketed:
            raise ValueError(
                f"aggregator {aggregator.method!r} does not support bucketed "
                "reduction; use buffer_bytes=None for this method"
            )
        self.use_arena = use_arena
        self.parallel_workers = parallel_workers
        self.buffer_bytes = buffer_bytes
        self._arena: Optional[GradientArena] = (
            GradientArena(
                model,
                self.world_size,
                bucket_bytes=buffer_bytes,
                backing="shared" if workers == "process" else "private",
            )
            if use_arena
            else None
        )
        self._reducer: Optional[BucketedReducer] = (
            BucketedReducer(model, self._arena, aggregator, accumulation_steps)
            if buffer_bytes is not None
            else None
        )
        self._replicas: Optional[ReplicaSet] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._procpool: Optional[ProcessWorkerPool] = None
        self._worker_loss_fns: List[CrossEntropyLoss] = [self.loss_fn]
        if parallel_workers and self.world_size > 1:
            self._replicas = ReplicaSet(model, self.world_size)
            self._worker_loss_fns = [
                CrossEntropyLoss() for _ in range(self.world_size)
            ]
            self._pool = ThreadPoolExecutor(
                max_workers=self.world_size,
                thread_name_prefix="repro-worker",
            )
        elif workers == "process":
            assert self._arena is not None
            self._procpool = ProcessWorkerPool(
                model,
                self._arena,
                train_data,
                seed=seed,
                batch_size=self.batch_size,
                accumulation_steps=accumulation_steps,
                start_method=worker_start_method,
                step_timeout=worker_step_timeout,
                fault_plan=(
                    self._supervisor.plan
                    if self._supervisor is not None
                    else None
                ),
            )
        # --- resilience state (inert when resilience is None) ---
        self.resilience = resilience
        self.resilience_log = ResilienceLog() if resilience is not None else None
        self._fallback_aggregator: Optional[AllReduceAggregator] = None
        self._fallback_remaining = 0
        self._loss_ema: Optional[float] = None
        self._divergent_streak = 0
        self._step_count = 0
        self._checkpoints: Optional[CheckpointManager] = None

    @property
    def supervisor(self) -> Optional[WorkerSupervisor]:
        """The armed worker supervisor, or ``None`` (stats live on it)."""
        return self._supervisor

    def _worker_gradients(
        self,
        rank: int,
        slot: Optional[int] = None,
        model: Optional[Module] = None,
        loss_fn: Optional[CrossEntropyLoss] = None,
    ) -> tuple:
        """One worker's (loss, named gradients) for a fresh batch.

        ``slot`` is the worker's position in this step's live roster (its
        arena slab index); it defaults to ``rank`` for full-roster steps.
        ``model``/``loss_fn`` default to the trainer's own; the parallel
        path passes per-worker replicas so the passes are independent.

        With ``accumulation_steps > 1`` the worker runs several micro-batch
        passes and averages their gradients locally before communication —
        the standard trick for fitting large effective batches, which also
        amortizes each communication round over more computation.
        """
        if slot is None:
            slot = rank
        if model is None:
            model = self.model
        if loss_fn is None:
            loss_fn = self.loss_fn
        if self._arena is not None:
            self._arena.bind(model, slot)
        model.zero_grad()
        losses = []
        for _ in range(self.accumulation_steps):
            inputs, labels = self.train_shards[rank].batch(
                self._rngs[rank], self.batch_size
            )
            logits = model(inputs)
            losses.append(loss_fn(logits, labels))
            model.backward(loss_fn.backward())
        if self._arena is not None:
            for name, param in model.named_parameters():
                if param.grad is None:
                    raise RuntimeError(
                        f"parameter {name!r} received no gradient"
                    )
            if self.accumulation_steps > 1 and not (
                self._reducer is not None and self._reducer.owns_division(slot)
            ):
                # True division in place: bit-identical to the legacy
                # ``param.grad / accumulation_steps`` below, minus the copy.
                # On an eager bucketed step the reducer divides the final
                # worker's slab bucket by bucket instead, just before each
                # bucket fires.
                self._arena.divide_(slot, self.accumulation_steps)
            return float(np.mean(losses)), self._arena.grads(slot)
        grads: Dict[str, np.ndarray] = {}
        for name, param in model.named_parameters():
            if param.grad is None:
                raise RuntimeError(f"parameter {name!r} received no gradient")
            grads[name] = param.grad / self.accumulation_steps
        return float(np.mean(losses)), grads

    def _parallel_worker_gradients(
        self, ranks: List[int]
    ) -> Tuple[List[float], List[Dict[str, np.ndarray]]]:
        """Run the live workers' passes concurrently on the thread pool.

        Each live rank gets its own replica (shared weights, private
        activations and arena slab) and its own loss head, so the passes
        never touch shared state. Results are collected in rank order and
        BatchNorm statistics are replayed in rank order afterwards, so the
        aggregation input — and therefore the whole trajectory — is
        bit-identical to the sequential loop.
        """
        assert self._replicas is not None and self._pool is not None
        self._replicas.begin_round()
        futures = [
            self._pool.submit(
                self._worker_gradients,
                rank,
                slot,
                self._replicas.replicas[slot],
                self._worker_loss_fns[slot],
            )
            for slot, rank in enumerate(ranks)
        ]
        results = [future.result() for future in futures]
        self._replicas.end_round(len(ranks))
        losses = [loss for loss, _ in results]
        per_worker = [grads for _, grads in results]
        return losses, per_worker

    def _process_worker_gradients(
        self, ranks: List[int]
    ) -> Tuple[List[float], List[Dict[str, np.ndarray]]]:
        """Run the live workers' passes in persistent child processes.

        The parent copies the master weights into the shared broadcast
        buffer, dispatches one task per live rank (children for newly
        admitted ranks are spawned first — an admission-boundary cost,
        never a steady-state one), and the children write their gradients
        straight into the shared arena slabs. Only the loss scalars,
        BatchNorm batch statistics, and allocation-counter deltas travel
        back over the pipes; the statistics are replayed onto the master
        in rank order, so the trajectory stays bit-identical to the
        sequential loop while backprop uses every core.
        """
        pool = self._procpool
        assert pool is not None and self._arena is not None
        self._ensure_ranks_supervised(pool, ranks)
        pool.broadcast_weights(self.model)
        tasks = []
        for slot, rank in enumerate(ranks):
            if self.membership is None:
                # Fixed sharding: each rank keeps its construction-time
                # shard (ejections just drop a shard), mirroring
                # ``train_shards``.
                shard_index, shard_world = rank, self.world_size
            else:
                # Elastic re-sharding by roster position, mirroring
                # ``_sync_roster``.
                shard_index, shard_world = slot, len(ranks)
            tasks.append(
                WorkerStepTask(
                    rank=rank,
                    slot=slot,
                    slab_segment=self._arena.segment_name(slot),
                    shard_index=shard_index,
                    shard_world=shard_world,
                    step=self._step_count,
                )
            )
        results = pool.run_step(
            tasks, capture_errors=self._supervisor is not None
        )
        failures = [
            (index, result)
            for index, result in enumerate(results)
            if isinstance(result, WorkerError)
        ]
        if failures:
            results = self._recover_process(pool, tasks, results, failures)
        pool.replay_batch_stats(results)
        pool.merge_alloc_stats(results)
        losses = [
            result.loss
            for result in results
            if isinstance(result, WorkerStepResult)
        ]
        per_worker = [
            self._arena.grads(slot) for slot in range(len(ranks))
        ]
        return losses, per_worker

    # ------------------------------------------------------------------
    # Worker-process supervision
    # ------------------------------------------------------------------
    def _ensure_ranks_supervised(
        self, pool: ProcessWorkerPool, ranks: List[int]
    ) -> None:
        """Spawn missing children, paying for admission-time crashes.

        A child that dies while seeding (before reporting ready) raises a
        typed :class:`WorkerError` out of ``ensure_ranks``. Under
        supervision each such death costs one respawn from the budget and
        the spawn is retried, so a transient admission crash never kills
        the run; without a supervisor the typed error propagates.
        """
        while True:
            try:
                pool.ensure_ranks(ranks)
                return
            except WorkerError as error:
                if self._supervisor is None:
                    raise
                self._supervisor.record_failure(error)
                self._supervisor.consume_restart(error)

    def _simulated_worker_failure(self, rank: int) -> Optional[WorkerError]:
        """The failure a child would have suffered — the seq twin's view.

        Only the sequential backend simulates: the process backend's
        children self-apply the same plan, so simulating there would
        double-fire every fault.
        """
        if self._supervisor is None or self.workers != "seq":
            return None
        fault = self._supervisor.scheduled_fault(rank, self._step_count)
        if fault is None:
            return None
        return WorkerSupervisor.simulated_failure(fault)

    def _recover_seq(self, error: WorkerError) -> bool:
        """Handle a simulated failure; ``True`` = compute the pass anyway.

        ``"restart"`` pays one respawn and computes in place — exactly
        what the process backend's respawn-and-retry converges to, since
        a crashed task consumes no batch draws. ``"eject"`` marks the
        rank failed and skips its pass, degrading the step the way a
        dead child does.
        """
        supervisor = self._supervisor
        assert supervisor is not None
        supervisor.record_failure(error)
        if supervisor.policy.on_failure == "restart":
            supervisor.consume_restart(error)
            return True
        self._eject_worker(error.rank)
        return False

    def _eject_worker(self, rank: int) -> None:
        """Mark ``rank`` for boundary ejection; maybe schedule its rejoin."""
        self.aggregator.group.mark_worker_failed(rank)
        assert self._supervisor is not None
        delay = self._supervisor.policy.respawn_delay_steps
        if delay is not None and self.membership is not None:
            self.membership.schedule_rejoin(rank, delay)

    def _recover_process(
        self,
        pool: ProcessWorkerPool,
        tasks: List[WorkerStepTask],
        results: list,
        failures: List[Tuple[int, WorkerError]],
    ) -> list:
        """Recover from real child failures after the step collected.

        ``"restart"``: discard the dead/hung child, respawn it (sampling
        stream fast-forwarded through the rank's completed-task history)
        and re-run the failed task *within this step* with the fault
        suppressed — the retried pass consumes exactly the draws the
        fault-free run would have, so the trajectory stays bit-identical
        to fault-free. A repeat failure of the same task raises.

        ``"eject"``: discard the child and mark the rank failed; its
        slot's stale slab feeds the (survivor-rescaled) aggregation and
        the ejection commits at the next boundary.
        """
        supervisor = self._supervisor
        assert supervisor is not None
        retry_indices: List[int] = []
        for index, error in failures:
            supervisor.record_failure(error)
            pool.discard(error.rank)
            if supervisor.policy.on_failure == "restart":
                supervisor.consume_restart(error)
                retry_indices.append(index)
            else:
                self._eject_worker(error.rank)
        if retry_indices:
            retry_tasks = [
                replace(tasks[index], suppress_fault=True)
                for index in retry_indices
            ]
            self._ensure_ranks_supervised(
                pool, [task.rank for task in retry_tasks]
            )
            retried = pool.run_step(retry_tasks)  # a repeat failure raises
            for index, result in zip(retry_indices, retried):
                results[index] = result
        if not any(isinstance(r, WorkerStepResult) for r in results):
            raise failures[0][1]
        return results

    def _live_ranks(self) -> List[int]:
        """The ranks participating in this step.

        A :class:`~repro.faults.resilient.ResilientProcessGroup` commits
        pending rank ejections at this boundary — and, when a
        :class:`~repro.elastic.MembershipController` is attached, pending
        rejoins and scale-up joins too. Plain groups always return the
        full roster. The aggregator's roster is re-synced every step so
        per-rank compressor state follows rank ids, never slot positions.
        """
        if self.membership is not None:
            ranks = self.membership.begin_step()
            if tuple(ranks) != self._shard_roster:
                self._sync_roster(ranks)
        else:
            group = self.aggregator.group
            begin_step = getattr(group, "begin_step", None)
            ranks = begin_step() if begin_step is not None else list(
                range(group.world_size)
            )
        self.aggregator.set_roster(ranks)
        return ranks

    def _sync_roster(self, ranks: List[int]) -> None:
        """Follow a membership change: re-shard data, extend rngs/arena.

        Shards are assigned by *roster position* over the live world, so
        they stay pairwise disjoint and jointly exhaustive at every world
        size — no sample is ever dropped or double-owned after churn. A
        new rank's sampling stream depends only on ``(seed, rank)``; a
        rejoining rank resumes the stream it already owned.
        """
        self._shard_roster = tuple(ranks)
        self.train_shards = {
            rank: self.train_data.shard(slot, len(ranks))
            for slot, rank in enumerate(ranks)
        }
        for rank in ranks:
            if rank not in self._rngs:
                self._rngs[rank] = joiner_rng(self.seed, rank)
        if self._arena is not None:
            self._arena.ensure_slots(len(ranks))

    def train_step(self) -> float:
        """One synchronous step across the live workers; returns mean loss.

        With resilience armed, a step may be skipped (non-finite numerics),
        aggregated uncompressed (fallback window), or trigger a rollback —
        see :mod:`repro.train.resilience` for the ladder.
        """
        ranks = self._live_ranks()
        # Process mode routes *every* step through the pool — even a
        # single-rank step — because the per-rank sampling streams live in
        # the children; a parent-side pass would consume a stale stream.
        process = self._procpool is not None
        parallel = process or (self._pool is not None and len(ranks) > 1)
        # The reducer runs the clean path bucket by bucket. Hook-driven
        # (eager, WFBP) firing needs sequential workers — the final
        # worker's backward is the firing pass — and no resilience, whose
        # finite-checks must see the local gradients before any
        # communication. The resilient path still buckets, deferred, via
        # ``_aggregate``. Parallel backends (threads and processes alike)
        # bucket deferred for the same reason.
        reducer = self._reducer if self.resilience is None else None
        if reducer is not None:
            # Supervision also forces deferred buckets: an ejected final
            # worker never runs the firing backward pass, so hook-driven
            # buckets could never complete the step.
            reducer.begin_step(
                len(ranks),
                eager=not parallel and self._supervisor is None,
            )
        if process:
            losses, per_worker = self._process_worker_gradients(ranks)
        elif parallel:
            losses, per_worker = self._parallel_worker_gradients(ranks)
        else:
            losses = []
            per_worker = []
            seq_failures: List[WorkerError] = []
            for slot, rank in enumerate(ranks):
                if reducer is not None:
                    reducer.begin_worker(slot)
                failure = self._simulated_worker_failure(rank)
                if failure is not None and not self._recover_seq(failure):
                    # Ejected: the slot contributes its stale slab —
                    # exactly what the process backend aggregates when
                    # the dead child never wrote this step.
                    seq_failures.append(failure)
                    assert self._arena is not None
                    per_worker.append(self._arena.grads(slot))
                    continue
                loss, grads = self._worker_gradients(rank, slot)
                losses.append(loss)
                per_worker.append(grads)
            if not losses:
                raise seq_failures[0]
        mean_loss = float(np.mean(losses))
        self._step_count += 1
        if self.resilience is None:
            if reducer is not None:
                aggregated = reducer.finish_step()
            else:
                aggregated = self.aggregator.aggregate(per_worker)
            self.optimizer.step(aggregated)
            return mean_loss
        return self._resilient_apply(mean_loss, per_worker)

    # ------------------------------------------------------------------
    # Resilience ladder
    # ------------------------------------------------------------------
    def _resilient_apply(
        self, mean_loss: float, per_worker: List[Dict[str, np.ndarray]]
    ) -> float:
        cfg = self.resilience
        log = self.resilience_log
        assert cfg is not None and log is not None
        loss_finite = bool(np.isfinite(mean_loss))
        grads_finite = loss_finite and all(
            is_finite(grad) for grads in per_worker for grad in grads.values()
        )
        applied = False
        if not cfg.check_finite or grads_finite:
            aggregator = self._current_aggregator()
            aggregated = self._aggregate(aggregator, per_worker)
            if cfg.check_finite and not all(
                is_finite(grad) for grad in aggregated.values()
            ):
                self._skip_step("non-finite aggregated gradient")
            else:
                self.optimizer.step(aggregated)
                applied = True
        else:
            self._skip_step("non-finite local loss or gradient")

        divergent = not applied
        if loss_finite:
            baseline = self._loss_ema
            if (applied and baseline is not None
                    and mean_loss > cfg.divergence_factor * max(baseline, 1e-12)):
                divergent = True
            if applied:
                self._loss_ema = (
                    mean_loss if baseline is None
                    else cfg.loss_ema_beta * baseline
                    + (1.0 - cfg.loss_ema_beta) * mean_loss
                )

        if divergent:
            self._divergent_streak += 1
            log.divergence_alarms += 1
            if self._divergent_streak >= cfg.divergence_patience:
                self._rollback()
        else:
            self._divergent_streak = 0
            if (cfg.checkpoint_interval
                    and self._step_count % cfg.checkpoint_interval == 0):
                self._save_good_checkpoint()
        if loss_finite:
            return mean_loss
        # Keep histories finite: report the running baseline for a skipped
        # non-finite step (0.0 when the very first step blows up).
        return float(self._loss_ema) if self._loss_ema is not None else 0.0

    def _aggregate(
        self,
        aggregator: GradientAggregator,
        per_worker: List[Dict[str, np.ndarray]],
    ) -> Dict[str, np.ndarray]:
        """Aggregate through the bucketed pipeline when one is configured.

        The fallback :class:`AllReduceAggregator` supports buckets, so a
        fallback window on a bucketed trainer stays bucketed (and keeps
        recording per-bucket timings).
        """
        if self._reducer is not None and aggregator.supports_bucketed:
            return self._reducer.aggregate(aggregator, per_worker)
        return aggregator.aggregate(per_worker)

    def _current_aggregator(self) -> GradientAggregator:
        """The aggregator for this step, honouring the fallback window."""
        cfg = self.resilience
        log = self.resilience_log
        assert cfg is not None and log is not None
        if self._fallback_remaining <= 0:
            return self.aggregator
        self._fallback_remaining -= 1
        log.fallback_steps_run += 1
        if self._fallback_aggregator is None:
            self._fallback_aggregator = AllReduceAggregator(self.aggregator.group)
        self._fallback_aggregator.set_roster(self.aggregator.roster)
        return self._fallback_aggregator

    def _skip_step(self, reason: str) -> None:
        """Apply no update; reset EF residuals; open the fallback window."""
        cfg = self.resilience
        log = self.resilience_log
        assert cfg is not None and log is not None
        log.skipped_steps += 1
        log.note(f"step {self._step_count}: skipped ({reason})")
        self.aggregator.reset()
        log.residual_resets += 1
        if cfg.fallback_steps > 0 and not isinstance(
            self.aggregator, AllReduceAggregator
        ):
            if self._fallback_remaining <= 0:
                log.fallback_activations += 1
            self._fallback_remaining = cfg.fallback_steps

    def _save_good_checkpoint(self) -> None:
        cfg = self.resilience
        log = self.resilience_log
        assert cfg is not None and log is not None
        if self._checkpoints is None:
            directory = cfg.checkpoint_dir or tempfile.mkdtemp(prefix="repro-ckpt-")
            self._checkpoints = CheckpointManager(directory, keep=cfg.checkpoint_keep)
        self._checkpoints.save(
            self.model, self.optimizer, metadata={"step": self._step_count}
        )
        log.checkpoints_saved += 1

    def _rollback(self) -> None:
        """Restore the newest loadable checkpoint and re-warm compression."""
        cfg = self.resilience
        log = self.resilience_log
        assert cfg is not None and log is not None
        self._divergent_streak = 0
        if self._checkpoints is None:
            # Nothing to restore yet: the residual reset + fallback window
            # opened by the skip path is the best available recovery.
            log.note(f"step {self._step_count}: rollback requested "
                     f"before any checkpoint existed")
            return
        try:
            metadata = self._checkpoints.restore(self.model, self.optimizer)
        except CheckpointError as exc:
            log.note(f"step {self._step_count}: rollback failed ({exc})")
            return
        log.rollbacks += 1
        log.note(f"step {self._step_count}: rolled back to "
                 f"step {metadata.get('step', '?')}")
        self.aggregator.reset()
        log.residual_resets += 1
        self._loss_ema = None
        if cfg.fallback_steps > 0 and not isinstance(
            self.aggregator, AllReduceAggregator
        ):
            if self._fallback_remaining <= 0:
                log.fallback_activations += 1
            self._fallback_remaining = cfg.fallback_steps
        if log.rollbacks > cfg.max_rollbacks:
            raise RuntimeError(
                f"training diverged: exceeded max_rollbacks="
                f"{cfg.max_rollbacks} restorations"
            )

    def close(self) -> None:
        """Release worker pools and shared-memory segments (idempotent).

        Only the process backend owns real OS resources (child processes,
        ``/dev/shm`` segments), so sequential and thread trainers may skip
        this — but shared arenas **must** be closed or the test suite's
        leak detector will flag the run. ``with DataParallelTrainer(...)
        as trainer:`` does it automatically.
        """
        if self._procpool is not None:
            self._procpool.close()
            self._procpool = None
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._arena is not None and self._arena.is_shared:
            self._arena.unbind(self.model)
            self._arena.close()

    def __enter__(self) -> "DataParallelTrainer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def evaluate(self, max_batches: int = 0, batch_size: int = 256) -> float:
        """Test-set accuracy (full set unless ``max_batches`` limits it)."""
        self.model.eval()
        correct = 0
        total = 0
        count = len(self.test_data)
        for start in range(0, count, batch_size):
            inputs = self.test_data.inputs[start : start + batch_size]
            labels = self.test_data.labels[start : start + batch_size]
            logits = self.model(inputs)
            correct += int((logits.argmax(axis=1) == labels).sum())
            total += len(labels)
            if max_batches and start // batch_size + 1 >= max_batches:
                break
        self.model.train()
        return correct / max(1, total)

    def run(
        self,
        epochs: int,
        steps_per_epoch: int,
        method_label: str = "",
    ) -> TrainingHistory:
        """Train for ``epochs`` and record the convergence curve."""
        if epochs < 1 or steps_per_epoch < 1:
            raise ValueError("epochs and steps_per_epoch must be >= 1")
        history = TrainingHistory(method_label or self.aggregator.method)
        for epoch in range(epochs):
            if self.schedule is not None:
                self.schedule.set_epoch(epoch)
            losses = [self.train_step() for _ in range(steps_per_epoch)]
            accuracy = self.evaluate()
            history.record(
                epoch, float(np.mean(losses)), accuracy, self.optimizer.lr
            )
        return history
