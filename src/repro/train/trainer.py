"""Synchronous data-parallel trainer over simulated workers.

Semantics mirror DDP + the paper's compression prototypes:

- every worker holds the same model weights (enforced by construction: one
  physical replica evaluated per worker shard, like DDP's lockstep);
- per step, each worker computes local gradients on its own batch;
- a :class:`~repro.optim.aggregators.GradientAggregator` combines them
  (through the measured collectives) into the global gradient;
- a single SGD update applies the global gradient.

The trainer keeps one physical model and replays it per worker batch; this
is numerically identical to per-worker replicas under synchronous updates,
while per-worker *compressor* state (EF residuals) lives inside the
aggregator, preserving each method's true distributed behaviour.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.nn.loss import CrossEntropyLoss
from repro.nn.module import Module
from repro.optim.aggregators import GradientAggregator
from repro.optim.lr_scheduler import WarmupMultiStepSchedule
from repro.optim.sgd import SGD
from repro.train.datasets import ArrayDataset
from repro.train.history import TrainingHistory
from repro.utils.seeding import spawn_rngs


class DataParallelTrainer:
    """Train one model with data parallelism across simulated workers.

    ``optimizer`` is duck-typed: anything exposing ``step(grads)`` and an
    ``lr`` attribute works (:class:`~repro.optim.sgd.SGD`,
    :class:`~repro.optim.adam.Adam`).
    """

    def __init__(
        self,
        model: Module,
        optimizer: SGD,
        aggregator: GradientAggregator,
        train_data: ArrayDataset,
        test_data: ArrayDataset,
        batch_size_per_worker: int = 32,
        schedule: Optional[WarmupMultiStepSchedule] = None,
        seed: int = 0,
        accumulation_steps: int = 1,
    ):
        if batch_size_per_worker < 1:
            raise ValueError(
                f"batch_size_per_worker must be >= 1, got {batch_size_per_worker}"
            )
        if accumulation_steps < 1:
            raise ValueError(
                f"accumulation_steps must be >= 1, got {accumulation_steps}"
            )
        self.model = model
        self.optimizer = optimizer
        self.aggregator = aggregator
        self.world_size = aggregator.group.world_size
        self.train_shards = [
            train_data.shard(rank, self.world_size) for rank in range(self.world_size)
        ]
        self.test_data = test_data
        self.batch_size = batch_size_per_worker
        self.schedule = schedule
        self.accumulation_steps = accumulation_steps
        self.loss_fn = CrossEntropyLoss()
        self._rngs = spawn_rngs(seed, self.world_size)

    def _worker_gradients(self, rank: int) -> tuple:
        """One worker's (loss, named gradients) for a fresh batch.

        With ``accumulation_steps > 1`` the worker runs several micro-batch
        passes and averages their gradients locally before communication —
        the standard trick for fitting large effective batches, which also
        amortizes each communication round over more computation.
        """
        self.model.zero_grad()
        losses = []
        for _ in range(self.accumulation_steps):
            inputs, labels = self.train_shards[rank].batch(
                self._rngs[rank], self.batch_size
            )
            logits = self.model(inputs)
            losses.append(self.loss_fn(logits, labels))
            self.model.backward(self.loss_fn.backward())
        grads: Dict[str, np.ndarray] = {}
        for name, param in self.model.named_parameters():
            if param.grad is None:
                raise RuntimeError(f"parameter {name!r} received no gradient")
            grads[name] = param.grad / self.accumulation_steps
        return float(np.mean(losses)), grads

    def train_step(self) -> float:
        """One synchronous step across all workers; returns mean local loss."""
        losses: List[float] = []
        per_worker: List[Dict[str, np.ndarray]] = []
        for rank in range(self.world_size):
            loss, grads = self._worker_gradients(rank)
            losses.append(loss)
            per_worker.append(grads)
        aggregated = self.aggregator.aggregate(per_worker)
        self.optimizer.step(aggregated)
        return float(np.mean(losses))

    def evaluate(self, max_batches: int = 0, batch_size: int = 256) -> float:
        """Test-set accuracy (full set unless ``max_batches`` limits it)."""
        self.model.eval()
        correct = 0
        total = 0
        count = len(self.test_data)
        for start in range(0, count, batch_size):
            inputs = self.test_data.inputs[start : start + batch_size]
            labels = self.test_data.labels[start : start + batch_size]
            logits = self.model(inputs)
            correct += int((logits.argmax(axis=1) == labels).sum())
            total += len(labels)
            if max_batches and start // batch_size + 1 >= max_batches:
                break
        self.model.train()
        return correct / max(1, total)

    def run(
        self,
        epochs: int,
        steps_per_epoch: int,
        method_label: str = "",
    ) -> TrainingHistory:
        """Train for ``epochs`` and record the convergence curve."""
        if epochs < 1 or steps_per_epoch < 1:
            raise ValueError("epochs and steps_per_epoch must be >= 1")
        history = TrainingHistory(method_label or self.aggregator.method)
        for epoch in range(epochs):
            if self.schedule is not None:
                self.schedule.set_epoch(epoch)
            losses = [self.train_step() for _ in range(steps_per_epoch)]
            accuracy = self.evaluate()
            history.record(
                epoch, float(np.mean(losses)), accuracy, self.optimizer.lr
            )
        return history
