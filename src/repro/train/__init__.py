"""Data-parallel training harness for the convergence experiments.

- :mod:`repro.train.datasets` — synthetic CIFAR-like image classification
  data (the offline substitute for CIFAR-10; see DESIGN.md §1).
- :mod:`repro.train.trainer` — synchronous data-parallel trainer driving a
  model replica per simulated worker through any
  :class:`~repro.optim.aggregators.GradientAggregator`.
- :mod:`repro.train.history` — loss/accuracy curves for Fig. 6 / Fig. 7.
- :mod:`repro.train.resilience` — the trainer's detect/skip/fallback/
  rollback ladder (see docs/fault_tolerance.md).
- :mod:`repro.train.checkpoint` — validated checkpoints and the rotating
  :class:`CheckpointManager` ring the rollback rung restores from.
"""

from repro.train.datasets import (
    ArrayDataset,
    SyntheticImageDataset,
    SyntheticSequenceDataset,
    make_cifar_like,
    make_token_classification,
)
from repro.train.checkpoint import (
    CheckpointError,
    CheckpointManager,
    NoRestorableCheckpointError,
    load_checkpoint,
    save_checkpoint,
)
from repro.train.metrics import StepRecord, TrainingMetrics
from repro.train.history import TrainingHistory
from repro.train.reducer import BucketedReducer
from repro.train.resilience import ResilienceConfig, ResilienceLog
from repro.train.trainer import DataParallelTrainer

__all__ = [
    "ArrayDataset",
    "SyntheticImageDataset",
    "SyntheticSequenceDataset",
    "make_token_classification",
    "make_cifar_like",
    "TrainingHistory",
    "BucketedReducer",
    "DataParallelTrainer",
    "CheckpointError",
    "CheckpointManager",
    "NoRestorableCheckpointError",
    "load_checkpoint",
    "save_checkpoint",
    "ResilienceConfig",
    "ResilienceLog",
    "StepRecord",
    "TrainingMetrics",
]
