"""Data-parallel training harness for the convergence experiments.

- :mod:`repro.train.datasets` — synthetic CIFAR-like image classification
  data (the offline substitute for CIFAR-10; see DESIGN.md §1).
- :mod:`repro.train.trainer` — synchronous data-parallel trainer driving a
  model replica per simulated worker through any
  :class:`~repro.optim.aggregators.GradientAggregator`.
- :mod:`repro.train.history` — loss/accuracy curves for Fig. 6 / Fig. 7.
"""

from repro.train.datasets import (
    ArrayDataset,
    SyntheticImageDataset,
    SyntheticSequenceDataset,
    make_cifar_like,
    make_token_classification,
)
from repro.train.checkpoint import load_checkpoint, save_checkpoint
from repro.train.metrics import StepRecord, TrainingMetrics
from repro.train.history import TrainingHistory
from repro.train.trainer import DataParallelTrainer

__all__ = [
    "ArrayDataset",
    "SyntheticImageDataset",
    "SyntheticSequenceDataset",
    "make_token_classification",
    "make_cifar_like",
    "TrainingHistory",
    "DataParallelTrainer",
    "load_checkpoint",
    "save_checkpoint",
    "StepRecord",
    "TrainingMetrics",
]
