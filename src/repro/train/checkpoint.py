"""Checkpointing: persist and restore model + optimizer state.

Single-file ``.npz`` checkpoints carrying the flattened parameter vector,
the SGD momentum buffers, and a metadata header — enough to resume a
convergence experiment bit-for-bit (modulo the data stream position, which
the caller seeds).
"""

from __future__ import annotations

import json
from typing import Dict

import numpy as np

from repro.nn.module import Module
from repro.optim.sgd import SGD

_FORMAT_VERSION = 1


def save_checkpoint(path: str, model: Module, optimizer: SGD,
                    metadata: Dict | None = None) -> None:
    """Write model parameters and optimizer momentum to ``path`` (.npz)."""
    arrays: Dict[str, np.ndarray] = {"__params__": model.state_vector()}
    for name, velocity in optimizer._velocity.items():
        arrays[f"velocity::{name}"] = velocity
    header = {
        "version": _FORMAT_VERSION,
        "num_parameters": int(model.num_parameters()),
        "lr": optimizer.lr,
        "momentum": optimizer.momentum,
        "weight_decay": optimizer.weight_decay,
        "metadata": metadata or {},
    }
    arrays["__header__"] = np.frombuffer(
        json.dumps(header).encode(), dtype=np.uint8
    )
    np.savez(path, **arrays)


def load_checkpoint(path: str, model: Module, optimizer: SGD) -> Dict:
    """Restore ``model`` and ``optimizer`` from ``path``; returns metadata.

    Raises:
        ValueError: incompatible format version or parameter count.
    """
    with np.load(path) as archive:
        header = json.loads(bytes(archive["__header__"].tobytes()).decode())
        if header["version"] != _FORMAT_VERSION:
            raise ValueError(
                f"checkpoint version {header['version']} != {_FORMAT_VERSION}"
            )
        if header["num_parameters"] != model.num_parameters():
            raise ValueError(
                f"checkpoint has {header['num_parameters']} parameters, "
                f"model has {model.num_parameters()}"
            )
        model.load_state_vector(archive["__params__"])
        optimizer._velocity.clear()
        for key in archive.files:
            if key.startswith("velocity::"):
                optimizer._velocity[key[len("velocity::"):]] = archive[key].copy()
        optimizer.lr = float(header["lr"])
    return header["metadata"]
