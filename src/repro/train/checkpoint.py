"""Checkpointing: persist and restore model + optimizer state.

Single-file ``.npz`` checkpoints carrying the flattened parameter vector,
the SGD momentum buffers, and a metadata header — enough to resume a
convergence experiment bit-for-bit (modulo the data stream position, which
the caller seeds).

Robustness: the header embeds a CRC-32 of the parameter payload, and
:func:`load_checkpoint` converts every way a file can be broken (truncated
archive, corrupted member, missing keys, mangled header) into a single
:class:`CheckpointError` with a readable message — never a raw
numpy/zipfile stack trace. :class:`CheckpointManager` keeps a small ring of
known-good checkpoints and restores the newest one that still loads, which
is what the trainer's divergence rollback leans on.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Dict, List, Optional

import numpy as np

from repro.nn.module import Module
from repro.optim.sgd import SGD

_FORMAT_VERSION = 1


class CheckpointError(ValueError):
    """A checkpoint file is unreadable, truncated, or corrupt."""


class NoRestorableCheckpointError(CheckpointError):
    """Every retained checkpoint failed to load (or none was ever saved).

    Distinct from a single bad file: callers that walk the ring and reach
    this error have lost *all* rollback targets, which usually means
    restarting from scratch is the only move left. ``failures`` carries
    one ``"<path>: <reason>"`` entry per checkpoint tried, in
    newest-first order (empty when the ring was empty to begin with).
    """

    def __init__(self, failures: List[str]):
        self.failures = list(failures)
        detail = "; ".join(failures) if failures else "no checkpoint saved yet"
        super().__init__(f"no restorable checkpoint ({detail})")


def save_checkpoint(path: str, model: Module, optimizer: SGD,
                    metadata: Dict | None = None) -> None:
    """Write model parameters and optimizer momentum to ``path`` (.npz)."""
    params = model.state_vector()
    arrays: Dict[str, np.ndarray] = {"__params__": params}
    for name, velocity in optimizer._velocity.items():
        arrays[f"velocity::{name}"] = velocity
    header = {
        "version": _FORMAT_VERSION,
        "num_parameters": int(model.num_parameters()),
        "lr": optimizer.lr,
        "momentum": optimizer.momentum,
        "weight_decay": optimizer.weight_decay,
        "checksum": zlib.crc32(np.ascontiguousarray(params).tobytes()) & 0xFFFFFFFF,
        "metadata": metadata or {},
    }
    arrays["__header__"] = np.frombuffer(
        json.dumps(header).encode(), dtype=np.uint8
    )
    np.savez(path, **arrays)


def load_checkpoint(path: str, model: Module, optimizer: SGD) -> Dict:
    """Restore ``model`` and ``optimizer`` from ``path``; returns metadata.

    Raises:
        CheckpointError: unreadable/truncated file, corrupt payload
            (checksum mismatch), incompatible format version, or parameter
            count mismatch. ``CheckpointError`` subclasses ``ValueError``,
            so existing ``except ValueError`` callers keep working.
    """
    try:
        archive = np.load(path)
    except Exception as exc:
        raise CheckpointError(
            f"checkpoint {path!r} is unreadable (truncated or not a "
            f"checkpoint archive): {exc}"
        ) from exc
    with archive:
        try:
            header = json.loads(bytes(archive["__header__"].tobytes()).decode())
        except Exception as exc:
            raise CheckpointError(
                f"checkpoint {path!r} has a missing or corrupt header: {exc}"
            ) from exc
        if header.get("version") != _FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint version {header.get('version')} != {_FORMAT_VERSION}"
            )
        if header.get("num_parameters") != model.num_parameters():
            raise CheckpointError(
                f"checkpoint has {header.get('num_parameters')} parameters, "
                f"model has {model.num_parameters()}"
            )
        try:
            params = archive["__params__"]
            velocities = {
                key[len("velocity::"):]: archive[key].copy()
                for key in archive.files if key.startswith("velocity::")
            }
        except Exception as exc:
            raise CheckpointError(
                f"checkpoint {path!r} payload is corrupt or truncated: {exc}"
            ) from exc
        expected_crc = header.get("checksum")
        if expected_crc is not None:
            actual_crc = zlib.crc32(np.ascontiguousarray(params).tobytes()) & 0xFFFFFFFF
            if actual_crc != expected_crc:
                raise CheckpointError(
                    f"checkpoint {path!r} payload checksum mismatch "
                    f"(expected {expected_crc}, got {actual_crc}) — "
                    f"the file is corrupt"
                )
        model.load_state_vector(params)
        optimizer._velocity.clear()
        optimizer._velocity.update(velocities)
        optimizer.lr = float(header["lr"])
    return header["metadata"]


class CheckpointManager:
    """Rotating ring of known-good checkpoints for divergence rollback.

    ``save`` writes a fresh file and drops the oldest beyond ``keep``;
    ``restore`` walks newest -> oldest and loads the first file that passes
    validation, so a corrupted latest checkpoint falls back to its
    predecessor instead of killing the run.
    """

    def __init__(self, directory: str, keep: int = 2, basename: str = "ckpt"):
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = directory
        self.keep = keep
        self.basename = basename
        os.makedirs(directory, exist_ok=True)
        self._saved: List[str] = []  # newest last
        self._counter = 0

    @property
    def paths(self) -> List[str]:
        """Currently retained checkpoint paths, newest last."""
        return list(self._saved)

    def save(self, model: Module, optimizer: SGD,
             metadata: Optional[Dict] = None) -> str:
        """Persist a new checkpoint; returns its path."""
        path = os.path.join(
            self.directory, f"{self.basename}-{self._counter:06d}.npz"
        )
        self._counter += 1
        save_checkpoint(path, model, optimizer, metadata=metadata)
        self._saved.append(path)
        while len(self._saved) > self.keep:
            stale = self._saved.pop(0)
            try:
                os.remove(stale)
            except OSError:
                pass
        return path

    def restore(self, model: Module, optimizer: SGD) -> Dict:
        """Load the newest restorable checkpoint; returns its metadata.

        A checkpoint that fails validation (CRC mismatch, truncation,
        mangled header) is evicted from the ring on the spot: a corrupt
        file can never become readable again, and keeping it would make a
        later rollback re-pay the failed load — or worse, count it toward
        ``keep`` and age out a checkpoint that still works.

        Raises:
            NoRestorableCheckpointError: when no retained checkpoint
                loads; its ``failures`` list the per-file reasons.
        """
        failures = []
        for path in reversed(list(self._saved)):
            try:
                return load_checkpoint(path, model, optimizer)
            except CheckpointError as exc:
                failures.append(f"{path}: {exc}")
                self._saved.remove(path)
        raise NoRestorableCheckpointError(failures)
