"""Training metrics: throughput and communication accounting.

Collects, per training step, the wall-clock duration, samples processed
and bytes communicated (from the process group's measured collective
stats), yielding the throughput numbers the paper reports alongside
iteration times (§V-E discusses throughput explicitly).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.comm.process_group import ProcessGroup


@dataclass
class StepRecord:
    """One training step's measurements."""

    duration_s: float
    samples: int
    bytes_communicated: int


@dataclass
class TrainingMetrics:
    """Accumulates per-step measurements for one training run.

    Use either via :meth:`step_timer` around each step, or by calling
    :meth:`record` directly.
    """

    group: Optional[ProcessGroup] = None
    records: List[StepRecord] = field(default_factory=list)
    _step_started: Optional[float] = None
    _bytes_before: int = 0

    def start_step(self) -> None:
        """Mark the beginning of a step."""
        self._step_started = time.perf_counter()
        if self.group is not None:
            self._bytes_before = self.group.total_bytes()

    def end_step(self, samples: int) -> StepRecord:
        """Mark the end of a step; returns its record."""
        if self._step_started is None:
            raise RuntimeError("end_step called before start_step")
        duration = time.perf_counter() - self._step_started
        communicated = 0
        if self.group is not None:
            communicated = self.group.total_bytes() - self._bytes_before
        record = StepRecord(duration, samples, communicated)
        self.records.append(record)
        self._step_started = None
        return record

    def record(self, duration_s: float, samples: int,
               bytes_communicated: int = 0) -> None:
        """Append a measurement directly (e.g. from a simulator)."""
        if duration_s < 0 or samples < 0 or bytes_communicated < 0:
            raise ValueError("metrics values must be >= 0")
        self.records.append(StepRecord(duration_s, samples, bytes_communicated))

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def steps(self) -> int:
        return len(self.records)

    @property
    def total_samples(self) -> int:
        return sum(r.samples for r in self.records)

    @property
    def total_bytes(self) -> int:
        return sum(r.bytes_communicated for r in self.records)

    def throughput(self) -> float:
        """Samples per second over the recorded steps."""
        elapsed = sum(r.duration_s for r in self.records)
        if elapsed <= 0:
            return 0.0
        return self.total_samples / elapsed

    def mean_step_seconds(self) -> float:
        """Mean step duration."""
        if not self.records:
            return 0.0
        return sum(r.duration_s for r in self.records) / len(self.records)

    def bytes_per_step(self) -> float:
        """Mean communicated bytes per step."""
        if not self.records:
            return 0.0
        return self.total_bytes / len(self.records)

    def render(self) -> str:
        """One-line summary."""
        return (
            f"{self.steps} steps, {self.throughput():.1f} samples/s, "
            f"{self.bytes_per_step() / 1e6:.2f}MB communicated/step"
        )
