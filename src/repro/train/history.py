"""Training curves for the convergence figures."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class TrainingHistory:
    """Per-epoch records of one training run."""

    method: str
    epochs: List[int] = field(default_factory=list)
    train_loss: List[float] = field(default_factory=list)
    test_accuracy: List[float] = field(default_factory=list)
    learning_rate: List[float] = field(default_factory=list)

    def record(
        self, epoch: int, loss: float, accuracy: float, lr: float
    ) -> None:
        """Append one epoch's numbers."""
        self.epochs.append(epoch)
        self.train_loss.append(loss)
        self.test_accuracy.append(accuracy)
        self.learning_rate.append(lr)

    @property
    def final_accuracy(self) -> float:
        """Last-epoch test accuracy (the paper's headline convergence number)."""
        if not self.test_accuracy:
            raise ValueError("no epochs recorded")
        return self.test_accuracy[-1]

    @property
    def best_accuracy(self) -> float:
        """Best test accuracy across epochs."""
        if not self.test_accuracy:
            raise ValueError("no epochs recorded")
        return max(self.test_accuracy)

    def render(self) -> str:
        """Plain-text curve, one line per epoch."""
        lines = [f"method={self.method}"]
        for epoch, loss, acc in zip(self.epochs, self.train_loss, self.test_accuracy):
            lines.append(f"  epoch {epoch:3d}  loss {loss:7.4f}  acc {acc:6.2%}")
        return "\n".join(lines)
