"""Bucketed gradient reducer: WFBP + tensor fusion on the real hot path.

The paper's wait-free back-propagation (§II-B) overlaps each layer's
gradient communication with the back-propagation of the layers below it,
and its tensor fusion (§IV-B, Fig. 8) merges small tensors into buckets of
a tunable byte budget to amortize collective latency. This module brings
both to the actual training loop:

- the :class:`~repro.perf.arena.GradientArena` partitions its fused slab
  into contiguous buckets via the shared :func:`repro.fusion
  .partition_buckets` policy (the same one the simulator prices);
- :class:`BucketedReducer` listens on every parameter's gradient-ready
  hook (:meth:`repro.nn.parameter.Parameter.register_hook`) and fires each
  bucket's reduction **during the final worker's backward pass**, as soon
  as every gradient in the bucket is complete — reverse layout order, the
  order back-propagation produces them;
- per-bucket reduction drives the aggregator's staged protocol
  (``begin_buckets`` / ``reduce_bucket`` / ``finish_buckets``), which is
  bit-identical to the monolithic ``aggregate`` for every method that
  advertises ``supports_bucketed``.

Eager (hook-driven) firing needs to know when a bucket's gradients are
*final*: a parameter may be touched several times per backward (shared
weights) and several times per step (gradient accumulation). The reducer
learns the per-parameter accumulation count by observing worker 0's pass
each step, then counts the final worker's hook firings against it. When
the counts cannot be known yet — the very first step at world size 1 has
no earlier worker or step to observe — the step runs in deferred mode:
the same per-bucket protocol, fired after backward completes. Both modes
are bit-identical to each other and to the monolithic path.

Methods whose compression is *vector-global* (top-k selection, sign-SGD's
L1 scale) still stage per bucket but cannot ship until every bucket is
staged — the paper's observation that such compressors forfeit most of
WFBP's overlap.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.nn.module import Module
from repro.nn.parameter import Parameter, RemovableHandle
from repro.optim.aggregators import GradientAggregator, NamedGrads
from repro.perf.arena import ArenaGrads, GradientArena

#: One fired bucket: (bucket index, element count, seconds spent in
#: ``reduce_bucket``). Wall-clock includes compression and the collective.
BucketTiming = Tuple[int, int, float]


class BucketedReducer:
    """Drives per-bucket aggregation from gradient-ready hooks.

    Args:
        model: the trainer's model; hooks are registered on its parameters.
        arena: the bucketed gradient arena backing the model's gradients.
        aggregator: the main aggregator; must advertise
            ``supports_bucketed``.
        accumulation_steps: the trainer's micro-batch count. When a bucket
            fires eagerly, the reducer divides the final worker's bucket
            segment in place of the trainer's whole-slab division (see
            :meth:`owns_division`).
    """

    def __init__(
        self,
        model: Module,
        arena: GradientArena,
        aggregator: GradientAggregator,
        accumulation_steps: int = 1,
    ):
        if not aggregator.supports_bucketed:
            raise ValueError(
                f"aggregator {aggregator.method!r} does not support bucketed "
                "reduction; use buffer_bytes=None (monolithic aggregation) "
                "for this method"
            )
        self.arena = arena
        self.aggregator = aggregator
        self.accumulation_steps = accumulation_steps
        self.layout = arena.layout
        self._bucket_of: Dict[str, int] = {}
        for index, names in enumerate(self.layout.bucket_names()):
            for name in names:
                self._bucket_of[name] = index
        self._handles: List[RemovableHandle] = [
            param.register_hook(self._on_grad_ready)
            for _, param in model.named_parameters()
        ]
        #: Per-parameter accumulate_grad count for one full worker pass,
        #: learned by observing worker 0 (or, at world size 1, the previous
        #: step). Empty until one pass has been observed.
        self._expected: Dict[str, int] = {}
        # --- per-step state ---
        self._active = False
        self._eager = False
        self._slot: Optional[int] = None
        self._final_slot = 0
        self._learn: Dict[str, int] = {}
        self._counts: Dict[str, int] = {}
        self._remaining: List[set] = []
        self._fired: List[bool] = []
        self._sealed: set = set()
        self._per_worker: List[ArenaGrads] = []
        #: Timings of the buckets fired in the most recent step.
        self.last_timings: List[BucketTiming] = []
        #: Steps that actually fired buckets from hooks (WFBP engaged).
        self.eager_steps = 0
        #: Steps that fell back to firing every bucket after backward.
        self.deferred_steps = 0

    @property
    def num_buckets(self) -> int:
        return len(self.layout.buckets)

    def close(self) -> None:
        """Detach all gradient-ready hooks (idempotent)."""
        for handle in self._handles:
            handle.remove()
        self._handles = []

    # ------------------------------------------------------------------
    # Trainer-driven step protocol (clean path)
    # ------------------------------------------------------------------
    def begin_step(self, num_slots: int, eager: bool = True) -> None:
        """Open the step over ``num_slots`` live workers.

        ``eager`` requests hook-driven firing; the reducer downgrades to
        deferred mode on its own when the accumulation counts are not yet
        known (first step at world size 1).
        """
        self._per_worker = [
            self.arena.grads(slot) for slot in range(num_slots)
        ]
        self._final_slot = num_slots - 1
        self._slot = None
        self._learn = {}
        self._counts = {}
        self._sealed = set()
        self._fired = [False] * self.num_buckets
        self._remaining = []
        self.last_timings = []
        # At world size >= 2 worker 0's pass this step supplies the counts
        # before the final worker runs; at world size 1 only a previous
        # step can.
        self._eager = eager and (
            self._final_slot > 0 or self._counts_known()
        )
        self._active = True
        self.aggregator.begin_buckets(self._per_worker)
        if self._eager and self._final_slot == 0:
            self._arm_firing()

    def begin_worker(self, slot: int) -> None:
        """Mark worker ``slot``'s backward pass as the one now running."""
        self._slot = slot
        if slot == self._final_slot and self._final_slot > 0 and self._eager:
            self._adopt_learned()
            if self._counts_known():
                self._arm_firing()
            else:
                self._eager = False

    def owns_division(self, slot: int) -> bool:
        """Whether the reducer divides ``slot``'s micro-batch average.

        True only for the final worker of an eager step with gradient
        accumulation: each bucket segment is divided just before it fires,
        so the trainer must skip its whole-slab division for that slot.
        """
        return (
            self._active
            and self._eager
            and slot == self._final_slot
            and self.accumulation_steps > 1
        )

    def finish_step(self) -> NamedGrads:
        """Fire any remaining buckets and return the aggregated gradients."""
        if self._eager:
            self.eager_steps += 1
        else:
            self.deferred_steps += 1
        for index in range(self.num_buckets - 1, -1, -1):
            if not self._fired[index]:
                self._fire(index)
        self._active = False
        self._slot = None
        if self._learn:
            # World size 1: the pass just observed seeds the next step.
            self._expected = dict(self._learn)
            self._learn = {}
        self._per_worker = []
        return self.aggregator.finish_buckets()

    # ------------------------------------------------------------------
    # Deferred entry (resilient / fallback aggregation)
    # ------------------------------------------------------------------
    def aggregate(
        self, aggregator: GradientAggregator, per_worker: List[ArenaGrads]
    ) -> NamedGrads:
        """Run the whole bucketed protocol after backward, with timings.

        Used by the trainer's resilient path, where finite-checks must see
        the local gradients before any communication happens — so nothing
        can fire during backward — and where the fallback window may swap
        in a different (uncompressed) aggregator.
        """
        self.last_timings = []
        self.deferred_steps += 1
        aggregator.begin_buckets(per_worker)
        for index in range(self.num_buckets - 1, -1, -1):
            lo, hi = self.layout.buckets[index]
            start = time.perf_counter()
            aggregator.reduce_bucket(index)
            self.last_timings.append(
                (index, hi - lo, time.perf_counter() - start)
            )
        return aggregator.finish_buckets()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _counts_known(self) -> bool:
        counts = self._expected
        return bool(counts) and all(
            name in counts for name in self.layout.names
        )

    def _adopt_learned(self) -> None:
        if self._learn:
            self._expected = dict(self._learn)
            self._learn = {}

    def _arm_firing(self) -> None:
        self._remaining = [
            {
                name
                for name in names
                if self._expected.get(name, 0) > 0
            }
            for names in self.layout.bucket_names()
        ]

    def _on_grad_ready(self, param: Parameter) -> None:
        if not self._active:
            return
        name = param.name
        if self._slot == 0:
            # Observe worker 0's pass (at world size 1 it is also the
            # firing pass, calibrated by the previous step's observation).
            self._learn[name] = self._learn.get(name, 0) + 1
            if self._final_slot > 0:
                return
        if not self._eager or self._slot != self._final_slot:
            return
        if name in self._sealed:
            raise RuntimeError(
                f"gradient for {name!r} accumulated after its bucket was "
                "reduced; the backward pass touched the parameter more "
                "often than the observed pass the reducer calibrated on"
            )
        count = self._counts.get(name, 0) + 1
        self._counts[name] = count
        if count != self._expected.get(name, 0):
            return
        bucket = self._bucket_of[name]
        remaining = self._remaining[bucket]
        remaining.discard(name)
        if not remaining and not self._fired[bucket]:
            self._fire(bucket)

    def _fire(self, index: int) -> None:
        """Reduce one bucket now (divides micro-batch sums first)."""
        lo, hi = self.layout.buckets[index]
        if self._eager and self.accumulation_steps > 1:
            # The earlier workers' slabs were divided by the trainer at the
            # end of their passes; the final worker's division is per
            # bucket, here, so eager firing never waits for it. True
            # division, like GradientArena.divide_, so the values stay
            # bit-identical to the monolithic path.
            slab = self._per_worker[self._final_slot].slab
            slab[lo:hi] /= self.accumulation_steps
        if self._eager:
            for name in self.layout.bucket_names()[index]:
                self._sealed.add(name)
        start = time.perf_counter()
        self.aggregator.reduce_bucket(index)
        self.last_timings.append((index, hi - lo, time.perf_counter() - start))
        self._fired[index] = True
