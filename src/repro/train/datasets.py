"""Synthetic CIFAR-like datasets.

The paper's convergence study uses CIFAR-10, which is not available
offline; we substitute a structured 10-class image dataset whose difficulty
is controllable. Each class has a fixed random spatial template; a sample
is its class template under a random spatial jitter, scaled, plus Gaussian
pixel noise. The task requires learning translation-tolerant spatial
features (which is what convnets do on CIFAR) but is learnable to high
accuracy in a few numpy-scale epochs.

What matters to the reproduction is *relative* convergence across
aggregation methods on an identical data stream — the property Figs. 6-7
test — not the absolute dataset identity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass
class ArrayDataset:
    """A fixed array-backed classification dataset.

    ``inputs`` is any array with a leading sample dimension (NCHW images,
    integer token matrices, flat feature vectors); ``labels`` are integer
    classes. This is the protocol the data-parallel trainer consumes:
    ``__len__``, ``shard``, ``batch``.
    """

    inputs: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        if self.inputs.ndim < 2:
            raise ValueError(
                f"inputs need a leading sample dim, got shape {self.inputs.shape}"
            )
        if self.labels.shape != (self.inputs.shape[0],):
            raise ValueError(
                f"labels shape {self.labels.shape} != ({self.inputs.shape[0]},)"
            )

    def __len__(self) -> int:
        return int(self.inputs.shape[0])

    @property
    def num_classes(self) -> int:
        return int(self.labels.max()) + 1

    def shard(self, rank: int, world_size: int) -> "ArrayDataset":
        """Strided shard for one worker (disjoint across ranks)."""
        if not 0 <= rank < world_size:
            raise ValueError(f"rank {rank} out of range for world size {world_size}")
        return type(self)(
            self.inputs[rank::world_size], self.labels[rank::world_size]
        )

    def batch(
        self, rng: np.random.Generator, batch_size: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sample a batch with replacement."""
        idx = rng.integers(0, len(self), size=batch_size)
        return self.inputs[idx], self.labels[idx]


@dataclass
class SyntheticImageDataset(ArrayDataset):
    """NCHW image dataset (the CIFAR-like substitute)."""

    def __post_init__(self) -> None:
        if self.inputs.ndim != 4:
            raise ValueError(f"images must be NCHW, got shape {self.inputs.shape}")
        super().__post_init__()

    @property
    def images(self) -> np.ndarray:
        """Alias kept for readability at call sites."""
        return self.inputs


@dataclass
class SyntheticSequenceDataset(ArrayDataset):
    """Integer token-sequence dataset for the transformer workloads."""

    def __post_init__(self) -> None:
        if self.inputs.ndim != 2:
            raise ValueError(
                f"tokens must be (N, seq), got shape {self.inputs.shape}"
            )
        if not np.issubdtype(self.inputs.dtype, np.integer):
            raise ValueError(f"tokens must be integers, got {self.inputs.dtype}")
        super().__post_init__()


def make_cifar_like(
    num_train: int = 2000,
    num_test: int = 500,
    image_size: int = 16,
    num_classes: int = 10,
    noise: float = 0.35,
    jitter: int = 2,
    seed: int = 0,
) -> Tuple[SyntheticImageDataset, SyntheticImageDataset]:
    """Generate (train, test) synthetic image classification splits.

    Args:
        num_train/num_test: split sizes.
        image_size: square image side (3 channels).
        num_classes: label count (10, CIFAR-like).
        noise: pixel-noise std relative to the unit-normalized template.
        jitter: max absolute circular shift in pixels along each axis.
        seed: generation seed (templates + samples).
    """
    rng = np.random.default_rng(seed)
    templates = rng.normal(size=(num_classes, 3, image_size, image_size))
    templates /= np.linalg.norm(
        templates.reshape(num_classes, -1), axis=1
    )[:, None, None, None] / image_size

    def synthesize(count: int) -> Tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, num_classes, size=count)
        images = np.empty((count, 3, image_size, image_size))
        shifts = rng.integers(-jitter, jitter + 1, size=(count, 2))
        for i in range(count):
            img = templates[labels[i]]
            img = np.roll(img, shifts[i, 0], axis=1)
            img = np.roll(img, shifts[i, 1], axis=2)
            images[i] = img + noise * rng.normal(size=img.shape)
        return images, labels

    train_images, train_labels = synthesize(num_train)
    test_images, test_labels = synthesize(num_test)
    return (
        SyntheticImageDataset(train_images, train_labels),
        SyntheticImageDataset(test_images, test_labels),
    )


def make_token_classification(
    num_train: int = 1000,
    num_test: int = 250,
    vocab_size: int = 64,
    seq_len: int = 16,
    num_classes: int = 4,
    seed: int = 0,
) -> Tuple[SyntheticSequenceDataset, SyntheticSequenceDataset]:
    """Generate (train, test) synthetic token-sequence classification splits.

    Wraps :func:`repro.models.transformer.make_sequence_dataset` (each class
    has signature tokens) into the trainer's dataset protocol, for the
    transformer convergence experiments.
    """
    from repro.models.transformer import make_sequence_dataset

    train_tokens, train_labels = make_sequence_dataset(
        num_train, vocab_size=vocab_size, seq_len=seq_len,
        num_classes=num_classes, seed=seed,
    )
    test_tokens, test_labels = make_sequence_dataset(
        num_test, vocab_size=vocab_size, seq_len=seq_len,
        num_classes=num_classes, seed=seed + 1,
    )
    return (
        SyntheticSequenceDataset(train_tokens, train_labels),
        SyntheticSequenceDataset(test_tokens, test_labels),
    )
