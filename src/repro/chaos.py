"""Cross-subsystem chaos harness: seeded campaigns, hard invariants.

Every robustness mechanism in this repo was built against a *specific*
failure injected by a *specific* test. This module composes them: one
seeded campaign draws a random scenario configuration — world size,
aggregation method, worker-fault schedule, supervision policy, store
fault rates — runs it end to end, and asserts the properties the
subsystems promise *jointly*, not one mock at a time:

- **bit-identity where guaranteed** — a ``"restart"``-supervised process
  run with injected child crashes/hangs must match the fault-free run
  bit for bit; an ``"eject"``-supervised process run must match its
  sequential twin handling the same fault schedule; a gossip run over a
  :class:`~repro.gossip.FaultyStore` must replay bit-identically under
  the same seeds;
- **zero leaked shared memory** — after every campaign the
  :mod:`repro.perf.shm` ownership registry must be empty, even though
  children were SIGKILLed mid-step and mid-admission;
- **no deadlock** — the whole run sits under a global SIGALRM budget
  (``python -m repro chaos --timeout``); a hang anywhere is a loud
  failure, never a stuck terminal;
- **accounting reconciles** — every injected fault shows up in the
  supervisor's / store's stats exactly as often as the plan scheduled it.

Scenarios (``--scenarios``): ``workers`` (process-backend training under
crash/hang/slow worker faults, restart policy), ``elastic``
(eject-and-rejoin through the membership controller, process vs
sequential twin), ``gossip`` (FaultyStore drops/lag/tears/outages).
Campaign ``k`` of seed ``s`` derives every draw from ``(s, k)``, so any
red campaign is rerunnable in isolation with ``--seed``/``--campaigns``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.faults.plan import FaultPlan, WorkerFault
from repro.faults.supervisor import SupervisionPolicy
from repro.perf import shm

SCENARIOS = ("workers", "elastic", "gossip")

#: Seed-tuple sentinel separating chaos draws from every training stream.
_CHAOS_STREAM = 2**31 - 21


@dataclass
class CampaignResult:
    """One campaign's verdict: which invariants failed, and the config."""

    scenario: str
    index: int
    config: str
    failures: List[str] = field(default_factory=list)
    duration_s: float = 0.0

    @property
    def passed(self) -> bool:
        return not self.failures

    def render(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        lines = [
            f"[{mark}] {self.scenario} #{self.index} "
            f"({self.duration_s:.1f}s): {self.config}"
        ]
        lines.extend(f"       - {failure}" for failure in self.failures)
        return "\n".join(lines)


@dataclass
class ChaosReport:
    """Every campaign's result plus the aggregate verdict."""

    results: List[CampaignResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(result.passed for result in self.results)

    @property
    def failures(self) -> int:
        return sum(1 for result in self.results if not result.passed)

    def render(self) -> str:
        lines = [result.render() for result in self.results]
        lines.append(
            f"{len(self.results)} campaigns, {self.failures} failed"
            + ("" if self.failures else " — all invariants held")
        )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Shared fixtures (tiny on purpose: chaos breadth beats model depth)
# ----------------------------------------------------------------------
def _make_task(seed: int, n: int = 192, features: int = 6, classes: int = 3):
    from repro.train.datasets import ArrayDataset

    rng = np.random.default_rng((seed, _CHAOS_STREAM))
    w = rng.normal(size=(features, classes))
    x = rng.normal(size=(n, features))
    y = (x @ w).argmax(axis=1)
    split = int(n * 0.8)
    return (
        ArrayDataset(x[:split], y[:split]),
        ArrayDataset(x[split:], y[split:]),
    )


def _trainer_weights(model) -> np.ndarray:
    return np.concatenate(
        [param.data.ravel().copy() for _, param in model.named_parameters()]
    )


def _draw_worker_faults(
    rng: np.random.Generator, world: int, steps: int, kinds: Sequence[str]
) -> Tuple[WorkerFault, ...]:
    """1-2 distinct (rank, step) fault cells drawn from ``kinds``."""
    count = int(rng.integers(1, 3))
    cells: List[Tuple[int, int]] = []
    faults: List[WorkerFault] = []
    while len(faults) < count:
        cell = (int(rng.integers(0, world)), int(rng.integers(0, steps - 1)))
        if cell in cells:
            continue
        cells.append(cell)
        kind = str(rng.choice(list(kinds)))
        faults.append(
            WorkerFault(kind, rank=cell[0], step=cell[1], delay_s=0.01)
        )
    return tuple(faults)


def _run_supervised(
    seed: int,
    workers: str,
    world: int,
    steps: int,
    method: str,
    plan: Optional[FaultPlan],
    policy: Optional[SupervisionPolicy],
    membership_on: bool,
):
    """One short supervised training run; returns (losses, weights, trainer)."""
    from repro.comm.process_group import ProcessGroup
    from repro.elastic import MembershipController
    from repro.faults.plan import FaultInjector
    from repro.faults.resilient import ResilientProcessGroup
    from repro.models.convnets import make_mlp
    from repro.optim.aggregators import make_aggregator
    from repro.optim.sgd import SGD
    from repro.train.trainer import DataParallelTrainer

    train_data, test_data = _make_task(seed)
    model = make_mlp(6, 10, 3, rng=np.random.default_rng((seed, 1)))
    membership = None
    if membership_on:
        group = ResilientProcessGroup(
            world, injector=FaultInjector(plan or FaultPlan(seed=seed))
        )
        membership = MembershipController(group)
    elif policy is not None:
        group = ResilientProcessGroup(
            world, injector=FaultInjector(plan or FaultPlan(seed=seed))
        )
    else:
        group = ProcessGroup(world)
    trainer = DataParallelTrainer(
        model,
        SGD(model, lr=0.05, momentum=0.9),
        make_aggregator(method, group),
        train_data,
        test_data,
        batch_size_per_worker=4,
        seed=seed,
        workers=workers,
        membership=membership,
        supervision=policy,
        # Short on purpose: a scheduled hang costs one full timeout to
        # detect, and these models step in milliseconds — 10s is still a
        # two-orders-of-magnitude margin on a loaded CI box.
        worker_step_timeout=10.0,
    )
    with trainer:
        losses = [trainer.train_step() for _ in range(steps)]
    return losses, _trainer_weights(model), trainer


# ----------------------------------------------------------------------
# Scenario campaigns
# ----------------------------------------------------------------------
def _campaign_workers(seed: int, rng: np.random.Generator) -> Tuple[str, List[str]]:
    """Restart-supervised process training vs the fault-free run."""
    world = int(rng.integers(2, 4))
    steps = int(rng.integers(3, 6))
    method = str(rng.choice(["ssgd", "topk", "signsgd"]))
    plan = FaultPlan(
        seed=seed,
        worker_faults=_draw_worker_faults(
            rng, world, steps, ("crash", "hang", "slow")
        ),
    )
    config = (
        f"world={world} steps={steps} method={method} "
        f"faults={[(f.kind, f.rank, f.step) for f in plan.worker_faults]}"
    )
    policy = SupervisionPolicy(on_failure="restart")
    failures: List[str] = []

    clean_losses, clean_weights, _ = _run_supervised(
        seed, "process", world, steps, method, None, None, False
    )
    losses, weights, trainer = _run_supervised(
        seed, "process", world, steps, method, plan, policy, False
    )
    if losses != clean_losses or not np.array_equal(weights, clean_weights):
        failures.append(
            "restart-supervised run is not bit-identical to fault-free"
        )
    seq_losses, seq_weights, seq_trainer = _run_supervised(
        seed, "seq", world, steps, method, plan, policy, False
    )
    if losses != seq_losses or not np.array_equal(weights, seq_weights):
        failures.append("process run diverged from its sequential twin")
    stats = trainer.supervisor.stats
    injected = sum(
        1 for fault in plan.worker_faults if fault.kind in ("crash", "hang")
    )
    detected = stats.worker_crashes + stats.worker_timeouts
    if detected != injected:
        failures.append(
            f"stats do not reconcile: {injected} faults injected, "
            f"{detected} detected"
        )
    if stats.worker_restarts != injected:
        failures.append(
            f"{injected} failures should cost {injected} restarts, "
            f"stats say {stats.worker_restarts}"
        )
    return config, failures


def _campaign_elastic(seed: int, rng: np.random.Generator) -> Tuple[str, List[str]]:
    """Eject-and-rejoin through the membership controller, twin-checked."""
    world = int(rng.integers(2, 4))
    steps = int(rng.integers(5, 8))
    method = str(rng.choice(["ssgd", "acpsgd"]))
    delay = int(rng.integers(1, 3))
    # One crash or hang: eject mode degrades the step, so every injected
    # cell must also be survivable by the *group* (never kill rank 0's
    # whole roster at once).
    fault = WorkerFault(
        str(rng.choice(["crash", "hang"])),
        rank=int(rng.integers(0, world)),
        step=int(rng.integers(1, steps - 2)),
    )
    plan = FaultPlan(seed=seed, worker_faults=(fault,))
    policy = SupervisionPolicy(
        on_failure="eject", respawn_delay_steps=delay
    )
    config = (
        f"world={world} steps={steps} method={method} "
        f"fault=({fault.kind},{fault.rank},{fault.step}) rejoin_after={delay}"
    )
    failures: List[str] = []

    p_losses, p_weights, p_trainer = _run_supervised(
        seed, "process", world, steps, method, plan, policy, True
    )
    s_losses, s_weights, s_trainer = _run_supervised(
        seed, "seq", world, steps, method, plan, policy, True
    )
    if p_losses != s_losses or not np.array_equal(p_weights, s_weights):
        failures.append(
            "eject-supervised process run diverged from its sequential twin"
        )
    for label, trainer in (("process", p_trainer), ("seq", s_trainer)):
        log = trainer.membership.log
        if [c.rank for c in log.of_kind("eject")] != [fault.rank]:
            failures.append(f"{label}: ejection of rank {fault.rank} "
                            f"not committed ({log.render()})")
        if [c.rank for c in log.of_kind("rejoin")] != [fault.rank]:
            failures.append(f"{label}: rejoin of rank {fault.rank} "
                            f"not committed ({log.render()})")
        stats = trainer.supervisor.stats
        if stats.worker_crashes + stats.worker_timeouts != 1:
            failures.append(f"{label}: stats do not reconcile")
    return config, failures


def _campaign_gossip(seed: int, rng: np.random.Generator) -> Tuple[str, List[str]]:
    """Gossip over a FaultyStore: replayable, finite, accounted for."""
    from repro.gossip import (
        FaultyStore,
        GossipCluster,
        GossipConfig,
        InMemoryStore,
        StoreFaultConfig,
    )
    from repro.models.convnets import make_mlp

    peers = int(rng.integers(3, 6))
    windows = int(rng.integers(6, 10))
    store_config = StoreFaultConfig(
        seed=seed,
        drop_publish_rate=float(rng.uniform(0.05, 0.25)),
        delay_publish_rate=float(rng.uniform(0.05, 0.25)),
        delay_windows=int(rng.integers(1, 3)),
        torn_fetch_rate=float(rng.uniform(0.05, 0.3)),
        outage_windows=(int(rng.integers(1, windows)),),
    )
    config = (
        f"peers={peers} windows={windows} drop={store_config.drop_publish_rate:.2f} "
        f"delay={store_config.delay_publish_rate:.2f} "
        f"torn={store_config.torn_fetch_rate:.2f} "
        f"outage={store_config.outage_windows}"
    )
    failures: List[str] = []

    def run():
        train_data, test_data = _make_task(seed)
        store = FaultyStore(InMemoryStore(), store_config)
        cluster = GossipCluster(
            lambda: make_mlp(6, 12, 3, rng=np.random.default_rng((seed, 2))),
            train_data,
            test_data,
            GossipConfig(local_steps=2, lr=0.1, compression_ratio=0.25),
            peers=peers,
            store=store,
            seed=seed,
        )
        cluster.run(windows)
        first = cluster.peers[sorted(cluster.peers)[0]]
        return _trainer_weights(first.model), store.stats

    weights_a, stats_a = run()
    weights_b, stats_b = run()
    if not np.array_equal(weights_a, weights_b):
        failures.append("faulty gossip run is not replayable bit-identically")
    if stats_a != stats_b:
        failures.append("store fault stats differ between identical replays")
    if not np.isfinite(weights_a).all():
        failures.append("gossip weights went non-finite under store faults")
    if stats_a.unavailable_ops == 0:
        failures.append("scheduled outage window never fired")
    if stats_a.delivered_late > stats_a.delayed_publishes:
        failures.append("more late deliveries than delayed publishes")
    return config, failures


_CAMPAIGNS: Dict[str, Callable[[int, np.random.Generator], Tuple[str, List[str]]]] = {
    "workers": _campaign_workers,
    "elastic": _campaign_elastic,
    "gossip": _campaign_gossip,
}


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def run_campaigns(
    scenarios: Sequence[str] = SCENARIOS,
    campaigns: int = 2,
    seed: int = 0,
    log: Optional[Callable[[str], None]] = None,
) -> ChaosReport:
    """Run ``campaigns`` seeded campaigns of each scenario.

    Campaign ``k`` derives its entire configuration from ``(seed, k)``;
    an invariant violation is recorded, never raised, so one red
    campaign cannot mask another. After every campaign the shm ownership
    registry must be empty — a leak anywhere fails that campaign even if
    its trajectory checks passed.
    """
    if campaigns < 1:
        raise ValueError(f"campaigns must be >= 1, got {campaigns}")
    unknown = [s for s in scenarios if s not in _CAMPAIGNS]
    if unknown:
        raise ValueError(
            f"unknown scenarios {unknown}; choose from {sorted(_CAMPAIGNS)}"
        )
    report = ChaosReport()
    for scenario in scenarios:
        campaign = _CAMPAIGNS[scenario]
        for index in range(campaigns):
            campaign_seed = seed + index
            rng = np.random.default_rng((seed, index, _CHAOS_STREAM))
            start = time.perf_counter()
            try:
                config, failures = campaign(campaign_seed, rng)
            except BaseException as exc:  # noqa: BLE001 — a crash is a verdict
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    raise
                config = "crashed before reporting a config"
                failures = [f"campaign raised {type(exc).__name__}: {exc}"]
            leaked = shm.live_segment_names()
            if leaked:
                failures.append(f"leaked shm segments: {sorted(leaked)}")
                shm.force_release_all()  # contain the blast radius
            result = CampaignResult(
                scenario=scenario,
                index=index,
                config=config,
                failures=failures,
                duration_s=time.perf_counter() - start,
            )
            report.results.append(result)
            if log is not None:
                log(result.render())
    return report
