"""Gradient compression algorithms.

The methods evaluated and proposed by the paper:

- :mod:`repro.compression.signsgd` — Sign-SGD with majority vote [17] and
  1-bit packing (quantization family, <=32x ratio, all-gather aggregation).
- :mod:`repro.compression.topk` — Top-k sparsification [21] with both exact
  selection and the paper's "multiple sampling" binary-search threshold
  estimation (all-gather aggregation of values+indices).
- :mod:`repro.compression.randomk` — Random-k sparsification with a shared
  selection seed, which (unlike Top-k) *is* additive and all-reducible.
- :mod:`repro.compression.qsgd` — QSGD stochastic quantization [16]
  (background method, implemented as an extension).
- :mod:`repro.compression.powersgd` — Power-SGD [24]: rank-r power-iteration
  low-rank compression with query reuse and error feedback (Algorithm 1,
  left function).
- :mod:`repro.compression.acpsgd` — **ACP-SGD**, the paper's contribution:
  alternate compressed Power-SGD with error feedback (Algorithms 1-2),
  which compresses into only P (odd steps) or only Q (even steps) so the
  per-iteration communication is a single, additive, non-blocking
  all-reduce.

Shared infrastructure:

- :mod:`repro.compression.reshaping` — which parameters get compressed and
  how gradients are viewed as matrices (§IV-C: vector-shaped parameters are
  sent uncompressed).
- :mod:`repro.compression.orthogonalize` — reduced-QR orthogonalization with
  a Gram-Schmidt fallback for degenerate inputs.
- :mod:`repro.compression.ratios` / :mod:`repro.compression.complexity` —
  the analytical accounting behind Tables I and II.
- :mod:`repro.compression.payload` — self-describing, CRC-stamped
  pack/unpack of compressed updates for store-mediated exchange between
  untrusted peers (:mod:`repro.gossip`).
"""

from repro.compression.orthogonalize import orthogonalize
from repro.compression.reshaping import (
    grad_to_matrix,
    matrix_to_grad,
    matrix_view_shape,
    should_compress,
)
from repro.compression.signsgd import (
    SignCompressor,
    SignPayload,
    majority_vote_aggregate,
)
from repro.compression.topk import (
    SparsePayload,
    TopkCompressor,
    exact_topk_mask,
    sampled_threshold_topk_mask,
    sparse_aggregate,
)
from repro.compression.randomk import RandomKCompressor, RandomKPayload
from repro.compression.qsgd import QSGDCompressor, QSGDPayload
from repro.compression.powersgd import PowerSGDState, init_low_rank
from repro.compression.acpsgd import ACPSGDState
from repro.compression.ratios import (
    acpsgd_compressed_elements,
    compression_ratio,
    powersgd_compressed_elements,
    signsgd_compressed_bits,
    topk_compressed_elements,
    total_elements,
)
from repro.compression.complexity import (
    communicate_elements,
    compress_flops,
)
from repro.compression.adaptive import (
    per_tensor_ranks,
    rank_for_energy,
    rank_for_target_ratio,
)
from repro.compression.atomo import SVDLowRankState, best_rank_r_error
from repro.compression.terngrad import TernGradCompressor, TernPayload
from repro.compression.payload import (
    PAYLOAD_MAGIC,
    PayloadFormatError,
    pack_payload,
    payload_meta,
    unpack_payload,
)

__all__ = [
    "orthogonalize",
    "grad_to_matrix",
    "matrix_to_grad",
    "matrix_view_shape",
    "should_compress",
    "SignCompressor",
    "SignPayload",
    "majority_vote_aggregate",
    "TopkCompressor",
    "SparsePayload",
    "exact_topk_mask",
    "sampled_threshold_topk_mask",
    "sparse_aggregate",
    "RandomKCompressor",
    "RandomKPayload",
    "QSGDCompressor",
    "QSGDPayload",
    "PowerSGDState",
    "init_low_rank",
    "ACPSGDState",
    "compression_ratio",
    "powersgd_compressed_elements",
    "acpsgd_compressed_elements",
    "signsgd_compressed_bits",
    "topk_compressed_elements",
    "total_elements",
    "communicate_elements",
    "compress_flops",
    "per_tensor_ranks",
    "rank_for_energy",
    "rank_for_target_ratio",
    "SVDLowRankState",
    "best_rank_r_error",
    "TernGradCompressor",
    "TernPayload",
    "PAYLOAD_MAGIC",
    "PayloadFormatError",
    "pack_payload",
    "payload_meta",
    "unpack_payload",
]
