"""Top-k sparsification [Lin et al. DGC; Shi et al. MLSys'21].

Each worker keeps only the k largest-magnitude gradient elements and
transmits (values, indices) — ``2k`` numbers per worker (Table II). The
selected coordinates differ across workers, so the compressed tensors are
not additive and aggregation uses all-gather + local sparse summation.

Two selection strategies, matching §III-A of the paper:

- exact: full ``argpartition`` selection (the paper notes this is slow on
  GPUs);
- multiple sampling: estimate a magnitude threshold by binary search over a
  random sample of the tensor so that roughly k elements exceed it — the
  "multiple sampling uses binary search to find a close top-k threshold"
  approach attributed to [21].

Error feedback stores the unsent residual and adds it back next step
(Stich et al., "Sparsified SGD with memory").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np


@dataclass
class SparsePayload:
    """Wire format of one worker's sparsified tensor."""

    indices: np.ndarray  # int64 coordinates into the flattened tensor
    values: np.ndarray  # float values at those coordinates
    num_elements: int  # original dense size

    @property
    def nbytes(self) -> int:
        """Bytes on the wire: 4-byte index + 4-byte value per element."""
        return int(self.indices.size) * 8

    @property
    def k(self) -> int:
        return int(self.indices.size)


def exact_topk_mask(flat: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest-magnitude elements (exact)."""
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    k = min(k, flat.size)
    if k == 0:
        return np.zeros(0, dtype=np.int64)
    if k == flat.size:
        return np.arange(flat.size, dtype=np.int64)
    idx = np.argpartition(np.abs(flat), flat.size - k)[flat.size - k :]
    return idx.astype(np.int64)


def sampled_threshold_topk_mask(
    flat: np.ndarray,
    k: int,
    rng: np.random.Generator,
    sample_size: int = 4096,
    max_rounds: int = 20,
    tolerance: float = 0.3,
) -> np.ndarray:
    """Approximate top-k via sampled-threshold binary search.

    Samples ``sample_size`` magnitudes, then binary-searches a threshold
    whose exceed-count lands within ``(1 +/- tolerance) * k``, re-measuring
    the true exceed count each round. Returns the indices above the final
    threshold — between ``(1-tolerance)k`` and ``(1+tolerance)k`` of them in
    the common case, mirroring the inexactness of the paper's multi-sampling
    selection.
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    size = flat.size
    k = min(k, size)
    if k == 0:
        return np.zeros(0, dtype=np.int64)
    if k >= size:
        return np.arange(size, dtype=np.int64)
    magnitudes = np.abs(flat)
    sample = magnitudes
    if size > sample_size:
        sample = magnitudes[rng.integers(0, size, size=sample_size)]
    # Initial threshold from the sample quantile matching a k/size tail.
    tail_fraction = k / size
    low, high = 0.0, float(magnitudes.max())
    threshold = float(np.quantile(sample, 1.0 - tail_fraction))
    for _ in range(max_rounds):
        count = int((magnitudes > threshold).sum())
        if (1.0 - tolerance) * k <= count <= (1.0 + tolerance) * k:
            break
        if count > k:  # threshold too low
            low = threshold
        else:  # threshold too high
            high = threshold
        threshold = 0.5 * (low + high)
    idx = np.nonzero(magnitudes > threshold)[0]
    if idx.size == 0:
        # Degenerate (all elements equal): fall back to exact selection.
        return exact_topk_mask(flat, k)
    if idx.size > int((1.0 + tolerance) * k):
        # Cap the payload like real implementations do.
        order = np.argsort(magnitudes[idx])[::-1][: int((1.0 + tolerance) * k)]
        idx = idx[order]
    return idx.astype(np.int64)


class TopkCompressor:
    """Per-worker Top-k compressor with error feedback.

    Args:
        ratio: fraction of elements to keep (the paper uses 0.001, i.e.
            1000x compression).
        selection: ``"exact"`` or ``"sampled"`` (multi-sampling threshold).
        use_error_feedback: keep and re-add the unsent residual.
        rng: sampling stream for the threshold estimator.
        min_k: lower bound on k so tiny tensors still send something.
    """

    def __init__(
        self,
        ratio: float = 0.001,
        selection: str = "exact",
        use_error_feedback: bool = True,
        rng: Optional[np.random.Generator] = None,
        min_k: int = 1,
    ):
        if not 0.0 < ratio <= 1.0:
            raise ValueError(f"ratio must be in (0, 1], got {ratio}")
        if selection not in ("exact", "sampled"):
            raise ValueError(f"unknown selection strategy {selection!r}")
        self.ratio = ratio
        self.selection = selection
        self.use_error_feedback = use_error_feedback
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.min_k = min_k
        self._error: Dict[str, np.ndarray] = {}

    def select(self, flat: np.ndarray) -> np.ndarray:
        """Top-k coordinate selection over an (EF-corrected) flat vector.

        One call consumes at most one draw from the sampling stream, so
        callers that stage the vector themselves (the bucketed reducer
        builds it bucket by bucket) select bit-identically to
        :meth:`compress`.
        """
        k = max(self.min_k, int(round(self.ratio * flat.size)))
        if self.selection == "exact":
            return exact_topk_mask(flat, k)
        return sampled_threshold_topk_mask(flat, k, self.rng)

    def compress(self, name: str, grad: np.ndarray) -> SparsePayload:
        """Sparsify ``grad`` (plus stored residual) to ~ratio*size elements."""
        flat = grad.reshape(-1).astype(np.float64)
        if self.use_error_feedback:
            residual = self._error.get(name)
            if residual is not None:
                flat = flat + residual
        idx = self.select(flat)
        values = flat[idx]
        if self.use_error_feedback:
            residual = flat.copy()
            residual[idx] = 0.0
            self._error[name] = residual
        return SparsePayload(indices=idx, values=values, num_elements=flat.size)

    def residual_for(self, name: str):
        """Stored EF residual for ``name`` (``None`` when absent or EF off)."""
        if not self.use_error_feedback:
            return None
        return self._error.get(name)

    def store_residual(self, name: str, residual: np.ndarray) -> None:
        """Replace the EF residual for ``name`` (no-op when EF is off)."""
        if self.use_error_feedback:
            self._error[name] = residual

    def reset(self) -> None:
        """Drop accumulated error state."""
        self._error.clear()


def sparse_aggregate(
    payloads: List[SparsePayload],
    shape: Tuple[int, ...],
    average: bool = True,
    validate: bool = False,
) -> np.ndarray:
    """Sum gathered sparse payloads into a dense tensor (optionally mean).

    With ``validate`` each payload's values are checked finite before the
    scatter-add (cost: one pass over the ~k received values per worker), so
    a corrupted payload fails loudly instead of silently poisoning the
    dense gradient.
    """
    if not payloads:
        raise ValueError("need at least one payload")
    if validate:
        from repro.utils.validation import assert_finite

        for worker, payload in enumerate(payloads):
            assert_finite(payload.values, f"topk payload values (worker {worker})")
    num_elements = payloads[0].num_elements
    dense = np.zeros(num_elements)
    for payload in payloads:
        if payload.num_elements != num_elements:
            raise ValueError("payload dense sizes disagree across workers")
        np.add.at(dense, payload.indices, payload.values)
    if average:
        dense /= len(payloads)
    return dense.reshape(shape)
