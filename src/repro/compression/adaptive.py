"""Adaptive rank selection for low-rank compression (extension).

The paper fixes one global rank per model (4 for ResNets, 32 for BERTs) and
notes rank choice controls the accuracy/efficiency trade-off (§V-E). This
extension adds two principled selectors:

- :func:`rank_for_target_ratio` — the smallest uniform rank achieving a
  target headline compression ratio for a model's shapes (inverts the
  Table I computation);
- :func:`rank_for_energy` — a per-matrix data-dependent rank capturing a
  target fraction of the gradient's spectral energy (squared singular
  values), the classic truncation criterion;
- :func:`per_tensor_ranks` — energy-based ranks for a dict of gradients,
  usable with Power-SGD/ACP-SGD by constructing one state per tensor.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

import numpy as np

from repro.compression.ratios import acpsgd_compressed_elements, total_elements


def rank_for_target_ratio(
    shapes: Iterable[Tuple[int, ...]],
    target_ratio: float,
    max_rank: int = 512,
) -> int:
    """Smallest uniform rank whose ACP-SGD ratio still meets the target.

    Args:
        shapes: the model's parameter shapes.
        target_ratio: desired ``N / N_c`` (e.g. 32 for "at least 32x").
        max_rank: search ceiling.

    Returns:
        The largest rank r in [1, max_rank] with ratio(r) >= target_ratio
        (larger ranks approximate better; we give the best quality that
        still meets the budget).

    Raises:
        ValueError: if even rank 1 cannot meet the target.
    """
    if target_ratio <= 1.0:
        raise ValueError(f"target_ratio must be > 1, got {target_ratio}")
    shapes = list(shapes)
    n_total = total_elements(shapes)

    def ratio(rank: int) -> float:
        return n_total / acpsgd_compressed_elements(shapes, rank)

    if ratio(1) < target_ratio:
        raise ValueError(
            f"target ratio {target_ratio}x unattainable: rank 1 gives "
            f"{ratio(1):.1f}x (vector parameters dominate)"
        )
    # ratio(r) decreases in r: binary search the largest feasible rank.
    low, high = 1, max_rank
    while low < high:
        mid = (low + high + 1) // 2
        if ratio(mid) >= target_ratio:
            low = mid
        else:
            high = mid - 1
    return low


def rank_for_energy(matrix: np.ndarray, energy: float = 0.9, max_rank: int = 0) -> int:
    """Smallest rank capturing ``energy`` of the matrix's spectral energy."""
    if matrix.ndim != 2:
        raise ValueError(f"expected a matrix, got shape {matrix.shape}")
    if not 0.0 < energy <= 1.0:
        raise ValueError(f"energy must be in (0, 1], got {energy}")
    singular = np.linalg.svd(matrix, compute_uv=False)
    squared = singular**2
    total = squared.sum()
    if total == 0.0:
        return 1
    cumulative = np.cumsum(squared) / total
    rank = int(np.searchsorted(cumulative, energy - 1e-12) + 1)
    if max_rank:
        rank = min(rank, max_rank)
    return max(1, rank)


def per_tensor_ranks(
    gradients: Dict[str, np.ndarray],
    energy: float = 0.9,
    max_rank: int = 64,
) -> Dict[str, int]:
    """Energy-based rank per matrix-shaped gradient (vectors excluded)."""
    from repro.compression.reshaping import grad_to_matrix, should_compress

    ranks: Dict[str, int] = {}
    for name, grad in gradients.items():
        if should_compress(grad.shape):
            ranks[name] = rank_for_energy(
                grad_to_matrix(grad), energy, max_rank=max_rank
            )
    return ranks
