"""Orthogonalization of the low-rank factors.

The paper uses reduced QR decomposition (``torch.linalg.qr``) for
orthogonalization (§IV-C); we use ``numpy.linalg.qr`` with a modified
Gram-Schmidt fallback for inputs QR cannot handle gracefully (rank-deficient
columns arising from all-zero gradients early in training).
"""

from __future__ import annotations

import numpy as np

_EPS = 1e-12


def _gram_schmidt(matrix: np.ndarray) -> np.ndarray:
    """Modified Gram-Schmidt with re-randomization of degenerate columns."""
    out = matrix.astype(np.float64, copy=True)
    rng = np.random.default_rng(0)
    rows, cols = out.shape
    for j in range(cols):
        col = out[:, j]
        for i in range(j):
            col -= (out[:, i] @ col) * out[:, i]
        norm = np.linalg.norm(col)
        if norm < _EPS:
            # Degenerate direction: substitute a random one orthogonal to the
            # previous columns so downstream projections stay well-defined.
            col = rng.normal(size=rows)
            for i in range(j):
                col -= (out[:, i] @ col) * out[:, i]
            norm = np.linalg.norm(col)
            if norm < _EPS:  # rows < cols: no direction left, keep zeros
                out[:, j] = 0.0
                continue
        out[:, j] = col / norm
    return out


def orthogonalize(matrix: np.ndarray) -> np.ndarray:
    """Return a column-orthonormal matrix spanning ``matrix``'s column space.

    Uses reduced QR (the paper's choice); falls back to modified
    Gram-Schmidt when the input is non-finite-free or QR fails to converge.
    The result has the same shape as the input (rank columns).
    """
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {matrix.shape}")
    if not np.isfinite(matrix).all():
        raise ValueError("cannot orthogonalize a matrix with NaN/Inf entries")
    rows, cols = matrix.shape
    if rows >= cols:
        try:
            q, _ = np.linalg.qr(matrix)
            # QR of a rank-deficient matrix can produce zero columns in
            # degenerate cases; verify orthonormality and fall back if needed.
            gram = q.T @ q
            if np.allclose(gram, np.eye(cols), atol=1e-8):
                return q
        except np.linalg.LinAlgError:
            pass
    return _gram_schmidt(matrix)
