"""QSGD stochastic quantization [Alistarh et al., 2017].

Background method from §II-B.1 of the paper, implemented as an extension.
Each element is quantized to one of ``s`` levels of its tensor's L2 norm via
randomized rounding, which makes the compressor *unbiased*
(``E[q(x)] = x``), unlike Sign-SGD / Top-k / Power-SGD.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


@dataclass
class QSGDPayload:
    """Wire format: tensor norm, signs, and integer levels."""

    norm: float
    signs: np.ndarray  # int8 in {-1, 0, +1}
    levels: np.ndarray  # uint integers in [0, s]
    num_levels: int
    num_elements: int

    @property
    def nbytes(self) -> int:
        """Bytes on the wire with bit-packing: sign bit + ceil(log2(s+1)) bits."""
        bits_per_level = max(1, math.ceil(math.log2(self.num_levels + 1)))
        payload_bits = self.num_elements * (1 + bits_per_level)
        return payload_bits // 8 + 4  # + float32 norm


class QSGDCompressor:
    """Stochastic ``s``-level quantizer.

    Args:
        num_levels: quantization levels ``s`` (e.g. 255 for 8-bit QSGD).
        rng: randomized-rounding stream; per-worker independent streams are
            fine because the compressor is unbiased.
    """

    def __init__(self, num_levels: int = 255, rng: Optional[np.random.Generator] = None):
        if num_levels < 1:
            raise ValueError(f"num_levels must be >= 1, got {num_levels}")
        self.num_levels = num_levels
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def compress(self, grad: np.ndarray) -> QSGDPayload:
        """Quantize ``grad`` to ``num_levels`` stochastic levels of its norm."""
        flat = grad.reshape(-1).astype(np.float64)
        norm = float(np.linalg.norm(flat))
        if norm == 0.0:
            return QSGDPayload(
                norm=0.0,
                signs=np.zeros(flat.size, dtype=np.int8),
                levels=np.zeros(flat.size, dtype=np.uint32),
                num_levels=self.num_levels,
                num_elements=flat.size,
            )
        scaled = np.abs(flat) / norm * self.num_levels
        floor = np.floor(scaled)
        prob_up = scaled - floor
        levels = floor + (self.rng.random(flat.size) < prob_up)
        return QSGDPayload(
            norm=norm,
            signs=np.sign(flat).astype(np.int8),
            levels=levels.astype(np.uint32),
            num_levels=self.num_levels,
            num_elements=flat.size,
        )

    @staticmethod
    def decompress(payload: QSGDPayload, shape: Tuple[int, ...]) -> np.ndarray:
        """Reconstruct the dense (dequantized) tensor."""
        if payload.norm == 0.0:
            return np.zeros(shape)
        dense = (
            payload.norm
            * payload.signs.astype(np.float64)
            * payload.levels.astype(np.float64)
            / payload.num_levels
        )
        return dense.reshape(shape)
