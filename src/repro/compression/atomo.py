"""SVD-based low-rank compression (ATOMO-style, the paper's reference [23]).

ATOMO computes the *optimal* rank-r decomposition via a full SVD each step —
far more compute than Power-SGD's single power iteration (the very cost the
paper cites as making Power-SGD "relatively practical"), but it provides the
quality oracle against which Power-SGD's and ACP-SGD's one-step
approximations are judged (``benchmarks/test_ablation_approx_quality.py``).

Implemented with error feedback for a fair convergence comparison.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np


class SVDLowRankState:
    """Per-worker exact-SVD rank-r compressor with error feedback."""

    def __init__(self, rank: int, use_error_feedback: bool = True):
        if rank < 1:
            raise ValueError(f"rank must be >= 1, got {rank}")
        self.rank = rank
        self.use_error_feedback = use_error_feedback
        self._error: Dict[str, np.ndarray] = {}

    def effective_rank(self, matrix_shape: Tuple[int, int]) -> int:
        """Rank actually used (capped by matrix dimensions)."""
        n, m = matrix_shape
        return min(self.rank, n, m)

    def compress(self, name: str, matrix: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Return the factors ``(P, Q)`` with ``M_hat = P @ Q^T`` optimal.

        ``P`` is ``n x r`` (left singular vectors scaled by singular
        values), ``Q`` is ``m x r``. Updates the EF residual.
        """
        if matrix.ndim != 2:
            raise ValueError(f"expected a matrix, got shape {matrix.shape}")
        work = matrix.astype(np.float64, copy=True)
        if self.use_error_feedback:
            residual = self._error.get(name)
            if residual is not None:
                work = work + residual
        r = self.effective_rank(matrix.shape)
        u, s, vt = np.linalg.svd(work, full_matrices=False)
        p = u[:, :r] * s[:r]
        q = vt[:r].T
        if self.use_error_feedback:
            self._error[name] = work - p @ q.T
        return p, q

    @staticmethod
    def reconstruct(p: np.ndarray, q: np.ndarray) -> np.ndarray:
        """``M_hat = P Q^T``."""
        return p @ q.T

    def reset(self) -> None:
        """Drop accumulated error state."""
        self._error.clear()


def best_rank_r_error(matrix: np.ndarray, rank: int) -> float:
    """Relative Frobenius error of the optimal rank-r approximation.

    By Eckart-Young this is ``sqrt(sum_{i>r} s_i^2) / ||M||_F`` — the floor
    any rank-r method (Power-SGD, ACP-SGD) can at best reach.
    """
    if matrix.ndim != 2:
        raise ValueError(f"expected a matrix, got shape {matrix.shape}")
    norm = np.linalg.norm(matrix)
    if norm == 0.0:
        return 0.0
    singular = np.linalg.svd(matrix, compute_uv=False)
    tail = singular[rank:]
    return float(np.sqrt((tail**2).sum()) / norm)
