"""Analytical compress/communicate complexity (the paper's Table II).

| method     | compress        | communicate (elements per worker) |
|------------|-----------------|-----------------------------------|
| S-SGD      | —               | 2 (p-1)/p * N                     |
| Sign-SGD   | O(N)            | (p-1) * N/32                      |
| Top-k SGD  | O(k log N)      | (p-1) * 2k                        |
| Power-SGD  | O(N r)          | 2 (p-1)/p * N_c                   |
| ACP-SGD    | O(N r) / 2      | (p-1)/p * N_c (one factor/step)   |

where ``p`` is the worker count, ``N`` the gradient elements, ``k`` the
Top-k selection, ``r`` the rank, and ``N_c`` the Power-SGD compressed size.
These functions return numbers (not O-classes) so tests can compare against
the traffic the real collectives measured.
"""

from __future__ import annotations

import math


def _check(p: int, n: float) -> None:
    if p < 1:
        raise ValueError(f"worker count must be >= 1, got {p}")
    if n < 0:
        raise ValueError(f"element count must be >= 0, got {n}")


def communicate_elements(method: str, p: int, n: float, **kwargs) -> float:
    """Elements sent per worker per step (Table II, 'Communicate' row)."""
    _check(p, n)
    if p == 1:
        return 0.0
    if method == "ssgd":
        return 2.0 * (p - 1) / p * n
    if method == "signsgd":
        # 1-bit payload measured in float32-equivalent elements.
        return (p - 1) * n / 32.0
    if method == "topk":
        k = kwargs["k"]
        return (p - 1) * 2.0 * k
    if method == "powersgd":
        n_c = kwargs["n_c"]
        return 2.0 * (p - 1) / p * n_c
    if method == "acpsgd":
        # Per-step single factor of average size n_c / 2, ring all-reduced.
        n_c = kwargs["n_c"]
        return 2.0 * (p - 1) / p * (n_c / 2.0)
    raise ValueError(f"unknown method {method!r}")


def compress_flops(method: str, n: float, **kwargs) -> float:
    """Approximate compression work per worker per step ('Compress' row).

    For the low-rank methods this counts the GEMM + orthogonalization
    FLOPs: Power-SGD does two ``n x m @ m x r`` products plus one QR of an
    ``n x r`` matrix (~2 n r^2); ACP-SGD does one product and one QR (half).
    """
    if n < 0:
        raise ValueError(f"element count must be >= 0, got {n}")
    if method == "ssgd":
        return 0.0
    if method == "signsgd":
        return float(n)
    if method == "topk":
        k = kwargs["k"]
        return float(k) * math.log2(max(2.0, n))
    if method in ("powersgd", "acpsgd"):
        rank = kwargs["rank"]
        # Matrix dims: model the gradient as one n_rows x m_cols matrix when
        # provided, else as a square sqrt(N) x sqrt(N) aggregate.
        rows = kwargs.get("rows")
        cols = kwargs.get("cols")
        if rows is None or cols is None:
            rows = cols = math.sqrt(n)
        gemm = 2.0 * rows * cols * rank  # one M @ Q (or M^T @ P) product
        ortho = 2.0 * ((rows + cols) / 2.0) * rank * rank
        per_factor = gemm + ortho
        if method == "acpsgd":
            return per_factor  # one factor per step
        return 2.0 * per_factor + 2.0 * rows * cols * rank  # P, Q + reconstruct share
    raise ValueError(f"unknown method {method!r}")
