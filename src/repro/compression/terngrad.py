"""TernGrad ternary quantization (Wen et al., NeurIPS 2017 — paper ref [15]).

Each gradient element is quantized to ``{-s, 0, +s}`` with ``s = max|g|``
via stochastic rounding: ``P[|q_i| = s] = |g_i| / s``. The quantizer is
*unbiased* (``E[q] = g``), so unlike Sign-SGD/Top-k it needs no error
feedback for convergence; the cost is higher variance. Payload is 2 bits
per element plus one scale — a 16x ratio.

Aggregation uses all-gather like the other quantizers (ternary values from
different workers with different scales are not additive).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


@dataclass
class TernPayload:
    """Wire format: ternary codes packed 4-per-byte, plus the scale."""

    packed: np.ndarray  # uint8, 4 ternary values per byte (2 bits each)
    scale: float
    num_elements: int

    @property
    def nbytes(self) -> int:
        return int(self.packed.nbytes) + 4


def _pack_ternary(values: np.ndarray) -> np.ndarray:
    """Pack {-1, 0, +1} (as {0, 1, 2} after +1) into 2 bits per element."""
    codes = (values + 1).astype(np.uint8)  # {0, 1, 2}
    pad = (-codes.size) % 4
    if pad:
        codes = np.concatenate([codes, np.zeros(pad, dtype=np.uint8)])
    quads = codes.reshape(-1, 4)
    return (
        quads[:, 0] | (quads[:, 1] << 2) | (quads[:, 2] << 4) | (quads[:, 3] << 6)
    ).astype(np.uint8)


def _unpack_ternary(packed: np.ndarray, num_elements: int) -> np.ndarray:
    """Inverse of :func:`_pack_ternary`; returns float {-1, 0, +1}."""
    quads = np.empty((packed.size, 4), dtype=np.uint8)
    quads[:, 0] = packed & 0x3
    quads[:, 1] = (packed >> 2) & 0x3
    quads[:, 2] = (packed >> 4) & 0x3
    quads[:, 3] = (packed >> 6) & 0x3
    return quads.reshape(-1)[:num_elements].astype(np.float64) - 1.0


class TernGradCompressor:
    """Unbiased ternary quantizer.

    Args:
        rng: stochastic-rounding stream (per-worker independent streams
            are fine — the quantizer is unbiased).
        clip_sigma: optional gradient clipping at ``clip_sigma * std``
            before quantization (TernGrad's layer-wise clipping trick;
            0 disables). Clipping biases the estimate slightly but shrinks
            the scale, cutting variance.
    """

    def __init__(self, rng: Optional[np.random.Generator] = None,
                 clip_sigma: float = 0.0):
        if clip_sigma < 0:
            raise ValueError(f"clip_sigma must be >= 0, got {clip_sigma}")
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.clip_sigma = clip_sigma

    def compress(self, grad: np.ndarray) -> TernPayload:
        """Quantize to ternary with stochastic rounding."""
        flat = grad.reshape(-1).astype(np.float64)
        if self.clip_sigma > 0 and flat.size > 1:
            bound = self.clip_sigma * flat.std()
            if bound > 0:
                flat = np.clip(flat, -bound, bound)
        scale = float(np.abs(flat).max()) if flat.size else 0.0
        if scale == 0.0:
            ternary = np.zeros(flat.size, dtype=np.int8)
        else:
            prob = np.abs(flat) / scale
            keep = self.rng.random(flat.size) < prob
            ternary = (np.sign(flat) * keep).astype(np.int8)
        return TernPayload(
            packed=_pack_ternary(ternary), scale=scale, num_elements=flat.size
        )

    @staticmethod
    def decompress(payload: TernPayload, shape: Tuple[int, ...]) -> np.ndarray:
        """Reconstruct the dense {-s, 0, +s} tensor."""
        ternary = _unpack_ternary(payload.packed, payload.num_elements)
        return (payload.scale * ternary).reshape(shape)
