"""Sign-SGD compression with majority vote [Bernstein et al., 2018].

Each worker transmits only the signs of its (error-corrected) gradient,
packed to 1 bit per element (32x ratio), plus one float scale. Signs are not
additive — the sum of two +1s overflows the 1-bit alphabet — so aggregation
uses all-gather followed by an element-wise **majority vote**: the aggregated
update direction is ``sign(sum_w sign(g_w))``.

Error feedback (EF-SignSGD, Karimireddy et al. [30/42]) with an L1-mean scale
makes the method convergent in practice: the compressed representative of
``x`` is ``mean(|x|) * sign(x)`` and the residual is fed back next step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np


@dataclass
class SignPayload:
    """Wire format of one worker's compressed tensor.

    Attributes:
        packed_bits: ``np.packbits`` of the sign bits (1 = non-negative).
        scale: L1-mean magnitude used to rescale the unit signs.
        num_elements: original element count (packing pads to 8).
    """

    packed_bits: np.ndarray
    scale: float
    num_elements: int

    @property
    def nbytes(self) -> int:
        """Bytes on the wire: packed bits + one float32 scale."""
        return int(self.packed_bits.nbytes) + 4


class SignCompressor:
    """Per-worker Sign-SGD compressor with error feedback.

    One instance per (worker, tensor); holds the EF residual between steps.
    """

    def __init__(self, use_error_feedback: bool = True):
        self.use_error_feedback = use_error_feedback
        self._error: Dict[str, np.ndarray] = {}

    def compress(self, name: str, grad: np.ndarray) -> SignPayload:
        """Compress ``grad`` (with the stored residual added) to sign bits."""
        flat = grad.reshape(-1).astype(np.float64)
        if self.use_error_feedback:
            residual = self._error.get(name)
            if residual is not None:
                flat = flat + residual
        scale = float(np.abs(flat).mean()) if flat.size else 0.0
        bits = (flat >= 0).astype(np.uint8)
        if self.use_error_feedback:
            representative = scale * np.where(bits == 1, 1.0, -1.0)
            self._error[name] = flat - representative
        return SignPayload(
            packed_bits=np.packbits(bits), scale=scale, num_elements=flat.size
        )

    @staticmethod
    def unpack_signs(payload: SignPayload) -> np.ndarray:
        """Recover the +/-1 sign vector from a payload."""
        bits = np.unpackbits(payload.packed_bits)[: payload.num_elements]
        return np.where(bits == 1, 1.0, -1.0)

    def residual_for(self, name: str):
        """Stored EF residual for ``name`` (``None`` when absent or EF off).

        The bucketed reducer stages per-bucket slices of the fused gradient
        and needs the matching residual slice before the full vector exists;
        it reads/writes the residual through these accessors so reset and
        per-rank state semantics stay in one place.
        """
        if not self.use_error_feedback:
            return None
        return self._error.get(name)

    def store_residual(self, name: str, residual: np.ndarray) -> None:
        """Replace the EF residual for ``name`` (no-op when EF is off)."""
        if self.use_error_feedback:
            self._error[name] = residual

    def reset(self) -> None:
        """Drop accumulated error state."""
        self._error.clear()


def majority_vote_aggregate(
    payloads: List[SignPayload], shape: Tuple[int, ...], validate: bool = False
) -> np.ndarray:
    """Aggregate gathered sign payloads by element-wise majority vote.

    Returns the dense aggregated gradient estimate: the majority sign scaled
    by the mean of the workers' scales (ties, possible with an even worker
    count, resolve to +1 via ``sign(0) -> +1`` like the compressor's own
    non-negative convention). With ``validate`` the per-worker scales are
    checked finite before they enter the mean — the only float a corrupted
    sign payload can poison.
    """
    if not payloads:
        raise ValueError("need at least one payload")
    num_elements = payloads[0].num_elements
    vote = np.zeros(num_elements)
    scales = np.array([payload.scale for payload in payloads])
    if validate:
        from repro.utils.validation import assert_finite

        assert_finite(scales, "signsgd payload scales")
    for payload in payloads:
        if payload.num_elements != num_elements:
            raise ValueError("payload sizes disagree across workers")
        vote += SignCompressor.unpack_signs(payload)
    majority = np.where(vote >= 0, 1.0, -1.0)
    mean_scale = float(scales.mean())
    return (mean_scale * majority).reshape(shape)
