"""Power-SGD low-rank compression [Vogels et al., NeurIPS 2019].

Algorithm 1 (left function) of the paper. For a gradient matrix
``M (n x m)`` and rank ``r``:

1. ``P <- M Q_{t-1}``        (right multiplication, n x r)
2. all-reduce(P)             (mean across workers)
3. ``P <- orthogonalize(P)``
4. ``Q <- M^T P``            (left multiplication, m x r)
5. all-reduce(Q)
6. reconstruct ``M_hat = P Q^T``; remember Q for the next step (query reuse)

Error feedback: the residual ``M - P Q_local^T`` (computed with the *local*
Q before aggregation, following Vogels' reference implementation) is added
to the next step's gradient.

The class below holds one worker's state. Communication is done by the
caller between the staged methods — the blocking structure
``compute_p -> aggregate -> compute_q -> aggregate`` is exactly the property
the paper's §III-C identifies as incompatible with WFBP.
"""

from __future__ import annotations

import zlib
from typing import Dict, Tuple

import numpy as np

from repro.compression.orthogonalize import orthogonalize


def init_low_rank(
    shape_matrix: Tuple[int, int], rank: int, seed: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Shared random init of (P0, Q0) from a standard normal distribution.

    All workers must pass the same ``seed`` so their query matrices agree
    from step 0 (the paper initializes Q i.i.d. standard normal).
    """
    n, m = shape_matrix
    effective_rank = min(rank, n, m)
    rng = np.random.default_rng(seed)
    p0 = rng.normal(size=(n, effective_rank))
    q0 = rng.normal(size=(m, effective_rank))
    return p0, q0


class PowerSGDState:
    """One worker's Power-SGD state across all of its compressible tensors.

    Args:
        rank: target rank ``r``.
        seed: shared seed for the initial query matrices (must agree across
            workers).
        use_error_feedback: enable the EF residual (Vogels' default; the
            paper's Fig. 7 ablates it).
        reuse_query: warm-start each step's power iteration from the
            previous aggregated Q (the paper's "query reuse"); when False, Q
            is re-drawn randomly each step (per-tensor deterministic stream).
        validate: check the aggregated P/Q factors finite on arrival —
            a corrupted factor would otherwise contaminate both the
            reconstruction and the carried query for every later step.
    """

    def __init__(
        self,
        rank: int,
        seed: int = 0,
        use_error_feedback: bool = True,
        reuse_query: bool = True,
        validate: bool = False,
    ):
        if rank < 1:
            raise ValueError(f"rank must be >= 1, got {rank}")
        self.rank = rank
        self.seed = seed
        self.use_error_feedback = use_error_feedback
        self.reuse_query = reuse_query
        self.validate = validate
        self._query: Dict[str, np.ndarray] = {}
        self._error: Dict[str, np.ndarray] = {}
        self._fresh_rng: Dict[str, np.random.Generator] = {}
        # Per-call scratch between compute_p and compute_q.
        self._pending: Dict[str, np.ndarray] = {}

    def _ensure_query(self, name: str, matrix_shape: Tuple[int, int]) -> np.ndarray:
        """Fetch (or initialize) the query matrix Q for a tensor."""
        n, m = matrix_shape
        if self.reuse_query:
            query = self._query.get(name)
            if query is None:
                _, query = init_low_rank(matrix_shape, self.rank, self._mix_seed(name))
                self._query[name] = query
            return query
        rng = self._fresh_rng.get(name)
        if rng is None:
            rng = np.random.default_rng(self._mix_seed(name))
            self._fresh_rng[name] = rng
        return rng.normal(size=(m, min(self.rank, n, m)))

    def _mix_seed(self, name: str) -> int:
        return (self.seed * 1000003 + zlib.crc32(name.encode())) & 0x7FFFFFFF

    def effective_rank(self, matrix_shape: Tuple[int, int]) -> int:
        """Rank actually used for a tensor (capped by its dimensions)."""
        n, m = matrix_shape
        return min(self.rank, n, m)

    # ------------------------------------------------------------------
    # Staged compression protocol
    # ------------------------------------------------------------------
    def compute_p(self, name: str, matrix: np.ndarray) -> np.ndarray:
        """Stage 1: ``P = (M + E) Q_{t-1}``; caller must all-reduce the result."""
        if matrix.ndim != 2:
            raise ValueError(f"expected a matrix, got shape {matrix.shape}")
        work = matrix.astype(np.float64, copy=True)
        if self.use_error_feedback:
            residual = self._error.get(name)
            if residual is not None:
                work = work + residual
        self._pending[name] = work
        query = self._ensure_query(name, matrix.shape)
        return work @ query

    def compute_q(self, name: str, p_aggregated: np.ndarray) -> np.ndarray:
        """Stage 2: orthogonalize aggregated P, then ``Q = (M + E)^T P_hat``.

        Also updates the EF residual with the local Q (before aggregation).
        Caller must all-reduce the returned Q.
        """
        work = self._pending.get(name)
        if work is None:
            raise RuntimeError(f"compute_q called before compute_p for {name!r}")
        if self.validate:
            from repro.utils.validation import assert_finite

            assert_finite(p_aggregated, f"aggregated P factor for {name!r}")
        p_hat = orthogonalize(p_aggregated)
        q_local = work.T @ p_hat
        if self.use_error_feedback:
            self._error[name] = work - p_hat @ q_local.T
        self._pending[name] = p_hat  # stash for reconstruct
        return q_local

    def reconstruct(self, name: str, q_aggregated: np.ndarray) -> np.ndarray:
        """Stage 3: ``M_hat = P_hat Q^T``; stores Q for next-step reuse."""
        p_hat = self._pending.pop(name, None)
        if p_hat is None:
            raise RuntimeError(f"reconstruct called before compute_q for {name!r}")
        if self.validate:
            from repro.utils.validation import assert_finite

            assert_finite(q_aggregated, f"aggregated Q factor for {name!r}")
        if self.reuse_query:
            self._query[name] = q_aggregated.copy()
        return p_hat @ q_aggregated.T

    def warm_start_from(self, donor: "PowerSGDState") -> None:
        """Adopt a survivor's shared carried state (elastic admission).

        The reused query ``Q`` is an *aggregated* factor, identical on every
        survivor, so copying the donor's queries is exactly the broadcast a
        real elastic runtime would perform. The error-feedback residual is
        per-worker and starts at zero for a joiner (its unsent history is
        empty). The no-reuse fresh-query streams are cloned at the donor's
        position so every worker keeps drawing the same query sequence.
        """
        self._query = {name: q.copy() for name, q in donor._query.items()}
        self._error.clear()
        self._pending.clear()
        self._fresh_rng = {
            name: clone_rng(rng) for name, rng in donor._fresh_rng.items()
        }

    def reset(self) -> None:
        """Drop all per-tensor state."""
        self._query.clear()
        self._error.clear()
        self._pending.clear()
        self._fresh_rng.clear()


def clone_rng(rng: np.random.Generator) -> np.random.Generator:
    """An independent generator positioned exactly where ``rng`` is."""
    clone = np.random.default_rng()
    clone.bit_generator.state = rng.bit_generator.state
    return clone
