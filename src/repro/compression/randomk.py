"""Random-k sparsification with a shared selection seed.

Background method from §II-B.2 of the paper. When all workers derive the
same random coordinate set per step (from a shared seed and step counter),
their sparse payloads align coordinate-by-coordinate — so unlike Top-k the
compressed tensors *are* additive, and can be aggregated with ring
all-reduce over just the selected values. This makes Random-k a useful
ablation point between Top-k (better selection, all-gather only) and
ACP-SGD (additive by construction).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np


@dataclass
class RandomKPayload:
    """Values at the shared random coordinates for one step."""

    values: np.ndarray
    indices: np.ndarray
    num_elements: int

    @property
    def nbytes(self) -> int:
        """Only values travel (indices are derivable from the shared seed)."""
        return int(self.values.nbytes)


class RandomKCompressor:
    """Per-worker Random-k compressor with error feedback.

    All workers must construct with the same ``seed`` so that
    ``indices_for_step`` agrees everywhere.
    """

    def __init__(
        self, ratio: float = 0.01, seed: int = 0, use_error_feedback: bool = True
    ):
        if not 0.0 < ratio <= 1.0:
            raise ValueError(f"ratio must be in (0, 1], got {ratio}")
        self.ratio = ratio
        self.seed = seed
        self.use_error_feedback = use_error_feedback
        self._error: Dict[str, np.ndarray] = {}

    def indices_for_step(self, name: str, num_elements: int, step: int) -> np.ndarray:
        """Deterministic shared coordinate set for (tensor, step)."""
        k = max(1, int(round(self.ratio * num_elements)))
        # Seed mixes the tensor name so different tensors decorrelate. Use a
        # stable hash (crc32), not Python's salted hash(), so every worker —
        # and every process run — derives identical coordinates.
        mix = zlib.crc32(f"{self.seed}:{name}:{step}".encode()) & 0x7FFFFFFF
        rng = np.random.default_rng(mix)
        return rng.choice(num_elements, size=min(k, num_elements), replace=False)

    def compress(self, name: str, grad: np.ndarray, step: int) -> RandomKPayload:
        """Select the shared coordinates for ``step`` (plus EF residual)."""
        flat = grad.reshape(-1).astype(np.float64)
        if self.use_error_feedback:
            residual = self._error.get(name)
            if residual is not None:
                flat = flat + residual
        idx = self.indices_for_step(name, flat.size, step)
        values = flat[idx]
        if self.use_error_feedback:
            residual = flat.copy()
            residual[idx] = 0.0
            self._error[name] = residual
        return RandomKPayload(values=values, indices=idx, num_elements=flat.size)

    @staticmethod
    def decompress(payload: RandomKPayload, shape: Tuple[int, ...]) -> np.ndarray:
        """Scatter a payload back to a dense tensor."""
        dense = np.zeros(payload.num_elements)
        dense[payload.indices] = payload.values
        return dense.reshape(shape)

    def reset(self) -> None:
        """Drop accumulated error state."""
        self._error.clear()
