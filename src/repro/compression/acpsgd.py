"""ACP-SGD: alternate compressed Power-SGD (the paper's contribution).

Algorithms 1 (right function) and 2 of the paper. Instead of computing and
aggregating *both* low-rank factors every iteration, ACP-SGD compresses the
gradient into only one of them per step, alternating:

odd step ``t``::

    Q_t <- orthogonalize(Q_{t-1})
    P_t <- (M_t + E_{t-1}) Q_t          # compute P
    E_t <- M_t + E_{t-1} - P_t Q_t^T    # update error (local, pre-aggregate)
    P_t <- all-reduce(P_t)              # the step's single collective
    output M_hat = P_t Q_t^T

even step ``t``::

    P_t <- orthogonalize(P_{t-1})
    Q_t <- (M_t + E_{t-1})^T P_t        # compute Q
    E_t <- M_t + E_{t-1} - P_t Q_t^T
    Q_t <- all-reduce(Q_t)
    output M_hat = P_t Q_t^T

Because the single all-reduce input is computed entirely from local state,
the communication is **additive** (plain sum of dense low-rank factors) and
**non-blocking** (no further compute depends on it within the layer's
backward) — the two properties (§III-C) that let ACP-SGD use ring
all-reduce, wait-free back-propagation and tensor fusion exactly like
S-SGD. It also halves Power-SGD's compression FLOPs and communication
volume: one orthogonalization + one GEMM + one all-reduce of
``(n + m)/2 * r`` elements on average per step.

``P_0`` and ``Q_0`` are initialized i.i.d. standard normal with a seed
shared across workers; ``E_0 = 0``.
"""

from __future__ import annotations

import zlib
from typing import Dict, Tuple

import numpy as np

from repro.compression.orthogonalize import orthogonalize
from repro.compression.powersgd import init_low_rank


class ACPSGDState:
    """One worker's ACP-SGD state across all of its compressible tensors.

    The staged protocol per tensor per step is:

    1. ``factor = compress(name, matrix, step)`` — the local low-rank factor
       (P on odd steps, Q on even steps) to be aggregated;
    2. caller all-reduces (averages) the factor across workers — with
       whatever batching/fusion it likes, since nothing blocks on it;
    3. ``m_hat = finalize(name, factor_aggregated, step)`` — the
       reconstructed gradient; the aggregated factor is stored for the next
       step's orthogonalization (query reuse).

    Args:
        rank: target rank ``r``.
        seed: shared across workers for the random ``P_0``/``Q_0``.
        use_error_feedback: Algorithm 2's EF (ablated in Fig. 7).
        reuse_query: warm-start from the previous aggregated factor
            (ablated in Fig. 7); when disabled the carried factor is
            re-drawn randomly each step.
        validate: check the aggregated alternating factor finite on
            arrival — because the factor is stored for next-step reuse, a
            single corrupted element would otherwise poison every later
            step through the carried state.
    """

    def __init__(
        self,
        rank: int,
        seed: int = 0,
        use_error_feedback: bool = True,
        reuse_query: bool = True,
        validate: bool = False,
    ):
        if rank < 1:
            raise ValueError(f"rank must be >= 1, got {rank}")
        self.rank = rank
        self.seed = seed
        self.use_error_feedback = use_error_feedback
        self.reuse_query = reuse_query
        self.validate = validate
        self._p: Dict[str, np.ndarray] = {}
        self._q: Dict[str, np.ndarray] = {}
        self._error: Dict[str, np.ndarray] = {}
        self._fresh_rng: Dict[str, np.random.Generator] = {}
        # Scratch between compress() and finalize(): the orthonormal carried
        # factor used for this step's projection.
        self._carried: Dict[str, np.ndarray] = {}

    def _mix_seed(self, name: str) -> int:
        return (self.seed * 1000003 + zlib.crc32(name.encode())) & 0x7FFFFFFF

    def effective_rank(self, matrix_shape: Tuple[int, int]) -> int:
        """Rank actually used for a tensor (capped by its dimensions)."""
        n, m = matrix_shape
        return min(self.rank, n, m)

    def _ensure_factors(self, name: str, matrix_shape: Tuple[int, int]) -> None:
        if name not in self._p:
            p0, q0 = init_low_rank(matrix_shape, self.rank, self._mix_seed(name))
            self._p[name] = p0
            self._q[name] = q0

    @staticmethod
    def compresses_p(step: int) -> bool:
        """True when this step computes/aggregates P (odd steps, 1-based)."""
        return step % 2 == 1

    def _carried_factor(
        self, name: str, matrix_shape: Tuple[int, int], step: int
    ) -> np.ndarray:
        """The previous-step factor to orthogonalize and project against."""
        n, m = matrix_shape
        r = self.effective_rank(matrix_shape)
        if self.reuse_query:
            return self._q[name] if self.compresses_p(step) else self._p[name]
        rng = self._fresh_rng.get(name)
        if rng is None:
            rng = np.random.default_rng(self._mix_seed(name))
            self._fresh_rng[name] = rng
        size = (m, r) if self.compresses_p(step) else (n, r)
        return rng.normal(size=size)

    # ------------------------------------------------------------------
    # Staged protocol
    # ------------------------------------------------------------------
    def compress(self, name: str, matrix: np.ndarray, step: int) -> np.ndarray:
        """Compute this step's local low-rank factor and update the error.

        Returns P_local (odd steps) or Q_local (even steps). The EF residual
        is updated *here*, before aggregation, per Algorithm 2 lines 6/11.
        """
        if matrix.ndim != 2:
            raise ValueError(f"expected a matrix, got shape {matrix.shape}")
        if step < 1:
            raise ValueError(f"step counter is 1-based, got {step}")
        self._ensure_factors(name, matrix.shape)
        work = matrix.astype(np.float64, copy=True)
        if self.use_error_feedback:
            residual = self._error.get(name)
            if residual is not None:
                work = work + residual
        carried = orthogonalize(self._carried_factor(name, matrix.shape, step))
        self._carried[name] = carried
        if self.compresses_p(step):
            factor_local = work @ carried  # P = (M + E) Q_t
        else:
            factor_local = work.T @ carried  # Q = (M + E)^T P_t
        if self.use_error_feedback:
            if self.compresses_p(step):
                self._error[name] = work - factor_local @ carried.T
            else:
                self._error[name] = work - carried @ factor_local.T
        return factor_local

    def finalize(
        self, name: str, factor_aggregated: np.ndarray, step: int
    ) -> np.ndarray:
        """Reconstruct ``M_hat`` from the aggregated factor; store for reuse."""
        carried = self._carried.pop(name, None)
        if carried is None:
            raise RuntimeError(f"finalize called before compress for {name!r}")
        if self.validate:
            from repro.utils.validation import assert_finite

            assert_finite(factor_aggregated, f"aggregated factor for {name!r}")
        if self.compresses_p(step):
            self._p[name] = factor_aggregated.copy()
            self._q[name] = carried
            return factor_aggregated @ carried.T  # P_t Q_t^T
        self._q[name] = factor_aggregated.copy()
        self._p[name] = carried
        return carried @ factor_aggregated.T  # P_t Q_t^T

    def warm_start_from(self, donor: "ACPSGDState") -> None:
        """Adopt a survivor's shared carried state (elastic admission).

        After every ``finalize`` both stored factors are functions of
        *aggregated* data — one is the all-reduced factor itself, the other
        the orthogonalized carried factor every worker computed identically
        — so copying the donor's ``P``/``Q`` puts the joiner in the same
        alternation phase as the survivors: at the next step all ranks
        orthogonalize the same carried factor and compress the same side of
        the factorization. The EF residual is per-worker and starts at
        zero; the no-reuse fresh streams are cloned at the donor's position
        so the shared random carried factors stay in lockstep.
        """
        from repro.compression.powersgd import clone_rng

        self._p = {name: p.copy() for name, p in donor._p.items()}
        self._q = {name: q.copy() for name, q in donor._q.items()}
        self._error.clear()
        self._carried.clear()
        self._fresh_rng = {
            name: clone_rng(rng) for name, rng in donor._fresh_rng.items()
        }

    def reset(self) -> None:
        """Drop all per-tensor state."""
        self._p.clear()
        self._q.clear()
        self._error.clear()
        self._carried.clear()
        self._fresh_rng.clear()
