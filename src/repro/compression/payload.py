"""Self-describing compressed-payload wire format.

The lockstep collectives in :mod:`repro.comm` move naked numpy buffers —
fine inside one trusted process group where every rank agrees on shapes
out of band. The open-membership gossip mode (:mod:`repro.gossip`) has no
such agreement: a payload fetched from the shared store may come from any
peer, any software version, or an adversary, so the bytes themselves must
carry everything needed to decode *and distrust* them:

- a magic/version prefix (reject foreign blobs immediately);
- a JSON header describing every array (key, dtype, shape, byte extent)
  plus caller metadata (peer id, window, update norm, ...);
- a CRC-32 (:func:`~repro.utils.validation.payload_checksum`) over the
  header bytes, one per array, and one over the raw body, so a single
  flipped bit anywhere fails verification before any value is
  interpreted. The header CRC matters as much as the body ones: the
  per-array CRCs hash *raw bytes*, so without it a one-bit header flip
  (say ``<f8`` to ``>f8``) would reinterpret an intact body as garbage
  while every byte-level checksum still matched.

Every way a blob can be broken — truncation, tampered header, CRC
mismatch, absurd sizes — raises one typed :class:`PayloadFormatError`
with a readable message, never a raw ``json``/``numpy`` stack trace.
"""

from __future__ import annotations

import json
import struct
from typing import Dict, Mapping, Tuple

import numpy as np

from repro.utils.validation import payload_checksum

#: Magic prefix: "repro gossip payload", format version 1.
PAYLOAD_MAGIC = b"RGP1"

_LEN = struct.Struct("<I")

#: Upper bound on a declared header size — a corrupted length field must
#: not trick the decoder into a multi-GB allocation.
_MAX_HEADER_BYTES = 16 * 1024 * 1024


class PayloadFormatError(ValueError):
    """A serialized payload is truncated, tampered with, or not ours."""


def pack_payload(
    arrays: Mapping[str, np.ndarray], meta: Mapping | None = None
) -> bytes:
    """Serialize named arrays + metadata into one self-describing blob.

    Array bytes are laid out back to back after the header in sorted key
    order; the header records each array's dtype, shape, extent, and
    CRC-32, plus a CRC over the whole body. ``meta`` must be
    JSON-serializable.
    """
    entries = []
    chunks = []
    offset = 0
    for key in sorted(arrays):
        array = np.ascontiguousarray(arrays[key])
        raw = array.tobytes()
        entries.append({
            "key": key,
            "dtype": array.dtype.str,
            "shape": list(array.shape),
            "offset": offset,
            "nbytes": len(raw),
            "crc": payload_checksum(array),
        })
        chunks.append(raw)
        offset += len(raw)
    body = b"".join(chunks)
    header = {
        "arrays": entries,
        "meta": dict(meta) if meta else {},
        "body_crc": _crc_bytes(body),
    }
    header_raw = json.dumps(header, sort_keys=True).encode()
    return (
        PAYLOAD_MAGIC
        + _LEN.pack(len(header_raw))
        + _LEN.pack(_crc_bytes(header_raw))
        + header_raw
        + body
    )


def unpack_payload(blob: bytes) -> Tuple[Dict[str, np.ndarray], Dict]:
    """Decode and *verify* a blob produced by :func:`pack_payload`.

    Returns ``(arrays, meta)``. Arrays are fresh writable copies — a
    store backend may hand out shared buffers.

    Raises:
        PayloadFormatError: wrong magic, truncated blob, unparseable
            header, or any CRC mismatch (body or per-array).
    """
    if len(blob) < len(PAYLOAD_MAGIC) + 2 * _LEN.size:
        raise PayloadFormatError(
            f"payload too short to carry a header ({len(blob)} bytes)"
        )
    if blob[: len(PAYLOAD_MAGIC)] != PAYLOAD_MAGIC:
        raise PayloadFormatError(
            f"bad magic {blob[:len(PAYLOAD_MAGIC)]!r} "
            f"(expected {PAYLOAD_MAGIC!r})"
        )
    (header_len,) = _LEN.unpack_from(blob, len(PAYLOAD_MAGIC))
    (header_crc,) = _LEN.unpack_from(blob, len(PAYLOAD_MAGIC) + _LEN.size)
    if header_len > _MAX_HEADER_BYTES:
        raise PayloadFormatError(
            f"declared header size {header_len} exceeds the "
            f"{_MAX_HEADER_BYTES}-byte limit — corrupt length field"
        )
    header_start = len(PAYLOAD_MAGIC) + 2 * _LEN.size
    body_start = header_start + header_len
    if len(blob) < body_start:
        raise PayloadFormatError(
            f"payload truncated inside the header "
            f"(need {body_start} bytes, have {len(blob)})"
        )
    header_raw = blob[header_start:body_start]
    if _crc_bytes(header_raw) != header_crc:
        raise PayloadFormatError(
            "payload header checksum mismatch — the blob is corrupt"
        )
    try:
        header = json.loads(header_raw)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise PayloadFormatError(f"unparseable payload header: {exc}") from exc
    if not isinstance(header, dict) or "arrays" not in header:
        raise PayloadFormatError("payload header carries no array table")
    body = blob[body_start:]
    if _crc_bytes(body) != header.get("body_crc"):
        raise PayloadFormatError(
            "payload body checksum mismatch — the blob is corrupt"
        )
    arrays: Dict[str, np.ndarray] = {}
    for entry in header["arrays"]:
        try:
            key = entry["key"]
            dtype = np.dtype(entry["dtype"])
            shape = tuple(int(dim) for dim in entry["shape"])
            offset = int(entry["offset"])
            nbytes = int(entry["nbytes"])
            expected_crc = int(entry["crc"])
        except Exception as exc:
            # np.dtype() on a hostile string can raise well beyond
            # TypeError/ValueError (its parser even leaks SyntaxError),
            # and the typed-error contract must hold regardless.
            raise PayloadFormatError(
                f"malformed array table entry {entry!r}: {exc}"
            ) from exc
        raw = body[offset : offset + nbytes]
        if len(raw) != nbytes:
            raise PayloadFormatError(
                f"array {key!r} truncated (declared {nbytes} bytes, "
                f"{len(raw)} present)"
            )
        try:
            array = np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
        except ValueError as exc:
            raise PayloadFormatError(
                f"array {key!r} does not match its declared "
                f"dtype/shape {dtype}/{shape}: {exc}"
            ) from exc
        if payload_checksum(array) != expected_crc:
            raise PayloadFormatError(
                f"array {key!r} checksum mismatch — the payload is corrupt"
            )
        arrays[key] = array
    meta = header.get("meta", {})
    if not isinstance(meta, dict):
        raise PayloadFormatError(f"payload meta is not a mapping: {meta!r}")
    return arrays, meta


def payload_meta(blob: bytes) -> Dict:
    """Decode only the metadata of a blob (cheap peek, still verified)."""
    _, meta = unpack_payload(blob)
    return meta


def _crc_bytes(raw: bytes) -> int:
    return payload_checksum(np.frombuffer(raw, dtype=np.uint8))
