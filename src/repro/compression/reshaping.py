"""Rules for viewing parameter gradients as matrices for low-rank methods.

Following §IV-C of the paper: "The vector-shaped parameters (e.g., biases)
require no compression, while other parameters are reshaped into matrices
for compression."

Concretely:

- 0-D / 1-D gradients (biases, norm scales) are never compressed;
- 2-D gradients (Linear / Embedding weights) are used as-is, ``n x m``;
- k-D gradients with k > 2 (Conv weights ``(out, in, kh, kw)``) are reshaped
  to ``out x (in*kh*kw)`` — the same flattening the im2col GEMM uses.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def should_compress(shape: Tuple[int, ...], min_elements: int = 0) -> bool:
    """Whether a parameter of this shape participates in low-rank compression.

    Args:
        shape: parameter shape.
        min_elements: optional floor — tensors smaller than this travel
            uncompressed even if matrix-shaped (compressing a 10x10 tensor
            to rank 4 saves nothing).
    """
    if len(shape) < 2:
        return False
    total = 1
    for dim in shape:
        total *= dim
    return total >= min_elements


def matrix_view_shape(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """The (n, m) matrix shape a gradient of ``shape`` is compressed as."""
    if len(shape) < 2:
        raise ValueError(f"cannot view shape {shape} as a matrix")
    n = shape[0]
    m = 1
    for dim in shape[1:]:
        m *= dim
    return n, m


def grad_to_matrix(grad: np.ndarray) -> np.ndarray:
    """Reshape a compressible gradient into its 2-D matrix view."""
    n, m = matrix_view_shape(grad.shape)
    return grad.reshape(n, m)


def matrix_to_grad(matrix: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Inverse of :func:`grad_to_matrix`."""
    expected = matrix_view_shape(shape)
    if matrix.shape != expected:
        raise ValueError(
            f"matrix shape {matrix.shape} does not match matrix view "
            f"{expected} of parameter shape {shape}"
        )
    return matrix.reshape(shape)
