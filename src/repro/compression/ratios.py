"""Compression-ratio accounting (the paper's Table I).

Conventions follow the paper:

- Sign-SGD: 32x (float32 -> 1 bit per element).
- Top-k SGD: ``1/ratio`` (e.g. 1000x for ratio 0.1%), counting selected
  elements; the index overhead appears in the *communication* accounting
  (Table II's ``2k``), not the headline ratio.
- Power-SGD / ACP-SGD: ratio of total gradient elements ``N`` to compressed
  elements ``N_c``. Vector-shaped parameters travel uncompressed and are
  charged at full size. For Power-SGD ``N_c = sum(n r + m r)`` over
  compressible matrices; for ACP-SGD only one factor travels per step, so
  the per-step average is ``sum((n + m)/2 * r)``.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.compression.reshaping import matrix_view_shape, should_compress

ShapeList = Iterable[Tuple[int, ...]]


def _split_shapes(shapes: ShapeList) -> Tuple[list, int]:
    """Partition into (compressible matrix views, uncompressed elements)."""
    matrices = []
    uncompressed = 0
    for shape in shapes:
        total = 1
        for dim in shape:
            total *= dim
        if should_compress(shape):
            matrices.append(matrix_view_shape(shape))
        else:
            uncompressed += total
    return matrices, uncompressed


def total_elements(shapes: ShapeList) -> int:
    """Total gradient elements ``N`` across all parameters."""
    count = 0
    for shape in shapes:
        total = 1
        for dim in shape:
            total *= dim
        count += total
    return count


def powersgd_compressed_elements(shapes: ShapeList, rank: int) -> int:
    """Elements Power-SGD communicates per step: ``sum(nr + mr)`` + vectors."""
    if rank < 1:
        raise ValueError(f"rank must be >= 1, got {rank}")
    matrices, uncompressed = _split_shapes(shapes)
    compressed = 0
    for n, m in matrices:
        r = min(rank, n, m)
        compressed += n * r + m * r
    return compressed + uncompressed


def acpsgd_compressed_elements(shapes: ShapeList, rank: int) -> float:
    """Per-step average elements ACP-SGD communicates: half of Power-SGD's.

    Odd steps send ``sum(n r)``, even steps ``sum(m r)``; the average is
    ``sum((n + m)/2 * r)`` plus the uncompressed vector parameters.
    """
    if rank < 1:
        raise ValueError(f"rank must be >= 1, got {rank}")
    matrices, uncompressed = _split_shapes(shapes)
    compressed = 0.0
    for n, m in matrices:
        r = min(rank, n, m)
        compressed += (n + m) / 2.0 * r
    return compressed + uncompressed


def signsgd_compressed_bits(shapes: ShapeList) -> int:
    """Bits Sign-SGD sends per worker: 1 per element."""
    return total_elements(shapes)


def topk_compressed_elements(shapes: ShapeList, ratio: float) -> int:
    """Selected elements ``k`` for Top-k at the given keep-ratio."""
    if not 0.0 < ratio <= 1.0:
        raise ValueError(f"ratio must be in (0, 1], got {ratio}")
    return max(1, int(round(total_elements(shapes) * ratio)))


def compression_ratio(shapes: ShapeList, method: str, **kwargs) -> float:
    """Headline compression ratio for Table I.

    Args:
        shapes: all parameter shapes of the model.
        method: ``"signsgd"``, ``"topk"``, ``"powersgd"`` or ``"acpsgd"``.
        kwargs: ``rank`` for the low-rank methods, ``ratio`` for Top-k.
    """
    shapes = list(shapes)
    n_total = total_elements(shapes)
    if method == "signsgd":
        return 32.0
    if method == "topk":
        ratio = kwargs.get("ratio", 0.001)
        return n_total / topk_compressed_elements(shapes, ratio)
    if method == "powersgd":
        rank = kwargs.get("rank", 4)
        return n_total / powersgd_compressed_elements(shapes, rank)
    if method == "acpsgd":
        rank = kwargs.get("rank", 4)
        return n_total / acpsgd_compressed_elements(shapes, rank)
    raise ValueError(f"unknown method {method!r}")
