"""Distributed gradient aggregation — one strategy per training method.

An aggregator consumes each worker's local gradients for one step and
returns the aggregated gradient every worker applies. All communication
goes through a :class:`~repro.comm.process_group.ProcessGroup`, so the
traffic each method generates is *measured*, not assumed — the Table II
tests compare these measurements to the analytical complexities.

Aggregation semantics are gradient *averaging* across workers (the S-SGD
convention the paper's convergence experiments use).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.comm.process_group import ProcessGroup
from repro.perf.counters import ALLOC_STATS
from repro.compression.acpsgd import ACPSGDState
from repro.compression.powersgd import PowerSGDState
from repro.compression.qsgd import QSGDCompressor
from repro.compression.randomk import RandomKCompressor
from repro.compression.reshaping import (
    grad_to_matrix,
    matrix_to_grad,
    matrix_view_shape,
    should_compress,
)
from repro.compression.signsgd import SignCompressor, majority_vote_aggregate
from repro.compression.topk import TopkCompressor, sparse_aggregate

NamedGrads = Dict[str, np.ndarray]


def _check_worker_grads(per_worker: List[NamedGrads], expected: int) -> None:
    if len(per_worker) != expected:
        raise ValueError(
            f"expected gradients from {expected} workers, got {len(per_worker)}"
            f" (stale roster? call set_roster with the live ranks)"
        )
    names = list(per_worker[0])
    for rank, grads in enumerate(per_worker[1:], start=1):
        if list(grads) != names:
            raise ValueError(f"worker {rank} gradient names differ from worker 0")


def _pack_fused(
    grads: NamedGrads, names: List[str]
) -> Tuple[np.ndarray, bool]:
    """Fused buffer for ``names`` plus whether it is a zero-copy view.

    Arena-backed gradients (:class:`repro.perf.arena.ArenaGrads`) whose
    ``names`` match a contiguous run of the arena layout return the slab
    view directly — tensor fusion as a no-op. Everything else pays the
    legacy concatenation copy (counted in
    :data:`repro.perf.counters.ALLOC_STATS`).
    """
    fused_view = getattr(grads, "fused_view", None)
    if fused_view is not None:
        view = fused_view(names)
        if view is not None:
            return view, True
    ALLOC_STATS.pack_copies += 1
    return np.concatenate([grads[name].reshape(-1) for name in names]), False


def _pack(grads: NamedGrads, names: List[str]) -> np.ndarray:
    """Flatten named gradients into one fused buffer (tensor fusion)."""
    return _pack_fused(grads, names)[0]


def _unpack(
    buffer: np.ndarray,
    template: NamedGrads,
    names: List[str],
    copy: bool = False,
) -> NamedGrads:
    """Split a fused buffer back into named tensors.

    Ownership contract: by default the returned arrays are **read-only
    views** into ``buffer`` — they are valid until the buffer's owner
    reuses it (for arena slabs: the next backward pass) and attempting to
    write through them raises. Callers that need private, mutable tensors
    must pass ``copy=True`` (one allocation per tensor, counted in
    :data:`repro.perf.counters.ALLOC_STATS`).
    """
    out: NamedGrads = {}
    offset = 0
    for name in names:
        size = template[name].size
        view = buffer[offset : offset + size].reshape(template[name].shape)
        if copy:
            ALLOC_STATS.unpack_copies += 1
            out[name] = view.copy()
        else:
            view.flags.writeable = False
            out[name] = view
        offset += size
    return out


class _PackLayout:
    """Element offsets of named blocks inside one fused pack.

    The bucketed low-rank paths stage per-name factors into one logical
    pack per collective (plain / P / Q), laid out in a fixed name order.
    Because bucket membership follows the arena layout order, each bucket's
    names occupy one contiguous segment of every pack, which is what lets a
    per-bucket collective use the monolithic pack's chunk schedule.
    """

    def __init__(self, sizes: Dict[str, int], order: List[str]):
        self.sizes = sizes
        self.offsets: Dict[str, int] = {}
        offset = 0
        for name in order:
            self.offsets[name] = offset
            offset += sizes[name]
        self.total = offset

    def segment(self, names: Sequence[str]) -> Tuple[int, int]:
        """Element range covered by ``names`` (must be pack-contiguous)."""
        lo = self.offsets[names[0]]
        last = names[-1]
        return lo, self.offsets[last] + self.sizes[last]


class _BucketSession:
    """Per-step scratch of one bucketed aggregation pass."""

    def __init__(self, per_worker: List[NamedGrads], layout) -> None:
        self.per_worker = per_worker
        self.layout = layout
        self.names: List[str] = list(layout.names)
        self.buckets: List[Tuple[int, int]] = list(layout.buckets)
        self.bucket_names: List[List[str]] = layout.bucket_names()
        self.total: int = layout.total_elements
        self.slabs = [grads.slab for grads in per_worker]
        self.template = per_worker[0]
        self.done = [False] * len(self.buckets)


class GradientAggregator:
    """Base class: process group, live roster, and per-rank compressor state.

    Per-worker state (EF residuals, carried low-rank factors, momentum
    accumulators) is keyed by *rank id*, not by slot position, so a rank
    keeps its own state across roster changes — ejecting rank 0 must not
    silently hand its residual to rank 1, and a rank that rejoins later is
    readmitted with fresh (warm-started) state via :meth:`admit_rank`.

    Bucketed protocol: aggregators that set ``supports_bucketed`` also
    implement ``begin_buckets`` / ``reduce_bucket`` / ``finish_buckets``,
    the staged form of :meth:`aggregate` the
    :class:`~repro.train.reducer.BucketedReducer` drives bucket by bucket
    as backward produces gradients. For every such aggregator the staged
    path is bit-identical to :meth:`aggregate` in any bucket order (the
    per-bucket collectives reuse the monolithic chunk schedule; see
    :func:`repro.comm.collectives.all_reduce_ring_segment_`).
    """

    method = "base"

    #: Whether the staged bucket protocol below is implemented.
    supports_bucketed = False

    def __init__(self, group: ProcessGroup):
        self.group = group
        self.step = 0
        #: Ranks whose gradients ``aggregate`` receives, in slot order. The
        #: trainer re-syncs it from the group's live roster every step; it
        #: only ever changes under a resilient group (ejection) or an
        #: elastic membership controller (rejoin / scale-up).
        self.roster: List[int] = list(range(group.world_size))
        self._per_rank: Dict[int, object] = {}
        self._bucket_session: Optional[_BucketSession] = None
        self._staging_blocks: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Per-rank state lifecycle (elastic membership hooks)
    # ------------------------------------------------------------------
    def _make_state(self, rank: int):
        """Fresh compressor state for one rank (None: stateless method)."""
        return None

    def _init_states(self) -> None:
        """Populate per-rank state for the initial roster (subclass init)."""
        for rank in self.roster:
            state = self._make_state(rank)
            if state is not None:
                self._per_rank[rank] = state

    def state_for(self, rank: int):
        """The per-rank compressor state (None for stateless methods)."""
        return self._per_rank.get(rank)

    def set_roster(self, ranks: Sequence[int]) -> None:
        """Follow the group's live roster; create missing state lazily."""
        for rank in ranks:
            if rank not in self._per_rank:
                state = self._make_state(rank)
                if state is not None:
                    self._per_rank[rank] = state
        self.roster = list(ranks)

    def admit_rank(self, rank: int, donor_rank: Optional[int] = None) -> None:
        """Fresh per-rank state for an admission, warm-started from a donor.

        The elastic admission protocol's compressor half: the joiner's
        error-feedback residual starts at zero (its unsent history is
        empty), while state that is *shared* across workers — Power-SGD's
        reused query, ACP-SGD's alternating factors — is copied from the
        donor survivor, the in-process equivalent of broadcasting it. A
        rejoining rank's stale pre-ejection state is replaced, not resumed:
        its residual describes gradients that no longer exist.
        """
        state = self._make_state(rank)
        if state is None:
            return
        donor = self._per_rank.get(donor_rank) if donor_rank is not None else None
        warm_start = getattr(state, "warm_start_from", None)
        if donor is not None and warm_start is not None:
            warm_start(donor)
        self._per_rank[rank] = state

    def aggregate(self, per_worker_grads: List[NamedGrads]) -> NamedGrads:
        """Aggregate one step's gradients; returns the shared global gradient."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Bucketed (WFBP) protocol
    # ------------------------------------------------------------------
    def begin_buckets(self, per_worker_grads: List[NamedGrads]) -> None:
        """Open a bucketed aggregation step over arena-backed gradients.

        ``per_worker_grads`` must be :class:`~repro.perf.arena.ArenaGrads`
        sharing one bucketed layout, in roster (slot) order. The caller may
        then fire :meth:`reduce_bucket` for every bucket in any order —
        typically reverse layout order, as backward produces them — and
        collect the result with :meth:`finish_buckets`.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support bucketed aggregation"
        )

    def reduce_bucket(self, index: int) -> None:
        """Reduce (or stage) one bucket; gradients for it must be final."""
        raise NotImplementedError

    def finish_buckets(self) -> NamedGrads:
        """Complete the step; every bucket must have been reduced.

        Returned tensors follow the same ownership contract as
        :meth:`aggregate`'s zero-copy paths: they are read-only views valid
        until the next aggregation begins.
        """
        raise NotImplementedError

    def aggregate_bucketed(
        self,
        per_worker_grads: List[NamedGrads],
        order: Optional[Sequence[int]] = None,
    ) -> NamedGrads:
        """Run the whole staged protocol at once (deferred-mode entry).

        ``order`` defaults to reverse layout order — the order backward
        would have produced the buckets — but any permutation yields
        bit-identical results.
        """
        self.begin_buckets(per_worker_grads)
        session = self._bucket_state()
        indices = (
            order if order is not None
            else range(len(session.buckets) - 1, -1, -1)
        )
        for index in indices:
            self.reduce_bucket(index)
        return self.finish_buckets()

    def _open_bucket_session(
        self, per_worker_grads: List[NamedGrads]
    ) -> _BucketSession:
        _check_worker_grads(per_worker_grads, len(self.roster))
        layout = getattr(per_worker_grads[0], "layout", None)
        if layout is None or any(
            getattr(grads, "layout", None) is not layout
            for grads in per_worker_grads
        ):
            raise ValueError(
                "bucketed aggregation requires arena-backed gradients "
                "sharing one layout (ArenaGrads from a single GradientArena)"
            )
        session = _BucketSession(per_worker_grads, layout)
        self._bucket_session = session
        return session

    def _bucket_state(self) -> _BucketSession:
        session = self._bucket_session
        if session is None:
            raise RuntimeError(
                "reduce_bucket/finish_buckets called without begin_buckets"
            )
        return session

    def _mark_bucket(self, session: _BucketSession, index: int) -> None:
        if session.done[index]:
            raise RuntimeError(f"bucket {index} reduced twice in one step")
        session.done[index] = True

    def _close_bucket_session(self, session: _BucketSession) -> None:
        missing = [i for i, done in enumerate(session.done) if not done]
        if missing:
            raise RuntimeError(
                f"finish_buckets called with unreduced buckets {missing}"
            )
        self._bucket_session = None

    def _staging_rows(self, key: str, rows: int, cols: int) -> List[np.ndarray]:
        """Per-slot 1-D staging buffers, allocated once and reused.

        Backed by one grow-only 2-D block per purpose (``key``), so the
        steady-state bucketed hot path stages with zero allocations; the
        block only grows at roster-expansion boundaries.
        """
        block = self._staging_blocks.get(key)
        if block is None or block.shape[0] < rows or block.shape[1] < cols:
            old_rows, old_cols = block.shape if block is not None else (0, 0)
            block = np.zeros((max(rows, old_rows), max(cols, old_cols)))
            self._staging_blocks[key] = block
        return [block[slot, :cols] for slot in range(rows)]

    def _reduce_pack_segment(
        self, rows: List[np.ndarray], lo: int, hi: int, total: int
    ) -> None:
        """Average-reduce ``rows[lo:hi]`` with the monolithic chunk schedule.

        The aggregated values land in ``rows[0]``'s segment (in every row
        when the group reduces in place). Staging rows are private to this
        aggregator, so in-place reduction is safe whenever the group allows
        it; resilient groups take the copying, fault-checked path.
        """
        if hi == lo:
            return
        views = [row[lo:hi] for row in rows]
        ALLOC_STATS.bucket_reduces += 1
        if getattr(self.group, "supports_inplace", False):
            self.group.all_reduce_segment_(views, lo, total, average=True)
        else:
            ALLOC_STATS.bucket_copies += 1
            reduced = self.group.all_reduce_segment(
                views, lo, total, average=True
            )
            np.copyto(views[0], reduced[0])

    def reset(self) -> None:
        """Drop accumulated compressor state (EF residuals, cached factors).

        The trainer's resilience ladder calls this after a skipped step or a
        checkpoint rollback — a residual contaminated by a non-finite
        gradient would otherwise re-poison every subsequent step. Stateless
        aggregators (uncompressed all-reduce) are a no-op; compressors
        without a ``reset`` (unbiased quantizers carry no state between
        steps) are skipped.
        """
        for state in self._per_rank.values():
            reset = getattr(state, "reset", None)
            if reset is not None:
                reset()


class AllReduceAggregator(GradientAggregator):
    """S-SGD: fused ring all-reduce of the raw gradients (the baseline).

    With arena-backed gradients on a group that supports it, the all-reduce
    runs **in place** on the per-worker slabs: zero packing copies, zero
    per-step fused allocations, and the returned tensors are read-only
    views into the reduced slab. The per-worker gradients are consumed by
    the call (every slab ends up holding the reduced average), matching
    NCCL in-place all-reduce semantics.
    """

    method = "ssgd"
    supports_bucketed = True

    def aggregate(self, per_worker_grads: List[NamedGrads]) -> NamedGrads:
        _check_worker_grads(per_worker_grads, len(self.roster))
        self.step += 1
        names = list(per_worker_grads[0])
        packed = [_pack_fused(grads, names) for grads in per_worker_grads]
        buffers = [buffer for buffer, _ in packed]
        if (
            getattr(self.group, "supports_inplace", False)
            and all(is_view for _, is_view in packed)
            and len({id(buffer) for buffer in buffers}) == len(buffers)
        ):
            self.group.all_reduce_(buffers, average=True)
            return _unpack(buffers[0], per_worker_grads[0], names)
        reduced = self.group.all_reduce(buffers, average=True)
        return _unpack(reduced[0], per_worker_grads[0], names)

    def begin_buckets(self, per_worker_grads: List[NamedGrads]) -> None:
        session = self._open_bucket_session(per_worker_grads)
        self.step += 1
        session.inplace = (
            getattr(self.group, "supports_inplace", False)
            and len({id(slab) for slab in session.slabs}) == len(session.slabs)
        )
        if not session.inplace:
            out = self._staging_blocks.get("ssgd_out")
            if out is None or out.shape[0] < session.total:
                out = np.zeros(max(1, session.total))
                self._staging_blocks["ssgd_out"] = out
            session.out = out[: session.total]

    def reduce_bucket(self, index: int) -> None:
        session = self._bucket_state()
        self._mark_bucket(session, index)
        lo, hi = session.buckets[index]
        if hi == lo:
            return
        ALLOC_STATS.bucket_reduces += 1
        views = [slab[lo:hi] for slab in session.slabs]
        if session.inplace:
            # Zero-copy: reduce the arena bucket views where they live,
            # with the monolithic slab's chunk schedule (bit-identical to
            # one fused in-place all-reduce; destroys the local payloads).
            self.group.all_reduce_segment_(views, lo, session.total, average=True)
        else:
            ALLOC_STATS.bucket_copies += 1
            reduced = self.group.all_reduce_segment(
                views, lo, session.total, average=True
            )
            session.out[lo:hi] = reduced[0]

    def finish_buckets(self) -> NamedGrads:
        session = self._bucket_state()
        self._close_bucket_session(session)
        buffer = session.slabs[0] if session.inplace else session.out
        return _unpack(buffer, session.template, session.names)


class SignSGDAggregator(GradientAggregator):
    """Sign-SGD with majority vote: all-gather 1-bit signs, vote, rescale.

    Each worker holds its own :class:`SignCompressor` (per-worker EF
    residuals). Gradients are packed into one flat tensor before compression
    ("the gradients are packed together to be compressed and communicated
    for better performance", §III-A).
    """

    method = "signsgd"
    supports_bucketed = True

    def __init__(
        self,
        group: ProcessGroup,
        use_error_feedback: bool = True,
        validate: bool = False,
    ):
        super().__init__(group)
        self.validate = validate
        self.use_error_feedback = use_error_feedback
        self._init_states()

    def _make_state(self, rank: int) -> SignCompressor:
        return SignCompressor(self.use_error_feedback)

    def aggregate(self, per_worker_grads: List[NamedGrads]) -> NamedGrads:
        _check_worker_grads(per_worker_grads, len(self.roster))
        self.step += 1
        names = list(per_worker_grads[0])
        payloads = []
        for rank, grads in zip(self.roster, per_worker_grads):
            flat = _pack(grads, names)
            payloads.append(self._per_rank[rank].compress("fused", flat))
        # All-gather the packed bits (scales ride along; they are 4 bytes).
        gathered = self.group.all_gather([p.packed_bits for p in payloads])
        del gathered  # numerics below use the payload objects directly
        shape = (payloads[0].num_elements,)
        aggregated = majority_vote_aggregate(payloads, shape, validate=self.validate)
        return _unpack(aggregated, per_worker_grads[0], names)

    def begin_buckets(self, per_worker_grads: List[NamedGrads]) -> None:
        session = self._open_bucket_session(per_worker_grads)
        self.step += 1
        session.scratch = self._staging_rows(
            "signsgd", len(self.roster), session.total
        )
        session.bits = [None] * len(session.buckets)

    def reduce_bucket(self, index: int) -> None:
        """Stage the bucket's EF-corrected segment and ship its sign bits.

        Sign bits are *per-element* (``flat >= 0`` does not depend on the
        global scale), so each bucket's 1-bit payload all-gathers as soon
        as the bucket's gradients are ready — Sign-SGD keeps WFBP overlap
        for the bulk of its traffic. Only the scalar L1-mean scale is
        vector-global and waits for :meth:`finish_buckets`.
        """
        session = self._bucket_state()
        self._mark_bucket(session, index)
        lo, hi = session.buckets[index]
        ALLOC_STATS.bucket_reduces += 1
        packed = []
        for slot, rank in enumerate(self.roster):
            state = self._per_rank[rank]
            staged = session.scratch[slot][lo:hi]
            np.copyto(staged, session.slabs[slot][lo:hi])
            residual = state.residual_for(f"fused/b{index}")
            if residual is not None:
                staged += residual
            packed.append(np.packbits((staged >= 0).astype(np.uint8)))
        session.bits[index] = packed
        if hi > lo:
            self.group.all_gather(packed)

    def finish_buckets(self) -> NamedGrads:
        session = self._bucket_state()
        self._close_bucket_session(session)
        num_slots = len(self.roster)
        # The scale is the L1 mean of the *whole* EF-corrected vector —
        # identical to the monolithic compressor's — computed over the
        # per-slot staging buffers the buckets filled.
        scales = np.array([
            float(np.abs(session.scratch[slot]).mean()) if session.total else 0.0
            for slot in range(num_slots)
        ])
        if self.validate:
            from repro.utils.validation import assert_finite

            assert_finite(scales, "signsgd payload scales")
        mean_scale = float(scales.mean())
        out = self._staging_rows("signsgd_out", 1, max(1, session.total))[0]
        out = out[: session.total]
        for index, (lo, hi) in enumerate(session.buckets):
            if hi == lo:
                continue
            vote = np.zeros(hi - lo)
            signs_per_slot = []
            for slot in range(num_slots):
                bits = np.unpackbits(session.bits[index][slot])[: hi - lo]
                signs = np.where(bits == 1, 1.0, -1.0)
                signs_per_slot.append(signs)
                vote += signs
            majority = np.where(vote >= 0, 1.0, -1.0)
            out[lo:hi] = mean_scale * majority
            for slot, rank in enumerate(self.roster):
                state = self._per_rank[rank]
                state.store_residual(
                    f"fused/b{index}",
                    session.scratch[slot][lo:hi]
                    - scales[slot] * signs_per_slot[slot],
                )
        return _unpack(out, session.template, session.names)


class TopkSGDAggregator(GradientAggregator):
    """Top-k SGD: all-gather (values, indices), sum sparse, average."""

    method = "topk"
    supports_bucketed = True

    def __init__(
        self,
        group: ProcessGroup,
        ratio: float = 0.01,
        selection: str = "exact",
        use_error_feedback: bool = True,
        seed: int = 0,
        validate: bool = False,
    ):
        super().__init__(group)
        self.validate = validate
        self.ratio = ratio
        self.selection = selection
        self.use_error_feedback = use_error_feedback
        self.seed = seed
        self._init_states()

    def _make_state(self, rank: int) -> TopkCompressor:
        return TopkCompressor(
            ratio=self.ratio,
            selection=self.selection,
            use_error_feedback=self.use_error_feedback,
            rng=np.random.default_rng(self.seed + rank),
        )

    def aggregate(self, per_worker_grads: List[NamedGrads]) -> NamedGrads:
        _check_worker_grads(per_worker_grads, len(self.roster))
        self.step += 1
        names = list(per_worker_grads[0])
        payloads = []
        for rank, grads in zip(self.roster, per_worker_grads):
            flat = _pack(grads, names)
            payloads.append(self._per_rank[rank].compress("fused", flat))
        # Wire format: interleaved (index, value) pairs per worker.
        wires = [
            np.concatenate([p.indices.astype(np.float64), p.values])
            for p in payloads
        ]
        self.group.all_gather(wires)
        aggregated = sparse_aggregate(
            payloads,
            (payloads[0].num_elements,),
            average=True,
            validate=self.validate,
        )
        return _unpack(aggregated, per_worker_grads[0], names)

    def begin_buckets(self, per_worker_grads: List[NamedGrads]) -> None:
        session = self._open_bucket_session(per_worker_grads)
        self.step += 1
        session.scratch = self._staging_rows(
            "topk", len(self.roster), session.total
        )

    def reduce_bucket(self, index: int) -> None:
        """Stage the bucket's EF-corrected segment (no communication yet).

        Top-k selection is *vector-global* — one ``k`` and one threshold
        over the whole fused gradient — so nothing can ship until every
        bucket is staged: exactly the §IV observation that top-k
        compression forfeits WFBP overlap. Staging is still per bucket so
        the EF residual stays keyed by (rank, bucket).
        """
        session = self._bucket_state()
        self._mark_bucket(session, index)
        lo, hi = session.buckets[index]
        ALLOC_STATS.bucket_reduces += 1
        for slot, rank in enumerate(self.roster):
            state = self._per_rank[rank]
            staged = session.scratch[slot][lo:hi]
            np.copyto(staged, session.slabs[slot][lo:hi])
            residual = state.residual_for(f"fused/b{index}")
            if residual is not None:
                staged += residual

    def finish_buckets(self) -> NamedGrads:
        session = self._bucket_state()
        self._close_bucket_session(session)
        num_slots = len(self.roster)
        selections = []
        for slot, rank in enumerate(self.roster):
            state = self._per_rank[rank]
            flat = session.scratch[slot]
            idx = state.select(flat)
            values = flat[idx]
            if self.validate:
                from repro.utils.validation import assert_finite

                assert_finite(values, f"topk payload values (worker {slot})")
            residual = flat.copy()
            residual[idx] = 0.0
            for index, (lo, hi) in enumerate(session.buckets):
                state.store_residual(f"fused/b{index}", residual[lo:hi])
            selections.append((idx, values))
        out = self._staging_rows("topk_out", 1, max(1, session.total))[0]
        out = out[: session.total]
        out[:] = 0.0
        for index, (lo, hi) in enumerate(session.buckets):
            if hi == lo:
                continue
            parts = []
            for idx, values in selections:
                mask = (idx >= lo) & (idx < hi)
                parts.append((idx[mask] - lo, values[mask]))
            # Per-bucket wire format: each rank ships only the (index,
            # value) pairs whose coordinates fall in this bucket; the
            # per-bucket wires partition the monolithic payload exactly.
            self.group.all_gather([
                np.concatenate([part_idx.astype(np.float64), part_vals])
                for part_idx, part_vals in parts
            ])
            dense = out[lo:hi]
            for part_idx, part_vals in parts:
                np.add.at(dense, part_idx, part_vals)
            dense /= num_slots
        return _unpack(out, session.template, session.names)


class RandomKAggregator(GradientAggregator):
    """Random-k with a shared seed: additive, so values ride an all-reduce."""

    method = "randomk"

    def __init__(
        self,
        group: ProcessGroup,
        ratio: float = 0.01,
        seed: int = 0,
        use_error_feedback: bool = True,
    ):
        super().__init__(group)
        self.ratio = ratio
        self.seed = seed
        self.use_error_feedback = use_error_feedback
        self._init_states()

    def _make_state(self, rank: int) -> RandomKCompressor:
        # Same seed across workers: coordinates agree, payloads align —
        # which also means a joiner derives the shared coordinate set from
        # (seed, step) with no state to synchronize.
        return RandomKCompressor(
            ratio=self.ratio, seed=self.seed,
            use_error_feedback=self.use_error_feedback,
        )

    def aggregate(self, per_worker_grads: List[NamedGrads]) -> NamedGrads:
        _check_worker_grads(per_worker_grads, len(self.roster))
        self.step += 1
        names = list(per_worker_grads[0])
        payloads = []
        for rank, grads in zip(self.roster, per_worker_grads):
            flat = _pack(grads, names)
            payloads.append(self._per_rank[rank].compress("fused", flat, self.step))
        reduced = self.group.all_reduce([p.values for p in payloads], average=True)
        dense = np.zeros(payloads[0].num_elements)
        dense[payloads[0].indices] = reduced[0]
        return _unpack(dense, per_worker_grads[0], names)


class QSGDAggregator(GradientAggregator):
    """QSGD (extension): all-gather quantized payloads, dequantize, average."""

    method = "qsgd"

    def __init__(self, group: ProcessGroup, num_levels: int = 255, seed: int = 0):
        super().__init__(group)
        self.num_levels = num_levels
        self.seed = seed
        self._init_states()

    def _make_state(self, rank: int) -> QSGDCompressor:
        return QSGDCompressor(
            self.num_levels, rng=np.random.default_rng(self.seed + rank)
        )

    def aggregate(self, per_worker_grads: List[NamedGrads]) -> NamedGrads:
        _check_worker_grads(per_worker_grads, len(self.roster))
        self.step += 1
        names = list(per_worker_grads[0])
        payloads = []
        for rank, grads in zip(self.roster, per_worker_grads):
            flat = _pack(grads, names)
            payloads.append(self._per_rank[rank].compress(flat))
        # Wire format: uint8 levels (for s <= 255) + 1 packed sign bit per
        # element, so the measured traffic reflects QSGD's ~9 bits/element.
        wires = []
        for payload in payloads:
            level_bytes = payload.levels.astype(
                np.uint8 if payload.num_levels <= 255 else np.uint32
            ).view(np.uint8)
            sign_bits = np.packbits((payload.signs >= 0).astype(np.uint8))
            wires.append(np.concatenate([level_bytes, sign_bits]))
        self.group.all_gather(wires)
        size = payloads[0].num_elements
        dense = np.zeros(size)
        for payload in payloads:
            dense += QSGDCompressor.decompress(payload, (size,))
        dense /= len(payloads)
        return _unpack(dense, per_worker_grads[0], names)


class TernGradAggregator(GradientAggregator):
    """TernGrad (extension): all-gather ternary payloads, dequantize, average.

    Unbiased, so no error feedback; variance is the convergence cost.
    """

    method = "terngrad"

    def __init__(self, group: ProcessGroup, seed: int = 0,
                 clip_sigma: float = 2.5):
        super().__init__(group)
        self.seed = seed
        self.clip_sigma = clip_sigma
        self._init_states()

    def _make_state(self, rank: int):
        from repro.compression.terngrad import TernGradCompressor

        return TernGradCompressor(
            np.random.default_rng(self.seed + rank), self.clip_sigma
        )

    def aggregate(self, per_worker_grads: List[NamedGrads]) -> NamedGrads:
        from repro.compression.terngrad import TernGradCompressor

        _check_worker_grads(per_worker_grads, len(self.roster))
        self.step += 1
        names = list(per_worker_grads[0])
        payloads = []
        for rank, grads in zip(self.roster, per_worker_grads):
            flat = _pack(grads, names)
            payloads.append(self._per_rank[rank].compress(flat))
        self.group.all_gather([p.packed for p in payloads])
        size = payloads[0].num_elements
        dense = np.zeros(size)
        for payload in payloads:
            dense += TernGradCompressor.decompress(payload, (size,))
        dense /= len(payloads)
        return _unpack(dense, per_worker_grads[0], names)


class _LowRankBase(GradientAggregator):
    """Shared plumbing for Power-SGD / ACP-SGD: compressibility and fallbacks.

    A tensor is low-rank compressed only when it is matrix-shaped *and*
    compression actually shrinks it (``n m > (n + m) r``); everything else
    (biases, norm scales, tiny matrices) rides a fused uncompressed ring
    all-reduce, exactly as in the paper's §IV-C.
    """

    def __init__(self, group: ProcessGroup, rank: int):
        super().__init__(group)
        if rank < 1:
            raise ValueError(f"rank must be >= 1, got {rank}")
        self.rank = rank

    def _is_compressible(self, shape: Tuple[int, ...]) -> bool:
        if not should_compress(shape):
            return False
        n = shape[0]
        m = 1
        for dim in shape[1:]:
            m *= dim
        r = min(self.rank, n, m)
        return n * m > (n + m) * r

    def _split_names(self, grads: NamedGrads) -> Tuple[List[str], List[str]]:
        compressible = [n for n, g in grads.items() if self._is_compressible(g.shape)]
        plain = [n for n in grads if n not in set(compressible)]
        return compressible, plain

    def _allreduce_plain(
        self, per_worker_grads: List[NamedGrads], plain: List[str]
    ) -> NamedGrads:
        if not plain:
            return {}
        buffers = [_pack(grads, plain) for grads in per_worker_grads]
        reduced = self.group.all_reduce(buffers, average=True)
        return _unpack(reduced[0], per_worker_grads[0], plain)

    # ------------------------------------------------------------------
    # Bucketed protocol shared plumbing
    # ------------------------------------------------------------------
    def _begin_lowrank_session(
        self, per_worker_grads: List[NamedGrads]
    ) -> _BucketSession:
        """Open a session and lay out the shared plain (uncompressed) pack.

        Each pack (plain here; P/Q/alternating factor in the subclasses)
        orders its blocks by layout order, so every bucket's names cover a
        contiguous pack segment and per-bucket reduction can reuse the
        monolithic pack's chunk schedule.
        """
        session = self._open_bucket_session(per_worker_grads)
        self.step += 1
        compressible, plain = self._split_names(session.template)
        session.compressible = compressible
        session.comp_set = set(compressible)
        plain_sizes = {name: int(session.template[name].size) for name in plain}
        session.plain_pack = _PackLayout(plain_sizes, plain)
        session.plain_scratch = self._staging_rows(
            "plain", len(self.roster), max(1, session.plain_pack.total)
        )
        session.mshapes = {
            name: matrix_view_shape(session.template[name].shape)
            for name in compressible
        }
        session.result = {}
        return session

    def _reduce_plain_bucket(
        self, session: _BucketSession, plain_b: List[str]
    ) -> None:
        """Stage and average-reduce a bucket's uncompressed tensors."""
        if not plain_b:
            return
        pack = session.plain_pack
        lo, hi = pack.segment(plain_b)
        for slot in range(len(self.roster)):
            grads = session.per_worker[slot]
            row = session.plain_scratch[slot]
            for name in plain_b:
                off = pack.offsets[name]
                row[off : off + pack.sizes[name]] = grads[name].reshape(-1)
        self._reduce_pack_segment(session.plain_scratch, lo, hi, pack.total)
        agg = session.plain_scratch[0]
        for name in plain_b:
            off = pack.offsets[name]
            view = agg[off : off + pack.sizes[name]].reshape(
                session.template[name].shape
            )
            view.flags.writeable = False
            session.result[name] = view

    def _pack_view(
        self,
        row: np.ndarray,
        pack: _PackLayout,
        name: str,
        shape: Tuple[int, int],
    ) -> np.ndarray:
        """Read-only matrix view of one named block inside a pack row."""
        off = pack.offsets[name]
        view = row[off : off + pack.sizes[name]].reshape(shape)
        view.flags.writeable = False
        return view

    def finish_buckets(self) -> NamedGrads:
        session = self._bucket_state()
        self._close_bucket_session(session)
        return {name: session.result[name] for name in session.template}


class PowerSGDAggregator(_LowRankBase):
    """Power-SGD: all-reduce P, orthogonalize, all-reduce Q, reconstruct.

    P-factors of all compressible tensors are batched into one fused
    all-reduce, then Q-factors into another — two blocking collectives per
    step (the structure Fig. 4(a) shows).
    """

    method = "powersgd"
    supports_bucketed = True

    def __init__(
        self,
        group: ProcessGroup,
        rank: int = 4,
        seed: int = 0,
        use_error_feedback: bool = True,
        reuse_query: bool = True,
        validate: bool = False,
    ):
        super().__init__(group, rank)
        self.seed = seed
        self.use_error_feedback = use_error_feedback
        self.reuse_query = reuse_query
        self.validate = validate
        self._init_states()

    def _make_state(self, rank: int) -> PowerSGDState:
        # Same seed everywhere: the initial query matrices must agree.
        return PowerSGDState(
            self.rank, self.seed, self.use_error_feedback,
            self.reuse_query, self.validate,
        )

    def aggregate(self, per_worker_grads: List[NamedGrads]) -> NamedGrads:
        _check_worker_grads(per_worker_grads, len(self.roster))
        self.step += 1
        compressible, plain = self._split_names(per_worker_grads[0])
        result = self._allreduce_plain(per_worker_grads, plain)

        if compressible:
            # Stage 1: local P factors, fused all-reduce.
            local_ps: List[NamedGrads] = []
            for rank_idx, grads in zip(self.roster, per_worker_grads):
                state = self._per_rank[rank_idx]
                ps = {
                    name: state.compute_p(name, grad_to_matrix(grads[name]))
                    for name in compressible
                }
                local_ps.append(ps)
            p_buffers = [_pack(ps, compressible) for ps in local_ps]
            p_reduced = self.group.all_reduce(p_buffers, average=True)
            p_agg = _unpack(p_reduced[0], local_ps[0], compressible)

            # Stage 2: local Q factors, fused all-reduce.
            local_qs: List[NamedGrads] = []
            for rank_idx in self.roster:
                state = self._per_rank[rank_idx]
                qs = {
                    name: state.compute_q(name, p_agg[name]) for name in compressible
                }
                local_qs.append(qs)
            q_buffers = [_pack(qs, compressible) for qs in local_qs]
            q_reduced = self.group.all_reduce(q_buffers, average=True)
            q_agg = _unpack(q_reduced[0], local_qs[0], compressible)

            # Stage 3: reconstruct on every worker (results identical).
            for slot, rank_idx in enumerate(self.roster):
                state = self._per_rank[rank_idx]
                for name in compressible:
                    m_hat = state.reconstruct(name, q_agg[name])
                    if slot == 0:
                        result[name] = matrix_to_grad(
                            m_hat, per_worker_grads[0][name].shape
                        )
        return {name: result[name] for name in per_worker_grads[0]}

    def begin_buckets(self, per_worker_grads: List[NamedGrads]) -> None:
        session = self._begin_lowrank_session(per_worker_grads)
        p_sizes: Dict[str, int] = {}
        q_sizes: Dict[str, int] = {}
        session.p_shapes = {}
        session.q_shapes = {}
        for name in session.compressible:
            n, m = session.mshapes[name]
            r_eff = min(self.rank, n, m)
            session.p_shapes[name] = (n, r_eff)
            session.q_shapes[name] = (m, r_eff)
            p_sizes[name] = n * r_eff
            q_sizes[name] = m * r_eff
        session.p_pack = _PackLayout(p_sizes, session.compressible)
        session.q_pack = _PackLayout(q_sizes, session.compressible)
        num_slots = len(self.roster)
        session.p_scratch = self._staging_rows(
            "powersgd_p", num_slots, max(1, session.p_pack.total)
        )
        session.q_scratch = self._staging_rows(
            "powersgd_q", num_slots, max(1, session.q_pack.total)
        )

    def reduce_bucket(self, index: int) -> None:
        """Full Power-SGD round for one bucket as its gradients land.

        Per bucket: plain tensors reduce uncompressed, then the blocking
        ``P-reduce -> orthogonalize -> Q-reduce -> reconstruct`` chain runs
        on the bucket's segment of the global P/Q packs. The P collective
        still blocks the Q computation *within* the bucket (the §III-C
        structure), but bucketing lets later buckets start as soon as their
        gradients exist.
        """
        session = self._bucket_state()
        self._mark_bucket(session, index)
        names_b = session.bucket_names[index]
        comp_b = [n for n in names_b if n in session.comp_set]
        plain_b = [n for n in names_b if n not in session.comp_set]
        self._reduce_plain_bucket(session, plain_b)
        if not comp_b:
            return
        p_pack, q_pack = session.p_pack, session.q_pack
        plo, phi = p_pack.segment(comp_b)
        for slot, rank_idx in enumerate(self.roster):
            state = self._per_rank[rank_idx]
            grads = session.per_worker[slot]
            row = session.p_scratch[slot]
            for name in comp_b:
                p_local = state.compute_p(name, grad_to_matrix(grads[name]))
                off = p_pack.offsets[name]
                row[off : off + p_pack.sizes[name]] = p_local.reshape(-1)
        self._reduce_pack_segment(session.p_scratch, plo, phi, p_pack.total)
        qlo, qhi = q_pack.segment(comp_b)
        for slot, rank_idx in enumerate(self.roster):
            state = self._per_rank[rank_idx]
            row = session.q_scratch[slot]
            for name in comp_b:
                p_agg = self._pack_view(
                    session.p_scratch[0], p_pack, name, session.p_shapes[name]
                )
                q_local = state.compute_q(name, p_agg)
                off = q_pack.offsets[name]
                row[off : off + q_pack.sizes[name]] = q_local.reshape(-1)
        self._reduce_pack_segment(session.q_scratch, qlo, qhi, q_pack.total)
        for slot, rank_idx in enumerate(self.roster):
            state = self._per_rank[rank_idx]
            for name in comp_b:
                q_agg = self._pack_view(
                    session.q_scratch[0], q_pack, name, session.q_shapes[name]
                )
                m_hat = state.reconstruct(name, q_agg)
                if slot == 0:
                    session.result[name] = matrix_to_grad(
                        m_hat, session.template[name].shape
                    )


class ACPSGDAggregator(_LowRankBase):
    """ACP-SGD: a single fused all-reduce of the alternating factor."""

    method = "acpsgd"
    supports_bucketed = True

    def __init__(
        self,
        group: ProcessGroup,
        rank: int = 4,
        seed: int = 0,
        use_error_feedback: bool = True,
        reuse_query: bool = True,
        validate: bool = False,
    ):
        super().__init__(group, rank)
        self.seed = seed
        self.use_error_feedback = use_error_feedback
        self.reuse_query = reuse_query
        self.validate = validate
        self._init_states()

    def _make_state(self, rank: int) -> ACPSGDState:
        # Same seed everywhere: the initial P0/Q0 factors must agree.
        return ACPSGDState(
            self.rank, self.seed, self.use_error_feedback,
            self.reuse_query, self.validate,
        )

    def aggregate(self, per_worker_grads: List[NamedGrads]) -> NamedGrads:
        _check_worker_grads(per_worker_grads, len(self.roster))
        self.step += 1
        compressible, plain = self._split_names(per_worker_grads[0])
        result = self._allreduce_plain(per_worker_grads, plain)

        if compressible:
            local_factors: List[NamedGrads] = []
            for rank_idx, grads in zip(self.roster, per_worker_grads):
                state = self._per_rank[rank_idx]
                factors = {
                    name: state.compress(name, grad_to_matrix(grads[name]), self.step)
                    for name in compressible
                }
                local_factors.append(factors)
            buffers = [_pack(factors, compressible) for factors in local_factors]
            reduced = self.group.all_reduce(buffers, average=True)
            agg = _unpack(reduced[0], local_factors[0], compressible)
            for slot, rank_idx in enumerate(self.roster):
                state = self._per_rank[rank_idx]
                for name in compressible:
                    m_hat = state.finalize(name, agg[name], self.step)
                    if slot == 0:
                        result[name] = matrix_to_grad(
                            m_hat, per_worker_grads[0][name].shape
                        )
        return {name: result[name] for name in per_worker_grads[0]}

    def begin_buckets(self, per_worker_grads: List[NamedGrads]) -> None:
        session = self._begin_lowrank_session(per_worker_grads)
        # Factor shapes alternate with step parity: P=(n, r) on odd steps,
        # Q=(m, r) on even steps — fixed for the whole session because every
        # bucket shares this step's parity.
        p_step = ACPSGDState.compresses_p(self.step)
        f_sizes: Dict[str, int] = {}
        session.f_shapes = {}
        for name in session.compressible:
            n, m = session.mshapes[name]
            r_eff = min(self.rank, n, m)
            session.f_shapes[name] = (n, r_eff) if p_step else (m, r_eff)
            f_sizes[name] = session.f_shapes[name][0] * r_eff
        session.factor_pack = _PackLayout(f_sizes, session.compressible)
        session.factor_scratch = self._staging_rows(
            "acpsgd_f", len(self.roster), max(1, session.factor_pack.total)
        )

    def reduce_bucket(self, index: int) -> None:
        """One fused-factor round for the bucket as its gradients land.

        ACP-SGD's single alternating-factor all-reduce is the cheapest of
        the low-rank schedules (§IV-C), and it buckets cleanly: each bucket
        compresses, reduces its contiguous segment of the factor pack, and
        reconstructs immediately.
        """
        session = self._bucket_state()
        self._mark_bucket(session, index)
        names_b = session.bucket_names[index]
        comp_b = [n for n in names_b if n in session.comp_set]
        plain_b = [n for n in names_b if n not in session.comp_set]
        self._reduce_plain_bucket(session, plain_b)
        if not comp_b:
            return
        pack = session.factor_pack
        lo, hi = pack.segment(comp_b)
        for slot, rank_idx in enumerate(self.roster):
            state = self._per_rank[rank_idx]
            grads = session.per_worker[slot]
            row = session.factor_scratch[slot]
            for name in comp_b:
                factor = state.compress(
                    name, grad_to_matrix(grads[name]), self.step
                )
                off = pack.offsets[name]
                row[off : off + pack.sizes[name]] = factor.reshape(-1)
        self._reduce_pack_segment(session.factor_scratch, lo, hi, pack.total)
        for slot, rank_idx in enumerate(self.roster):
            state = self._per_rank[rank_idx]
            for name in comp_b:
                agg = self._pack_view(
                    session.factor_scratch[0], pack, name, session.f_shapes[name]
                )
                m_hat = state.finalize(name, agg, self.step)
                if slot == 0:
                    session.result[name] = matrix_to_grad(
                        m_hat, session.template[name].shape
                    )


def make_aggregator(
    method: str, group: ProcessGroup, **kwargs
) -> GradientAggregator:
    """Factory by method name: ssgd/signsgd/topk/randomk/qsgd/powersgd/acpsgd."""
    from repro.optim.dgc import DGCTopkAggregator

    registry = {
        "ssgd": AllReduceAggregator,
        "signsgd": SignSGDAggregator,
        "topk": TopkSGDAggregator,
        "randomk": RandomKAggregator,
        "qsgd": QSGDAggregator,
        "terngrad": TernGradAggregator,
        "powersgd": PowerSGDAggregator,
        "acpsgd": ACPSGDAggregator,
        "dgc": DGCTopkAggregator,
    }
    cls = registry.get(method)
    if cls is None:
        raise ValueError(
            f"unknown method {method!r}; available: {', '.join(sorted(registry))}"
        )
    return cls(group, **kwargs)
