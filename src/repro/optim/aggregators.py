"""Distributed gradient aggregation — one strategy per training method.

An aggregator consumes each worker's local gradients for one step and
returns the aggregated gradient every worker applies. All communication
goes through a :class:`~repro.comm.process_group.ProcessGroup`, so the
traffic each method generates is *measured*, not assumed — the Table II
tests compare these measurements to the analytical complexities.

Aggregation semantics are gradient *averaging* across workers (the S-SGD
convention the paper's convergence experiments use).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.comm.process_group import ProcessGroup
from repro.perf.counters import ALLOC_STATS
from repro.compression.acpsgd import ACPSGDState
from repro.compression.powersgd import PowerSGDState
from repro.compression.qsgd import QSGDCompressor
from repro.compression.randomk import RandomKCompressor
from repro.compression.reshaping import grad_to_matrix, matrix_to_grad, should_compress
from repro.compression.signsgd import SignCompressor, majority_vote_aggregate
from repro.compression.topk import TopkCompressor, sparse_aggregate

NamedGrads = Dict[str, np.ndarray]


def _check_worker_grads(per_worker: List[NamedGrads], expected: int) -> None:
    if len(per_worker) != expected:
        raise ValueError(
            f"expected gradients from {expected} workers, got {len(per_worker)}"
            f" (stale roster? call set_roster with the live ranks)"
        )
    names = list(per_worker[0])
    for rank, grads in enumerate(per_worker[1:], start=1):
        if list(grads) != names:
            raise ValueError(f"worker {rank} gradient names differ from worker 0")


def _pack_fused(
    grads: NamedGrads, names: List[str]
) -> Tuple[np.ndarray, bool]:
    """Fused buffer for ``names`` plus whether it is a zero-copy view.

    Arena-backed gradients (:class:`repro.perf.arena.ArenaGrads`) whose
    ``names`` match a contiguous run of the arena layout return the slab
    view directly — tensor fusion as a no-op. Everything else pays the
    legacy concatenation copy (counted in
    :data:`repro.perf.counters.ALLOC_STATS`).
    """
    fused_view = getattr(grads, "fused_view", None)
    if fused_view is not None:
        view = fused_view(names)
        if view is not None:
            return view, True
    ALLOC_STATS.pack_copies += 1
    return np.concatenate([grads[name].reshape(-1) for name in names]), False


def _pack(grads: NamedGrads, names: List[str]) -> np.ndarray:
    """Flatten named gradients into one fused buffer (tensor fusion)."""
    return _pack_fused(grads, names)[0]


def _unpack(
    buffer: np.ndarray,
    template: NamedGrads,
    names: List[str],
    copy: bool = False,
) -> NamedGrads:
    """Split a fused buffer back into named tensors.

    Ownership contract: by default the returned arrays are **read-only
    views** into ``buffer`` — they are valid until the buffer's owner
    reuses it (for arena slabs: the next backward pass) and attempting to
    write through them raises. Callers that need private, mutable tensors
    must pass ``copy=True`` (one allocation per tensor, counted in
    :data:`repro.perf.counters.ALLOC_STATS`).
    """
    out: NamedGrads = {}
    offset = 0
    for name in names:
        size = template[name].size
        view = buffer[offset : offset + size].reshape(template[name].shape)
        if copy:
            ALLOC_STATS.unpack_copies += 1
            out[name] = view.copy()
        else:
            view.flags.writeable = False
            out[name] = view
        offset += size
    return out


class GradientAggregator:
    """Base class: process group, live roster, and per-rank compressor state.

    Per-worker state (EF residuals, carried low-rank factors, momentum
    accumulators) is keyed by *rank id*, not by slot position, so a rank
    keeps its own state across roster changes — ejecting rank 0 must not
    silently hand its residual to rank 1, and a rank that rejoins later is
    readmitted with fresh (warm-started) state via :meth:`admit_rank`.
    """

    method = "base"

    def __init__(self, group: ProcessGroup):
        self.group = group
        self.step = 0
        #: Ranks whose gradients ``aggregate`` receives, in slot order. The
        #: trainer re-syncs it from the group's live roster every step; it
        #: only ever changes under a resilient group (ejection) or an
        #: elastic membership controller (rejoin / scale-up).
        self.roster: List[int] = list(range(group.world_size))
        self._per_rank: Dict[int, object] = {}

    # ------------------------------------------------------------------
    # Per-rank state lifecycle (elastic membership hooks)
    # ------------------------------------------------------------------
    def _make_state(self, rank: int):
        """Fresh compressor state for one rank (None: stateless method)."""
        return None

    def _init_states(self) -> None:
        """Populate per-rank state for the initial roster (subclass init)."""
        for rank in self.roster:
            state = self._make_state(rank)
            if state is not None:
                self._per_rank[rank] = state

    def state_for(self, rank: int):
        """The per-rank compressor state (None for stateless methods)."""
        return self._per_rank.get(rank)

    def set_roster(self, ranks: Sequence[int]) -> None:
        """Follow the group's live roster; create missing state lazily."""
        for rank in ranks:
            if rank not in self._per_rank:
                state = self._make_state(rank)
                if state is not None:
                    self._per_rank[rank] = state
        self.roster = list(ranks)

    def admit_rank(self, rank: int, donor_rank: Optional[int] = None) -> None:
        """Fresh per-rank state for an admission, warm-started from a donor.

        The elastic admission protocol's compressor half: the joiner's
        error-feedback residual starts at zero (its unsent history is
        empty), while state that is *shared* across workers — Power-SGD's
        reused query, ACP-SGD's alternating factors — is copied from the
        donor survivor, the in-process equivalent of broadcasting it. A
        rejoining rank's stale pre-ejection state is replaced, not resumed:
        its residual describes gradients that no longer exist.
        """
        state = self._make_state(rank)
        if state is None:
            return
        donor = self._per_rank.get(donor_rank) if donor_rank is not None else None
        warm_start = getattr(state, "warm_start_from", None)
        if donor is not None and warm_start is not None:
            warm_start(donor)
        self._per_rank[rank] = state

    def aggregate(self, per_worker_grads: List[NamedGrads]) -> NamedGrads:
        """Aggregate one step's gradients; returns the shared global gradient."""
        raise NotImplementedError

    def reset(self) -> None:
        """Drop accumulated compressor state (EF residuals, cached factors).

        The trainer's resilience ladder calls this after a skipped step or a
        checkpoint rollback — a residual contaminated by a non-finite
        gradient would otherwise re-poison every subsequent step. Stateless
        aggregators (uncompressed all-reduce) are a no-op; compressors
        without a ``reset`` (unbiased quantizers carry no state between
        steps) are skipped.
        """
        for state in self._per_rank.values():
            reset = getattr(state, "reset", None)
            if reset is not None:
                reset()


class AllReduceAggregator(GradientAggregator):
    """S-SGD: fused ring all-reduce of the raw gradients (the baseline).

    With arena-backed gradients on a group that supports it, the all-reduce
    runs **in place** on the per-worker slabs: zero packing copies, zero
    per-step fused allocations, and the returned tensors are read-only
    views into the reduced slab. The per-worker gradients are consumed by
    the call (every slab ends up holding the reduced average), matching
    NCCL in-place all-reduce semantics.
    """

    method = "ssgd"

    def aggregate(self, per_worker_grads: List[NamedGrads]) -> NamedGrads:
        _check_worker_grads(per_worker_grads, len(self.roster))
        self.step += 1
        names = list(per_worker_grads[0])
        packed = [_pack_fused(grads, names) for grads in per_worker_grads]
        buffers = [buffer for buffer, _ in packed]
        if (
            getattr(self.group, "supports_inplace", False)
            and all(is_view for _, is_view in packed)
            and len({id(buffer) for buffer in buffers}) == len(buffers)
        ):
            self.group.all_reduce_(buffers, average=True)
            return _unpack(buffers[0], per_worker_grads[0], names)
        reduced = self.group.all_reduce(buffers, average=True)
        return _unpack(reduced[0], per_worker_grads[0], names)


class SignSGDAggregator(GradientAggregator):
    """Sign-SGD with majority vote: all-gather 1-bit signs, vote, rescale.

    Each worker holds its own :class:`SignCompressor` (per-worker EF
    residuals). Gradients are packed into one flat tensor before compression
    ("the gradients are packed together to be compressed and communicated
    for better performance", §III-A).
    """

    method = "signsgd"

    def __init__(
        self,
        group: ProcessGroup,
        use_error_feedback: bool = True,
        validate: bool = False,
    ):
        super().__init__(group)
        self.validate = validate
        self.use_error_feedback = use_error_feedback
        self._init_states()

    def _make_state(self, rank: int) -> SignCompressor:
        return SignCompressor(self.use_error_feedback)

    def aggregate(self, per_worker_grads: List[NamedGrads]) -> NamedGrads:
        _check_worker_grads(per_worker_grads, len(self.roster))
        self.step += 1
        names = list(per_worker_grads[0])
        payloads = []
        for rank, grads in zip(self.roster, per_worker_grads):
            flat = _pack(grads, names)
            payloads.append(self._per_rank[rank].compress("fused", flat))
        # All-gather the packed bits (scales ride along; they are 4 bytes).
        gathered = self.group.all_gather([p.packed_bits for p in payloads])
        del gathered  # numerics below use the payload objects directly
        shape = (payloads[0].num_elements,)
        aggregated = majority_vote_aggregate(payloads, shape, validate=self.validate)
        return _unpack(aggregated, per_worker_grads[0], names)


class TopkSGDAggregator(GradientAggregator):
    """Top-k SGD: all-gather (values, indices), sum sparse, average."""

    method = "topk"

    def __init__(
        self,
        group: ProcessGroup,
        ratio: float = 0.01,
        selection: str = "exact",
        use_error_feedback: bool = True,
        seed: int = 0,
        validate: bool = False,
    ):
        super().__init__(group)
        self.validate = validate
        self.ratio = ratio
        self.selection = selection
        self.use_error_feedback = use_error_feedback
        self.seed = seed
        self._init_states()

    def _make_state(self, rank: int) -> TopkCompressor:
        return TopkCompressor(
            ratio=self.ratio,
            selection=self.selection,
            use_error_feedback=self.use_error_feedback,
            rng=np.random.default_rng(self.seed + rank),
        )

    def aggregate(self, per_worker_grads: List[NamedGrads]) -> NamedGrads:
        _check_worker_grads(per_worker_grads, len(self.roster))
        self.step += 1
        names = list(per_worker_grads[0])
        payloads = []
        for rank, grads in zip(self.roster, per_worker_grads):
            flat = _pack(grads, names)
            payloads.append(self._per_rank[rank].compress("fused", flat))
        # Wire format: interleaved (index, value) pairs per worker.
        wires = [
            np.concatenate([p.indices.astype(np.float64), p.values])
            for p in payloads
        ]
        self.group.all_gather(wires)
        aggregated = sparse_aggregate(
            payloads,
            (payloads[0].num_elements,),
            average=True,
            validate=self.validate,
        )
        return _unpack(aggregated, per_worker_grads[0], names)


class RandomKAggregator(GradientAggregator):
    """Random-k with a shared seed: additive, so values ride an all-reduce."""

    method = "randomk"

    def __init__(
        self,
        group: ProcessGroup,
        ratio: float = 0.01,
        seed: int = 0,
        use_error_feedback: bool = True,
    ):
        super().__init__(group)
        self.ratio = ratio
        self.seed = seed
        self.use_error_feedback = use_error_feedback
        self._init_states()

    def _make_state(self, rank: int) -> RandomKCompressor:
        # Same seed across workers: coordinates agree, payloads align —
        # which also means a joiner derives the shared coordinate set from
        # (seed, step) with no state to synchronize.
        return RandomKCompressor(
            ratio=self.ratio, seed=self.seed,
            use_error_feedback=self.use_error_feedback,
        )

    def aggregate(self, per_worker_grads: List[NamedGrads]) -> NamedGrads:
        _check_worker_grads(per_worker_grads, len(self.roster))
        self.step += 1
        names = list(per_worker_grads[0])
        payloads = []
        for rank, grads in zip(self.roster, per_worker_grads):
            flat = _pack(grads, names)
            payloads.append(self._per_rank[rank].compress("fused", flat, self.step))
        reduced = self.group.all_reduce([p.values for p in payloads], average=True)
        dense = np.zeros(payloads[0].num_elements)
        dense[payloads[0].indices] = reduced[0]
        return _unpack(dense, per_worker_grads[0], names)


class QSGDAggregator(GradientAggregator):
    """QSGD (extension): all-gather quantized payloads, dequantize, average."""

    method = "qsgd"

    def __init__(self, group: ProcessGroup, num_levels: int = 255, seed: int = 0):
        super().__init__(group)
        self.num_levels = num_levels
        self.seed = seed
        self._init_states()

    def _make_state(self, rank: int) -> QSGDCompressor:
        return QSGDCompressor(
            self.num_levels, rng=np.random.default_rng(self.seed + rank)
        )

    def aggregate(self, per_worker_grads: List[NamedGrads]) -> NamedGrads:
        _check_worker_grads(per_worker_grads, len(self.roster))
        self.step += 1
        names = list(per_worker_grads[0])
        payloads = []
        for rank, grads in zip(self.roster, per_worker_grads):
            flat = _pack(grads, names)
            payloads.append(self._per_rank[rank].compress(flat))
        # Wire format: uint8 levels (for s <= 255) + 1 packed sign bit per
        # element, so the measured traffic reflects QSGD's ~9 bits/element.
        wires = []
        for payload in payloads:
            level_bytes = payload.levels.astype(
                np.uint8 if payload.num_levels <= 255 else np.uint32
            ).view(np.uint8)
            sign_bits = np.packbits((payload.signs >= 0).astype(np.uint8))
            wires.append(np.concatenate([level_bytes, sign_bits]))
        self.group.all_gather(wires)
        size = payloads[0].num_elements
        dense = np.zeros(size)
        for payload in payloads:
            dense += QSGDCompressor.decompress(payload, (size,))
        dense /= len(payloads)
        return _unpack(dense, per_worker_grads[0], names)


class TernGradAggregator(GradientAggregator):
    """TernGrad (extension): all-gather ternary payloads, dequantize, average.

    Unbiased, so no error feedback; variance is the convergence cost.
    """

    method = "terngrad"

    def __init__(self, group: ProcessGroup, seed: int = 0,
                 clip_sigma: float = 2.5):
        super().__init__(group)
        self.seed = seed
        self.clip_sigma = clip_sigma
        self._init_states()

    def _make_state(self, rank: int):
        from repro.compression.terngrad import TernGradCompressor

        return TernGradCompressor(
            np.random.default_rng(self.seed + rank), self.clip_sigma
        )

    def aggregate(self, per_worker_grads: List[NamedGrads]) -> NamedGrads:
        from repro.compression.terngrad import TernGradCompressor

        _check_worker_grads(per_worker_grads, len(self.roster))
        self.step += 1
        names = list(per_worker_grads[0])
        payloads = []
        for rank, grads in zip(self.roster, per_worker_grads):
            flat = _pack(grads, names)
            payloads.append(self._per_rank[rank].compress(flat))
        self.group.all_gather([p.packed for p in payloads])
        size = payloads[0].num_elements
        dense = np.zeros(size)
        for payload in payloads:
            dense += TernGradCompressor.decompress(payload, (size,))
        dense /= len(payloads)
        return _unpack(dense, per_worker_grads[0], names)


class _LowRankBase(GradientAggregator):
    """Shared plumbing for Power-SGD / ACP-SGD: compressibility and fallbacks.

    A tensor is low-rank compressed only when it is matrix-shaped *and*
    compression actually shrinks it (``n m > (n + m) r``); everything else
    (biases, norm scales, tiny matrices) rides a fused uncompressed ring
    all-reduce, exactly as in the paper's §IV-C.
    """

    def __init__(self, group: ProcessGroup, rank: int):
        super().__init__(group)
        if rank < 1:
            raise ValueError(f"rank must be >= 1, got {rank}")
        self.rank = rank

    def _is_compressible(self, shape: Tuple[int, ...]) -> bool:
        if not should_compress(shape):
            return False
        n = shape[0]
        m = 1
        for dim in shape[1:]:
            m *= dim
        r = min(self.rank, n, m)
        return n * m > (n + m) * r

    def _split_names(self, grads: NamedGrads) -> Tuple[List[str], List[str]]:
        compressible = [n for n, g in grads.items() if self._is_compressible(g.shape)]
        plain = [n for n in grads if n not in set(compressible)]
        return compressible, plain

    def _allreduce_plain(
        self, per_worker_grads: List[NamedGrads], plain: List[str]
    ) -> NamedGrads:
        if not plain:
            return {}
        buffers = [_pack(grads, plain) for grads in per_worker_grads]
        reduced = self.group.all_reduce(buffers, average=True)
        return _unpack(reduced[0], per_worker_grads[0], plain)


class PowerSGDAggregator(_LowRankBase):
    """Power-SGD: all-reduce P, orthogonalize, all-reduce Q, reconstruct.

    P-factors of all compressible tensors are batched into one fused
    all-reduce, then Q-factors into another — two blocking collectives per
    step (the structure Fig. 4(a) shows).
    """

    method = "powersgd"

    def __init__(
        self,
        group: ProcessGroup,
        rank: int = 4,
        seed: int = 0,
        use_error_feedback: bool = True,
        reuse_query: bool = True,
        validate: bool = False,
    ):
        super().__init__(group, rank)
        self.seed = seed
        self.use_error_feedback = use_error_feedback
        self.reuse_query = reuse_query
        self.validate = validate
        self._init_states()

    def _make_state(self, rank: int) -> PowerSGDState:
        # Same seed everywhere: the initial query matrices must agree.
        return PowerSGDState(
            self.rank, self.seed, self.use_error_feedback,
            self.reuse_query, self.validate,
        )

    def aggregate(self, per_worker_grads: List[NamedGrads]) -> NamedGrads:
        _check_worker_grads(per_worker_grads, len(self.roster))
        self.step += 1
        compressible, plain = self._split_names(per_worker_grads[0])
        result = self._allreduce_plain(per_worker_grads, plain)

        if compressible:
            # Stage 1: local P factors, fused all-reduce.
            local_ps: List[NamedGrads] = []
            for rank_idx, grads in zip(self.roster, per_worker_grads):
                state = self._per_rank[rank_idx]
                ps = {
                    name: state.compute_p(name, grad_to_matrix(grads[name]))
                    for name in compressible
                }
                local_ps.append(ps)
            p_buffers = [_pack(ps, compressible) for ps in local_ps]
            p_reduced = self.group.all_reduce(p_buffers, average=True)
            p_agg = _unpack(p_reduced[0], local_ps[0], compressible)

            # Stage 2: local Q factors, fused all-reduce.
            local_qs: List[NamedGrads] = []
            for rank_idx in self.roster:
                state = self._per_rank[rank_idx]
                qs = {
                    name: state.compute_q(name, p_agg[name]) for name in compressible
                }
                local_qs.append(qs)
            q_buffers = [_pack(qs, compressible) for qs in local_qs]
            q_reduced = self.group.all_reduce(q_buffers, average=True)
            q_agg = _unpack(q_reduced[0], local_qs[0], compressible)

            # Stage 3: reconstruct on every worker (results identical).
            for slot, rank_idx in enumerate(self.roster):
                state = self._per_rank[rank_idx]
                for name in compressible:
                    m_hat = state.reconstruct(name, q_agg[name])
                    if slot == 0:
                        result[name] = matrix_to_grad(
                            m_hat, per_worker_grads[0][name].shape
                        )
        return {name: result[name] for name in per_worker_grads[0]}


class ACPSGDAggregator(_LowRankBase):
    """ACP-SGD: a single fused all-reduce of the alternating factor."""

    method = "acpsgd"

    def __init__(
        self,
        group: ProcessGroup,
        rank: int = 4,
        seed: int = 0,
        use_error_feedback: bool = True,
        reuse_query: bool = True,
        validate: bool = False,
    ):
        super().__init__(group, rank)
        self.seed = seed
        self.use_error_feedback = use_error_feedback
        self.reuse_query = reuse_query
        self.validate = validate
        self._init_states()

    def _make_state(self, rank: int) -> ACPSGDState:
        # Same seed everywhere: the initial P0/Q0 factors must agree.
        return ACPSGDState(
            self.rank, self.seed, self.use_error_feedback,
            self.reuse_query, self.validate,
        )

    def aggregate(self, per_worker_grads: List[NamedGrads]) -> NamedGrads:
        _check_worker_grads(per_worker_grads, len(self.roster))
        self.step += 1
        compressible, plain = self._split_names(per_worker_grads[0])
        result = self._allreduce_plain(per_worker_grads, plain)

        if compressible:
            local_factors: List[NamedGrads] = []
            for rank_idx, grads in zip(self.roster, per_worker_grads):
                state = self._per_rank[rank_idx]
                factors = {
                    name: state.compress(name, grad_to_matrix(grads[name]), self.step)
                    for name in compressible
                }
                local_factors.append(factors)
            buffers = [_pack(factors, compressible) for factors in local_factors]
            reduced = self.group.all_reduce(buffers, average=True)
            agg = _unpack(reduced[0], local_factors[0], compressible)
            for slot, rank_idx in enumerate(self.roster):
                state = self._per_rank[rank_idx]
                for name in compressible:
                    m_hat = state.finalize(name, agg[name], self.step)
                    if slot == 0:
                        result[name] = matrix_to_grad(
                            m_hat, per_worker_grads[0][name].shape
                        )
        return {name: result[name] for name in per_worker_grads[0]}


def make_aggregator(
    method: str, group: ProcessGroup, **kwargs
) -> GradientAggregator:
    """Factory by method name: ssgd/signsgd/topk/randomk/qsgd/powersgd/acpsgd."""
    from repro.optim.dgc import DGCTopkAggregator

    registry = {
        "ssgd": AllReduceAggregator,
        "signsgd": SignSGDAggregator,
        "topk": TopkSGDAggregator,
        "randomk": RandomKAggregator,
        "qsgd": QSGDAggregator,
        "terngrad": TernGradAggregator,
        "powersgd": PowerSGDAggregator,
        "acpsgd": ACPSGDAggregator,
        "dgc": DGCTopkAggregator,
    }
    cls = registry.get(method)
    if cls is None:
        raise ValueError(
            f"unknown method {method!r}; available: {', '.join(sorted(registry))}"
        )
    return cls(group, **kwargs)
