"""SGD with momentum and weight decay."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.nn.module import Module


class SGD:
    """Heavy-ball SGD: ``v <- mu v + g``, ``w <- w - lr (v + wd * w)``.

    Matches the paper's training recipe (momentum 0.9). The gradient comes
    either from the parameters' own ``.grad`` fields (single-worker use) or
    from an explicit aggregated-gradient dict (distributed use).
    """

    def __init__(
        self,
        model: Module,
        lr: float = 0.1,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ):
        if lr <= 0:
            raise ValueError(f"lr must be > 0, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be >= 0, got {weight_decay}")
        self.model = model
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[str, np.ndarray] = {}
        # Materialize names once so step() can look gradients up by name.
        self._named = dict(model.named_parameters())

    def step(self, grads: Optional[Dict[str, np.ndarray]] = None) -> None:
        """Apply one update.

        Args:
            grads: aggregated gradients by parameter name; when omitted, the
                parameters' own ``.grad`` fields are used.
        """
        for name, param in self._named.items():
            if grads is not None:
                grad = grads.get(name)
            else:
                grad = param.grad
            if grad is None:
                continue
            if grad.shape != param.data.shape:
                raise ValueError(
                    f"gradient shape {grad.shape} != parameter shape "
                    f"{param.data.shape} for {name!r}"
                )
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            velocity = self._velocity.get(name)
            if self.momentum and velocity is not None:
                velocity = self.momentum * velocity + grad
            else:
                velocity = grad.astype(np.float64, copy=True)
            self._velocity[name] = velocity
            param.data = param.data - self.lr * velocity

    def zero_grad(self) -> None:
        """Clear gradients on the wrapped model."""
        self.model.zero_grad()
