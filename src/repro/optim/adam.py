"""Adam optimizer (Kingma & Ba, 2015).

BERT-family models are trained with Adam in practice (the paper's
communication study uses SGD throughout for comparability; 1-bit Adam [5]
is cited as the quantized variant). Provided so the transformer examples
can use the idiomatic optimizer; interface-compatible with
:class:`repro.optim.sgd.SGD` (``step(grads)`` / ``zero_grad``).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.nn.module import Module


class Adam:
    """Adam with bias correction and optional decoupled weight decay."""

    def __init__(
        self,
        model: Module,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        if lr <= 0:
            raise ValueError(f"lr must be > 0, got {lr}")
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {beta1}, {beta2}")
        if eps <= 0:
            raise ValueError(f"eps must be > 0, got {eps}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be >= 0, got {weight_decay}")
        self.model = model
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m: Dict[str, np.ndarray] = {}
        self._v: Dict[str, np.ndarray] = {}
        self._named = dict(model.named_parameters())

    def step(self, grads: Optional[Dict[str, np.ndarray]] = None) -> None:
        """Apply one Adam update from ``grads`` or the params' own ``.grad``."""
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1**t
        bias2 = 1.0 - self.beta2**t
        for name, param in self._named.items():
            grad = grads.get(name) if grads is not None else param.grad
            if grad is None:
                continue
            if grad.shape != param.data.shape:
                raise ValueError(
                    f"gradient shape {grad.shape} != parameter shape "
                    f"{param.data.shape} for {name!r}"
                )
            m = self._m.get(name)
            v = self._v.get(name)
            m = grad * (1 - self.beta1) if m is None else \
                self.beta1 * m + (1 - self.beta1) * grad
            v = grad**2 * (1 - self.beta2) if v is None else \
                self.beta2 * v + (1 - self.beta2) * grad**2
            self._m[name] = m
            self._v[name] = v
            update = (m / bias1) / (np.sqrt(v / bias2) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * param.data
            param.data = param.data - self.lr * update

    def zero_grad(self) -> None:
        """Clear gradients on the wrapped model."""
        self.model.zero_grad()
