"""Learning-rate schedules.

The paper's convergence recipe (§V-A): base LR 0.1 with a gradual warmup
over the first 5 epochs and step decays (x0.1) at epochs 150 and 220 of
300 — i.e. Goyal et al.'s large-minibatch schedule. Expressed here in
fractional epochs so scaled-down runs keep the same shape.
"""

from __future__ import annotations

from typing import Sequence

from repro.optim.sgd import SGD


class WarmupMultiStepSchedule:
    """Gradual warmup then multi-step decay.

    Args:
        optimizer: the SGD instance whose ``lr`` is driven.
        base_lr: LR reached at the end of warmup.
        total_epochs: schedule length.
        warmup_epochs: linear ramp from ``base_lr / warmup_steps`` to
            ``base_lr`` (0 disables warmup).
        milestones: epochs at which LR multiplies by ``gamma``.
        gamma: decay factor (paper: 0.1).
    """

    def __init__(
        self,
        optimizer: SGD,
        base_lr: float = 0.1,
        total_epochs: int = 300,
        warmup_epochs: float = 5.0,
        milestones: Sequence[float] = (150.0, 220.0),
        gamma: float = 0.1,
    ):
        if base_lr <= 0:
            raise ValueError(f"base_lr must be > 0, got {base_lr}")
        if warmup_epochs < 0 or warmup_epochs > total_epochs:
            raise ValueError(
                f"warmup_epochs must be in [0, {total_epochs}], got {warmup_epochs}"
            )
        if sorted(milestones) != list(milestones):
            raise ValueError(f"milestones must be sorted, got {milestones}")
        self.optimizer = optimizer
        self.base_lr = base_lr
        self.total_epochs = total_epochs
        self.warmup_epochs = warmup_epochs
        self.milestones = tuple(milestones)
        self.gamma = gamma

    def lr_at(self, epoch: float) -> float:
        """The LR in effect at (fractional) ``epoch``."""
        if epoch < 0:
            raise ValueError(f"epoch must be >= 0, got {epoch}")
        if self.warmup_epochs > 0 and epoch < self.warmup_epochs:
            # Linear ramp; never exactly zero at epoch 0.
            fraction = (epoch + 1e-9) / self.warmup_epochs
            return self.base_lr * max(fraction, 1.0 / max(1.0, self.warmup_epochs * 100))
        lr = self.base_lr
        for milestone in self.milestones:
            if epoch >= milestone:
                lr *= self.gamma
        return lr

    def set_epoch(self, epoch: float) -> float:
        """Update the optimizer's LR for ``epoch``; returns the new LR."""
        lr = self.lr_at(epoch)
        self.optimizer.lr = lr
        return lr
