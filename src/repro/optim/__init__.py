"""Optimizers and distributed gradient aggregation.

- :mod:`repro.optim.sgd` — SGD with momentum (the base optimizer every
  method wraps, as in the paper's §IV-C prototype).
- :mod:`repro.optim.lr_scheduler` — gradual warmup + multi-step decay, the
  paper's Fig. 6 schedule.
- :mod:`repro.optim.aggregators` — one gradient aggregation strategy per
  method: S-SGD (ring all-reduce), Sign-SGD (all-gather + majority vote),
  Top-k SGD (all-gather + sparse sum), Random-k (all-reduce over shared
  coordinates), QSGD (all-gather), Power-SGD (two all-reduces with an
  interleaved orthogonalization), and ACP-SGD (one all-reduce of the
  alternating factor).
"""

from repro.optim.adam import Adam
from repro.optim.sgd import SGD
from repro.optim.lr_scheduler import WarmupMultiStepSchedule
from repro.optim.aggregators import (
    ACPSGDAggregator,
    AllReduceAggregator,
    GradientAggregator,
    PowerSGDAggregator,
    QSGDAggregator,
    RandomKAggregator,
    SignSGDAggregator,
    TernGradAggregator,
    TopkSGDAggregator,
    make_aggregator,
)
from repro.optim.dgc import DGCTopkAggregator

__all__ = [
    "Adam",
    "SGD",
    "WarmupMultiStepSchedule",
    "GradientAggregator",
    "AllReduceAggregator",
    "SignSGDAggregator",
    "TopkSGDAggregator",
    "RandomKAggregator",
    "QSGDAggregator",
    "TernGradAggregator",
    "PowerSGDAggregator",
    "ACPSGDAggregator",
    "DGCTopkAggregator",
    "make_aggregator",
]
