"""Deep Gradient Compression-style Top-k aggregation (extension).

DGC (Lin et al., ICLR 2018 — the paper's reference [19]) improves plain
Top-k + error feedback with *momentum correction*: each worker accumulates
a local momentum ``u`` and a velocity ``v``; the Top-k selection happens on
``v``, and both accumulators are cleared at the transmitted coordinates so
stale momentum does not double-count. Aggregation stays all-gather + sparse
sum like Top-k SGD.

With momentum correction, the *global* optimizer should not apply momentum
again — pair this aggregator with SGD(momentum=0).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.comm.process_group import ProcessGroup
from repro.compression.topk import SparsePayload, exact_topk_mask, sparse_aggregate
from repro.optim.aggregators import GradientAggregator, NamedGrads, _pack, _unpack


class _WorkerDGCState:
    """One worker's momentum/velocity accumulators."""

    def __init__(self, momentum: float):
        self.momentum = momentum
        self.u: Dict[str, np.ndarray] = {}
        self.v: Dict[str, np.ndarray] = {}

    def accumulate(self, name: str, grad: np.ndarray) -> np.ndarray:
        """Update u, v; returns the velocity to sparsify."""
        u_prev = self.u.get(name)
        u = grad if u_prev is None else self.momentum * u_prev + grad
        v_prev = self.v.get(name)
        v = u if v_prev is None else v_prev + u
        self.u[name] = u
        self.v[name] = v
        return v

    def clear_transmitted(self, name: str, indices: np.ndarray) -> None:
        """Zero the accumulators at the coordinates that were sent."""
        self.u[name][indices] = 0.0
        self.v[name][indices] = 0.0

    def reset(self) -> None:
        """Drop the accumulators (rollback / contaminated-state recovery)."""
        self.u.clear()
        self.v.clear()


class DGCTopkAggregator(GradientAggregator):
    """Top-k with DGC momentum correction.

    Args:
        group: process group.
        ratio: keep-fraction per step.
        momentum: local momentum factor (DGC default 0.9).
        min_k: floor on selected elements.
    """

    method = "dgc"

    def __init__(
        self,
        group: ProcessGroup,
        ratio: float = 0.01,
        momentum: float = 0.9,
        min_k: int = 1,
    ):
        super().__init__(group)
        if not 0.0 < ratio <= 1.0:
            raise ValueError(f"ratio must be in (0, 1], got {ratio}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.ratio = ratio
        self.momentum = momentum
        self.min_k = min_k
        self._init_states()

    def _make_state(self, rank: int) -> _WorkerDGCState:
        return _WorkerDGCState(self.momentum)

    def aggregate(self, per_worker_grads: List[NamedGrads]) -> NamedGrads:
        if len(per_worker_grads) != len(self.roster):
            raise ValueError(
                f"expected gradients from {len(self.roster)} workers, "
                f"got {len(per_worker_grads)}"
                f" (stale roster? call set_roster with the live ranks)"
            )
        self.step += 1
        names = list(per_worker_grads[0])
        payloads = []
        for rank, grads in zip(self.roster, per_worker_grads):
            state = self._per_rank[rank]
            flat = _pack(grads, names)
            velocity = state.accumulate("fused", flat)
            k = max(self.min_k, int(round(self.ratio * velocity.size)))
            idx = exact_topk_mask(velocity, k)
            payloads.append(
                SparsePayload(idx, velocity[idx].copy(), velocity.size)
            )
            state.clear_transmitted("fused", idx)
        wires = [
            np.concatenate([p.indices.astype(np.float64), p.values])
            for p in payloads
        ]
        self.group.all_gather(wires)
        dense = sparse_aggregate(payloads, (payloads[0].num_elements,), average=True)
        return _unpack(dense, per_worker_grads[0], names)
