"""Persistent process workers over shared-memory arena slabs.

The thread backend (:class:`~repro.perf.replicas.ReplicaSet`) overlaps
worker backprop, but the GIL caps it: numpy kernels release the lock,
the Python layer code between them does not, so compute-heavy steps
serialize on one core. This module removes the GIL from the picture
while keeping the repo's bit-identity contract:

- every worker rank gets a **persistent child process** holding its own
  model replica, loss head, data shard cache, and per-rank sampling
  stream (derived from ``(seed, rank)`` exactly as the sequential
  trainer derives it, so the stream a rank consumes is identical in
  every backend);
- gradients never cross a pipe: each child binds its replica's
  ``Parameter.grad`` slots into the worker's
  :class:`~repro.perf.arena.GradientArena` slab, which lives in a
  ``multiprocessing.shared_memory`` segment — backprop writes the
  fused buffer in place, and the parent runs the existing in-place
  ring schedule over views of the very same pages;
- weights travel the other way through one shared **broadcast buffer**:
  the parent copies the master parameters in before dispatching a step
  (one memcpy — the in-process analogue of the parameter broadcast),
  and every child's replica parameters are bound views into it;
- the two pieces of *state* a worker pass produces besides gradients —
  BatchNorm batch statistics and the loss scalar — are tiny, and ship
  back over the pipe to be **replayed in rank order** on the master
  (the same rank-order replay the thread backend uses), so running
  buffers stay bit-identical to a sequential pass;
- per-child :data:`~repro.perf.counters.ALLOC_STATS` deltas ride the
  same reply and are merged into the parent's counters, keeping the
  zero-copy assertions truthful in process mode.

Elastic membership composes: a join spawns a fresh child pinned to the
new rank at the admission boundary (never on the hot path), an ejected
rank's child simply idles — its rng stream freezes exactly like the
parent-side ``_rngs`` entry does — and a rejoin resumes it. Slabs
created by ``ensure_slots`` growth are discovered lazily: every task
message names the slot's segment, so children attach on first use.

Spawn-vs-fork: ``fork`` (default where available) inherits the initial
payload for free; ``spawn`` pickles it once at pool construction —
model template, dataset, seeds — which is why the payload contains no
live OS resources. Both start methods produce bit-identical
trajectories; see ``docs/performance.md`` for the trade-offs.

Supervision: children die and hang. The pool *detects* — pipe EOF or a
dead ``exitcode`` raises :class:`~repro.faults.WorkerDeadError`, a
blown ``step_timeout`` with the child still alive raises
:class:`~repro.faults.WorkerTimeoutError` — and offers the recovery
verbs (:meth:`ProcessWorkerPool.discard`, automatic rng-stream replay
on respawn); *policy* lives in :mod:`repro.faults.supervisor` and the
trainer. The pool records every completed task's ``(shard_index,
shard_world)`` per rank, so a respawned child fast-forwards the rank's
sampling stream through exactly the draws the dead child consumed —
the invariant that keeps crash recovery bit-identical. Scheduled
:class:`~repro.faults.WorkerFault` injections are *self-applied* by
children (before any batch draw) from the pool's ``fault_plan``, so
supervision is testable deterministically.
"""

from __future__ import annotations

import copy
import os
import signal
import time
import traceback
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

import multiprocessing
import numpy as np

from repro.faults.plan import FaultPlan, WorkerFault
from repro.faults.supervisor import (
    WorkerDeadError,
    WorkerError,
    WorkerTimeoutError,
)
from repro.nn.loss import CrossEntropyLoss
from repro.nn.module import Module
from repro.nn.norm import BatchNorm2d
from repro.perf import shm
from repro.perf.arena import ArenaLayout, GradientArena
from repro.perf.counters import ALLOC_STATS
from repro.perf.replicas import ReplicaSet, iter_modules

if TYPE_CHECKING:  # import cycle: repro.train imports the trainer,
    # which imports this module — the dataset type is annotation-only.
    from repro.train.datasets import ArrayDataset


@dataclass(frozen=True)
class WorkerStepTask:
    """One worker's assignment for one step.

    Attributes:
        rank: the rank id whose pass this is (selects the child, the
            sampling stream, and — without elastic re-sharding — the
            data shard).
        slot: the worker's position in this step's live roster; selects
            the arena slab the gradients land in.
        slab_segment: OS name of slot's shared-memory slab segment.
        shard_index/shard_world: arguments of ``train_data.shard`` for
            this rank this step. The parent computes them with the same
            rules the sequential path uses, so shards stay pairwise
            disjoint and jointly exhaustive under churn.
        step: 0-based trainer step index — the key scheduled
            :class:`~repro.faults.WorkerFault` injections fire on.
        suppress_fault: set on a supervised retry so the respawned child
            does not re-apply the fault that killed its predecessor
            (worker faults are one-shot, like a transient crash).
    """

    rank: int
    slot: int
    slab_segment: str
    shard_index: int
    shard_world: int
    step: int = 0
    suppress_fault: bool = False


@dataclass
class WorkerStepResult:
    """What comes back over the pipe: everything except the gradients."""

    loss: float
    batch_stats: List[List[Tuple[np.ndarray, np.ndarray]]]
    alloc_stats: Dict[str, int]


def _scrubbed_template(model: Module) -> Module:
    """A structural deep copy safe to ship to children.

    The master's parameters may carry gradient-ready hooks (the bucketed
    reducer's bound methods — which reach the aggregator, the process
    group, and possibly shared-memory segments) and arena grad slots.
    Deep-copying those would at best duplicate half the trainer and at
    worst hit an unpicklable ``memoryview``, so they are detached from
    the *original* for the duration of the copy and restored afterwards.
    Hook lists are mutated in place (never reassigned) because issued
    :class:`~repro.nn.parameter.RemovableHandle` objects alias them.
    """
    saved = []
    for _, param in model.named_parameters():
        saved.append(
            (param, list(param._hooks), param._grad_slot,
             param._grad, param._slot_written)
        )
        param._hooks.clear()
        param._grad_slot = None
        param._grad = None
        param._slot_written = False
    try:
        template = copy.deepcopy(model)
    finally:
        for param, hooks, slot, grad, written in saved:
            param._hooks.extend(hooks)
            param._grad_slot = slot
            param._grad = grad
            param._slot_written = written
    template.train()
    return template


def _carve_views(
    buffer: np.ndarray, layout
) -> Dict[str, np.ndarray]:
    """Named parameter-shaped views over one fused buffer."""
    views: Dict[str, np.ndarray] = {}
    for name in layout.names:
        lo = layout.offsets[name]
        hi = lo + layout.size_of(name)
        views[name] = buffer[lo:hi].reshape(layout.shapes[name])
    return views


def _self_destruct() -> None:
    """Die the hardest available death (no handlers, no cleanup)."""
    if hasattr(signal, "SIGKILL"):
        os.kill(os.getpid(), signal.SIGKILL)
    os._exit(1)  # non-POSIX fallback: still skips every exit handler


def _worker_main(conn, payload: dict, init_crash: bool = False) -> None:
    """Child entry point: serve backprop tasks until told to close.

    Runs one task at a time; all parallelism comes from the parent
    dispatching to several children at once. Never unlinks a segment —
    attach-only processes close, owners unlink.

    ``init_crash`` makes the child SIGKILL itself *after* attaching the
    broadcast buffer but before reporting ready — the worst moment to
    die during admission (a segment is attached, nothing is cleaned up),
    which is exactly what the crash-safety tests want to exercise.
    """
    model: Module = payload["model"]
    train_data: ArrayDataset = payload["train_data"]
    seed: int = payload["seed"]
    batch_size: int = payload["batch_size"]
    accumulation_steps: int = payload["accumulation_steps"]
    fault_plan: Optional[FaultPlan] = payload.get("fault_plan")
    layout = ArenaLayout(
        [(name, param.shape) for name, param in model.named_parameters()]
    )

    weights_segment = shm.attach_segment(payload["weights_segment"])
    if init_crash:
        _self_destruct()
    weights = np.ndarray(
        (layout.total_elements,), dtype=np.float64, buffer=weights_segment.buf
    )
    for name, param in model.named_parameters():
        lo = layout.offsets[name]
        hi = lo + layout.size_of(name)
        param.data = weights[lo:hi].reshape(layout.shapes[name])

    loss_fn = CrossEntropyLoss()
    bns = [m for m in iter_modules(model) if isinstance(m, BatchNorm2d)]
    # joiner_rng(seed, rank) equals spawn_rngs(seed, world)[rank] for any
    # world that contains rank, so one rule covers initial ranks and
    # late joiners alike. Imported here: elastic pulls in the trainer
    # stack, which children otherwise never need.
    from repro.elastic.membership import joiner_rng

    rngs: Dict[int, np.random.Generator] = {}
    shards: Dict[Tuple[int, int], ArrayDataset] = {}
    slabs: Dict[str, Tuple[object, np.ndarray, Dict[str, np.ndarray]]] = {}

    def apply_worker_fault(task: WorkerStepTask) -> None:
        """Self-apply the plan's scheduled fault for this (rank, step).

        Fires *before any batch draw*, so a crashed task consumes nothing
        from the rank's sampling stream — the property that lets a
        respawned child replay the completed-task history and land
        exactly where the fault-free run would be.
        """
        if fault_plan is None or task.suppress_fault:
            return
        fault: Optional[WorkerFault] = fault_plan.worker_fault_at(
            task.rank, task.step
        )
        if fault is None:
            return
        if fault.kind == "crash":
            _self_destruct()
        elif fault.kind == "hang":
            while True:  # only the parent's step timeout ends this
                time.sleep(0.05)
        elif fault.kind == "slow":
            time.sleep(fault.delay_s)

    def fast_forward(rank: int, history: List[Tuple[int, int]]) -> None:
        """Replay a dead predecessor's completed batch draws.

        Consumes exactly the draws the previous child for ``rank`` made —
        same shard geometry, same order, same bounds — so the stream
        state after replay is bit-identical to the stream the parent
        would hold in sequential mode. No forward pass runs: only the
        rng advances.
        """
        rng = rngs.get(rank)
        if rng is None:
            rng = rngs[rank] = joiner_rng(seed, rank)
        for shard_index, shard_world in history:
            shard_key = (shard_index, shard_world)
            shard = shards.get(shard_key)
            if shard is None:
                shard = shards[shard_key] = train_data.shard(*shard_key)
            for _ in range(accumulation_steps):
                shard.batch(rng, batch_size)

    def run_task(task: WorkerStepTask) -> WorkerStepResult:
        apply_worker_fault(task)
        rng = rngs.get(task.rank)
        if rng is None:
            rng = rngs[task.rank] = joiner_rng(seed, task.rank)
        shard_key = (task.shard_index, task.shard_world)
        shard = shards.get(shard_key)
        if shard is None:
            shard = shards[shard_key] = train_data.shard(*shard_key)
        cached = slabs.get(task.slab_segment)
        if cached is None:
            segment = shm.attach_segment(task.slab_segment)
            slab = np.ndarray(
                (layout.total_elements,), dtype=np.float64, buffer=segment.buf
            )
            cached = slabs[task.slab_segment] = (
                segment, slab, _carve_views(slab, layout)
            )
        _, slab, views = cached
        for name, param in model.named_parameters():
            param.attach_grad_slot(views[name])
        for bn in bns:
            bn.stat_recorder = []
        ALLOC_STATS.reset()
        model.zero_grad()
        losses = []
        for _ in range(accumulation_steps):
            inputs, labels = shard.batch(rng, batch_size)
            logits = model(inputs)
            losses.append(loss_fn(logits, labels))
            model.backward(loss_fn.backward())
        for name, param in model.named_parameters():
            if param.grad is None:
                raise RuntimeError(f"parameter {name!r} received no gradient")
        if accumulation_steps > 1:
            # True division in place, matching GradientArena.divide_.
            slab /= accumulation_steps
        batch_stats = [list(bn.stat_recorder or []) for bn in bns]
        for bn in bns:
            bn.stat_recorder = None
        return WorkerStepResult(
            loss=float(np.mean(losses)),
            batch_stats=batch_stats,
            alloc_stats=ALLOC_STATS.snapshot(),
        )

    conn.send(("ready",))
    while True:
        message = conn.recv()
        kind = message[0]
        if kind == "step":
            try:
                result = run_task(message[1])
                conn.send(("ok", result))
            except BaseException as exc:  # ship the failure, keep serving
                conn.send(("error", repr(exc), traceback.format_exc()))
        elif kind == "replay":
            fast_forward(message[1], message[2])
            conn.send(("replayed",))
        elif kind == "close":
            break
        else:
            conn.send(("error", f"unknown message kind {kind!r}", ""))
    for name, param in model.named_parameters():
        param.detach_grad_slot()
        param.data = np.array(param.data)  # drop the weights-view mapping
    for segment, slab, views in list(slabs.values()):
        del slab, views
        shm.release_segment(segment, unlink=False)
    slabs.clear()
    del weights
    shm.release_segment(weights_segment, unlink=False)
    conn.send(("closed",))
    conn.close()


class ProcessWorkerPool:
    """One persistent child process per worker rank, slabs shared.

    Args:
        model: the master model (stays in the parent; children receive a
            scrubbed structural copy and read weights through the shared
            broadcast buffer).
        arena: a ``backing="shared"`` :class:`GradientArena`; children
            write their gradients straight into its slabs.
        train_data: the full training set; children derive shards
            locally (deterministic strided slicing), so elastic
            re-sharding costs one tuple per task, not a data transfer.
        seed: the trainer's sampling seed.
        batch_size / accumulation_steps: the trainer's per-worker batch
            settings (fixed for the pool's lifetime, like the trainer's).
        start_method: ``"fork"``, ``"spawn"``, or ``None`` to pick fork
            when the platform offers it. Spawn is slower to start but
            works everywhere; trajectories are bit-identical either way.
        step_timeout: optional per-step ceiling in seconds on waiting
            for any one child's reply; a dead child then raises
            :class:`~repro.faults.WorkerDeadError` and a deadlocked one
            :class:`~repro.faults.WorkerTimeoutError` instead of hanging
            the training loop forever.
        fault_plan: optional :class:`~repro.faults.FaultPlan` whose
            ``worker_faults`` the children self-apply at the scheduled
            (rank, step) cells — deterministic chaos for the supervision
            tests.
    """

    def __init__(
        self,
        model: Module,
        arena: GradientArena,
        train_data: ArrayDataset,
        *,
        seed: int,
        batch_size: int,
        accumulation_steps: int = 1,
        start_method: Optional[str] = None,
        step_timeout: Optional[float] = None,
        fault_plan: Optional[FaultPlan] = None,
    ):
        # ``close()`` must be safe on a partially constructed pool, so the
        # attributes it reads exist before anything that can raise or leak.
        self._children: Dict[int, Tuple[object, object]] = {}
        self._closed = False
        self._weights_segment = None
        if not arena.is_shared:
            raise ValueError(
                "ProcessWorkerPool requires a shared-memory arena "
                "(GradientArena(..., backing='shared'))"
            )
        # Same structural screen as the thread backend: Dropout draws one
        # sequential mask stream that per-worker replicas cannot replay.
        ReplicaSet(model, 1)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self.start_method = start_method
        self.step_timeout = step_timeout
        self._model = model
        self._arena = arena
        self._master_bns = [
            m for m in iter_modules(model) if isinstance(m, BatchNorm2d)
        ]
        layout = arena.layout
        self._layout = layout
        self._weights_segment = shm.create_segment(
            max(1, layout.total_elements) * 8
        )
        try:
            self._weights = np.ndarray(
                (layout.total_elements,),
                dtype=np.float64,
                buffer=self._weights_segment.buf,
            )
            self._weight_views = _carve_views(self._weights, layout)
            self._payload = {
                "model": _scrubbed_template(model),
                "train_data": train_data,
                "seed": seed,
                "batch_size": batch_size,
                "accumulation_steps": accumulation_steps,
                "weights_segment": self._weights_segment.name,
                "fault_plan": fault_plan,
            }
        except BaseException:
            # Construction failed after the segment was created: release
            # it here, because no caller ever gets a handle to close().
            self.close()
            raise
        #: Completed-task history per rank: the (shard_index, shard_world)
        #: geometry of every batch-drawing task the rank's child finished.
        #: A respawned child replays it to fast-forward the rank's
        #: sampling stream to exactly where the dead child left it.
        self._history: Dict[int, List[Tuple[int, int]]] = {}
        #: Ranks whose next ``_spawn`` should die mid-seed (test/chaos
        #: seam for child-crash-during-admission coverage).
        self._spawn_crashes: Dict[int, int] = {}
        #: Wall-clock seconds of the most recent weights broadcast and of
        #: the most recent dispatch->collect window (benchmark probes).
        self.last_broadcast_s = 0.0
        self.last_workers_s = 0.0

    # ------------------------------------------------------------------
    # Child lifecycle
    # ------------------------------------------------------------------
    def ensure_ranks(self, ranks: List[int]) -> None:
        """Spawn children for any ranks not yet served (admission path)."""
        for rank in ranks:
            if rank not in self._children:
                self._spawn(rank)

    def _spawn(self, rank: int) -> None:
        init_crash = self._spawn_crashes.get(rank, 0) > 0
        if init_crash:
            self._spawn_crashes[rank] -= 1
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self._payload, init_crash),
            name=f"repro-worker-{rank}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        try:
            reply = self._recv(parent_conn, rank, process, phase="spawn")
            if reply != ("ready",):
                raise WorkerError(
                    rank,
                    f"worker process for rank {rank} failed to initialize: "
                    f"{reply!r}",
                )
            history = self._history.get(rank)
            if history:
                # A predecessor served this rank: fast-forward the fresh
                # child's sampling stream through the completed draws.
                parent_conn.send(("replay", rank, list(history)))
                reply = self._recv(parent_conn, rank, process, phase="replay")
                if reply != ("replayed",):
                    raise WorkerError(
                        rank,
                        f"worker process for rank {rank} failed to replay "
                        f"its stream history: {reply!r}",
                    )
        except WorkerError:
            # Never leave a half-initialized child behind: close the pipe
            # and reap (or kill) the process before propagating.
            try:
                parent_conn.close()
            except OSError:
                pass
            if process.is_alive():
                process.kill()
            process.join(5.0)
            raise
        self._children[rank] = (parent_conn, process)

    def _recv(self, conn, rank: int, process=None, phase: str = "step"):
        if process is None and rank in self._children:
            process = self._children[rank][1]
        if self.step_timeout is not None and not conn.poll(self.step_timeout):
            if process is not None and not process.is_alive():
                process.join(1.0)
                raise WorkerDeadError(rank, process.exitcode, phase=phase)
            raise WorkerTimeoutError(rank, self.step_timeout)
        try:
            return conn.recv()
        except (EOFError, OSError):
            exitcode = None
            if process is not None:
                process.join(5.0)
                exitcode = process.exitcode
            raise WorkerDeadError(rank, exitcode, phase=phase) from None

    def discard(self, rank: int, timeout: float = 5.0) -> None:
        """Forget ``rank``'s child: kill it if alive, reap it, close the
        pipe (idempotent — discarding an unknown rank is a no-op).

        The crash-safe half of supervision: a SIGKILLed child never ran
        its cleanup, but it only ever *attached* segments — the parent
        owns them through the :mod:`repro.perf.shm` registry, so reaping
        the process and dropping the pipe reclaims everything the child
        held (its mappings die with it; the slab stays valid under the
        parent's ownership). The rank's task history is kept so a future
        respawn replays the sampling stream.
        """
        entry = self._children.pop(rank, None)
        if entry is None:
            return
        conn, process = entry
        try:
            conn.close()
        except OSError:
            pass
        if process.is_alive():
            process.kill()  # SIGKILL: a *hung* child won't honor terminate
        process.join(timeout)

    def respawn(self, rank: int) -> None:
        """Replace ``rank``'s child with a fresh one, stream fast-forwarded."""
        self.discard(rank)
        self._spawn(rank)

    def inject_spawn_crash(self, rank: int, times: int = 1) -> None:
        """Arm ``times`` mid-seed deaths for ``rank``'s next spawn(s).

        Deterministic injection seam for the child-crashes-during-
        admission scenario: the next ``_spawn`` for ``rank`` dies by
        SIGKILL after attaching the broadcast buffer, before reporting
        ready.
        """
        if times < 1:
            raise ValueError(f"times must be >= 1, got {times}")
        self._spawn_crashes[rank] = self._spawn_crashes.get(rank, 0) + times

    @property
    def worker_ranks(self) -> List[int]:
        """Ranks with a live child, in spawn order."""
        return list(self._children)

    # ------------------------------------------------------------------
    # Step protocol
    # ------------------------------------------------------------------
    def broadcast_weights(self, model: Module) -> None:
        """Copy the master parameters into the shared broadcast buffer.

        One full-model memcpy per step — the process backend's only
        per-step copy, standing in for DDP's implicit weight coherence.
        Values are copied bitwise, so child forwards see exactly the
        arrays the sequential path would use.
        """
        start = time.perf_counter()
        for name, param in model.named_parameters():
            np.copyto(self._weight_views[name], param.data)
        self.last_broadcast_s = time.perf_counter() - start

    def run_step(
        self, tasks: List[WorkerStepTask], capture_errors: bool = False
    ) -> List[Union[WorkerStepResult, WorkerError]]:
        """Dispatch one step's tasks and collect replies in slot order.

        All tasks are sent before any reply is read, so children execute
        concurrently. A worker failure (death, hang past the step
        timeout) raises the typed :class:`~repro.faults.WorkerError` it
        classified to — or, with ``capture_errors=True`` (the supervised
        path), lands *as that error object* in the result list so every
        worker's outcome is collected before any recovery decision.
        Task-level exceptions inside a healthy child always raise, with
        the child's traceback: they are bugs, not process faults.
        """
        if self._closed:
            raise RuntimeError("run_step called on a closed pool")
        start = time.perf_counter()
        send_failures: Dict[int, WorkerError] = {}
        for task in tasks:
            conn, process = self._children[task.rank]
            try:
                conn.send(("step", task))
            except (BrokenPipeError, OSError):
                process.join(1.0)
                error = WorkerDeadError(task.rank, process.exitcode)
                if not capture_errors:
                    raise error from None
                send_failures[task.rank] = error
        results: List[Union[WorkerStepResult, WorkerError]] = []
        for task in tasks:
            if task.rank in send_failures:
                results.append(send_failures[task.rank])
                continue
            conn, _ = self._children[task.rank]
            try:
                reply = self._recv(conn, task.rank)
            except WorkerError as error:
                if not capture_errors:
                    raise
                results.append(error)
                continue
            if reply[0] == "error":
                raise RuntimeError(
                    f"worker process for rank {task.rank} failed: "
                    f"{reply[1]}\n{reply[2]}"
                )
            results.append(reply[1])
            self._history.setdefault(task.rank, []).append(
                (task.shard_index, task.shard_world)
            )
        self.last_workers_s = time.perf_counter() - start
        return results

    def replay_batch_stats(self, results: List[WorkerStepResult]) -> None:
        """Apply shipped BatchNorm statistics to the master in rank order.

        Per layer, slot 0's batches land first, then slot 1's, … — the
        exact update sequence the sequential loop would have produced
        (identical to :meth:`repro.perf.replicas.ReplicaSet.end_round`).
        """
        for layer_index, master_bn in enumerate(self._master_bns):
            for result in results:
                if not isinstance(result, WorkerStepResult):
                    continue  # supervised step: a failed worker computed nothing
                for mean, var in result.batch_stats[layer_index]:
                    master_bn.apply_batch_stats(mean, var)

    def merge_alloc_stats(self, results: List[WorkerStepResult]) -> None:
        """Fold per-child allocation counters into the parent's.

        Children reset their process-local :data:`ALLOC_STATS` per task
        and ship the delta, so the parent's counters — the ones the perf
        assertions and the benchmark read — stay truthful about the
        whole step no matter which process did the allocating.
        """
        for result in results:
            if isinstance(result, WorkerStepResult):
                ALLOC_STATS.merge(result.alloc_stats)

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def close(self, timeout: float = 5.0) -> None:
        """Stop every child and release the broadcast buffer.

        Idempotent and crash-safe by contract: a double close is a no-op,
        a close after a child was SIGKILLed (broken pipes, zombie
        processes) still reaps everything, and a close on a partially
        constructed pool (construction failed mid-``__init__``) releases
        whatever actually exists without raising. The broadcast segment
        is the pool's only owned shm resource; it is released exactly
        once through the :mod:`repro.perf.shm` ownership registry.
        """
        if getattr(self, "_closed", True) and getattr(
            self, "_weights_segment", None
        ) is None:
            return
        self._closed = True
        for rank, (conn, process) in list(self._children.items()):
            try:
                conn.send(("close",))
            except (BrokenPipeError, OSError):
                pass  # already dead: reaped below
        for rank, (conn, process) in list(self._children.items()):
            try:
                if conn.poll(timeout):
                    conn.recv()  # ("closed",)
            except (EOFError, OSError):
                pass
            try:
                conn.close()
            except OSError:
                pass
            process.join(timeout)
            if process.is_alive():
                process.terminate()
                process.join(timeout)
                if process.is_alive():
                    process.kill()
                    process.join(timeout)
        self._children = {}
        # Drop every view into the segment before releasing it; attribute
        # existence is conditional when construction failed early.
        if hasattr(self, "_weight_views"):
            del self._weight_views
        if hasattr(self, "_weights"):
            del self._weights
        segment = getattr(self, "_weights_segment", None)
        if segment is not None:
            self._weights_segment = None
            shm.release_segment(segment, unlink=True)
