"""Hot-path benchmark: aggregation-step timing, legacy vs arena.

Measures the per-step cost of every aggregation method on a VGG-style
model at ``world_size`` workers, twice each:

- **legacy** — per-worker gradients are plain ``{name: array}`` dicts, so
  ``_pack`` concatenates (a full-model copy per worker per step) and the
  S-SGD collective runs the copying ring all-reduce: the pre-arena code
  path, reconstructed in the same run so the speedup is an
  apples-to-apples measurement on the same machine;
- **arena** — gradients are :class:`~repro.perf.arena.ArenaGrads` slab
  views, so packing is a no-op and S-SGD aggregates in place on the slabs
  with preallocated ring scratch.

Gradient *values* are identical between modes (both are refilled from the
same reference arrays), so any timing difference is pure data movement.
The JSON report also records the :data:`~repro.perf.counters.ALLOC_STATS`
deltas — the arena S-SGD row must show zero fused-buffer allocations —
and an optional end-to-end ``train_step`` comparison (sequential vs
parallel workers).

The ``worker_modes`` section compares the three backprop backends
(``seq`` / ``thread`` / ``process``) end-to-end per method, with a
worker/aggregate/broadcast time breakdown — the measurement that shows
whether compression compute actually escaped the GIL (see
``repro.perf.procpool``).

Run it via ``python -m repro bench`` or ``scripts/bench_hot_path.py``.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.comm.process_group import ProcessGroup
from repro.models.convnets import make_small_vgg
from repro.optim import aggregators as agg
from repro.optim.sgd import SGD
from repro.perf.arena import ArenaGrads, GradientArena
from repro.perf.counters import ALLOC_STATS
from repro.train.datasets import ArrayDataset
from repro.train.trainer import DataParallelTrainer

NamedGrads = Dict[str, np.ndarray]

#: method name -> aggregator factory, in report order. S-SGD first: it is
#: the row the >= 1.5x arena-speedup acceptance criterion reads.
AGGREGATOR_FACTORIES: Dict[str, Callable[[ProcessGroup], agg.GradientAggregator]] = {
    "ssgd": agg.AllReduceAggregator,
    "signsgd": agg.SignSGDAggregator,
    "topk": lambda g: agg.TopkSGDAggregator(g, ratio=0.01),
    "randomk": lambda g: agg.RandomKAggregator(g, ratio=0.01),
    "qsgd": agg.QSGDAggregator,
    "terngrad": agg.TernGradAggregator,
    "powersgd": lambda g: agg.PowerSGDAggregator(g, rank=4),
    "acpsgd": lambda g: agg.ACPSGDAggregator(g, rank=4),
}


def _reference_gradients(
    arena: GradientArena, seed: int
) -> List[np.ndarray]:
    """One fixed random fused gradient per worker (the refill source)."""
    rng = np.random.default_rng(seed)
    return [
        rng.standard_normal(arena.layout.total_elements)
        for _ in range(arena.world_size)
    ]


def _legacy_gradients(
    arena: GradientArena, reference: List[np.ndarray]
) -> List[NamedGrads]:
    """Plain-dict gradients carrying the same values as the arena slabs."""
    layout = arena.layout
    out: List[NamedGrads] = []
    for ref in reference:
        grads: NamedGrads = {}
        for name in layout.names:
            lo = layout.offsets[name]
            grads[name] = (
                ref[lo : lo + layout.size_of(name)]
                .reshape(layout.shapes[name])
                .copy()
            )
        out.append(grads)
    return out


def _time_aggregation(
    aggregator: agg.GradientAggregator,
    provider: Callable[[], List[NamedGrads]],
    iters: int,
    warmup: int,
) -> Dict[str, float]:
    """Best-of-``iters`` wall time of ``aggregate`` (provider untimed).

    The provider refills the gradient buffers before every call because
    in-place aggregation consumes them; the refill is excluded from the
    timed region. Alloc counters cover only the timed iterations.
    """
    for _ in range(warmup):
        aggregator.aggregate(provider())
    times = []
    ALLOC_STATS.reset()
    for _ in range(iters):
        per_worker = provider()
        start = time.perf_counter()
        aggregator.aggregate(per_worker)
        times.append(time.perf_counter() - start)
    return {
        "best_s": min(times),
        "mean_s": float(np.mean(times)),
        "pack_copies_per_step": ALLOC_STATS.pack_copies / iters,
        "unpack_copies_per_step": ALLOC_STATS.unpack_copies / iters,
        "fused_allocs_per_step": ALLOC_STATS.fused_allocs / iters,
    }


def _bench_train_step(
    world_size: int,
    base_width: int,
    iters: int,
    warmup: int,
    seed: int,
) -> Dict[str, object]:
    """End-to-end S-SGD ``train_step``: sequential vs parallel workers.

    On a single-core host the parallel mode mostly measures threading
    overhead; the row is recorded for tracking, not gated.
    """
    results: Dict[str, object] = {}
    for mode in ("sequential", "parallel"):
        rng = np.random.default_rng(seed)
        inputs = rng.standard_normal((world_size * 32, 3, 16, 16))
        labels = rng.integers(0, 10, size=world_size * 32)
        data = ArrayDataset(inputs, labels)
        model = make_small_vgg(base_width=base_width, rng=np.random.default_rng(seed))
        trainer = DataParallelTrainer(
            model,
            SGD(model, lr=0.01),
            agg.AllReduceAggregator(ProcessGroup(world_size)),
            data,
            data,
            batch_size_per_worker=8,
            seed=seed,
            parallel_workers=(mode == "parallel"),
        )
        for _ in range(warmup):
            trainer.train_step()
        times = []
        for _ in range(iters):
            start = time.perf_counter()
            trainer.train_step()
            times.append(time.perf_counter() - start)
        results[mode] = {"best_s": min(times), "mean_s": float(np.mean(times))}
    results["parallel_speedup"] = (
        results["sequential"]["best_s"] / results["parallel"]["best_s"]
    )
    return results


def _bench_worker_modes(
    world_size: int,
    base_width: int,
    iters: int,
    warmup: int,
    seed: int,
    methods: List[str],
    worker_modes: List[str],
) -> Dict[str, object]:
    """End-to-end ``train_step`` per worker backend, with a breakdown.

    For every (method, backend) pair the row records the total step time
    plus where it went: ``worker_mean_s`` (backprop + compression-input
    production — the part the backend parallelizes), ``aggregate_mean_s``
    (compression kernels + collective, always in the parent), and for the
    process backend ``broadcast_mean_s`` (the per-step weights memcpy into
    the shared buffer — its only per-step copy). The thread-vs-process
    comparison is the GIL story in numbers: compute-bound methods
    (signsgd, terngrad) only scale when backprop escapes the GIL.

    Speedups are meaningful only with real cores; the report records
    ``cpu_count`` so a single-core result is not misread as a regression.
    """
    rows: Dict[str, object] = {}
    for method in methods:
        method_rows: Dict[str, object] = {}
        for mode in worker_modes:
            rng = np.random.default_rng(seed)
            inputs = rng.standard_normal((world_size * 32, 3, 16, 16))
            labels = rng.integers(0, 10, size=world_size * 32)
            data = ArrayDataset(inputs, labels)
            model = make_small_vgg(
                base_width=base_width, rng=np.random.default_rng(seed)
            )
            trainer = DataParallelTrainer(
                model,
                SGD(model, lr=0.01),
                AGGREGATOR_FACTORIES[method](ProcessGroup(world_size)),
                data,
                data,
                batch_size_per_worker=8,
                seed=seed,
                workers=mode,
            )
            # Shadow the bound method on the instance to time the
            # aggregation phase without touching the class.
            inner_aggregate = trainer.aggregator.aggregate
            aggregate_times: List[float] = []

            def timed_aggregate(per_worker, _inner=inner_aggregate,
                                _times=aggregate_times):
                start = time.perf_counter()
                out = _inner(per_worker)
                _times.append(time.perf_counter() - start)
                return out

            trainer.aggregator.aggregate = timed_aggregate
            try:
                for _ in range(warmup):
                    trainer.train_step()
                ALLOC_STATS.reset()
                aggregate_times.clear()
                times = []
                broadcast = []
                for _ in range(iters):
                    start = time.perf_counter()
                    trainer.train_step()
                    times.append(time.perf_counter() - start)
                    if trainer._procpool is not None:
                        broadcast.append(trainer._procpool.last_broadcast_s)
            finally:
                trainer.close()
            aggregate_mean = float(np.mean(aggregate_times))
            broadcast_mean = float(np.mean(broadcast)) if broadcast else 0.0
            method_rows[mode] = {
                "best_s": min(times),
                "mean_s": float(np.mean(times)),
                "worker_mean_s": (
                    float(np.mean(times)) - aggregate_mean - broadcast_mean
                ),
                "aggregate_mean_s": aggregate_mean,
                "broadcast_mean_s": broadcast_mean,
                "fused_allocs_per_step": ALLOC_STATS.fused_allocs / iters,
            }
        if "thread" in method_rows and "process" in method_rows:
            method_rows["process_vs_thread_speedup"] = (
                method_rows["thread"]["best_s"]
                / method_rows["process"]["best_s"]
            )
        rows[method] = method_rows
    return rows


def _bench_buffer_sweep(
    world_size: int,
    base_width: int,
    iters: int,
    warmup: int,
    seed: int,
    buffer_sizes_mb: List[float],
) -> List[Dict[str, object]]:
    """S-SGD aggregation time vs fusion buffer size (the Fig. 8 axis).

    Each row drives the real bucketed pipeline — arena buckets, segmented
    ring collectives, the reducer's deferred loop — at one ``buffer_bytes``
    setting and records the per-bucket mean timings plus the
    :data:`~repro.perf.counters.ALLOC_STATS` deltas, so the report shows
    both ends of the paper's trade-off: many small buckets pay latency per
    collective, one huge bucket forfeits overlap.
    """
    from repro.train.reducer import BucketedReducer

    rows: List[Dict[str, object]] = []
    for size_mb in buffer_sizes_mb:
        buffer_bytes = int(size_mb * 2**20)
        model = make_small_vgg(
            base_width=base_width, rng=np.random.default_rng(seed)
        )
        arena = GradientArena(model, world_size, bucket_bytes=buffer_bytes)
        aggregator = agg.AllReduceAggregator(ProcessGroup(world_size))
        reducer = BucketedReducer(model, arena, aggregator)
        reference = _reference_gradients(arena, seed + 1)

        def provider() -> List[ArenaGrads]:
            for slot, ref in enumerate(reference):
                np.copyto(arena.slab(slot), ref)
            return [arena.grads(slot) for slot in range(world_size)]

        for _ in range(warmup):
            reducer.aggregate(aggregator, provider())
        ALLOC_STATS.reset()
        times = []
        bucket_seconds: Dict[int, List[float]] = {}
        bucket_elements: Dict[int, int] = {}
        for _ in range(iters):
            per_worker = provider()
            start = time.perf_counter()
            reducer.aggregate(aggregator, per_worker)
            times.append(time.perf_counter() - start)
            for index, elements, seconds in reducer.last_timings:
                bucket_seconds.setdefault(index, []).append(seconds)
                bucket_elements[index] = elements
        rows.append({
            "buffer_mbytes": size_mb,
            "buffer_bytes": buffer_bytes,
            "num_buckets": reducer.num_buckets,
            "best_s": min(times),
            "mean_s": float(np.mean(times)),
            "per_bucket": [
                {
                    "bucket": index,
                    "elements": bucket_elements[index],
                    "mean_s": float(np.mean(bucket_seconds[index])),
                }
                for index in sorted(bucket_seconds)
            ],
            "alloc_stats": ALLOC_STATS.snapshot(),
        })
        reducer.close()
    return rows


def run_hot_path_bench(
    world_size: int = 4,
    base_width: int = 32,
    iters: int = 7,
    warmup: int = 2,
    seed: int = 0,
    methods: Optional[List[str]] = None,
    include_train_step: bool = True,
    buffer_sizes_mb: Optional[List[float]] = None,
    worker_modes: Optional[List[str]] = None,
) -> Dict[str, object]:
    """Run the full benchmark and return the JSON-serializable report."""
    model = make_small_vgg(base_width=base_width, rng=np.random.default_rng(seed))
    arena = GradientArena(model, world_size)
    layout = arena.layout
    reference = _reference_gradients(arena, seed + 1)
    legacy = _legacy_gradients(arena, reference)

    def legacy_provider() -> List[NamedGrads]:
        # Refill so in-place-consumed values cannot leak between modes.
        for grads, ref in zip(legacy, reference):
            for name in layout.names:
                lo = layout.offsets[name]
                np.copyto(
                    grads[name],
                    ref[lo : lo + layout.size_of(name)].reshape(
                        layout.shapes[name]
                    ),
                )
        return legacy

    def arena_provider() -> List[ArenaGrads]:
        for slot, ref in enumerate(reference):
            np.copyto(arena.slab(slot), ref)
        return [arena.grads(slot) for slot in range(world_size)]

    selected = methods or list(AGGREGATOR_FACTORIES)
    aggregate_step: Dict[str, object] = {}
    for method in selected:
        factory = AGGREGATOR_FACTORIES[method]
        row: Dict[str, object] = {}
        for mode, provider in (
            ("legacy", legacy_provider),
            ("arena", arena_provider),
        ):
            row[mode] = _time_aggregation(
                factory(ProcessGroup(world_size)), provider, iters, warmup
            )
        row["arena_speedup"] = row["legacy"]["best_s"] / row["arena"]["best_s"]
        aggregate_step[method] = row

    report: Dict[str, object] = {
        "config": {
            "world_size": world_size,
            "base_width": base_width,
            "iters": iters,
            "warmup": warmup,
            "seed": seed,
            "model_parameters": layout.total_elements,
            "slab_mbytes": arena.nbytes / arena.world_size / 2**20,
            # Worker-mode speedups only mean something with real cores.
            "cpu_count": os.cpu_count(),
        },
        "aggregate_step": aggregate_step,
    }
    if include_train_step:
        report["train_step_ssgd"] = _bench_train_step(
            world_size, base_width, max(3, iters // 2), 1, seed
        )
    if buffer_sizes_mb is None:
        # Four sizes spanning the Fig. 8 sweet-spot search by default.
        buffer_sizes_mb = [0.25, 1.0, 4.0, 16.0]
    if buffer_sizes_mb:
        report["buffer_sweep"] = _bench_buffer_sweep(
            world_size, base_width, iters, warmup, seed, buffer_sizes_mb
        )
    if worker_modes is None:
        worker_modes = ["seq", "thread", "process"]
    if worker_modes:
        # Compute-bound methods (sign/ternary quantization) are where the
        # GIL hurts most; ssgd rides along as the bandwidth-bound control.
        worker_methods = [
            m for m in ("ssgd", "signsgd", "terngrad") if m in selected
        ] or selected[:1]
        report["worker_modes"] = _bench_worker_modes(
            world_size, base_width, max(3, iters // 2), 1, seed,
            worker_methods, worker_modes,
        )
    if "ssgd" in aggregate_step:
        ssgd = aggregate_step["ssgd"]
        report["criteria"] = {
            "ssgd_arena_speedup": ssgd["arena_speedup"],
            "ssgd_speedup_target": 1.5,
            "ssgd_speedup_ok": ssgd["arena_speedup"] >= 1.5,
            "arena_fused_allocs_per_step": ssgd["arena"]["fused_allocs_per_step"],
            "arena_zero_fused_allocs": ssgd["arena"]["fused_allocs_per_step"] == 0,
        }
    worker_rows = report.get("worker_modes", {})
    process_vs_thread = {
        method: row["process_vs_thread_speedup"]
        for method, row in worker_rows.items()
        if "process_vs_thread_speedup" in row
    }
    if process_vs_thread:
        criteria = report.setdefault("criteria", {})
        criteria["process_vs_thread_speedup"] = process_vs_thread
        criteria["process_speedup_target"] = 2.0
        # The >=2x target needs at least two compute-bound methods over
        # the bar — and physically needs multiple cores (see cpu_count).
        compute_bound = [
            method for method in ("signsgd", "terngrad")
            if process_vs_thread.get(method, 0.0) >= 2.0
        ]
        criteria["process_speedup_ok"] = len(compute_bound) >= 2
        criteria["cpu_count"] = os.cpu_count()
    return report
