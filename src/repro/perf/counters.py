"""Hot-path allocation accounting.

The arena's whole point is that the per-step fused gradient buffers are
allocated once, at trainer construction, and never again. That invariant is
cheap to state and easy to regress silently — one stray ``np.concatenate``
in an aggregator and every step quietly pays a full-model copy per worker.

:data:`ALLOC_STATS` counts, per process, every time the fused pack/unpack
helpers fall back to an allocating copy. The ``perf``-marked smoke test and
the benchmark harness reset the counters, drive the hot path, and assert
the arena path performed **zero** fused-buffer allocations.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class AllocStats:
    """Counters of allocating fallbacks on the fused gradient path.

    Attributes:
        pack_copies: fused buffers materialized by copying (``_pack`` could
            not return a zero-copy arena view).
        unpack_copies: per-tensor copies made on unpack (``copy=True``).
        bucket_reduces: per-bucket collective reductions fired by the
            bucketed reducer (in-place and copying alike).
        bucket_copies: bucket payloads that had to be staged through an
            allocating copy instead of reduced in the arena views.
    """

    pack_copies: int = 0
    unpack_copies: int = 0
    bucket_reduces: int = 0
    bucket_copies: int = 0

    @property
    def fused_allocs(self) -> int:
        """Total allocating events on the fused path since the last reset."""
        return self.pack_copies + self.unpack_copies

    def reset(self) -> None:
        """Zero all counters (call before a measured region)."""
        self.pack_copies = 0
        self.unpack_copies = 0
        self.bucket_reduces = 0
        self.bucket_copies = 0

    def merge(self, delta: dict) -> None:
        """Fold another process's counter snapshot into this one.

        Process workers count allocations in their own interpreter; the
        parent merges each child's per-step delta so the process-global
        counters describe the whole step regardless of which process did
        the allocating. ``fused_allocs`` is derived, so snapshot keys
        without a counter field are ignored.
        """
        self.pack_copies += delta.get("pack_copies", 0)
        self.unpack_copies += delta.get("unpack_copies", 0)
        self.bucket_reduces += delta.get("bucket_reduces", 0)
        self.bucket_copies += delta.get("bucket_copies", 0)

    def snapshot(self) -> dict:
        """Plain-dict copy of all counters (for benchmark reports)."""
        return {
            "pack_copies": self.pack_copies,
            "unpack_copies": self.unpack_copies,
            "bucket_reduces": self.bucket_reduces,
            "bucket_copies": self.bucket_copies,
            "fused_allocs": self.fused_allocs,
        }


#: Process-global counters; reset before a measured region.
ALLOC_STATS = AllocStats()
