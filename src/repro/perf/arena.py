"""Zero-copy gradient arena: preallocated per-worker fused buffers.

The paper's tensor-fusion optimization exists in this repo twice: as a
simulator cost model and as a per-step ``np.concatenate`` in the
aggregators. The arena replaces the second with real fusion: at trainer
construction one contiguous float64 slab is allocated **per worker**, laid
out in parameter order, and every ``Parameter.grad`` becomes a zero-copy
view into it. From then on:

- back-propagation writes gradients straight into the fused buffer
  (:meth:`~repro.nn.parameter.Parameter.accumulate_grad` accumulates into
  the attached slot in place);
- ``_pack`` in :mod:`repro.optim.aggregators` returns the slab itself —
  tensor fusion becomes a no-op instead of a full-model copy per worker
  per step;
- the in-place ring all-reduce
  (:func:`repro.comm.collectives.all_reduce_ring_inplace`) aggregates the
  slabs where they live, reusing a preallocated scratch block instead of
  allocating per ring step;
- ``_unpack`` hands back read-only views into the reduced slab.

Ownership contract (see ``docs/performance.md``):

- A worker's slab is valid gradient data from the end of its backward pass
  until the aggregator consumes it. **In-place aggregation destroys the
  per-worker gradients** — after ``aggregate`` returns, every slab holds
  the reduced result, exactly like an NCCL in-place all-reduce.
- Views returned by the arena or by ``_unpack`` are invalidated by the
  next backward pass. Callers that need to retain a gradient across steps
  must copy it explicitly.
- Groups that must retransmit original payloads on failure
  (:class:`~repro.faults.resilient.ResilientProcessGroup` re-sends buffers
  after a CRC mismatch) advertise ``supports_inplace = False``; the
  aggregators then keep the copying path for the collective while still
  using zero-copy packing.

Buckets: the slab is optionally partitioned into contiguous buckets of at
most ``bucket_bytes`` (parameter order, like DDP's gradient buckets). Each
bucket is itself contiguous, so a bucketed collective schedule can reduce
bucket views without any re-packing.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.fusion import partition_buckets
from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.perf import shm


class ArenaLayout:
    """Element layout of one fused slab: parameter order, offsets, buckets.

    Attributes:
        names: parameter names in model (definition) order.
        shapes: per-name tensor shapes.
        offsets: per-name start offset into the slab, in elements.
        total_elements: slab length.
        buckets: ``(start, end)`` element ranges partitioning the slab.
    """

    def __init__(
        self,
        named_shapes: Sequence[Tuple[str, Tuple[int, ...]]],
        bucket_bytes: Optional[int] = None,
        itemsize: int = 8,
    ):
        if not named_shapes:
            raise ValueError("arena layout requires at least one parameter")
        if bucket_bytes is not None and bucket_bytes < 0:
            raise ValueError(
                f"bucket_bytes must be >= 0, got {bucket_bytes}"
            )
        self.names: List[str] = []
        self.shapes: Dict[str, Tuple[int, ...]] = {}
        self.offsets: Dict[str, int] = {}
        self._index: Dict[str, int] = {}
        offset = 0
        for name, shape in named_shapes:
            if name in self.shapes:
                raise ValueError(f"duplicate parameter name {name!r}")
            size = int(np.prod(shape, dtype=np.int64)) if shape else 1
            self._index[name] = len(self.names)
            self.names.append(name)
            self.shapes[name] = tuple(shape)
            self.offsets[name] = offset
            offset += size
        self.total_elements = offset
        self.buckets = self._build_buckets(bucket_bytes, itemsize)

    def _build_buckets(
        self, bucket_bytes: Optional[int], itemsize: int
    ) -> List[Tuple[int, int]]:
        """Element ranges of the slab's buckets.

        Delegates to the shared :func:`repro.fusion.partition_buckets`
        policy — the same greedy fill the simulator uses — so the real
        reducer and the simulated one can never drift. ``bucket_bytes=0``
        means no fusion (one tensor per bucket).
        """
        if bucket_bytes is None:
            self._bucket_ranges = [(0, len(self.names))]
            return [(0, self.total_elements)]
        sizes = [self.size_of(name) * itemsize for name in self.names]
        self._bucket_ranges = partition_buckets(sizes, bucket_bytes)
        spans: List[Tuple[int, int]] = []
        for first, last in self._bucket_ranges:
            lo = self.offsets[self.names[first]]
            tail = self.names[last - 1]
            spans.append((lo, self.offsets[tail] + self.size_of(tail)))
        return spans

    def bucket_names(self) -> List[List[str]]:
        """Parameter names of each bucket, in layout (= bucket) order."""
        return [
            self.names[first:last] for first, last in self._bucket_ranges
        ]

    def size_of(self, name: str) -> int:
        shape = self.shapes[name]
        return int(np.prod(shape, dtype=np.int64)) if shape else 1

    def span(self, names: Sequence[str]) -> Optional[Tuple[int, int]]:
        """Element range covered by ``names`` iff they form a contiguous run.

        Returns ``(start, end)`` when ``names`` equals a consecutive slice of
        the layout order (so a single view can stand in for their fused
        concatenation), else ``None``.
        """
        if not names:
            return None
        first = self._index.get(names[0])
        if first is None:
            return None
        for step, name in enumerate(names):
            if self._index.get(name) != first + step:
                return None
        last = names[-1]
        return self.offsets[names[0]], self.offsets[last] + self.size_of(last)


class ArenaGrads(Dict[str, np.ndarray]):
    """Named gradient views backed by one fused slab.

    Behaves as a plain ``{name: ndarray}`` dict (what every aggregator
    consumes) while also exposing the backing slab, so ``_pack`` can skip
    the concatenation entirely.
    """

    def __init__(
        self,
        views: Dict[str, np.ndarray],
        slab: np.ndarray,
        layout: ArenaLayout,
    ):
        super().__init__(views)
        self.slab = slab
        self.layout = layout

    def fused_view(self, names: Sequence[str]) -> Optional[np.ndarray]:
        """Zero-copy fused buffer for ``names``, or ``None`` if impossible.

        The full parameter list (the common case) returns the whole slab;
        any contiguous sub-run of the layout returns a slice view. Orders
        that do not match the layout force the caller back to a copy.
        """
        if list(names) == self.layout.names:
            return self.slab
        span = self.layout.span(list(names))
        if span is None:
            return None
        return self.slab[span[0] : span[1]]


class GradientArena:
    """Per-worker fused gradient buffers with zero-copy parameter views.

    Args:
        model: the model whose parameters define the layout (names, shapes,
            order). Replicas created by
            :class:`~repro.perf.replicas.ReplicaSet` share the same layout.
        world_size: number of worker slabs to allocate.
        bucket_bytes: optional bucket cap (parameter-order contiguous
            buckets, DDP-style). ``None`` fuses the whole model into one
            bucket.
        backing: ``"private"`` (default) allocates ordinary per-process
            numpy slabs; ``"shared"`` backs every slab with its own
            ``multiprocessing.shared_memory`` segment so worker processes
            can write gradients in place (see
            :class:`~repro.perf.procpool.ProcessWorkerPool`). Shared
            arenas own real OS resources: call :meth:`close` when done —
            the test suite fails any test that leaks a segment.
    """

    dtype = np.float64

    def __init__(
        self,
        model: Module,
        world_size: int,
        bucket_bytes: Optional[int] = None,
        backing: str = "private",
    ):
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        if backing not in ("private", "shared"):
            raise ValueError(
                f"backing must be 'private' or 'shared', got {backing!r}"
            )
        named = [(name, param.shape) for name, param in model.named_parameters()]
        self.layout = ArenaLayout(
            named, bucket_bytes=bucket_bytes, itemsize=np.dtype(self.dtype).itemsize
        )
        self.backing = backing
        self.world_size = world_size
        self._closed = False
        # One contiguous slab per worker; slabs are distinct allocations
        # (or distinct shared segments) so the ring collective's per-rank
        # buffers never alias each other. Per-slab segments — rather than
        # one giant segment — let ``ensure_slots`` grow the arena without
        # invalidating mappings worker processes already hold.
        self._segments: List[Optional[object]] = []
        self._slabs: List[np.ndarray] = [
            self._alloc_slab() for _ in range(world_size)
        ]
        self._views: List[Dict[str, np.ndarray]] = [
            self._carve(slab) for slab in self._slabs
        ]

    def _alloc_slab(self) -> np.ndarray:
        if self.backing == "shared":
            nbytes = max(1, self.layout.total_elements) * np.dtype(self.dtype).itemsize
            segment = shm.create_segment(nbytes)
            slab = np.ndarray(
                (self.layout.total_elements,), dtype=self.dtype, buffer=segment.buf
            )
            slab[:] = 0.0
            self._segments.append(segment)
            return slab
        self._segments.append(None)
        return np.zeros(self.layout.total_elements, dtype=self.dtype)

    def _carve(self, slab: np.ndarray) -> Dict[str, np.ndarray]:
        views: Dict[str, np.ndarray] = {}
        for name in self.layout.names:
            lo = self.layout.offsets[name]
            hi = lo + self.layout.size_of(name)
            views[name] = slab[lo:hi].reshape(self.layout.shapes[name])
        return views

    def ensure_slots(self, count: int) -> None:
        """Grow the arena to at least ``count`` worker slabs.

        Elastic scale-up admits ranks past the initial world size; the new
        slabs are allocated once at the admission boundary (never on the
        hot path) and zeroed like the originals. Shrinking never frees
        slabs — an ejected slot's slab is simply left idle so a later
        rejoin reuses it without reallocating.
        """
        while len(self._slabs) < count:
            slab = self._alloc_slab()
            self._slabs.append(slab)
            self._views.append(self._carve(slab))
        self.world_size = max(self.world_size, count)

    # ------------------------------------------------------------------
    # Shared-memory lifecycle
    # ------------------------------------------------------------------
    @property
    def is_shared(self) -> bool:
        """Whether the slabs live in cross-process shared memory."""
        return self.backing == "shared"

    def segment_name(self, slot: int) -> str:
        """OS name of slot ``slot``'s shared segment (shared backing only).

        Worker processes attach by this name; it travels in the per-step
        task message, so slabs created by elastic growth are discovered
        lazily without any re-initialization round.
        """
        segment = self._segments[slot]
        if segment is None:
            raise ValueError(
                "segment_name requires backing='shared' (private slabs "
                "have no cross-process identity)"
            )
        return segment.name

    def close(self) -> None:
        """Release the shared segments (idempotent; no-op when private).

        Drops this arena's own slab views first so the owner-side mappings
        close cleanly, then unlinks every segment. Views handed out
        earlier (``grads``/``bucket_views``) keep their mapping alive
        until they die with the process — the unlink only removes the
        name, exactly like unlinking an open POSIX file.
        """
        if self._closed:
            return
        self._closed = True
        if self.backing != "shared":
            return
        self._slabs = []
        self._views = []
        for segment in self._segments:
            if segment is not None:
                shm.release_segment(segment, unlink=True)
        self._segments = []

    # ------------------------------------------------------------------
    # Worker-facing API
    # ------------------------------------------------------------------
    def slab(self, slot: int) -> np.ndarray:
        """Worker ``slot``'s whole fused buffer (1-D, writable)."""
        return self._slabs[slot]

    def bucket_views(self, slot: int) -> List[np.ndarray]:
        """Worker ``slot``'s slab as per-bucket contiguous views."""
        return [self._slabs[slot][lo:hi] for lo, hi in self.layout.buckets]

    def grads(self, slot: int) -> ArenaGrads:
        """Worker ``slot``'s named gradients as zero-copy slab views."""
        return ArenaGrads(self._views[slot], self._slabs[slot], self.layout)

    def bind(self, model: Module, slot: int) -> None:
        """Point every ``Parameter.grad`` of ``model`` into slab ``slot``.

        After binding, ``zero_grad``/backward on the model reads and writes
        the arena storage directly. The model must match the arena layout
        (same names, shapes, order).
        """
        views = self._views[slot]
        for name, param in model.named_parameters():
            view = views.get(name)
            if view is None or view.shape != param.shape:
                raise ValueError(
                    f"model does not match arena layout at parameter {name!r}"
                )
            param.attach_grad_slot(view)

    def unbind(self, model: Module) -> None:
        """Detach every parameter from the arena (back to legacy grads)."""
        for _, param in model.named_parameters():
            param.detach_grad_slot()

    def divide_(self, slot: int, divisor: float) -> None:
        """In-place divide of worker ``slot``'s slab.

        Used for micro-batch averaging. True division (not multiplication
        by a reciprocal) so the values stay bit-identical to the legacy
        ``param.grad / accumulation_steps`` path.
        """
        self._slabs[slot] /= divisor

    @property
    def nbytes(self) -> int:
        """Total arena footprint in bytes."""
        return sum(slab.nbytes for slab in self._slabs)

    def owns(self, buffers: Iterable[np.ndarray]) -> bool:
        """True when every buffer is one of this arena's slabs (by identity)."""
        slabs = {id(slab) for slab in self._slabs}
        return all(id(buf) in slabs for buf in buffers)
