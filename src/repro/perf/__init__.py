"""Hot-path performance subsystem: gradient arena + parallel backprop.

Three pieces make the measured training hot path allocation-free and
worker-parallel (see ``docs/performance.md``):

- :class:`~repro.perf.arena.GradientArena` — preallocated per-worker fused
  gradient buffers; every ``Parameter.grad`` is a zero-copy view, so
  tensor fusion (``_pack``/``_unpack``) stops copying and the collectives
  can aggregate in place;
- :class:`~repro.perf.replicas.ReplicaSet` — per-worker model replicas
  sharing weight storage, enabling thread-parallel backprop with
  bit-identical trajectories;
- :data:`~repro.perf.counters.ALLOC_STATS` — fused-allocation counters
  backing the "zero per-step fused allocations" regression check.

The benchmark harness lives in :mod:`repro.perf.bench` (imported lazily by
the CLI; it depends on the aggregators, which in turn import the counters
from here).
"""

from repro.perf.arena import ArenaGrads, ArenaLayout, GradientArena
from repro.perf.counters import ALLOC_STATS, AllocStats
from repro.perf.replicas import ReplicaSet, iter_modules

__all__ = [
    "ALLOC_STATS",
    "AllocStats",
    "ArenaGrads",
    "ArenaLayout",
    "GradientArena",
    "ProcessWorkerPool",
    "ReplicaSet",
    "WorkerStepTask",
    "iter_modules",
]


def __getattr__(name: str):
    # procpool imports the training stack (datasets, loss); loading it
    # lazily keeps `import repro.perf` light for arena-only users and
    # avoids a circular import through repro.train.
    if name in ("ProcessWorkerPool", "WorkerStepTask"):
        from repro.perf import procpool

        return getattr(procpool, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
