"""Per-worker model replicas for parallel backprop with shared weights.

The trainer's sequential mode evaluates ONE physical model once per worker
shard. That is numerically exact but strictly serial: worker ``r + 1``'s
forward cannot start until worker ``r``'s backward finished. A
:class:`ReplicaSet` trades a little memory for overlap:

- every worker gets a structural deep copy of the model that **shares the
  master's weight storage** (each replica ``Parameter.data`` is rebound to
  the master's array object — zero copies, always in sync);
- each replica owns its private activation caches and, with an arena, its
  own fused gradient slab, so per-worker forward/backward passes are
  mutually independent and can run on a thread pool (numpy's BLAS kernels
  release the GIL);
- BatchNorm running statistics — the one piece of *training-mutated*
  forward state — are recorded per replica as per-batch statistics and
  replayed onto the master in rank order after the round, which reproduces
  the sequential update sequence bit-exactly (the recurrence
  ``r <- (1-m) r + m s`` consumes batch stats that do not depend on ``r``).

Aggregation order is untouched — the per-worker gradients enter the
aggregator in the same rank order as the sequential path — so parallel and
sequential training produce **bit-identical trajectories** (asserted in
``tests/test_parallel_trainer.py`` for every aggregator).

Models with stochastic training-mode layers (Dropout with ``p > 0``) are
rejected: a single sequential model draws one mask stream across workers,
which per-replica generators cannot reproduce.
"""

from __future__ import annotations

import copy
from typing import Iterator, List

from repro.nn.dropout import Dropout
from repro.nn.module import Module
from repro.nn.norm import BatchNorm2d


def iter_modules(module: Module) -> Iterator[Module]:
    """Depth-first module walk in deterministic (definition) order.

    The same attribute-reflection order as ``Module.named_parameters``, so
    two structurally identical models yield pairable sequences.
    """
    yield module
    for value in vars(module).values():
        if isinstance(value, Module):
            yield from iter_modules(value)
        elif isinstance(value, (list, tuple)):
            for item in value:
                if isinstance(item, Module):
                    yield from iter_modules(item)


class ReplicaSet:
    """``count`` models sharing one weight storage; replica 0 is the master.

    Args:
        model: the master model (stays the single source of truth for
            weights, running statistics, and checkpoints).
        count: number of workers; ``count - 1`` replicas are created.
    """

    def __init__(self, model: Module, count: int):
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        for sub in iter_modules(model):
            if isinstance(sub, Dropout) and sub.p > 0.0:
                raise ValueError(
                    "parallel worker backprop requires a deterministic "
                    "forward pass; the model contains Dropout(p > 0), whose "
                    "sequential mask stream per-worker replicas cannot "
                    "reproduce — train it with parallel_workers=False"
                )
        self.master = model
        self.replicas: List[Module] = [model]
        for _ in range(1, count):
            self.replicas.append(copy.deepcopy(model))
        self._share_weights()
        self._bns: List[List[BatchNorm2d]] = [
            [m for m in iter_modules(replica) if isinstance(m, BatchNorm2d)]
            for replica in self.replicas
        ]

    def _share_weights(self) -> None:
        master_params = [param for _, param in self.master.named_parameters()]
        for replica in self.replicas[1:]:
            replica_params = [param for _, param in replica.named_parameters()]
            if len(replica_params) != len(master_params):
                raise RuntimeError("replica parameter count diverged from master")
            for master_param, replica_param in zip(master_params, replica_params):
                replica_param.data = master_param.data

    # ------------------------------------------------------------------
    # Round protocol: begin -> (threads run replicas) -> end
    # ------------------------------------------------------------------
    def begin_round(self) -> None:
        """Re-share weights and arm BatchNorm stat recording.

        Weights are re-bound every round because the optimizer (and
        checkpoint restore) *reassign* ``Parameter.data`` rather than
        mutate it; rebinding is a per-parameter reference assignment, not
        a copy. Recorders are fresh lists, one per BatchNorm per replica.
        """
        self._share_weights()
        for bns in self._bns:
            for bn in bns:
                bn.stat_recorder = []

    def end_round(self, live_count: int) -> None:
        """Replay recorded BatchNorm statistics onto the master in rank order.

        For each BatchNorm layer, the master's running buffers receive the
        per-batch statistics of replica 0, then replica 1, … — the exact
        update sequence the sequential path would have produced. Recording
        is then disarmed so out-of-round forwards update directly again.
        """
        master_bns = self._bns[0]
        for layer_idx, master_bn in enumerate(master_bns):
            for replica_idx in range(live_count):
                recorder = self._bns[replica_idx][layer_idx].stat_recorder
                if recorder:
                    for mean, var in recorder:
                        master_bn.apply_batch_stats(mean, var)
        for bns in self._bns:
            for bn in bns:
                bn.stat_recorder = None
