"""SharedMemory segment lifecycle: create, attach, release, leak-track.

The process-worker backend re-backs :class:`~repro.perf.arena.GradientArena`
slabs (and the weights broadcast buffer) with POSIX shared memory so that
child processes write gradients exactly where the parent's ring schedule
reads them — zero gradient pickling. Shared memory is the one resource in
this codebase the garbage collector cannot be trusted with: a segment that
is never unlinked outlives the interpreter and keeps real pages pinned in
``/dev/shm``. This module therefore centralizes the lifecycle rules:

- **create** happens only in the owning (parent) process, through
  :func:`create_segment`, which records the segment in a process-local
  registry so leaks are detectable (``tests/conftest.py`` fails any test
  that ends with live segments) and an ``atexit`` hook can unlink whatever
  a crashed run left behind;
- **attach** happens in worker children, through :func:`attach_segment` —
  an attach-only process closes its mapping but never unlinks; the shared
  ``resource_tracker`` bookkeeping is left to the owner (see the function
  docstring for why the child must not unregister);
- **release** is explicit and idempotent: owners unlink, attachers only
  close. Numpy views over a segment keep the mapping alive, so
  :func:`release_segment` tolerates ``BufferError`` from ``close()`` —
  the unlink still removes the name, and the pages are freed when the
  last view dies with its process.
"""

from __future__ import annotations

import atexit
from multiprocessing import shared_memory
from typing import Dict, Set


#: Segments created (and therefore owned) by this process, by name.
#: Populated by :func:`create_segment`, drained by :func:`release_segment`.
_OWNED: Dict[str, shared_memory.SharedMemory] = {}


def create_segment(nbytes: int) -> shared_memory.SharedMemory:
    """Create a new shared-memory segment owned by this process.

    The segment is registered in the process-local ownership registry; the
    creator is responsible for eventually calling :func:`release_segment`
    with ``unlink=True``. An ``atexit`` hook unlinks anything still
    registered, so even a run that dies mid-step cannot leak ``/dev/shm``
    pages past interpreter exit.
    """
    if nbytes < 1:
        raise ValueError(f"segment size must be >= 1 byte, got {nbytes}")
    segment = shared_memory.SharedMemory(create=True, size=nbytes)
    _OWNED[segment.name] = segment
    return segment


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment created by another process.

    Worker children share the parent's ``resource_tracker`` process (both
    fork and spawn pass the tracker fd down), and the tracker keeps one
    name-set, not per-process refcounts. Attaching therefore re-registers
    a name the owner already registered — a harmless set-add — and the
    owner's eventual ``unlink`` unregisters it exactly once. Attachers
    must NOT unregister here: with a shared tracker that would erase the
    owner's crash-cleanup registration (and make the owner's unlink emit
    a tracker ``KeyError``). Attach-only processes just ``close()``.
    """
    return shared_memory.SharedMemory(name=name)


def release_segment(
    segment: shared_memory.SharedMemory, unlink: bool
) -> None:
    """Close (and for owners, unlink) a segment; safe to call twice.

    ``BufferError`` from ``close()`` — live numpy views still reference
    the mapping — is tolerated: the unlink still removes the name from the
    namespace, and the physical pages are reclaimed once the last view's
    process exits. Callers that want a clean close should drop their views
    first.
    """
    try:
        segment.close()
    except BufferError:
        pass
    if unlink:
        try:
            segment.unlink()
        except FileNotFoundError:
            pass
        _OWNED.pop(segment.name, None)


def live_segment_names() -> Set[str]:
    """Names of segments created by this process and not yet unlinked.

    The leak detector's probe: a test that ends with more live segments
    than it started with forgot a ``close()``/``release_segment`` call.
    """
    return set(_OWNED)


def force_release_all() -> int:
    """Unlink every still-owned segment; returns how many were cleaned.

    Crash cleanup (registered at ``atexit``) and the test-suite leak
    detector's remediation path — normal code releases its own segments.
    """
    cleaned = 0
    for name in list(_OWNED):
        segment = _OWNED.pop(name)
        try:
            segment.close()
        except BufferError:
            pass
        try:
            segment.unlink()
        except FileNotFoundError:
            pass
        cleaned += 1
    return cleaned


atexit.register(force_release_all)
