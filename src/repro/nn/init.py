"""Weight initialization schemes (Kaiming / Xavier)."""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Compute fan-in/fan-out for linear (out, in) or conv (out, in, kh, kw)."""
    if len(shape) < 2:
        raise ValueError(f"fan computation needs >= 2 dims, got shape {shape}")
    receptive = 1
    for dim in shape[2:]:
        receptive *= dim
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def kaiming_normal(
    shape: Tuple[int, ...], rng: np.random.Generator, gain: float = math.sqrt(2.0)
) -> np.ndarray:
    """He-normal init: std = gain / sqrt(fan_in). Default gain is for ReLU."""
    fan_in, _ = _fan_in_out(shape)
    std = gain / math.sqrt(fan_in)
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(
    shape: Tuple[int, ...], rng: np.random.Generator, gain: float = math.sqrt(2.0)
) -> np.ndarray:
    """He-uniform init: bound = gain * sqrt(3 / fan_in)."""
    fan_in, _ = _fan_in_out(shape)
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot-normal init: std = sqrt(2 / (fan_in + fan_out))."""
    fan_in, fan_out = _fan_in_out(shape)
    std = math.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot-uniform init: bound = sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)
