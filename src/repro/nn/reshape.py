"""Shape-manipulation layers."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.module import Module


class Flatten(Module):
    """Flatten all dims after the batch dim: (N, ...) -> (N, prod(...))."""

    def __init__(self) -> None:
        super().__init__()
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        grad_input = grad_output.reshape(self._input_shape)
        self._input_shape = None
        return grad_input
