"""Multi-head self-attention and transformer encoder blocks.

Runnable (trainable) counterparts of the BERT specs in
:mod:`repro.models.bert_specs`: the same Q/K/V/output projections and FFN
whose weight gradients are exactly the ``H x H`` / ``H x 4H`` matrices the
paper compresses with rank-32 Power-SGD/ACP-SGD. Used by the
tiny-transformer convergence experiments and examples.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn.activation import GELU
from repro.nn.dropout import Dropout
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.nn.norm import LayerNorm


class MultiHeadSelfAttention(Module):
    """Standard scaled dot-product multi-head self-attention.

    Input/output shape ``(batch, seq, hidden)``. No masking (the paper's
    workloads are fixed-length encoder batches).
    """

    def __init__(
        self,
        hidden: int,
        num_heads: int,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if hidden % num_heads != 0:
            raise ValueError(
                f"hidden ({hidden}) must be divisible by num_heads ({num_heads})"
            )
        rng = rng if rng is not None else np.random.default_rng(0)
        self.hidden = hidden
        self.num_heads = num_heads
        self.head_dim = hidden // num_heads
        self.query = Linear(hidden, hidden, rng=rng)
        self.key = Linear(hidden, hidden, rng=rng)
        self.value = Linear(hidden, hidden, rng=rng)
        self.output = Linear(hidden, hidden, rng=rng)
        self._cache: Optional[tuple] = None

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        """(B, S, H) -> (B, heads, S, head_dim)."""
        b, s, _ = x.shape
        return x.reshape(b, s, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        """(B, heads, S, head_dim) -> (B, S, H)."""
        b, h, s, d = x.shape
        return x.transpose(0, 2, 1, 3).reshape(b, s, h * d)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 3 or x.shape[-1] != self.hidden:
            raise ValueError(
                f"expected (batch, seq, {self.hidden}) input, got {x.shape}"
            )
        q = self._split_heads(self.query(x))
        k = self._split_heads(self.key(x))
        v = self._split_heads(self.value(x))
        scale = 1.0 / math.sqrt(self.head_dim)
        scores = F.cached_einsum("bhid,bhjd->bhij", q, k) * scale
        attn = F.softmax(scores, axis=-1)
        context = F.cached_einsum("bhij,bhjd->bhid", attn, v)
        self._cache = (q, k, v, attn, scale)
        return self.output(self._merge_heads(context))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        q, k, v, attn, scale = self._cache
        grad_context = self._split_heads(self.output.backward(grad_output))

        grad_attn = F.cached_einsum("bhid,bhjd->bhij", grad_context, v)
        grad_v = F.cached_einsum("bhij,bhid->bhjd", attn, grad_context)
        # Softmax backward: dS = A * (dA - sum(dA * A, axis=-1, keepdims)).
        inner = (grad_attn * attn).sum(axis=-1, keepdims=True)
        grad_scores = attn * (grad_attn - inner)
        grad_q = F.cached_einsum("bhij,bhjd->bhid", grad_scores, k) * scale
        grad_k = F.cached_einsum("bhij,bhid->bhjd", grad_scores, q) * scale

        grad_x = self.query.backward(self._merge_heads(grad_q))
        grad_x = grad_x + self.key.backward(self._merge_heads(grad_k))
        grad_x = grad_x + self.value.backward(self._merge_heads(grad_v))
        self._cache = None
        return grad_x


class TransformerEncoderLayer(Module):
    """Pre-LN transformer encoder block: attention + FFN with residuals."""

    def __init__(
        self,
        hidden: int,
        num_heads: int,
        ffn_multiple: int = 4,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.ln1 = LayerNorm(hidden)
        self.attention = MultiHeadSelfAttention(hidden, num_heads, rng=rng)
        self.drop1 = Dropout(dropout, rng=rng)
        self.ln2 = LayerNorm(hidden)
        self.ffn_in = Linear(hidden, ffn_multiple * hidden, rng=rng)
        self.gelu = GELU()
        self.ffn_out = Linear(ffn_multiple * hidden, hidden, rng=rng)
        self.drop2 = Dropout(dropout, rng=rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        attn_out = self.drop1(self.attention(self.ln1(x)))
        x = x + attn_out
        ffn_out = self.drop2(self.ffn_out(self.gelu(self.ffn_in(self.ln2(x)))))
        return x + ffn_out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        # FFN residual branch.
        grad_ffn = self.drop2.backward(grad_output)
        grad_ffn = self.ffn_out.backward(grad_ffn)
        grad_ffn = self.gelu.backward(grad_ffn)
        grad_ffn = self.ffn_in.backward(grad_ffn)
        grad_ffn = self.ln2.backward(grad_ffn)
        grad = grad_output + grad_ffn
        # Attention residual branch.
        grad_attn = self.drop1.backward(grad)
        grad_attn = self.attention.backward(grad_attn)
        grad_attn = self.ln1.backward(grad_attn)
        return grad + grad_attn
